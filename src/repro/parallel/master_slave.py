"""Synchronous master/slave parallel evaluation (paper Section 4.5, Figure 6).

The paper's implementation uses C + PVM: slaves are started once at the
beginning of the run, load the data once, and then repeatedly receive one
individual to evaluate and send its fitness back; the master blocks until the
whole generation is evaluated (synchronous farm).

This module reproduces that organisation on top of :mod:`multiprocessing`:

* worker processes are created once, when the evaluator is constructed;
* the (picklable) fitness function — in practice a
  :class:`~repro.stats.evaluation.HaplotypeEvaluator` holding the genotype
  data — is shipped to each worker exactly once through the pool initializer,
  mirroring "the slaves are initiated at the beginning and access only once
  to the data";
* ``evaluate_batch`` scatters the individuals across the workers and gathers
  every fitness before returning (a synchronous generation barrier).
"""

from __future__ import annotations

import os
from multiprocessing import get_context
from typing import Sequence

from .base import BaseBatchEvaluator, FitnessCallable, SnpSet

__all__ = ["MasterSlaveEvaluator", "default_worker_count"]

# The fitness function installed in each worker process by the pool
# initializer.  Module-level because `multiprocessing` can only call picklable
# top-level functions.
_WORKER_FITNESS: FitnessCallable | None = None


def _initialize_worker(fitness: FitnessCallable) -> None:
    """Pool initializer: store the fitness function once per worker process."""
    global _WORKER_FITNESS
    _WORKER_FITNESS = fitness


def _evaluate_in_worker(snps: tuple[int, ...]) -> float:
    """Evaluate one haplotype inside a worker process."""
    if _WORKER_FITNESS is None:  # pragma: no cover - defensive
        raise RuntimeError("worker process was not initialised with a fitness function")
    return float(_WORKER_FITNESS(snps))


def default_worker_count() -> int:
    """Default number of slave processes: the machine's CPU count (at least 1)."""
    return max(os.cpu_count() or 1, 1)


class MasterSlaveEvaluator(BaseBatchEvaluator):
    """Multiprocessing implementation of the synchronous master/slave farm.

    Parameters
    ----------
    fitness:
        Picklable fitness callable shipped once to every worker.
    n_workers:
        Number of slave processes (default: CPU count).
    chunk_size:
        Number of individuals sent to a slave per message.  The paper sends
        one individual at a time (``chunk_size=1``); larger chunks trade
        scheduling flexibility for lower communication overhead.
    start_method:
        ``multiprocessing`` start method; the default ``"fork"`` (when
        available) avoids re-importing the scientific stack in every worker,
        ``"spawn"`` is used automatically on platforms without ``fork``.
    dedup, cache_size:
        Batch fast-path controls inherited from
        :class:`~repro.parallel.base.BaseBatchEvaluator`: duplicates within a
        generation are collapsed and previously seen haplotypes are answered
        from a master-side cache, so only distinct, unseen individuals are
        scattered to the slaves.
    """

    def __init__(
        self,
        fitness: FitnessCallable,
        *,
        n_workers: int | None = None,
        chunk_size: int = 1,
        start_method: str | None = None,
        dedup: bool = True,
        cache_size: int | None = BaseBatchEvaluator.DEFAULT_CACHE_SIZE,
    ) -> None:
        super().__init__(dedup=dedup, cache_size=cache_size)
        if n_workers is not None and n_workers <= 0:
            raise ValueError("n_workers must be positive")
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self._n_workers = n_workers or default_worker_count()
        self._chunk_size = chunk_size
        if start_method is None:
            try:
                context = get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                context = get_context("spawn")
        else:
            context = get_context(start_method)
        self._pool = context.Pool(
            processes=self._n_workers,
            initializer=_initialize_worker,
            initargs=(fitness,),
        )
        self._closed = False

    # ------------------------------------------------------------------ #
    @property
    def n_workers(self) -> int:
        return self._n_workers

    def evaluate_batch(self, batch: Sequence[SnpSet]) -> list[float]:
        if self._closed:
            raise RuntimeError("evaluator has been closed")
        return super().evaluate_batch(batch)

    def _evaluate_distinct(self, batch: Sequence[SnpSet]) -> list[float]:
        tasks = [tuple(int(s) for s in snps) for snps in batch]
        results = self._pool.map(_evaluate_in_worker, tasks, chunksize=self._chunk_size)
        return [float(r) for r in results]

    def close(self) -> None:
        if not self._closed:
            self._pool.close()
            self._pool.join()
            self._closed = True

    def terminate(self) -> None:
        """Forcefully terminate the worker processes."""
        if not self._closed:
            self._pool.terminate()
            self._pool.join()
            self._closed = True

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown path
        try:
            self.terminate()
        except Exception:
            pass
