"""Chunked worker farm: per-slave queues, content-affinity routing, batch chunks.

The seed master/slave evaluator reproduced the paper's protocol literally —
one individual per message through a :class:`multiprocessing.Pool` — which has
two structural costs the paper's C/PVM implementation did not pay:

* every individual is a separate task message (scheduling + IPC overhead per
  haplotype instead of per chunk);
* a ``Pool`` hands tasks to *whichever* worker is free, so a haplotype that is
  re-requested in a later generation usually lands on a different slave than
  the one whose caches already hold its phase expansions and EM result.

This module keeps the synchronous-farm organisation (the master blocks until
the whole generation is evaluated) but gives every slave its **own** inbox
queue.  The master routes each distinct haplotype to the slave that owns it —
a deterministic function of the sorted SNP tuple — and sends each slave its
share of the generation as a small number of chunks.  Inside the slave the
chunk runs through the batch fast path (a worker-local
:class:`~repro.parallel.serial.SerialEvaluator` over the once-loaded fitness
function, with its own LRU), so re-requested haplotypes are answered from the
slave-side caches instead of being re-evaluated; per-chunk counters and
timings travel back with the results and are merged master-side into the
farm's :class:`~repro.parallel.base.EvaluationStats`.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass
from queue import Empty
from typing import Callable, Sequence

from .base import (
    FitnessCallable,
    SnpSet,
    default_mp_context,
    validate_chunk_size,
    validate_worker_count,
)

__all__ = ["ChunkStats", "ChunkedWorkerFarm", "affinity_worker"]

#: A picklable zero-argument callable building the worker's fitness function.
#: Called exactly once per slave process ("the slaves access only once to the
#: data"); the result is wrapped in the worker-local batch evaluator.
EvaluatorFactory = Callable[[], FitnessCallable]


@dataclass(frozen=True)
class ChunkStats:
    """Per-chunk accounting a slave reports back with its results."""

    n_requests: int
    n_evaluations: int
    n_cache_hits: int
    seconds: float


def affinity_worker(key: tuple[int, ...], n_workers: int) -> int:
    """Deterministic owner slave of a haplotype (stable across generations).

    Hashing the sorted SNP tuple — integers hash reproducibly, unaffected by
    ``PYTHONHASHSEED`` — pins every haplotype to one slave, so that slave's
    expansion/result caches keep working when the haplotype returns in a later
    generation.
    """
    return hash(key) % n_workers


def _farm_worker_main(
    factory: EvaluatorFactory,
    worker_cache_size: int | None,
    inbox,
    outbox,
) -> None:
    """Slave loop: build the evaluator once, then evaluate chunks until told to stop."""
    from .serial import SerialEvaluator

    try:
        fitness = factory()
        local = SerialEvaluator(fitness, cache_size=worker_cache_size)
    except Exception:  # pragma: no cover - exercised via the startup-error test
        outbox.put((None, None, None, traceback.format_exc()))
        return
    while True:
        message = inbox.get()
        if message is None:
            break
        task_id, chunk = message
        try:
            before = local.stats.copy()
            start = time.perf_counter()
            values = local.evaluate_batch(chunk)
            elapsed = time.perf_counter() - start
            delta = local.stats.since(before)
            stats = ChunkStats(
                n_requests=delta.n_requests,
                n_evaluations=delta.n_evaluations,
                n_cache_hits=delta.n_cache_hits + delta.n_dedup_hits,
                seconds=elapsed,
            )
            outbox.put((task_id, values, stats, None))
        except Exception:
            outbox.put((task_id, None, None, traceback.format_exc()))


class ChunkedWorkerFarm:
    """A synchronous farm of slave processes fed through per-slave queues.

    Parameters
    ----------
    factory:
        Picklable zero-argument callable; each slave calls it once to build
        its fitness function (ship a pickled evaluator, or attach to a
        shared-memory genotype store).
    n_workers:
        Number of slave processes.
    chunk_size:
        Maximum number of haplotypes per message.  ``None`` sends each
        slave's whole share of a batch as a single chunk (one message per
        slave per generation — the synchronous-farm optimum when slaves are
        homogeneous).
    worker_cache_size:
        Bound of each slave's local fitness LRU (``0`` disables slave-side
        result reuse, e.g. for timing studies).
    start_method:
        ``multiprocessing`` start method (default: ``fork`` where available).
    """

    _RESULT_POLL_SECONDS = 0.5

    def __init__(
        self,
        factory: EvaluatorFactory,
        n_workers: int,
        *,
        chunk_size: int | None = None,
        worker_cache_size: int | None = 4096,
        start_method: str | None = None,
    ) -> None:
        if n_workers is None:
            raise ValueError("n_workers must be a positive integer, got None")
        validate_worker_count(n_workers)
        validate_chunk_size(chunk_size)
        context = default_mp_context(start_method)
        self._n_workers = n_workers
        self._chunk_size = chunk_size
        self._outbox = context.Queue()
        self._inboxes = []
        self._processes = []
        self._closed = False
        # monotone across the farm's lifetime: after a failed batch, stale
        # results still in the outbox can never collide with a later batch's
        # task ids (they are drained and discarded as unknown)
        self._next_task_id = 0
        for _ in range(n_workers):
            inbox = context.Queue()
            process = context.Process(
                target=_farm_worker_main,
                args=(factory, worker_cache_size, inbox, self._outbox),
                daemon=True,
            )
            process.start()
            self._inboxes.append(inbox)
            self._processes.append(process)

    # ------------------------------------------------------------------ #
    @property
    def n_workers(self) -> int:
        return self._n_workers

    @property
    def closed(self) -> bool:
        return self._closed

    def _chunks_for_worker(self, indices: list[int]) -> list[list[int]]:
        size = self._chunk_size or len(indices)
        return [indices[i: i + size] for i in range(0, len(indices), size)]

    def evaluate(
        self, batch: Sequence[tuple[int, ...]]
    ) -> tuple[list[float], ChunkStats]:
        """Scatter one batch across the slaves; block until fully gathered.

        Returns the fitnesses in batch order plus the merged per-chunk stats.
        """
        if self._closed:
            raise RuntimeError("the worker farm has been closed")
        # sorted keys: affinity routing must see one canonical form per
        # haplotype or (5, 2) and (2, 5) would land on different slaves
        batch = [tuple(sorted(int(s) for s in snps)) for snps in batch]
        if not batch:
            return [], ChunkStats(0, 0, 0, 0.0)

        by_worker: dict[int, list[int]] = {}
        for index, key in enumerate(batch):
            by_worker.setdefault(affinity_worker(key, self._n_workers), []).append(index)

        pending_tasks: dict[int, list[int]] = {}
        for worker, indices in by_worker.items():
            for chunk_indices in self._chunks_for_worker(indices):
                chunk = [batch[i] for i in chunk_indices]
                task_id = self._next_task_id
                self._next_task_id += 1
                self._inboxes[worker].put((task_id, chunk))
                pending_tasks[task_id] = chunk_indices

        results: list[float] = [0.0] * len(batch)
        n_requests = n_evaluations = n_cache_hits = 0
        seconds = 0.0
        remaining = set(pending_tasks)
        while remaining:
            try:
                received_id, values, stats, error = self._outbox.get(
                    timeout=self._RESULT_POLL_SECONDS
                )
            except Empty:
                dead = [i for i, p in enumerate(self._processes) if not p.is_alive()]
                if dead:
                    raise RuntimeError(
                        f"worker process(es) {dead} died while evaluating a batch"
                    ) from None
                continue
            if received_id is not None and received_id not in remaining:
                # stale message (result or error) from a batch that a worker
                # error already aborted; drop it — this batch never sent it
                continue
            if error is not None:
                raise RuntimeError(f"a worker failed while evaluating a chunk:\n{error}")
            for index, value in zip(pending_tasks[received_id], values):
                results[index] = float(value)
            n_requests += stats.n_requests
            n_evaluations += stats.n_evaluations
            n_cache_hits += stats.n_cache_hits
            seconds += stats.seconds
            remaining.discard(received_id)
        return results, ChunkStats(n_requests, n_evaluations, n_cache_hits, seconds)

    # ------------------------------------------------------------------ #
    def close(self, *, join_timeout: float = 5.0) -> None:
        """Stop the slaves and reap them; idempotent."""
        if self._closed:
            return
        self._closed = True
        for inbox in self._inboxes:
            try:
                inbox.put(None)
            except (OSError, ValueError):  # pragma: no cover - queue already gone
                pass
        for process in self._processes:
            process.join(timeout=join_timeout)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=join_timeout)

    def terminate(self) -> None:
        """Forcefully kill the slaves; idempotent."""
        if self._closed:
            return
        self._closed = True
        for process in self._processes:
            if process.is_alive():
                process.terminate()
        for process in self._processes:
            process.join(timeout=5.0)
