"""Tests of the execution-backend registry and cross-backend parity."""

import pytest

from repro.parallel.master_slave import MasterSlaveEvaluator
from repro.parallel.serial import SerialEvaluator
from repro.runtime.backends import (
    backend_names,
    create_evaluator,
    register_backend,
    resolve_backend,
)
from repro.runtime.spec import EvaluatorSpec


def _generation_batches():
    """Two overlapping generation-shaped batches with duplicates."""
    first = [
        (0, 1), (2, 5), (1, 3, 9), (0, 1), (4, 7), (2, 5), (6, 8, 11), (3, 10),
    ]
    second = [(2, 5), (0, 1), (5, 12), (1, 3, 9), (7, 13)]
    return first, second


class TestRegistry:
    def test_all_four_backends_registered(self):
        assert set(backend_names()) >= {"serial", "threads", "process", "process-shm"}

    def test_unknown_backend_lists_alternatives(self):
        with pytest.raises(KeyError, match="serial"):
            resolve_backend("cluster-of-doom")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_backend("serial", lambda request: None)

    def test_replace_allows_reregistration(self):
        original = resolve_backend("serial")
        register_backend("serial", original, replace=True)
        assert resolve_backend("serial") is original

    def test_spec_source_requires_dataset(self):
        with pytest.raises(TypeError):
            create_evaluator("serial", EvaluatorSpec())

    def test_process_shm_rejects_bare_callable(self):
        with pytest.raises(TypeError, match="process-shm"):
            create_evaluator("process-shm", lambda snps: 0.0)

    def test_invalid_source_type(self):
        with pytest.raises(TypeError):
            create_evaluator("serial", 42)


class TestBackendParity:
    """All backends must return identical fitnesses and merged stats."""

    @pytest.fixture(scope="class")
    def reference(self, request):
        small_evaluator = request.getfixturevalue("small_evaluator")
        first, second = _generation_batches()
        evaluator = create_evaluator("serial", small_evaluator)
        values = (evaluator.evaluate_batch(first), evaluator.evaluate_batch(second))
        return values, evaluator.stats.counters()

    @pytest.mark.parametrize("backend", ["threads", "process", "process-shm"])
    def test_matches_serial(self, backend, small_evaluator, reference):
        (first_ref, second_ref), counters_ref = reference
        first, second = _generation_batches()
        evaluator = create_evaluator(backend, small_evaluator, n_workers=2)
        try:
            assert evaluator.evaluate_batch(first) == pytest.approx(first_ref, rel=1e-12)
            assert evaluator.evaluate_batch(second) == pytest.approx(second_ref, rel=1e-12)
            assert evaluator.stats.counters() == counters_ref
        finally:
            evaluator.close()

    def test_chunked_stats_merge_to_serial(self, small_evaluator):
        """Per-chunk worker stats must merge exactly to the serial path's."""
        first, second = _generation_batches()
        serial = SerialEvaluator(small_evaluator)
        serial.evaluate_batch(first)
        serial.evaluate_batch(second)
        chunked = create_evaluator(
            "process", small_evaluator, n_workers=2, chunk_size=2
        )
        try:
            chunked.evaluate_batch(first)
            chunked.evaluate_batch(second)
            assert chunked.stats.counters() == serial.stats.counters()
            assert chunked.stats.backend_seconds > 0.0
        finally:
            chunked.close()

    def test_callable_source_on_process_backend(self):
        batch = [(0, 1), (2,), (0, 1), (3, 4)]
        serial = SerialEvaluator(_product_fitness)
        expected = serial.evaluate_batch(batch)
        evaluator = create_evaluator("process", _product_fitness, n_workers=2)
        try:
            assert isinstance(evaluator, MasterSlaveEvaluator)
            assert evaluator.dispatch == "chunked"
            assert evaluator.evaluate_batch(batch) == pytest.approx(expected)
        finally:
            evaluator.close()


def _product_fitness(snps):
    value = 1.0
    for s in snps:
        value *= (s + 1)
    return value


class TestSpec:
    def test_roundtrip_from_evaluator(self, small_evaluator):
        spec = EvaluatorSpec.from_evaluator(small_evaluator)
        assert spec == EvaluatorSpec()
        rebuilt = spec.build(small_evaluator.dataset)
        assert rebuilt.evaluate((0, 1)) == pytest.approx(small_evaluator.evaluate((0, 1)))

    def test_with_statistic(self):
        assert EvaluatorSpec().with_statistic("lrt").statistic == "lrt"

    def test_spec_preserves_nondefault_parameters(self, small_dataset):
        from repro.stats.evaluation import HaplotypeEvaluator

        evaluator = HaplotypeEvaluator(
            small_dataset, statistic="t3", em_max_iter=77, cache_size=9
        )
        spec = EvaluatorSpec.from_evaluator(evaluator)
        assert spec.statistic == "t3"
        assert spec.em_max_iter == 77
        assert spec.cache_size == 9
