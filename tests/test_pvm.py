"""Tests of the simulated PVM cluster and its evaluation cost model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.parallel.pvm import EvaluationCostModel, SimulatedPVM


class TestEvaluationCostModel:
    def test_exponential_growth(self):
        model = EvaluationCostModel(base_seconds=0.001, growth_factor=2.0)
        assert model.cost(1) == pytest.approx(0.001)
        assert model.cost(4) == pytest.approx(0.008)
        np.testing.assert_allclose(model.costs([1, 2, 3]), [0.001, 0.002, 0.004])

    def test_validation(self):
        with pytest.raises(ValueError):
            EvaluationCostModel(base_seconds=0.0)
        with pytest.raises(ValueError):
            EvaluationCostModel(growth_factor=0.5)
        with pytest.raises(ValueError):
            EvaluationCostModel().cost(0)
        with pytest.raises(ValueError):
            EvaluationCostModel().costs([2, -1])

    def test_fit_recovers_parameters(self):
        true = EvaluationCostModel(base_seconds=0.002, growth_factor=2.4)
        sizes = [2, 3, 4, 5, 6, 7]
        seconds = [true.cost(s) for s in sizes]
        fitted = EvaluationCostModel.fit(sizes, seconds)
        assert fitted.base_seconds == pytest.approx(true.base_seconds, rel=1e-6)
        assert fitted.growth_factor == pytest.approx(true.growth_factor, rel=1e-6)

    def test_fit_validation(self):
        with pytest.raises(ValueError):
            EvaluationCostModel.fit([3], [0.01])
        with pytest.raises(ValueError):
            EvaluationCostModel.fit([3, 4], [0.01, 0.0])

    def test_json_round_trip(self):
        model = EvaluationCostModel(base_seconds=0.0025, growth_factor=2.3)
        payload = model.to_json()
        assert payload == {"base_seconds": 0.0025, "growth_factor": 2.3}
        restored = EvaluationCostModel.from_json(payload)
        assert restored.base_seconds == model.base_seconds
        assert restored.growth_factor == model.growth_factor

    def test_from_json_names_the_missing_key(self):
        with pytest.raises(ValueError, match="growth_factor"):
            EvaluationCostModel.from_json({"base_seconds": 0.001})
        with pytest.raises(ValueError, match="base_seconds"):
            EvaluationCostModel.from_json({"growth_factor": 2.0})

    def test_from_json_validates_values(self):
        with pytest.raises(ValueError):
            EvaluationCostModel.from_json(
                {"base_seconds": 0.0, "growth_factor": 2.0}
            )

    def test_paper_figure4_shape(self):
        """The default model reflects Figure 4: ~6 ms at size 3, ~200 ms at size 7."""
        model = EvaluationCostModel.fit([3, 7], [0.006, 0.201])
        assert 2.0 < model.growth_factor < 3.0
        assert model.cost(7) / model.cost(3) == pytest.approx(0.201 / 0.006, rel=1e-9)


class TestSimulatedPVM:
    def test_single_slave_makespan_is_serial_plus_overhead(self):
        cluster = SimulatedPVM(1, message_latency_seconds=0.0)
        schedule = cluster.schedule_costs([0.1, 0.2, 0.3])
        assert schedule.makespan_seconds == pytest.approx(0.6)
        assert schedule.speedup == pytest.approx(1.0)
        assert schedule.efficiency == pytest.approx(1.0)

    def test_equal_tasks_split_evenly(self):
        cluster = SimulatedPVM(4, message_latency_seconds=0.0)
        schedule = cluster.schedule_costs([0.1] * 8)
        assert schedule.makespan_seconds == pytest.approx(0.2)
        assert schedule.speedup == pytest.approx(4.0)
        assert all(t.n_tasks == 2 for t in schedule.timelines)
        assert schedule.load_imbalance == pytest.approx(1.0)

    def test_message_latency_limits_speedup(self):
        fast = SimulatedPVM(8, message_latency_seconds=0.0)
        slow = SimulatedPVM(8, message_latency_seconds=0.05)
        costs = [0.01] * 32
        assert slow.schedule_costs(costs).speedup < fast.schedule_costs(costs).speedup

    def test_speedup_is_monotone_in_slaves_without_latency(self):
        rng = np.random.default_rng(0)
        sizes = rng.integers(2, 7, size=60)
        cluster = SimulatedPVM(1, message_latency_seconds=0.0)
        curve = cluster.speedup_curve(sizes, [1, 2, 4, 8])
        values = [curve[n] for n in (1, 2, 4, 8)]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))
        assert curve[1] == pytest.approx(1.0)

    def test_schedule_batch_uses_cost_model(self):
        cluster = SimulatedPVM(2, cost_model=EvaluationCostModel(0.001, 2.0),
                               message_latency_seconds=0.0)
        schedule = cluster.schedule_batch([3, 3])
        assert schedule.serial_seconds == pytest.approx(2 * 0.004)
        assert schedule.makespan_seconds == pytest.approx(0.004)

    def test_empty_batch(self):
        cluster = SimulatedPVM(2)
        schedule = cluster.schedule_costs([])
        assert schedule.makespan_seconds == 0.0
        assert schedule.speedup == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulatedPVM(0)
        with pytest.raises(ValueError):
            SimulatedPVM(2, message_latency_seconds=-1.0)
        with pytest.raises(ValueError):
            SimulatedPVM(2).schedule_costs([[0.1]])
        with pytest.raises(ValueError):
            SimulatedPVM(2).schedule_costs([-0.1])

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=1, max_value=12),
        st.lists(st.floats(min_value=1e-4, max_value=1.0), min_size=1, max_size=40),
    )
    def test_speedup_never_exceeds_slave_count(self, n_slaves, costs):
        cluster = SimulatedPVM(n_slaves, message_latency_seconds=0.0)
        schedule = cluster.schedule_costs(costs)
        assert schedule.speedup <= n_slaves + 1e-9
        assert schedule.makespan_seconds >= max(costs) - 1e-12
