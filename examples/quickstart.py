#!/usr/bin/env python
"""Quickstart: find disease-associated haplotypes with the adaptive GA.

This example walks through the complete pipeline of the paper on a small
synthetic case/control study so it finishes in well under a minute:

1. simulate a case/control genotype dataset with a planted causal haplotype
   (the documented substitute for the paper's proprietary Lille data);
2. build the EH-DIALL + CLUMP evaluator (the paper's Figure-3 pipeline);
3. run the parallel adaptive multi-population GA;
4. report the best haplotype found for every size, its fitness, its
   Monte-Carlo significance, and how much of the search space was explored.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import math

from repro import (
    AdaptiveMultiPopulationGA,
    GAConfig,
    HaplotypeEvaluator,
    lille_like_study,
)
from repro.stats.cache import CachedEvaluator


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. data: 106 individuals x 51 SNPs, 53 affected / 53 unaffected
    # ------------------------------------------------------------------ #
    study = lille_like_study(seed=2004)
    dataset = study.dataset
    print(f"dataset: {dataset.summary()}")
    print(f"planted causal haplotype (ground truth): {study.causal_snps}\n")

    # ------------------------------------------------------------------ #
    # 2. fitness: EH-DIALL haplotype estimation + CLUMP T1 statistic
    # ------------------------------------------------------------------ #
    evaluator = HaplotypeEvaluator(dataset, statistic="t1")
    cached = CachedEvaluator(evaluator)  # never pay twice for the same haplotype

    planted_fitness = cached(study.causal_snps)
    print(f"fitness of the planted haplotype {study.causal_snps}: {planted_fitness:.2f}\n")

    # ------------------------------------------------------------------ #
    # 3. the adaptive multi-population GA (reduced budget for the example)
    # ------------------------------------------------------------------ #
    config = GAConfig(
        population_size=80,
        min_haplotype_size=2,
        max_haplotype_size=5,
        crossover_rate=0.9,
        termination_stagnation=15,
        max_generations=60,
        random_immigrant_stagnation=8,
        seed=1,
    )
    ga = AdaptiveMultiPopulationGA(cached, n_snps=dataset.n_snps, config=config)
    result = ga.run()

    print(
        f"GA finished after {result.n_generations} generations, "
        f"{result.n_evaluations} evaluations "
        f"({result.termination_reason}), {result.elapsed_seconds:.1f}s"
    )
    print(f"distinct haplotypes actually evaluated: {cached.n_distinct_evaluations}\n")

    # ------------------------------------------------------------------ #
    # 4. results, paper-Table-2 style
    # ------------------------------------------------------------------ #
    print(f"{'size':>4}  {'best haplotype':<20} {'fitness':>9}  {'#evals to best':>14}")
    for size in sorted(result.best_per_size):
        individual = result.best_per_size[size]
        print(
            f"{size:>4}  {' '.join(map(str, individual.snps)):<20} "
            f"{individual.fitness_value():>9.2f}  "
            f"{result.evaluations_to_best[size]:>14}"
        )

    best = result.best_overall()
    searchable = sum(
        math.comb(dataset.n_snps, k) for k in config.haplotype_sizes
    )
    print(
        f"\nexplored {result.n_evaluations:,} of {searchable:,} possible haplotypes "
        f"({result.n_evaluations / searchable:.3%} of the search space)"
    )

    p_values = evaluator.significance(best.snps, n_simulations=500, seed=0)
    print(
        f"best overall haplotype {best.snps}: fitness {best.fitness_value():.2f}, "
        f"Monte-Carlo p(T1) = {p_values['t1']:.4f}"
    )
    overlap = set(best.snps) & set(study.causal_snps)
    print(f"overlap with the planted haplotype: {sorted(overlap)}")


if __name__ == "__main__":
    main()
