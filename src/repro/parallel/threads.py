"""Thread-pool batch evaluator.

A shared-memory sibling of the process farm: the genotype matrices are shared
by construction (threads see the same arrays), there is no pickling, and
start-up is cheap.  The GIL caps the achievable speedup for the numpy-heavy
EM kernel, but the backend is valuable as the cheapest parallel substrate for
small batches and as a drop-in parity check for the process backends.

Thread safety: a :class:`~repro.stats.evaluation.HaplotypeEvaluator`'s
internal caches are plain dict/OrderedDict layers and are not synchronised,
so sharing one evaluator across threads would race.  When built from an
``evaluator_factory`` the pool therefore gives every worker thread its own
evaluator instance (they still share the underlying genotype arrays); a plain
``fitness`` callable is shared as-is and must be thread-safe itself.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

from .base import (
    BaseBatchEvaluator,
    DistinctEvaluation,
    FitnessCallable,
    SnpSet,
    evaluate_batch_with,
    validate_chunk_size,
    validate_worker_count,
)

__all__ = ["ThreadPoolEvaluator"]


class ThreadPoolEvaluator(BaseBatchEvaluator):
    """Evaluate batches on a pool of threads.

    Parameters
    ----------
    fitness:
        Thread-safe fitness callable shared by every worker thread.  Mutually
        exclusive with ``evaluator_factory``.
    evaluator_factory:
        Zero-argument callable building a fitness function; called once per
        worker thread (thread-local evaluators, shared genotype arrays).
    n_workers:
        Number of worker threads (default 4).
    chunk_size:
        Haplotypes per submitted task; ``None`` splits a batch evenly across
        the workers.
    dedup, cache_size:
        Batch fast-path controls inherited from
        :class:`~repro.parallel.base.BaseBatchEvaluator`.
    """

    def __init__(
        self,
        fitness: FitnessCallable | None = None,
        *,
        evaluator_factory: Callable[[], FitnessCallable] | None = None,
        n_workers: int | None = None,
        chunk_size: int | None = None,
        dedup: bool = True,
        cache_size: int | None = BaseBatchEvaluator.DEFAULT_CACHE_SIZE,
    ) -> None:
        super().__init__(dedup=dedup, cache_size=cache_size)
        if (fitness is None) == (evaluator_factory is None):
            raise ValueError("provide exactly one of fitness or evaluator_factory")
        validate_worker_count(n_workers)
        validate_chunk_size(chunk_size)
        self._fitness = fitness
        self._factory = evaluator_factory
        self._n_workers = n_workers or 4
        self._chunk_size = chunk_size
        self._thread_state = threading.local()
        self._executor: ThreadPoolExecutor | None = ThreadPoolExecutor(
            max_workers=self._n_workers, thread_name_prefix="repro-eval"
        )

    @property
    def n_workers(self) -> int:
        return self._n_workers

    def _thread_fitness(self) -> FitnessCallable:
        if self._fitness is not None:
            return self._fitness
        fitness = getattr(self._thread_state, "fitness", None)
        if fitness is None:
            fitness = self._factory()  # type: ignore[misc]
            self._thread_state.fitness = fitness
        return fitness

    def _evaluate_chunk(self, chunk: list[SnpSet]) -> tuple[list[float], int, int]:
        # each worker thread runs its chunk through its own evaluator's
        # batched path (stacked EM), reporting the stacked-kernel deltas
        return evaluate_batch_with(self._thread_fitness(), chunk)

    def _evaluate_distinct(self, batch: Sequence[SnpSet]) -> list[float]:
        return self._evaluate_distinct_details(batch).values

    def _evaluate_distinct_details(self, batch: Sequence[SnpSet]) -> DistinctEvaluation:
        if self._executor is None:
            raise RuntimeError("evaluator has been closed")
        batch = list(batch)
        size = self._chunk_size or max(1, -(-len(batch) // self._n_workers))
        chunks = [batch[i: i + size] for i in range(0, len(batch), size)]
        values: list[float] = []
        n_stacked_em = 0
        n_stacked_problems = 0
        for chunk_values, stacked_calls, stacked_problems in self._executor.map(
            self._evaluate_chunk, chunks
        ):
            values.extend(chunk_values)
            n_stacked_em += stacked_calls
            n_stacked_problems += stacked_problems
        return DistinctEvaluation(
            values=values,
            n_stacked_em=n_stacked_em,
            n_stacked_problems=n_stacked_problems,
        )

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        super().close()
