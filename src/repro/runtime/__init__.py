"""Execution-runtime layer: backend registry, shared-memory store, run service.

This package is the seam between the GA/statistics code and the machinery
that actually executes fitness evaluations:

* :mod:`repro.runtime.spec` — picklable evaluator recipes and dataset handles;
* :mod:`repro.runtime.backends` — the string-keyed execution-backend registry
  (``serial`` / ``threads`` / ``process`` / ``process-shm``);
* :mod:`repro.runtime.shm` — the one-copy shared-memory genotype store;
* :mod:`repro.runtime.service` — the synchronous ``RunRequest -> RunResult``
  service used by the CLI and the experiment harnesses;
* :mod:`repro.runtime.server` / :mod:`repro.runtime.client` — the
  scan-as-a-service daemon (warm farm + cross-request result cache +
  cost-aware admission) and its socket client.

``service``/``server``/``client`` are re-exported lazily: they import the GA
core, which itself resolves its default backend through this package.
"""

from .backends import (
    DEFAULT_BACKEND,
    BackendRequest,
    backend_names,
    create_evaluator,
    register_backend,
    resolve_backend,
)
from .shm import ShardedGenotypeStore, SharedDatasetHandle, SharedGenotypeStore
from .spec import (
    DatasetHandle,
    EvaluatorSpec,
    InMemoryDatasetHandle,
    SpecEvaluatorFactory,
)

__all__ = [
    "DEFAULT_BACKEND",
    "BackendRequest",
    "backend_names",
    "create_evaluator",
    "register_backend",
    "resolve_backend",
    "EvaluatorSpec",
    "DatasetHandle",
    "InMemoryDatasetHandle",
    "SpecEvaluatorFactory",
    "SharedGenotypeStore",
    "SharedDatasetHandle",
    "ShardedGenotypeStore",
    "RunRequest",
    "RunResult",
    "RunScheduler",
    "RunService",
    "ScanServer",
    "ScanClient",
    "AdmissionPolicy",
    "AdmissionRejected",
]


def __getattr__(name: str):
    # Lazy re-export: service.py (and the scan-service modules built on it)
    # imports the GA core, which in turn imports this package for its default
    # backend; importing them eagerly here would create a cycle.
    if name in ("RunRequest", "RunResult", "RunScheduler", "RunService"):
        from . import service

        return getattr(service, name)
    if name in ("ScanServer", "AdmissionPolicy", "AdmissionRejected"):
        from . import server

        return getattr(server, name)
    if name == "ScanClient":
        from . import client

        return getattr(client, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
