"""Tests of the search-space size computations (paper Table 1)."""

import math
from itertools import combinations

import pytest
from hypothesis import given, strategies as st

from repro.search.search_space import (
    n_haplotypes_of_size,
    n_haplotypes_up_to_size,
    search_space_table,
)


class TestCounts:
    def test_matches_paper_values_for_51_snps(self):
        assert n_haplotypes_of_size(51, 2) == 1_275
        assert n_haplotypes_of_size(51, 3) == 20_825
        assert n_haplotypes_of_size(51, 4) == 249_900
        assert n_haplotypes_of_size(51, 5) == 2_349_060
        assert n_haplotypes_of_size(51, 6) == 18_009_460

    def test_matches_paper_values_for_150_and_249_snps(self):
        assert n_haplotypes_of_size(150, 2) == 11_175
        assert n_haplotypes_of_size(249, 2) == 30_876
        assert n_haplotypes_of_size(150, 3) == 551_300
        assert n_haplotypes_of_size(249, 3) == 2_542_124
        assert n_haplotypes_of_size(150, 4) == 20_260_275
        assert n_haplotypes_of_size(249, 4) == 156_340_626

    def test_matches_brute_force_enumeration(self):
        for n, k in ((6, 2), (7, 3), (8, 4)):
            assert n_haplotypes_of_size(n, k) == sum(1 for _ in combinations(range(n), k))

    def test_edge_cases(self):
        assert n_haplotypes_of_size(5, 0) == 1
        assert n_haplotypes_of_size(5, 6) == 0
        with pytest.raises(ValueError):
            n_haplotypes_of_size(-1, 2)
        with pytest.raises(ValueError):
            n_haplotypes_of_size(5, -1)

    @given(st.integers(min_value=0, max_value=80), st.integers(min_value=0, max_value=10))
    def test_matches_math_comb(self, n, k):
        assert n_haplotypes_of_size(n, k) == math.comb(n, k)


class TestCumulative:
    def test_up_to_size(self):
        assert n_haplotypes_up_to_size(10, 3) == math.comb(10, 2) + math.comb(10, 3)
        assert n_haplotypes_up_to_size(10, 4, min_size=4) == math.comb(10, 4)
        with pytest.raises(ValueError):
            n_haplotypes_up_to_size(10, 2, min_size=3)


class TestTable:
    def test_table_structure(self):
        table = search_space_table()
        assert set(table) == {2, 3, 4, 5, 6}
        assert set(table[2]) == {51, 150, 249}
        assert table[6][51] == 18_009_460
