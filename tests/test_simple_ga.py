"""Tests of the single-population GA baseline."""

import pytest

from repro.search.simple_ga import SimpleGA


def _toy_fitness(snps):
    return float(100.0 - sum(snps))


class TestSimpleGA:
    def test_validation(self):
        with pytest.raises(ValueError):
            SimpleGA(_toy_fitness, n_snps=10, size=0)
        with pytest.raises(ValueError):
            SimpleGA(_toy_fitness, n_snps=10, size=2, population_size=1)
        with pytest.raises(ValueError):
            SimpleGA(_toy_fitness, n_snps=10, size=2, crossover_rate=1.5)
        with pytest.raises(ValueError):
            SimpleGA(_toy_fitness, n_snps=10, size=2, population_size=10, elitism=30)
        ga = SimpleGA(_toy_fitness, n_snps=10, size=2)
        with pytest.raises(ValueError):
            ga.run(n_generations=0)

    def test_optimises_toy_fitness(self):
        ga = SimpleGA(_toy_fitness, n_snps=12, size=3, population_size=20, elitism=2)
        result = ga.run(n_generations=30, seed=1)
        assert result.best_fitness >= _toy_fitness((2, 3, 4))
        assert len(result.best_snps) == 3
        assert result.n_evaluations == ga.n_evaluations
        assert result.evaluations_to_best <= result.n_evaluations

    def test_stagnation_stops_early(self):
        ga = SimpleGA(_toy_fitness, n_snps=8, size=2, population_size=10)
        result = ga.run(n_generations=200, stagnation=3, seed=0)
        assert result.n_generations < 200

    def test_determinism(self):
        runs = [
            SimpleGA(_toy_fitness, n_snps=12, size=3, population_size=15).run(
                n_generations=10, seed=7
            )
            for _ in range(2)
        ]
        assert runs[0].best_snps == runs[1].best_snps
        assert runs[0].n_evaluations == runs[1].n_evaluations

    def test_on_real_evaluator(self, small_evaluator):
        ga = SimpleGA(small_evaluator, n_snps=14, size=3, population_size=12)
        result = ga.run(n_generations=5, seed=2)
        assert len(result.best_snps) == 3
        assert result.best_fitness > 0.0


class TestCloseIdempotency:
    """Satellite regression: double context-manager exit must be a safe no-op
    on every owning path (only the master_slave path asserted this before)."""

    def test_double_context_manager_exit_serial(self):
        ga = SimpleGA(_toy_fitness, n_snps=10, size=2, population_size=8)
        with ga:
            with ga:
                ga.run(n_generations=2, seed=0)
        ga.close()  # explicit third close

    def test_double_close_on_process_backend(self):
        ga = SimpleGA(
            _toy_fitness, n_snps=10, size=2, population_size=8,
            backend="process", backend_options={"n_workers": 2},
        )
        with ga:
            ga.run(n_generations=2, seed=0)
        ga.close()
        ga.close()
        with pytest.raises(RuntimeError):
            ga.evaluator.evaluate_batch([(1, 2)])

    def test_callers_evaluator_survives_double_exit(self):
        from repro.parallel.serial import SerialEvaluator

        evaluator = SerialEvaluator(_toy_fitness)
        ga = SimpleGA(evaluator=evaluator, n_snps=10, size=2, population_size=8)
        with ga:
            with ga:
                ga.run(n_generations=1, seed=0)
        # the caller keeps ownership: still usable afterwards
        assert evaluator.evaluate_batch([(1, 2)])
