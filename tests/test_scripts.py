"""Tests of the experiment-report script (scripts/run_experiments.py)."""

import importlib.util
import sys
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "run_experiments.py"


@pytest.fixture(scope="module")
def script_module():
    spec = importlib.util.spec_from_file_location("run_experiments", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    return module


class TestConfigsFor:
    def test_scales_exist(self, script_module):
        for scale in ("quick", "medium", "paper"):
            settings = script_module.configs_for(scale)
            assert {"table2_config", "table2_runs", "ablation_config",
                    "ablation_runs", "figure4_samples", "landscape_panel",
                    "landscape_sizes"} <= set(settings)
            assert settings["table2_runs"] >= 1

    def test_unknown_scale_falls_back_to_quick(self, script_module):
        quick = script_module.configs_for("quick")
        other = script_module.configs_for("not-a-scale")
        assert other["table2_runs"] == quick["table2_runs"]

    def test_paper_scale_matches_paper_parameters(self, script_module):
        settings = script_module.configs_for("paper")
        config = settings["table2_config"]
        assert config.population_size == 150
        assert config.termination_stagnation == 100
        assert settings["table2_runs"] == 10

    def test_scales_are_ordered_by_budget(self, script_module):
        quick = script_module.configs_for("quick")
        medium = script_module.configs_for("medium")
        paper = script_module.configs_for("paper")
        assert (quick["table2_config"].population_size
                <= medium["table2_config"].population_size
                <= paper["table2_config"].population_size)
        assert quick["table2_runs"] <= medium["table2_runs"] <= paper["table2_runs"]
