#!/usr/bin/env python
"""Why a GA?  The Section-3 landscape study and the baseline comparison.

Before committing to a genetic algorithm, the paper studies the structure of
the problem (Section 3) and argues that exhaustive enumeration, constructive
methods and single-size searches are all inadequate.  This example reruns
that argument on the simulated dataset:

1. regenerate Table 1 (the search space is astronomically large),
2. run the landscape study on a reduced panel: the fitness scale grows with
   the haplotype size and good large haplotypes are not unions of good small
   ones (so greedy construction under-performs),
3. give the adaptive GA, pure random search, restarted hill climbing and a
   classic single-population GA the same evaluation budget and compare what
   they find.

Run with:  python examples/landscape_and_baselines.py [--backend process-shm]

Every search method — the adaptive GA and the baselines alike — routes its
fitness through the execution-backend registry, so ``--backend`` switches
the whole comparison onto any registered substrate.
"""

from __future__ import annotations

import argparse

from repro import AdaptiveMultiPopulationGA, GAConfig, HaplotypeEvaluator, lille_like_study
from repro.experiments.landscape_study import run_landscape_study
from repro.experiments.table1 import run_table1
from repro.search.local_search import restarted_hill_climbing
from repro.search.random_search import random_search
from repro.search.simple_ga import SimpleGA
from repro.stats.cache import CachedEvaluator

TARGET_SIZE = 4


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    from repro.runtime.backends import backend_names

    parser.add_argument("--backend", default="serial",
                        choices=list(backend_names()),
                        help="execution backend shared by the GA and the baselines")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker count for the parallel backends")
    args = parser.parse_args()
    backend_options = {"n_workers": args.workers}
    # ------------------------------------------------------------------ #
    # 1. Table 1 — the search space
    # ------------------------------------------------------------------ #
    print(run_table1().format())
    print()

    study = lille_like_study(seed=2004)
    dataset = study.dataset
    evaluator = HaplotypeEvaluator(dataset)

    # ------------------------------------------------------------------ #
    # 2. Section 3 — landscape structure on a reduced panel
    # ------------------------------------------------------------------ #
    landscape = run_landscape_study(study=study, panel_size=14, sizes=(2, 3), top_k=8)
    print(landscape.format())
    print()

    # ------------------------------------------------------------------ #
    # 3. same-budget comparison of the search methods
    # ------------------------------------------------------------------ #
    cached = CachedEvaluator(evaluator)
    config = GAConfig(
        population_size=60,
        max_haplotype_size=TARGET_SIZE,
        termination_stagnation=10,
        max_generations=40,
        seed=11,
    )
    # the HaplotypeEvaluator source lets every backend (including the
    # spec-rebuilding process-shm) derive its worker-side recipe
    with AdaptiveMultiPopulationGA(
        cached if args.backend == "serial" else evaluator,
        n_snps=dataset.n_snps, config=config,
        backend=args.backend, backend_options=backend_options,
    ) as ga:
        ga_result = ga.run()
    budget = ga_result.n_evaluations

    random_result = random_search(
        evaluator, n_snps=dataset.n_snps, n_evaluations=budget,
        min_size=2, max_size=TARGET_SIZE, seed=11,
    )
    hill_result = restarted_hill_climbing(
        evaluator, n_snps=dataset.n_snps, size=TARGET_SIZE,
        n_evaluations=budget, max_neighbours=60, seed=11,
        backend=args.backend, backend_options=backend_options,
    )
    with SimpleGA(
        evaluator, n_snps=dataset.n_snps, size=TARGET_SIZE,
        population_size=60, elitism=2,
        backend=args.backend, backend_options=backend_options,
    ) as simple:
        simple_result = simple.run(n_generations=max(budget // 60, 1),
                                   stagnation=10, seed=11)

    print(f"evaluation budget (set by the adaptive GA's run): {budget} evaluations\n")
    print(f"{'method':<28} {'best size-'+str(TARGET_SIZE)+' haplotype':<24} {'fitness':>9}")
    rows = [
        ("adaptive multi-population GA",
         ga_result.best_per_size[TARGET_SIZE].snps,
         ga_result.best_per_size[TARGET_SIZE].fitness_value()),
        ("random search",
         random_result.best_per_size.get(TARGET_SIZE, ((), float("nan")))[0],
         random_result.best_per_size.get(TARGET_SIZE, ((), float("nan")))[1]),
        ("restarted hill climbing", hill_result.best_snps, hill_result.best_fitness),
        ("single-population GA", simple_result.best_snps, simple_result.best_fitness),
    ]
    for name, snps, fitness in rows:
        print(f"{name:<28} {' '.join(map(str, snps)):<24} {fitness:>9.2f}")

    print(f"\nplanted ground-truth haplotype: {study.causal_snps}")


if __name__ == "__main__":
    main()
