#!/usr/bin/env python
"""Diff two ``BENCH_*.json`` trajectory files and fail on regressions.

Compares two benchmark reports of the same schema (e.g. two runs of
``benchmarks/bench_em_kernel.py``) and exits non-zero on regressions beyond
the threshold (default 10%):

* every numeric leaf whose key ends in ``_seconds`` — lower is better, a
  slowdown beyond the threshold fails;
* every numeric leaf whose key contains ``_gain`` (the benchmarks' headline
  speedup ratios, e.g. ``steal_vs_affinity_gain_at_4_workers``) — higher is
  better, a drop beyond the threshold fails.

Usage::

    python scripts/bench_compare.py BENCH_baseline.json BENCH_candidate.json
    python scripts/bench_compare.py --threshold 0.25 old.json new.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Iterator


def _metric_leaves(node, path: str = "") -> Iterator[tuple[str, float, bool]]:
    """Yield ``(dotted.path, value, higher_is_better)`` for every gated leaf."""
    if isinstance(node, dict):
        for key, value in sorted(node.items()):
            child = f"{path}.{key}" if path else str(key)
            if isinstance(value, (int, float)) and str(key).endswith("_seconds"):
                yield child, float(value), False
            elif isinstance(value, (int, float)) and "_gain" in str(key):
                yield child, float(value), True
            else:
                yield from _metric_leaves(value, child)
    elif isinstance(node, list):
        for index, value in enumerate(node):
            yield from _metric_leaves(value, f"{path}[{index}]")


def compare(
    baseline: dict, candidate: dict, *, threshold: float, gains_only: bool = False
) -> tuple[list[str], list[str]]:
    """Return (report lines, regression lines).

    ``gains_only`` restricts the gate to the ``*_gain*`` leaves — the mode
    for comparing trajectories recorded on *different hosts*, where absolute
    ``*_seconds`` differ by machine while the gain ratios are comparable.
    """
    base = {
        path: (value, higher)
        for path, value, higher in _metric_leaves(baseline)
        if higher or not gains_only
    }
    cand = {
        path: (value, higher)
        for path, value, higher in _metric_leaves(candidate)
        if higher or not gains_only
    }
    lines: list[str] = []
    regressions: list[str] = []
    for path in sorted(base):
        if path not in cand:
            # a gated metric that vanished is a regression, not a footnote:
            # the gain gate must not silently pass because a key was renamed
            lines.append(f"  {path}: missing from candidate  <-- REGRESSION")
            regressions.append(f"{path}: missing from candidate")
            continue
        (old, higher), (new, _) = base[path], cand[path]
        if old <= 0:
            continue
        ratio = new / old
        if higher:
            regressed = ratio < 1.0 - threshold
            display = f"  {path}: {old:8.2f} x  -> {new:8.2f} x  ({ratio:5.2f}x)"
            detail = f"{path}: {old:.2f}x -> {new:.2f}x ({ratio:.2f}x)"
        else:
            regressed = ratio > 1.0 + threshold
            display = f"  {path}: {old*1e3:8.3f} ms -> {new*1e3:8.3f} ms ({ratio:5.2f}x)"
            detail = f"{path}: {old*1e3:.3f} ms -> {new*1e3:.3f} ms ({ratio:.2f}x)"
        if regressed:
            regressions.append(detail)
            display += "  <-- REGRESSION"
        lines.append(display)
    only_candidate = sorted(set(cand) - set(base))
    for path in only_candidate:
        value, higher = cand[path]
        unit = f"{value:.2f}x" if higher else f"{value*1e3:.3f} ms"
        lines.append(f"  {path}: new metric ({unit})")
    return lines, regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("candidate", help="candidate BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="allowed slowdown fraction before failing (default 0.10)")
    parser.add_argument("--gains-only", action="store_true",
                        help="gate only the *_gain* leaves (for cross-host "
                             "comparisons, where absolute timings differ by "
                             "machine)")
    args = parser.parse_args(argv)

    with open(args.baseline) as handle:
        baseline = json.load(handle)
    with open(args.candidate) as handle:
        candidate = json.load(handle)

    lines, regressions = compare(
        baseline, candidate, threshold=args.threshold, gains_only=args.gains_only
    )
    print(f"comparing {args.baseline} (baseline) vs {args.candidate} (candidate)")
    for line in lines:
        print(line)
    if regressions:
        print(f"\nFAIL: {len(regressions)} timing(s) regressed more than "
              f"{args.threshold:.0%}:")
        for regression in regressions:
            print(f"  {regression}")
        return 1
    print(f"\nOK: no timing regressed more than {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
