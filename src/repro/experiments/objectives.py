"""Comparison of candidate objective functions (paper conclusion).

The paper's conclusion announces the next step of the collaboration:
"different objective functions are going to be used in order to compare them
and to validate their biological interest".  This harness performs that
comparison on the reproduction's data: it scores a common set of candidate
haplotypes under every available objective (the CLUMP statistics T1, T2, T4
and the case/control haplotype-frequency likelihood-ratio test) and reports

* the Spearman rank correlation between every pair of objectives (do they
  order candidate haplotypes the same way?), and
* the top haplotypes under each objective together with how often the planted
  causal SNPs appear in them (do the objectives agree on the biology?).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

import numpy as np
from scipy import stats as scipy_stats

from ..genetics.simulate import SimulatedStudy
from ..stats.evaluation import HaplotypeEvaluator
from .datasets import DEFAULT_SEED, lille51
from .reporting import format_table

__all__ = ["ObjectiveComparisonResult", "run_objective_comparison", "DEFAULT_OBJECTIVES"]

#: Objectives compared by default.  T3 is omitted because it is T4 restricted
#: to single-column clumps and adds no ranking information on these tables.
DEFAULT_OBJECTIVES: tuple[str, ...] = ("t1", "t2", "t4", "lrt")


@dataclass(frozen=True)
class ObjectiveComparisonResult:
    """Outcome of the objective-function comparison.

    Attributes
    ----------
    objectives:
        The compared objective names.
    haplotypes:
        The evaluated candidate haplotypes (shared by all objectives).
    scores:
        ``{objective: array of scores aligned with haplotypes}``.
    rank_correlations:
        ``{(objective_a, objective_b): Spearman rho}`` for every pair.
    top_haplotypes:
        ``{objective: list of the top-k haplotypes under that objective}``.
    causal_hit_rate:
        ``{objective: fraction of the top-k haplotypes containing at least one
        planted causal SNP}`` (only meaningful on simulated studies).
    """

    objectives: tuple[str, ...]
    haplotypes: tuple[tuple[int, ...], ...]
    scores: dict[str, np.ndarray]
    rank_correlations: dict[tuple[str, str], float]
    top_haplotypes: dict[str, tuple[tuple[int, ...], ...]]
    causal_hit_rate: dict[str, float]

    def correlation(self, objective_a: str, objective_b: str) -> float:
        key = (objective_a, objective_b)
        if key in self.rank_correlations:
            return self.rank_correlations[key]
        return self.rank_correlations[(objective_b, objective_a)]

    def format(self) -> str:
        headers = ["objective pair", "Spearman rho"]
        rows = [[f"{a} vs {b}", rho] for (a, b), rho in sorted(self.rank_correlations.items())]
        parts = [format_table(headers, rows, title="Rank agreement between objectives")]
        hit_headers = ["objective", "top-k haplotypes containing a causal SNP"]
        hit_rows = [[name, rate] for name, rate in self.causal_hit_rate.items()]
        parts.append(format_table(hit_headers, hit_rows, title="Causal-SNP hit rate"))
        return "\n\n".join(parts)


def _sample_haplotypes(
    n_snps: int,
    sizes: Sequence[int],
    n_per_size: int,
    causal: Sequence[int],
    rng: np.random.Generator,
) -> list[tuple[int, ...]]:
    """Candidate haplotypes: random ones plus causal-enriched ones per size."""
    haplotypes: set[tuple[int, ...]] = set()
    causal = [s for s in causal if s < n_snps]
    for size in sizes:
        while len([h for h in haplotypes if len(h) == size]) < n_per_size:
            snps = tuple(sorted(rng.choice(n_snps, size=size, replace=False).tolist()))
            haplotypes.add(snps)
        # add causal-containing candidates so the hit-rate metric has signal to find
        for _ in range(max(n_per_size // 4, 1)):
            anchor = int(rng.choice(causal)) if causal else int(rng.integers(n_snps))
            rest = [s for s in range(n_snps) if s != anchor]
            extra = rng.choice(rest, size=size - 1, replace=False).tolist()
            haplotypes.add(tuple(sorted([anchor, *extra])))
    return sorted(haplotypes)


def run_objective_comparison(
    *,
    study: SimulatedStudy | None = None,
    objectives: Sequence[str] = DEFAULT_OBJECTIVES,
    sizes: Sequence[int] = (2, 3, 4),
    n_per_size: int = 40,
    top_k: int = 10,
    seed: int = DEFAULT_SEED,
    backend: str = "serial",
    n_workers: int | None = None,
) -> ObjectiveComparisonResult:
    """Score a common candidate set under several objectives and compare them.

    With the default ``serial`` backend the T1–T4 family shares a single
    EH-DIALL pipeline run per haplotype; any other backend scores each
    objective through the execution-backend registry (one evaluator spec per
    statistic, batched over all candidates) — the values are identical, the
    dispatch substrate is not.
    """
    if not objectives:
        raise ValueError("at least one objective is required")
    if n_per_size < 2 or top_k < 1:
        raise ValueError("n_per_size must be >= 2 and top_k >= 1")
    study = study or lille51(seed)
    dataset = study.dataset
    rng = np.random.default_rng(seed)
    haplotypes = _sample_haplotypes(dataset.n_snps, sizes, n_per_size,
                                    study.causal_snps, rng)

    if backend == "serial":
        # one evaluator per objective; the T1-T4 family shares a single pipeline run
        base = HaplotypeEvaluator(dataset, statistic="t1")
        scores: dict[str, list[float]] = {name: [] for name in objectives}
        for snps in haplotypes:
            record = base.evaluate_detailed(snps)
            for name in objectives:
                if name == "lrt":
                    scores[name].append(base.case_control_lrt(snps))
                else:
                    scores[name].append(record.clump.statistic(name))
        score_arrays = {name: np.asarray(values) for name, values in scores.items()}
    else:
        from ..runtime.backends import create_evaluator
        from ..runtime.spec import EvaluatorSpec

        score_arrays = {}
        for name in objectives:
            evaluator = create_evaluator(
                backend,
                EvaluatorSpec(statistic=name),
                dataset=dataset,
                n_workers=n_workers,
            )
            try:
                score_arrays[name] = np.asarray(evaluator.evaluate_batch(haplotypes))
            finally:
                evaluator.close()

    correlations: dict[tuple[str, str], float] = {}
    for a, b in combinations(objectives, 2):
        rho = scipy_stats.spearmanr(score_arrays[a], score_arrays[b]).statistic
        correlations[(a, b)] = float(rho)

    top_haplotypes: dict[str, tuple[tuple[int, ...], ...]] = {}
    causal_hit_rate: dict[str, float] = {}
    causal = set(study.causal_snps)
    for name in objectives:
        order = np.argsort(score_arrays[name])[::-1][:top_k]
        top = tuple(haplotypes[i] for i in order)
        top_haplotypes[name] = top
        causal_hit_rate[name] = float(
            np.mean([bool(set(h) & causal) for h in top]) if top else 0.0
        )

    return ObjectiveComparisonResult(
        objectives=tuple(objectives),
        haplotypes=tuple(haplotypes),
        scores=score_arrays,
        rank_correlations=correlations,
        top_haplotypes=top_haplotypes,
        causal_hit_rate=causal_hit_rate,
    )
