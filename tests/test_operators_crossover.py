"""Tests of the uniform intra- and inter-population crossovers (Section 4.3.2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.individual import HaplotypeIndividual
from repro.core.operators.base import repair_to_size
from repro.core.operators.crossover import InterPopulationCrossover, IntraPopulationCrossover
from repro.genetics.constraints import HaplotypeConstraints

N_SNPS = 14


@pytest.fixture()
def constraints():
    return HaplotypeConstraints.unconstrained(N_SNPS)


class TestRepairToSize:
    def test_fills_from_pool_first(self, constraints, rng):
        repaired = repair_to_size([0, 1], 4, pool=[0, 1, 2, 3], constraints=constraints, rng=rng)
        assert repaired is not None
        assert len(repaired) == 4
        assert set(repaired) <= {0, 1, 2, 3}

    def test_falls_back_to_panel_when_pool_exhausted(self, constraints, rng):
        repaired = repair_to_size([0], 3, pool=[0], constraints=constraints, rng=rng)
        assert repaired is not None
        assert len(repaired) == 3

    def test_truncates_oversized_input(self, constraints, rng):
        repaired = repair_to_size([0, 1, 2, 3, 4], 3, pool=[], constraints=constraints, rng=rng)
        assert repaired is not None
        assert len(repaired) == 3
        assert set(repaired) <= {0, 1, 2, 3, 4}

    def test_returns_none_when_infeasible(self, rng):
        constraints = HaplotypeConstraints.unconstrained(2)
        assert repair_to_size([0, 1], 3, pool=[], constraints=constraints, rng=rng) is None


class TestIntraPopulationCrossover:
    def test_children_have_parent_size_and_parent_material(self, constraints, rng):
        operator = IntraPopulationCrossover()
        parent_a = HaplotypeIndividual((0, 2, 4), 1.0)
        parent_b = HaplotypeIndividual((1, 3, 5), 2.0)
        children = operator.recombine(parent_a, parent_b, constraints, rng)
        assert 1 <= len(children) <= 2
        pool = set(parent_a.snps) | set(parent_b.snps)
        for child in children:
            assert len(child) == 3
            assert child == tuple(sorted(set(child)))
            assert set(child) <= pool
            assert child not in (parent_a.snps, parent_b.snps)

    def test_not_applicable_to_identical_or_mixed_size_parents(self, constraints, rng):
        operator = IntraPopulationCrossover()
        same = HaplotypeIndividual((0, 1), 1.0)
        assert not operator.is_applicable(same, HaplotypeIndividual((0, 1), 2.0))
        assert not operator.is_applicable(same, HaplotypeIndividual((0, 1, 2), 2.0))
        assert operator.recombine(same, HaplotypeIndividual((1, 0), 2.0),
                                  constraints, rng) == []

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=2, max_value=6))
    def test_children_always_valid_sets(self, seed, size):
        rng = np.random.default_rng(seed)
        constraints = HaplotypeConstraints.unconstrained(N_SNPS)
        snps_a = tuple(sorted(rng.choice(N_SNPS, size=size, replace=False).tolist()))
        snps_b = tuple(sorted(rng.choice(N_SNPS, size=size, replace=False).tolist()))
        if snps_a == snps_b:
            return
        children = IntraPopulationCrossover().recombine(
            HaplotypeIndividual(snps_a, 1.0), HaplotypeIndividual(snps_b, 1.0),
            constraints, rng,
        )
        for child in children:
            assert len(child) == size
            assert len(set(child)) == size


class TestInterPopulationCrossover:
    def test_one_child_per_parent_size(self, constraints, rng):
        operator = InterPopulationCrossover()
        parent_a = HaplotypeIndividual((0, 2), 1.0)
        parent_b = HaplotypeIndividual((1, 3, 5, 7), 2.0)
        children = operator.recombine(parent_a, parent_b, constraints, rng)
        sizes = sorted(len(c) for c in children)
        assert sizes in ([2], [4], [2, 4])  # parents' sizes (a child identical to its
        # recipient parent is discarded, so one of them may be missing)
        for child in children:
            assert len(set(child)) == len(child)

    def test_not_applicable_to_same_size(self, constraints, rng):
        operator = InterPopulationCrossover()
        a = HaplotypeIndividual((0, 1), 1.0)
        b = HaplotypeIndividual((2, 3), 1.0)
        assert not operator.is_applicable(a, b)
        assert operator.recombine(a, b, constraints, rng) == []

    def test_children_mix_material_from_both_parents(self, constraints):
        operator = InterPopulationCrossover()
        parent_a = HaplotypeIndividual((0, 1, 2), 1.0)
        parent_b = HaplotypeIndividual((10, 11, 12, 13), 2.0)
        saw_donor_material = False
        for seed in range(20):
            rng = np.random.default_rng(seed)
            for child in operator.recombine(parent_a, parent_b, constraints, rng):
                if len(child) == 3 and set(child) & set(parent_b.snps):
                    saw_donor_material = True
        assert saw_donor_material
