"""Section 3 — study of the structure of the problem (landscape analysis).

The paper enumerates every haplotype of sizes 2-4 on the 51-SNP dataset and
draws two conclusions that shape the algorithm:

1. very good haplotypes of size ``k`` are *not* always composed of good
   haplotypes of size ``k-1`` (constructive methods would miss them), and
2. the fitness scale grows with the haplotype size, so haplotypes of different
   sizes cannot be ranked together (classical enumeration would just drift to
   the largest size).

Exhaustively enumerating size-4 haplotypes over the full 51-SNP panel costs
about 250 000 EH-DIALL + CLUMP evaluations; to keep the study affordable it
runs, by default, on a reduced panel that always contains the planted causal
SNPs (the interesting structure) plus padding SNPs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..genetics.simulate import SimulatedStudy
from ..search.exhaustive import ScoredHaplotype
from ..search.landscape import (
    BuildingBlockReport,
    SizeFitnessSummary,
    building_block_analysis,
    fitness_scale_by_size,
    greedy_constructive_search,
)
from ..stats.cache import CachedEvaluator
from ..stats.evaluation import HaplotypeEvaluator
from .datasets import DEFAULT_SEED, lille51, reduced_snp_panel
from .reporting import format_table

__all__ = ["LandscapeStudyResult", "run_landscape_study"]


@dataclass(frozen=True)
class LandscapeStudyResult:
    """Outcome of the Section-3 landscape study.

    Attributes
    ----------
    panel:
        The SNP indices the study enumerated over.
    scale_by_size:
        Fitness-distribution summary per haplotype size (finding 2).
    building_blocks:
        Building-block containment report per size (finding 1).
    greedy_results:
        Result of the greedy constructive method per target size.
    exhaustive_best:
        Exhaustive optimum per size (what greedy is compared against).
    n_evaluations:
        Number of distinct haplotype evaluations the study needed.
    """

    panel: tuple[int, ...]
    scale_by_size: dict[int, SizeFitnessSummary]
    building_blocks: dict[int, BuildingBlockReport]
    greedy_results: dict[int, ScoredHaplotype]
    exhaustive_best: dict[int, ScoredHaplotype]
    n_evaluations: int

    def greedy_gap(self, size: int) -> float:
        """Fitness gap between the exhaustive optimum and the greedy construction."""
        return self.exhaustive_best[size].fitness - self.greedy_results[size].fitness

    def format(self) -> str:
        scale_headers = ["Size", "# haplotypes", "min", "mean", "max", "std"]
        scale_rows = [
            [s.size, s.n_haplotypes, s.min_fitness, s.mean_fitness, s.max_fitness, s.std_fitness]
            for s in self.scale_by_size.values()
        ]
        parts = [
            format_table(scale_headers, scale_rows,
                         title="Fitness scale by haplotype size (reduced panel)"),
        ]
        bb_headers = ["Size", "top-k", "fraction containing a top size-(k-1)"]
        bb_rows = [
            [r.size, r.top_k, r.containment_fraction] for r in self.building_blocks.values()
        ]
        parts.append(format_table(bb_headers, bb_rows, title="Building-block containment"))
        greedy_headers = ["Size", "greedy fitness", "exhaustive best", "gap"]
        greedy_rows = [
            [size, self.greedy_results[size].fitness, self.exhaustive_best[size].fitness,
             self.greedy_gap(size)]
            for size in sorted(self.greedy_results)
        ]
        parts.append(format_table(greedy_headers, greedy_rows,
                                  title="Greedy constructive method vs exhaustive optimum"))
        parts.append(f"distinct evaluations used: {self.n_evaluations}")
        return "\n\n".join(parts)


def run_landscape_study(
    *,
    study: SimulatedStudy | None = None,
    panel: Sequence[int] | None = None,
    panel_size: int = 16,
    sizes: Sequence[int] = (2, 3, 4),
    top_k: int = 10,
    seed: int = DEFAULT_SEED,
) -> LandscapeStudyResult:
    """Run the landscape study on a (reduced) SNP panel.

    Parameters
    ----------
    study:
        Dataset (default: the canonical lille-like study).
    panel:
        Explicit SNP indices to study; default: :func:`reduced_snp_panel`
        of ``panel_size`` SNPs around the planted haplotype.
    sizes:
        Haplotype sizes to enumerate (the paper used 2-4).
    top_k:
        Number of top haplotypes per size used in the building-block analysis.
    """
    study = study or lille51(seed)
    if panel is None:
        panel = reduced_snp_panel(seed, n_snps=panel_size)
    panel = tuple(sorted({int(s) for s in panel}))
    sizes = tuple(sorted(int(s) for s in sizes))
    if min(sizes) < 1:
        raise ValueError("sizes must be positive")
    evaluator = CachedEvaluator(HaplotypeEvaluator(study.dataset))
    n_snps = study.dataset.n_snps

    scale = fitness_scale_by_size(evaluator, n_snps, sizes, snp_subset=panel)
    building_blocks = {
        size: building_block_analysis(
            evaluator, n_snps, size, top_k=top_k, snp_subset=panel
        )
        for size in sizes
        if size >= 2
    }
    greedy_results: dict[int, ScoredHaplotype] = {}
    exhaustive_best: dict[int, ScoredHaplotype] = {}
    for size in sizes:
        if size < 2:
            continue
        greedy_results[size] = greedy_constructive_search(
            evaluator, n_snps, size, snp_subset=panel, seed_size=min(2, size)
        )
        # the exhaustive optimum per size is already known from the scale sweep,
        # but recompute through the cache for clarity (cache hits, no extra cost)
        best: ScoredHaplotype | None = None
        from ..search.exhaustive import enumerate_haplotypes

        for combo in enumerate_haplotypes(n_snps, size, snp_subset=panel):
            scored = ScoredHaplotype(snps=combo, fitness=float(evaluator(combo)))
            if best is None or scored.fitness > best.fitness:
                best = scored
        assert best is not None
        exhaustive_best[size] = best

    return LandscapeStudyResult(
        panel=panel,
        scale_by_size=scale,
        building_blocks=building_blocks,
        greedy_results=greedy_results,
        exhaustive_best=exhaustive_best,
        n_evaluations=evaluator.n_distinct_evaluations,
    )
