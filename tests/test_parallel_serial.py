"""Tests of the serial batch evaluator and the shared evaluator bookkeeping."""

import pytest

from repro.parallel.base import BatchEvaluator, EvaluationStats
from repro.parallel.serial import SerialEvaluator


def _sum_fitness(snps):
    return float(sum(snps))


class TestEvaluationStats:
    def test_record_batch_accumulates(self):
        stats = EvaluationStats()
        stats.record_batch(5, 0.5)
        stats.record_batch(3, 0.1)
        assert stats.n_evaluations == 8
        assert stats.n_batches == 2
        assert stats.total_seconds == pytest.approx(0.6)
        assert stats.mean_seconds_per_evaluation == pytest.approx(0.6 / 8)

    def test_empty_stats(self):
        assert EvaluationStats().mean_seconds_per_evaluation == 0.0


class TestSerialEvaluator:
    def test_batch_order_preserved(self):
        evaluator = SerialEvaluator(_sum_fitness)
        batch = [(1, 2), (10,), (3, 4, 5)]
        assert evaluator.evaluate_batch(batch) == [3.0, 10.0, 12.0]

    def test_single_evaluation(self):
        evaluator = SerialEvaluator(_sum_fitness)
        assert evaluator.evaluate((2, 5)) == 7.0

    def test_stats_tracking(self):
        evaluator = SerialEvaluator(_sum_fitness)
        evaluator.evaluate_batch([(1,), (2,)])
        evaluator.evaluate_batch([(3,)])
        assert evaluator.stats.n_evaluations == 3
        assert evaluator.stats.n_batches == 2

    def test_satisfies_protocol(self):
        assert isinstance(SerialEvaluator(_sum_fitness), BatchEvaluator)

    def test_context_manager(self):
        with SerialEvaluator(_sum_fitness) as evaluator:
            assert evaluator.evaluate((1,)) == 1.0

    def test_empty_batch(self):
        evaluator = SerialEvaluator(_sum_fitness)
        assert evaluator.evaluate_batch([]) == []

    def test_matches_real_evaluator(self, small_evaluator):
        serial = SerialEvaluator(small_evaluator)
        batch = [(0, 1), (2, 5, 9), (3, 4)]
        results = serial.evaluate_batch(batch)
        expected = [small_evaluator.evaluate(snps) for snps in batch]
        assert results == pytest.approx(expected)
