"""Tests of the island-model extension."""

import pytest

from repro.core.config import GAConfig
from repro.parallel.island import IslandModelGA


def _config():
    return GAConfig(
        population_size=20,
        min_haplotype_size=2,
        max_haplotype_size=3,
        termination_stagnation=4,
        max_generations=4,
        seed=3,
    )


class TestIslandModel:
    def test_validation(self, small_evaluator):
        with pytest.raises(ValueError):
            IslandModelGA(small_evaluator, n_snps=14, n_islands=1)
        with pytest.raises(ValueError):
            IslandModelGA(small_evaluator, n_snps=14, migration_interval=0)
        with pytest.raises(ValueError):
            IslandModelGA(small_evaluator, n_snps=14, n_epochs=0)

    def test_run_aggregates_islands(self, small_evaluator):
        island_ga = IslandModelGA(
            small_evaluator,
            n_snps=14,
            config=_config(),
            n_islands=2,
            migration_interval=2,
            n_epochs=2,
        )
        result = island_ga.run()
        assert result.n_islands == 2
        assert result.n_migrations == 2
        assert set(result.best_per_size) == {2, 3}
        assert result.n_evaluations > 0
        assert result.elapsed_seconds > 0.0
        # the batch fast path makes the distinct-evaluation count observable
        # (and no larger than the number of fitness requests)
        assert 0 < result.n_distinct_evaluations <= result.n_evaluations
        assert 0.0 <= result.evaluation_reuse_rate < 1.0
        # the aggregated best is at least as good as every island's own best
        for island_result in result.island_results:
            for size, individual in island_result.best_per_size.items():
                assert (
                    result.best_per_size[size].fitness_value()
                    >= individual.fitness_value() - 1e-9
                )

    def test_islands_use_different_seeds(self, small_evaluator):
        island_ga = IslandModelGA(
            small_evaluator, n_snps=14, config=_config(),
            n_islands=2, migration_interval=2, n_epochs=1,
        )
        result = island_ga.run()
        first, second = result.island_results
        assert first.config.seed != second.config.seed
