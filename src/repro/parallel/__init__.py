"""Parallel evaluation substrate: serial, multiprocessing and simulated-PVM backends.

The paper parallelises the GA's expensive evaluation phase with a synchronous
master/slave organisation on a PVM cluster.  This package provides the same
organisation on top of :mod:`multiprocessing`
(:class:`MasterSlaveEvaluator`), an in-process reference backend
(:class:`SerialEvaluator`) and a deterministic cluster model
(:class:`SimulatedPVM`) used for reproducible speedup studies, together with
timing helpers.  The island-model extension lives in
:mod:`repro.parallel.island` and is re-exported lazily to avoid a circular
import with the GA core.
"""

from .base import (
    BatchEvaluator,
    DistinctEvaluation,
    EvaluationStats,
    FitnessCallable,
    SnpSet,
)
from .farm import (
    ChunkedWorkerFarm,
    ChunkStats,
    FarmDeadError,
    FarmRecoveryPolicy,
    affinity_worker,
)
from .master_slave import MasterSlaveEvaluator, default_worker_count
from .pvm import EvaluationCostModel, SimulatedPVM, SimulatedSchedule, SlaveTimeline
from .serial import SerialEvaluator
from .threads import ThreadPoolEvaluator
from .timing import SpeedupPoint, SpeedupReport, Timer, time_callable

__all__ = [
    "SnpSet",
    "FitnessCallable",
    "BatchEvaluator",
    "EvaluationStats",
    "DistinctEvaluation",
    "SerialEvaluator",
    "ThreadPoolEvaluator",
    "MasterSlaveEvaluator",
    "ChunkedWorkerFarm",
    "ChunkStats",
    "FarmDeadError",
    "FarmRecoveryPolicy",
    "affinity_worker",
    "default_worker_count",
    "EvaluationCostModel",
    "SimulatedPVM",
    "SimulatedSchedule",
    "SlaveTimeline",
    "SpeedupPoint",
    "SpeedupReport",
    "Timer",
    "time_callable",
    "IslandModelGA",
    "IslandResult",
]


def __getattr__(name: str):
    # Lazy re-export: island.py imports the GA core, which in turn uses this
    # package's evaluators; importing it eagerly here would create a cycle.
    if name in ("IslandModelGA", "IslandResult"):
        from . import island

        return getattr(island, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
