"""Tests of the haplotype-validity constraints (paper Section 2.3)."""

import numpy as np
import pytest

from repro.genetics.constraints import HaplotypeConstraints, build_constraints
from repro.genetics.frequencies import SnpFrequencyTable
from repro.genetics.ld import PairwiseLDTable


def _constraints(ld_values, minor_freqs, **kwargs):
    n = len(minor_freqs)
    names = tuple(f"snp{i}" for i in range(n))
    ld = PairwiseLDTable(snp_names=names, values=np.asarray(ld_values, dtype=float))
    freq = SnpFrequencyTable(
        snp_names=names,
        freq_allele1=1.0 - np.asarray(minor_freqs, dtype=float),
        freq_allele2=np.asarray(minor_freqs, dtype=float),
    )
    return HaplotypeConstraints(ld_table=ld, frequency_table=freq, **kwargs)


class TestUnconstrained:
    def test_accepts_any_duplicate_free_set(self):
        constraints = HaplotypeConstraints.unconstrained(10)
        assert constraints.is_valid((0, 3, 7))
        assert constraints.pair_is_valid(1, 2)

    def test_rejects_duplicates_and_self_pairs(self):
        constraints = HaplotypeConstraints.unconstrained(10)
        assert not constraints.is_valid((1, 1, 2))
        assert not constraints.pair_is_valid(3, 3)

    def test_compatible_snps_excludes_current(self):
        constraints = HaplotypeConstraints.unconstrained(5)
        compatible = constraints.compatible_snps((0, 2))
        assert set(compatible.tolist()) == {1, 3, 4}


class TestLDThreshold:
    def test_high_ld_pair_rejected(self):
        ld = [[1.0, 0.9, 0.1], [0.9, 1.0, 0.2], [0.1, 0.2, 1.0]]
        constraints = _constraints(ld, [0.3, 0.3, 0.3], max_pairwise_ld=0.8)
        assert not constraints.pair_is_valid(0, 1)
        assert constraints.pair_is_valid(0, 2)
        assert not constraints.is_valid((0, 1, 2))
        assert constraints.is_valid((0, 2))

    def test_threshold_of_one_disables_ld_check(self):
        ld = [[1.0, 0.99], [0.99, 1.0]]
        constraints = _constraints(ld, [0.3, 0.3], max_pairwise_ld=1.0)
        assert constraints.pair_is_valid(0, 1)


class TestFrequencyDifferenceThreshold:
    def test_similar_minor_frequencies_rejected(self):
        ld = np.eye(3)
        constraints = _constraints(
            ld, [0.30, 0.31, 0.45], min_minor_frequency_difference=0.05
        )
        assert not constraints.pair_is_valid(0, 1)
        assert constraints.pair_is_valid(0, 2)

    def test_zero_threshold_disables_check(self):
        constraints = _constraints(np.eye(2), [0.3, 0.3])
        assert constraints.pair_is_valid(0, 1)


class TestValidation:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            _constraints(np.eye(2), [0.3, 0.4], max_pairwise_ld=1.5)
        with pytest.raises(ValueError):
            _constraints(np.eye(2), [0.3, 0.4], min_minor_frequency_difference=0.7)

    def test_mismatched_tables_rejected(self):
        names = ("a", "b")
        ld = PairwiseLDTable(snp_names=names, values=np.eye(2))
        freq = SnpFrequencyTable(
            snp_names=("a", "b", "c"),
            freq_allele1=np.array([0.5, 0.5, 0.5]),
            freq_allele2=np.array([0.5, 0.5, 0.5]),
        )
        with pytest.raises(ValueError):
            HaplotypeConstraints(ld_table=ld, frequency_table=freq)

    def test_compatible_snps_respects_constraints(self):
        ld = [[1.0, 0.95, 0.0], [0.95, 1.0, 0.0], [0.0, 0.0, 1.0]]
        constraints = _constraints(ld, [0.2, 0.4, 0.3], max_pairwise_ld=0.8)
        compatible = constraints.compatible_snps([0])
        assert 1 not in compatible.tolist()
        assert 2 in compatible.tolist()


class TestBuildConstraints:
    def test_build_from_dataset(self, small_dataset):
        constraints = build_constraints(small_dataset, max_pairwise_ld=0.95)
        assert constraints.n_snps == small_dataset.n_snps
        # a SNP can never pair with itself
        assert not constraints.pair_is_valid(0, 0)
        # thresholds are carried through
        assert constraints.max_pairwise_ld == pytest.approx(0.95)
