"""Adaptive operator-rate control (Hong, Wang & Chen 2000; paper Section 4.3).

Setting the probability of each of several mutation (or crossover) operators
by hand is difficult, so the paper adapts them online.  For every operator
``op_i`` applied ``N_i`` times during a generation, the *profit* is the mean
normalised fitness progress of its applications::

    profit_i = (sum_j progress_ij) / N_i

The new rate of each operator is then its share of the total profit, scaled
to the global rate and floored at δ::

    rate_i = profit_i / sum_k profit_k * (global_rate - m * δ) + δ

so that every operator keeps at least rate δ (and therefore keeps being
sampled, which lets it recover if it becomes useful later) and all rates sum
to the global rate.  When no operator made any progress during a generation —
common late in the run — the rates are left unchanged.

*Progress* is measured on fitnesses normalised within the child's
sub-population (best ↦ 1, worst ↦ 0), because raw fitness values of
different haplotype sizes live on different scales (Section 4.3.1); the
engine computes the normalisation and hands this controller plain progress
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from .operators.base import OperatorApplication

__all__ = ["AdaptiveOperatorController", "OperatorRateSnapshot"]


@dataclass(frozen=True)
class OperatorRateSnapshot:
    """The operator rates and profits at the end of one generation."""

    generation: int
    rates: dict[str, float]
    profits: dict[str, float]
    n_applications: dict[str, int]


class AdaptiveOperatorController:
    """Adapt the rates of a family of operators from their measured progress.

    Parameters
    ----------
    operator_names:
        Names of the operators sharing the global rate (e.g. the three
        mutations, or the two crossovers).
    global_rate:
        The fixed total rate the operator rates always sum to.
    min_rate:
        The floor δ each operator keeps.
    adaptive:
        When ``False`` the controller keeps the uniform initial rates forever
        (used by the Section 5.2 ablation schemes).
    """

    def __init__(
        self,
        operator_names: Sequence[str],
        *,
        global_rate: float,
        min_rate: float = 0.05,
        adaptive: bool = True,
    ) -> None:
        names = list(dict.fromkeys(operator_names))
        if not names:
            raise ValueError("at least one operator is required")
        if len(names) != len(list(operator_names)):
            raise ValueError("operator names must be unique")
        if not 0.0 < global_rate <= 1.0:
            raise ValueError("global_rate must be in (0, 1]")
        if min_rate < 0:
            raise ValueError("min_rate must be non-negative")
        if len(names) * min_rate >= global_rate:
            raise ValueError(
                f"min_rate={min_rate} leaves no adaptive share of global_rate={global_rate} "
                f"for {len(names)} operators"
            )
        self._names = names
        self.global_rate = float(global_rate)
        self.min_rate = float(min_rate)
        self.adaptive = bool(adaptive)
        # the paper initialises every operator at global_rate / m
        self._rates = {name: self.global_rate / len(names) for name in names}
        self._progress: dict[str, list[float]] = {name: [] for name in names}
        self._history: list[OperatorRateSnapshot] = []
        self._generation = 0

    # ------------------------------------------------------------------ #
    @property
    def operator_names(self) -> tuple[str, ...]:
        return tuple(self._names)

    @property
    def rates(self) -> dict[str, float]:
        """Current operator rates (they always sum to ``global_rate``)."""
        return dict(self._rates)

    @property
    def history(self) -> tuple[OperatorRateSnapshot, ...]:
        return tuple(self._history)

    def probability_of(self, name: str) -> float:
        """Sampling probability of an operator *within its family* (rates normalised to 1)."""
        if name not in self._rates:
            raise KeyError(f"unknown operator {name!r}")
        return self._rates[name] / self.global_rate

    def sample(self, rng: np.random.Generator, *, allowed: Iterable[str] | None = None) -> str:
        """Draw an operator name proportionally to the current rates.

        Parameters
        ----------
        rng:
            Random generator.
        allowed:
            Optional subset of operators that are applicable right now (e.g.
            the reduction mutation cannot act on a minimum-size haplotype);
            rates are re-normalised over this subset.
        """
        names = self._names if allowed is None else [n for n in self._names if n in set(allowed)]
        if not names:
            raise ValueError("no applicable operator to sample from")
        weights = np.asarray([self._rates[n] for n in names], dtype=np.float64)
        total = weights.sum()
        if total <= 0:  # pragma: no cover - rates are floored above zero
            weights = np.ones(len(names))
            total = float(len(names))
        return str(rng.choice(names, p=weights / total))

    # ------------------------------------------------------------------ #
    def record(self, application: OperatorApplication) -> None:
        """Record the progress of one operator application."""
        if application.operator not in self._progress:
            raise KeyError(f"unknown operator {application.operator!r}")
        self._progress[application.operator].append(max(float(application.progress), 0.0))

    def record_many(self, applications: Iterable[OperatorApplication]) -> None:
        for application in applications:
            self.record(application)

    def end_generation(self) -> OperatorRateSnapshot:
        """Recompute the rates from this generation's recorded progress."""
        self._generation += 1
        profits = {
            name: (float(np.mean(values)) if values else 0.0)
            for name, values in self._progress.items()
        }
        n_applications = {name: len(values) for name, values in self._progress.items()}
        if self.adaptive:
            total_profit = sum(profits.values())
            if total_profit > 0:
                adaptive_share = self.global_rate - len(self._names) * self.min_rate
                self._rates = {
                    name: profits[name] / total_profit * adaptive_share + self.min_rate
                    for name in self._names
                }
            # when nothing made progress, keep the previous rates unchanged
        snapshot = OperatorRateSnapshot(
            generation=self._generation,
            rates=self.rates,
            profits=profits,
            n_applications=n_applications,
        )
        self._history.append(snapshot)
        self._progress = {name: [] for name in self._names}
        return snapshot
