"""Common interfaces of the parallel evaluation substrate.

The paper parallelises only the *evaluation phase* of the GA: at every
generation the master holds a batch of new individuals whose fitnesses are
unknown, farms them out to slaves, and waits for every result before
continuing (a synchronous master/slave organisation, Figure 6).  All the GA
needs from the substrate is therefore a single operation — "evaluate this
batch of haplotypes and give me their fitnesses in order" — which is captured
by the :class:`BatchEvaluator` protocol below.  Three implementations are
provided:

* :class:`~repro.parallel.serial.SerialEvaluator` — evaluate in-process;
* :class:`~repro.parallel.master_slave.MasterSlaveEvaluator` — a real
  ``multiprocessing`` worker farm;
* :class:`~repro.parallel.pvm.SimulatedPVM` — a deterministic model of the
  paper's PVM cluster used for reproducible speedup studies.

Batch fast path
---------------
Every evaluator deriving from :class:`BaseBatchEvaluator` shares a
generation-level fast path in :meth:`~BaseBatchEvaluator.evaluate_batch`:
identical individuals within a batch are collapsed to one evaluation, a
master-side fitness cache answers haplotypes seen in earlier generations, and
only the distinct, unseen remainder is handed to the backend's
:meth:`~BaseBatchEvaluator._evaluate_distinct` (the serial loop, the
multiprocessing scatter, ...).  Results are returned in original batch order,
and :class:`EvaluationStats` separates the number of fitness *requests* from
the number of evaluations actually performed — the paper's cost metric.

A haplotype is a *set* of SNPs (every fitness function in this codebase sorts
its input), so the dedup key is the sorted SNP tuple.  Both layers can be
switched off (``dedup=False``, ``cache_size=0``) — the speedup experiments
do, because a cache would turn their repeated timing batches into no-ops.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass
from typing import Callable, Protocol, Sequence, runtime_checkable

from ..lru import LRUCache

__all__ = ["SnpSet", "FitnessCallable", "BatchEvaluator", "EvaluationStats"]

#: A candidate haplotype: a sequence of SNP indices.
SnpSet = Sequence[int]

#: Any callable mapping a SNP set to a scalar fitness.
FitnessCallable = Callable[[SnpSet], float]


def _key(snps: SnpSet) -> tuple[int, ...]:
    return tuple(sorted(int(s) for s in snps))


@dataclass
class EvaluationStats:
    """Running counters kept by every batch evaluator.

    Attributes
    ----------
    n_evaluations:
        Number of haplotype evaluations actually performed by the backend
        (distinct, unseen individuals).
    n_requests:
        Number of fitness requests submitted through ``evaluate_batch``;
        ``n_requests - n_evaluations`` is the work saved by the batch fast
        path.
    n_batches:
        Number of batches submitted.
    n_dedup_hits:
        Requests answered by collapsing duplicates within their batch.
    n_cache_hits:
        Requests answered by the cross-generation fitness cache.
    total_seconds:
        Wall-clock time spent inside ``evaluate_batch`` calls.
    """

    n_evaluations: int = 0
    n_requests: int = 0
    n_batches: int = 0
    n_dedup_hits: int = 0
    n_cache_hits: int = 0
    total_seconds: float = 0.0

    def record_batch(
        self,
        batch_size: int,
        elapsed: float,
        *,
        n_requests: int | None = None,
        n_dedup_hits: int = 0,
        n_cache_hits: int = 0,
    ) -> None:
        self.n_evaluations += batch_size
        self.n_requests += batch_size if n_requests is None else n_requests
        self.n_batches += 1
        self.n_dedup_hits += n_dedup_hits
        self.n_cache_hits += n_cache_hits
        self.total_seconds += elapsed

    @property
    def n_distinct_evaluations(self) -> int:
        """Alias for :attr:`n_evaluations` (evaluations actually performed)."""
        return self.n_evaluations

    @property
    def reuse_rate(self) -> float:
        """Fraction of requests answered without evaluating (dedup + cache)."""
        if self.n_requests == 0:
            return 0.0
        return 1.0 - self.n_evaluations / self.n_requests

    @property
    def mean_seconds_per_evaluation(self) -> float:
        """Amortised wall-clock per *performed* evaluation.

        ``total_seconds`` includes the full ``evaluate_batch`` time — cache
        lookups and batches served entirely from reuse included — so with a
        high reuse rate this reads higher than the backend's raw per-call
        cost; see :attr:`mean_seconds_per_request` for time per request.
        """
        return 0.0 if self.n_evaluations == 0 else self.total_seconds / self.n_evaluations

    @property
    def mean_seconds_per_request(self) -> float:
        """Wall-clock per fitness request (reuse hits included)."""
        return 0.0 if self.n_requests == 0 else self.total_seconds / self.n_requests


@runtime_checkable
class BatchEvaluator(Protocol):
    """Protocol implemented by every evaluation backend."""

    def evaluate_batch(self, batch: Sequence[SnpSet]) -> list[float]:
        """Evaluate a batch of haplotypes, returning fitnesses in batch order."""
        ...

    def evaluate(self, snps: SnpSet) -> float:
        """Evaluate a single haplotype."""
        ...

    @property
    def stats(self) -> EvaluationStats:
        """Running evaluation counters."""
        ...

    def close(self) -> None:
        """Release any resources (worker processes); idempotent."""
        ...


class BaseBatchEvaluator(abc.ABC):
    """Shared bookkeeping and batch fast path for concrete evaluators.

    Parameters
    ----------
    dedup:
        Collapse identical individuals within a batch to a single backend
        evaluation (results are fanned back out in order).
    cache_size:
        Bound on the master-side fitness cache consulted before scattering
        (LRU eviction).  Default 4096 entries (a few hundred KB of float
        values — bounded like every other cache layer in the codebase);
        ``None`` means unbounded, ``0`` disables the cache.
    """

    DEFAULT_CACHE_SIZE = 4096

    def __init__(self, *, dedup: bool = True, cache_size: int | None = DEFAULT_CACHE_SIZE) -> None:
        if cache_size is not None and cache_size < 0:
            raise ValueError("cache_size must be non-negative or None")
        self._stats = EvaluationStats()
        self._dedup = bool(dedup)
        self._fitness_cache = LRUCache(cache_size)

    @property
    def stats(self) -> EvaluationStats:
        return self._stats

    @abc.abstractmethod
    def _evaluate_distinct(self, batch: Sequence[SnpSet]) -> list[float]:
        """Evaluate a batch of distinct, unseen haplotypes (backend hook)."""

    def evaluate_batch(self, batch: Sequence[SnpSet]) -> list[float]:
        start = time.perf_counter()
        batch = list(batch)
        n_requests = len(batch)
        if n_requests == 0:
            return []

        cache = self._fitness_cache
        results: list[float | None] = [None] * n_requests
        pending: list[SnpSet] = []
        pending_keys: list[tuple[int, ...]] = []
        first_seen: dict[tuple[int, ...], int] = {}
        resolve: list[tuple[int, int]] = []  # (batch position, pending index)
        n_cache_hits = 0
        n_dedup_hits = 0
        for position, snps in enumerate(batch):
            key = _key(snps)
            hit = cache.get(key)
            if hit is not None:
                results[position] = hit
                n_cache_hits += 1
                continue
            if self._dedup and key in first_seen:
                resolve.append((position, first_seen[key]))
                n_dedup_hits += 1
                continue
            index = len(pending)
            first_seen.setdefault(key, index)
            pending.append(snps)
            pending_keys.append(key)
            resolve.append((position, index))

        values = self._evaluate_distinct(pending) if pending else []
        for key, value in zip(pending_keys, values):
            cache.put(key, float(value))
        for position, index in resolve:
            results[position] = float(values[index])

        self._stats.record_batch(
            len(pending),
            time.perf_counter() - start,
            n_requests=n_requests,
            n_dedup_hits=n_dedup_hits,
            n_cache_hits=n_cache_hits,
        )
        return [float(r) for r in results]  # type: ignore[arg-type]

    def evaluate(self, snps: SnpSet) -> float:
        return self.evaluate_batch([snps])[0]

    def close(self) -> None:  # pragma: no cover - default no-op
        return None

    def __enter__(self) -> "BaseBatchEvaluator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
