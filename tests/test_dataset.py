"""Tests of the GenotypeDataset container."""

import numpy as np
import pytest

from repro.genetics.alleles import STATUS_AFFECTED, STATUS_UNAFFECTED, STATUS_UNKNOWN
from repro.genetics.dataset import GenotypeDataset


@pytest.fixture()
def tiny():
    genotypes = np.array(
        [
            [0, 1, 2, -1],
            [1, 1, 0, 2],
            [2, 0, 1, 1],
            [0, 2, 2, 0],
            [1, 0, 0, 1],
        ],
        dtype=np.int8,
    )
    status = np.array([1, 1, 0, 0, -1], dtype=np.int8)
    return GenotypeDataset(genotypes, status, snp_names=["a", "b", "c", "d"])


class TestConstruction:
    def test_shapes_and_defaults(self, tiny):
        assert tiny.n_individuals == 5
        assert tiny.n_snps == 4
        assert len(tiny) == 5
        assert tiny.individual_ids == ("ind0", "ind1", "ind2", "ind3", "ind4")

    def test_rejects_bad_genotypes(self):
        with pytest.raises(ValueError):
            GenotypeDataset([[0, 5]], [1])

    def test_rejects_status_length_mismatch(self):
        with pytest.raises(ValueError):
            GenotypeDataset([[0, 1], [1, 1]], [1])

    def test_rejects_bad_status_values(self):
        with pytest.raises(ValueError):
            GenotypeDataset([[0, 1]], [7])

    def test_rejects_duplicate_snp_names(self):
        with pytest.raises(ValueError):
            GenotypeDataset([[0, 1]], [1], snp_names=["x", "x"])

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            GenotypeDataset([0, 1, 2], [1, 1, 1])

    def test_genotypes_view_is_read_only(self, tiny):
        with pytest.raises(ValueError):
            tiny.genotypes[0, 0] = 2


class TestGroups:
    def test_group_counts(self, tiny):
        assert tiny.n_affected == 2
        assert tiny.n_unaffected == 2
        assert tiny.n_unknown == 1

    def test_affected_subset(self, tiny):
        affected = tiny.affected()
        assert affected.n_individuals == 2
        assert np.all(affected.status == STATUS_AFFECTED)
        assert affected.snp_names == tiny.snp_names

    def test_unaffected_subset(self, tiny):
        unaffected = tiny.unaffected()
        assert unaffected.n_individuals == 2
        assert np.all(unaffected.status == STATUS_UNAFFECTED)

    def test_with_known_status_drops_unknown(self, tiny):
        known = tiny.with_known_status()
        assert known.n_individuals == 4
        assert STATUS_UNKNOWN not in known.status


class TestSubsetting:
    def test_select_snps_reorders(self, tiny):
        sub = tiny.select_snps([2, 0])
        assert sub.snp_names == ("c", "a")
        assert np.array_equal(sub.genotypes[:, 0], tiny.genotypes[:, 2])

    def test_select_snps_out_of_range(self, tiny):
        with pytest.raises(IndexError):
            tiny.select_snps([10])

    def test_select_individuals(self, tiny):
        sub = tiny.select_individuals([0, 4])
        assert sub.individual_ids == ("ind0", "ind4")
        assert np.array_equal(sub.genotypes[1], tiny.genotypes[4])

    def test_select_individuals_contiguous_run_is_a_view(self, tiny):
        sub = tiny.select_individuals([1, 2, 3])
        assert np.shares_memory(sub.genotypes, tiny.genotypes)
        assert np.array_equal(sub.genotypes, tiny.genotypes[1:4])

    def test_select_individuals_negative_indices(self, tiny):
        sub = tiny.select_individuals([-1])
        assert sub.n_individuals == 1
        assert np.array_equal(sub.genotypes[0], tiny.genotypes[-1])
        run = tiny.select_individuals([-3, -2, -1])
        assert np.array_equal(run.genotypes, tiny.genotypes[-3:])

    def test_genotypes_at(self, tiny):
        cols = tiny.genotypes_at([1, 3])
        assert cols.shape == (5, 2)
        assert np.array_equal(cols[:, 0], tiny.genotypes[:, 1])

    def test_snp_index_lookup(self, tiny):
        assert tiny.snp_index("c") == 2
        with pytest.raises(KeyError):
            tiny.snp_index("zzz")


class TestStatistics:
    def test_missing_rate(self, tiny):
        assert tiny.missing_rate == pytest.approx(1 / 20)

    def test_summary(self, tiny):
        summary = tiny.summary()
        assert summary.n_individuals == 5
        assert summary.n_affected == 2
        assert summary.missing_rate == pytest.approx(1 / 20)
        assert "individuals" in str(summary)

    def test_copy_and_equality(self, tiny):
        clone = tiny.copy()
        assert clone == tiny
        assert clone is not tiny

    def test_equality_detects_difference(self, tiny):
        other = tiny.select_individuals([0, 1, 2, 3])
        assert tiny != other
