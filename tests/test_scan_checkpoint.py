"""Tests of scan checkpointing: the JSONL journal and resume-to-bit-identical.

The journal unit tests drive :class:`repro.scan.checkpoint.ScanJournal`
directly (round-trip, identity mismatch, torn-tail tolerance, mid-file
corruption).  The acceptance tests run a chromosome-scale (~100-window) scan
and check the two robustness guarantees end to end: a scan that loses a
slave mid-flight and a scan killed halfway and resumed both produce reports
bit-identical to an uninterrupted fault-free run.
"""

import json

import pytest

from repro.core.config import GAConfig
from repro.genetics.dataset import LocusWindow
from repro.genetics.simulate import (
    DiseaseModel,
    PopulationModel,
    simulate_case_control_study,
)
from repro.parallel.farm import FarmRecoveryPolicy
from repro.runtime.service import RunScheduler
from repro.scan import (
    CheckpointMismatchError,
    ScanJournal,
    checkpoint_meta,
    plan_scan,
    run_scan,
)
from repro.scan.report import WindowResult
from repro.testing.faults import ChaosPolicy, chaos_wrapper

WINDOW_SIZE = 4
OVERLAP = 2


def _plan(n_snps=20, seed=5):
    return plan_scan(n_snps, window_size=WINDOW_SIZE, overlap=OVERLAP, seed=seed)


def _result(index, *, fitness=1.5):
    start = index * (WINDOW_SIZE - OVERLAP)
    window = LocusWindow(index=index, start=start, stop=start + WINDOW_SIZE)
    snps = (start, start + 1)
    return WindowResult(
        window=window,
        best_snps=snps,
        best_fitness=fitness,
        best_per_size={2: (snps, fitness)},
        n_evaluations=10 + index,
        n_distinct_evaluations=7 + index,
        n_generations=3,
        seed=100 + index,
        elapsed_seconds=0.25,
    )


def _journal_windows(path):
    with open(path) as handle:
        records = [json.loads(line) for line in handle if line.strip()]
    return [r for r in records if r.get("kind") == "window"]


class TestScanJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "scan.jsonl"
        meta = checkpoint_meta(_plan(), 20)
        journal, completed = ScanJournal.open(path, meta)
        assert completed == {}
        originals = [_result(i) for i in (0, 3, 5)]
        for result in originals:
            journal.append(result)
        assert journal.n_journaled == 3
        journal.close()
        journal, completed = ScanJournal.open(path, meta, resume=True)
        journal.close()
        assert sorted(completed) == [0, 3, 5]
        for result in originals:
            assert completed[result.window.index] == result

    def test_fresh_open_truncates_existing_journal(self, tmp_path):
        path = tmp_path / "scan.jsonl"
        meta = checkpoint_meta(_plan(), 20)
        with ScanJournal.open(path, meta)[0] as journal:
            journal.append(_result(0))
            journal.append(_result(1))
        with ScanJournal.open(path, meta)[0] as journal:  # resume=False
            assert journal.n_journaled == 0
            journal.append(_result(2))
        journal, completed = ScanJournal.open(path, meta, resume=True)
        journal.close()
        assert sorted(completed) == [2]

    def test_append_is_idempotent_per_index(self, tmp_path):
        path = tmp_path / "scan.jsonl"
        with ScanJournal.open(path, checkpoint_meta(_plan(), 20))[0] as journal:
            journal.append(_result(4))
            journal.append(_result(4))
            assert journal.n_journaled == 1
        assert len(_journal_windows(path)) == 1

    def test_append_after_close_raises(self, tmp_path):
        journal, _ = ScanJournal.open(
            tmp_path / "scan.jsonl", checkpoint_meta(_plan(), 20)
        )
        journal.close()
        journal.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            journal.append(_result(0))

    def test_resume_missing_file_starts_fresh(self, tmp_path):
        path = tmp_path / "missing.jsonl"
        journal, completed = ScanJournal.open(
            path, checkpoint_meta(_plan(), 20), resume=True
        )
        journal.close()
        assert completed == {}
        assert path.exists()

    def test_resume_rejects_foreign_scan(self, tmp_path):
        path = tmp_path / "scan.jsonl"
        with ScanJournal.open(path, checkpoint_meta(_plan(seed=5), 20))[0] as journal:
            journal.append(_result(0))
        with pytest.raises(CheckpointMismatchError, match="different scan"):
            ScanJournal.open(path, checkpoint_meta(_plan(seed=6), 20), resume=True)
        with pytest.raises(CheckpointMismatchError, match="different scan"):
            ScanJournal.open(path, checkpoint_meta(_plan(seed=5), 24), resume=True)

    def test_torn_final_line_is_tolerated_and_truncated(self, tmp_path):
        path = tmp_path / "scan.jsonl"
        meta = checkpoint_meta(_plan(), 20)
        with ScanJournal.open(path, meta)[0] as journal:
            journal.append(_result(0))
            journal.append(_result(1))
        with open(path, "a") as handle:
            handle.write('{"kind": "window", "ind')  # crash mid-append
        journal, completed = ScanJournal.open(path, meta, resume=True)
        assert sorted(completed) == [0, 1]
        journal.append(_result(2))
        journal.close()
        journal, completed = ScanJournal.open(path, meta, resume=True)
        journal.close()
        assert sorted(completed) == [0, 1, 2]  # torn bytes gone, file clean

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "scan.jsonl"
        meta = checkpoint_meta(_plan(), 20)
        with ScanJournal.open(path, meta)[0] as journal:
            journal.append(_result(0))
            journal.append(_result(1))
        lines = path.read_text().splitlines(keepends=True)
        lines[1] = lines[1][:20] + "\n"  # tear a NON-final line
        path.write_text("".join(lines))
        with pytest.raises(CheckpointMismatchError, match="corrupt"):
            ScanJournal.open(path, meta, resume=True)

    def test_rejects_out_of_range_window_and_unknown_kind(self, tmp_path):
        path = tmp_path / "scan.jsonl"
        meta = checkpoint_meta(_plan(), 20)  # 9 windows
        with ScanJournal.open(path, meta)[0] as journal:
            journal.append(_result(500))
        with pytest.raises(CheckpointMismatchError, match="outside"):
            ScanJournal.open(path, meta, resume=True)
        with ScanJournal.open(path, meta)[0] as journal:
            journal._write_line({"kind": "mystery"})
        with pytest.raises(CheckpointMismatchError, match="kind"):
            ScanJournal.open(path, meta, resume=True)


@pytest.fixture(scope="module")
def chromosome_study():
    """A 201-locus panel (cheap rows, chromosome-scale columns)."""
    model = PopulationModel(n_snps=201, block_size=6, within_block_correlation=0.4)
    disease = DiseaseModel(
        causal_snps=(20, 100, 180),
        risk_alleles=(2, 2, 2),
        baseline_penetrance=0.1,
        relative_risk=6.0,
        risk_haplotype_frequency=0.3,
    )
    return simulate_case_control_study(
        population_model=model,
        disease_model=disease,
        n_affected=20,
        n_unaffected=20,
        seed=31,
    )


@pytest.fixture(scope="module")
def acceptance_config():
    return GAConfig(
        population_size=6,
        min_haplotype_size=2,
        max_haplotype_size=2,
        termination_stagnation=1,
        max_generations=2,
        point_mutation_trials=1,
    )


class _Interrupted(Exception):
    """Stand-in for the scan process being killed mid-flight."""


class TestChromosomeScaleFaultTolerance:
    SEED = 17

    def _scan(self, dataset, config, **kwargs):
        return run_scan(
            dataset,
            window_size=WINDOW_SIZE,
            overlap=OVERLAP,
            config=config,
            seed=self.SEED,
            **kwargs,
        )

    def test_resume_requires_checkpoint_path(self, chromosome_study, acceptance_config):
        with pytest.raises(ValueError, match="checkpoint_path"):
            self._scan(chromosome_study.dataset, acceptance_config, resume=True)

    def test_scan_survives_slave_death_bit_identical(
        self, chromosome_study, acceptance_config, tmp_path
    ):
        dataset = chromosome_study.dataset
        reference = self._scan(
            dataset, acceptance_config, backend="async", n_workers=2
        )
        assert reference.n_windows >= 100
        policy = ChaosPolicy(kill_after=40, token_path=str(tmp_path / "token"))
        scheduler = RunScheduler(
            dataset,
            backend="async",
            n_workers=2,
            recovery=FarmRecoveryPolicy(respawn=True),
            worker_wrapper=chaos_wrapper(policy),
        )
        scheduler._evaluator._farm._RESULT_POLL_SECONDS = 0.05
        try:
            chaotic = self._scan(dataset, acceptance_config, scheduler=scheduler)
            assert scheduler.stats.n_worker_deaths >= 1
        finally:
            scheduler.close()
        assert chaotic.fingerprint() == reference.fingerprint()

    def test_interrupted_scan_resumes_bit_identical(
        self, chromosome_study, acceptance_config, tmp_path
    ):
        dataset = chromosome_study.dataset
        reference = self._scan(dataset, acceptance_config)
        half = reference.n_windows // 2
        checkpoint = tmp_path / "scan.jsonl"

        seen = 0

        def die_at_half(result):
            nonlocal seen
            seen += 1
            if seen >= half:
                raise _Interrupted()

        with pytest.raises(_Interrupted):
            self._scan(
                dataset,
                acceptance_config,
                checkpoint_path=checkpoint,
                progress=die_at_half,
            )
        journaled = len(_journal_windows(checkpoint))
        assert half <= journaled < reference.n_windows
        resumed = self._scan(
            dataset,
            acceptance_config,
            checkpoint_path=checkpoint,
            resume=True,
        )
        assert resumed.fingerprint() == reference.fingerprint()
        assert len(_journal_windows(checkpoint)) == reference.n_windows

    def test_resuming_a_complete_journal_runs_nothing(
        self, chromosome_study, acceptance_config, tmp_path
    ):
        dataset = chromosome_study.dataset
        checkpoint = tmp_path / "scan.jsonl"
        reference = self._scan(
            dataset, acceptance_config, checkpoint_path=checkpoint
        )
        resumed = self._scan(
            dataset,
            acceptance_config,
            checkpoint_path=checkpoint,
            resume=True,
        )
        assert resumed.fingerprint() == reference.fingerprint()
        assert resumed.stats.n_requests == 0  # every window restored from disk
