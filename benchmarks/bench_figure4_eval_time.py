"""Benchmark: Figure 4 — average evaluation time vs haplotype size.

Two views of the same experiment:

* per-size pytest-benchmark timings of a single EH-DIALL + CLUMP evaluation
  (these timings *are* Figure 4's y-axis, on the host machine), and
* the harness run that samples many random haplotypes per size and fits the
  exponential cost model, printing the paper-style series.

The paper reports ~6 ms at size 3 growing to ~201 ms at size 7 on a
Pentium-IV; absolute numbers differ on modern hardware and a vectorised EM,
but the exponential growth (factor > 1 per added SNP) is the reproduced shape.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.figure4 import run_figure4

SIZES = (2, 3, 4, 5, 6, 7)


@pytest.mark.parametrize("size", SIZES)
def test_figure4_single_evaluation(benchmark, evaluator, size):
    rng = np.random.default_rng(size)
    haplotypes = [
        tuple(sorted(rng.choice(evaluator.n_snps, size=size, replace=False).tolist()))
        for _ in range(16)
    ]
    counter = {"i": 0}

    def evaluate_one():
        snps = haplotypes[counter["i"] % len(haplotypes)]
        counter["i"] += 1
        return evaluator.evaluate(snps)

    result = benchmark(evaluate_one)
    assert result >= 0.0


def test_figure4_harness(benchmark, study, scale):
    n_samples = 30 if scale == "paper" else 8
    result = benchmark.pedantic(
        run_figure4,
        kwargs=dict(study=study, sizes=SIZES, n_samples=n_samples),
        rounds=1,
        iterations=1,
    )
    # the reproduced shape: cost grows with the haplotype size
    means = [point.mean_seconds for point in result.points]
    assert means[-1] > means[0]
    assert result.growth_factor > 1.0
    print()
    print(result.format())
