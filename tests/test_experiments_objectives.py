"""Tests of the objective-function comparison harness (paper conclusion)."""

import numpy as np
import pytest

from repro.experiments.objectives import DEFAULT_OBJECTIVES, run_objective_comparison
from repro.stats.evaluation import HaplotypeEvaluator

from conftest import SMALL_CAUSAL


class TestLrtObjective:
    def test_lrt_statistic_available_on_evaluator(self, small_dataset):
        evaluator = HaplotypeEvaluator(small_dataset, statistic="lrt")
        causal = evaluator.evaluate(SMALL_CAUSAL)
        random_hap = evaluator.evaluate((0, 6, 12))
        assert causal >= 0.0 and random_hap >= 0.0
        assert causal > random_hap

    def test_lrt_method_matches_lrt_fitness(self, small_dataset):
        t1_eval = HaplotypeEvaluator(small_dataset, statistic="t1")
        lrt_eval = HaplotypeEvaluator(small_dataset, statistic="lrt")
        assert t1_eval.case_control_lrt(SMALL_CAUSAL) == pytest.approx(
            lrt_eval.evaluate(SMALL_CAUSAL)
        )

    def test_lrt_is_non_negative(self, small_evaluator):
        rng = np.random.default_rng(0)
        for _ in range(5):
            snps = tuple(sorted(rng.choice(14, size=3, replace=False).tolist()))
            assert small_evaluator.case_control_lrt(snps) >= 0.0


class TestObjectiveComparison:
    @pytest.fixture(scope="class")
    def result(self, request):
        small_study = request.getfixturevalue("small_study")
        return run_objective_comparison(
            study=small_study, objectives=("t1", "t2", "lrt"),
            sizes=(2, 3), n_per_size=8, top_k=5, seed=1,
        )

    def test_structure(self, result):
        assert result.objectives == ("t1", "t2", "lrt")
        assert len(result.haplotypes) >= 16
        for name in result.objectives:
            assert result.scores[name].shape == (len(result.haplotypes),)
            assert np.all(result.scores[name] >= 0.0)
        assert len(result.rank_correlations) == 3  # 3 pairs

    def test_correlations_bounded_and_symmetric_lookup(self, result):
        for rho in result.rank_correlations.values():
            assert -1.0 <= rho <= 1.0
        assert result.correlation("t1", "t2") == result.correlation("t2", "t1")

    def test_related_objectives_correlate_positively(self, result):
        # T1 and T2 measure the same departure (T2 just pools rare columns) and
        # must rank a common candidate set broadly the same way
        assert result.correlation("t1", "t2") > 0.5

    def test_top_haplotypes_and_hit_rate(self, result):
        for name in result.objectives:
            assert len(result.top_haplotypes[name]) == 5
            assert 0.0 <= result.causal_hit_rate[name] <= 1.0
        # the planted signal should surface under at least one objective
        assert max(result.causal_hit_rate.values()) > 0.0

    def test_format(self, result):
        text = result.format()
        assert "Rank agreement" in text
        assert "Causal-SNP hit rate" in text

    def test_validation(self, small_study):
        with pytest.raises(ValueError):
            run_objective_comparison(study=small_study, objectives=())
        with pytest.raises(ValueError):
            run_objective_comparison(study=small_study, n_per_size=1)

    def test_default_objectives_constant(self):
        assert "t1" in DEFAULT_OBJECTIVES and "lrt" in DEFAULT_OBJECTIVES
