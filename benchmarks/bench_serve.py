"""Benchmark: warm scan service vs cold per-invocation scans, plus cached
replays.

Measures what ``repro serve`` was built for: amortising the substrate.  A
cold ``repro scan`` invocation pays the full spin-up — worker-farm fork,
shared-memory panel registration, cold dedup/LRU stacks — before the first
window evaluates, every single time.  The daemon pays it once: the *warm*
section connects a :class:`repro.runtime.client.ScanClient` to one
persistent :class:`repro.runtime.server.ScanServer` and runs the same scans
(fresh seeds, so the cross-request result cache cannot help) over the
socket, isolating the spin-up saving.  The *cached* section then replays
one already-served scan over and over: every window is answered from the
bytes-budgeted LRU without touching the farm at all.

Every served report is asserted fingerprint-identical to the cold
in-process scan of the same seed — the speed-up must be free of result
drift, cached or computed.

Records everything to ``BENCH_serve.json`` (diffable with
``scripts/bench_compare.py``, which also gates the ``*_gain*`` leaves).

Usage::

    python benchmarks/bench_serve.py            # full run
    python benchmarks/bench_serve.py --quick    # CI smoke
    python benchmarks/bench_serve.py -o out.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.core.config import GAConfig  # noqa: E402
from repro.genetics.simulate import (  # noqa: E402
    DiseaseModel,
    PopulationModel,
    simulate_case_control_study,
)
from repro.runtime.client import ScanClient  # noqa: E402
from repro.runtime.server import ScanServer  # noqa: E402
from repro.scan import run_scan  # noqa: E402

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_serve.json"
)

N_WORKERS = 4
BACKEND = "process-shm"
WINDOW_SIZE = 4
OVERLAP = 2
BASE_SEED = 170

# the chromosome-scan acceptance recipe: many cheap clamped windows, the
# regime where per-invocation spin-up dominates a cold scan
SCAN_CONFIG = GAConfig(
    population_size=6,
    min_haplotype_size=2,
    max_haplotype_size=2,
    termination_stagnation=1,
    max_generations=2,
    point_mutation_trials=1,
)


def build_panel(n_snps: int):
    model = PopulationModel(n_snps=n_snps, block_size=6,
                            within_block_correlation=0.4)
    disease = DiseaseModel(
        causal_snps=(n_snps // 4, n_snps // 2, (3 * n_snps) // 4),
        risk_alleles=(2, 2, 2),
        baseline_penetrance=0.1,
        relative_risk=6.0,
        risk_haplotype_frequency=0.3,
    )
    return simulate_case_control_study(
        population_model=model,
        disease_model=disease,
        n_affected=25,
        n_unaffected=25,
        seed=13,
    ).dataset


def _scan_key(report):
    return [(w.window.index, w.best_snps, w.best_fitness) for w in report.windows]


def _section(elapsed: float, reports, mode: str) -> dict:
    n_scans = len(reports)
    n_windows = sum(r.n_windows for r in reports)
    return {
        "mode": mode,
        "n_workers": N_WORKERS,
        "backend": BACKEND,
        "elapsed_seconds": elapsed,
        "seconds_per_scan": elapsed / n_scans,
        "windows_per_second": n_windows / elapsed if elapsed > 0 else 0.0,
        "n_scans": n_scans,
        "n_windows": n_windows,
        "n_evaluations": sum(r.stats.n_evaluations for r in reports),
        "n_cached_windows": sum(r.n_cached_windows for r in reports),
    }


def run_cold(dataset, seeds) -> tuple[dict, list]:
    """One fresh substrate per scan: what every cold CLI invocation pays."""
    reports = []
    start = time.perf_counter()
    for seed in seeds:
        reports.append(
            run_scan(dataset, window_size=WINDOW_SIZE, overlap=OVERLAP,
                     config=SCAN_CONFIG, seed=seed, backend=BACKEND,
                     n_workers=N_WORKERS)
        )
    elapsed = time.perf_counter() - start
    return _section(elapsed, reports, "cold_per_invocation"), reports


def run_served(dataset, seeds, replays: int) -> tuple[dict, dict, list, list]:
    """The same scans against one warm daemon, then cached replays."""
    with ScanServer(dataset, backend=BACKEND, n_workers=N_WORKERS) as server:
        server.start(("127.0.0.1", 0))
        with ScanClient(server.address, client_id="bench-serve") as client:
            warm_reports = []
            start = time.perf_counter()
            for seed in seeds:
                warm_reports.append(
                    client.scan(window_size=WINDOW_SIZE, overlap=OVERLAP,
                                config=SCAN_CONFIG, seed=seed)
                )
            warm_elapsed = time.perf_counter() - start

            cached_reports = []
            start = time.perf_counter()
            for _ in range(replays):
                cached_reports.append(
                    client.scan(window_size=WINDOW_SIZE, overlap=OVERLAP,
                                config=SCAN_CONFIG, seed=seeds[0])
                )
            cached_elapsed = time.perf_counter() - start
    warm = _section(warm_elapsed, warm_reports, "warm_service")
    cached = _section(cached_elapsed, cached_reports, "cached_replay")
    return warm, cached, warm_reports, cached_reports


def run_benchmark(*, quick: bool) -> dict:
    # quick and full share one workload — the gains are ratios of
    # scale-dependent quantities (spin-up vs scan time, cold scan vs replay
    # round-trip), so the CI smoke is only comparable to the recorded
    # trajectory on the identical trace; the full run just repeats it and
    # keeps the best-of to filter scheduling jitter
    n_snps, n_scans, replays = 60, 4, 8
    repetitions = 1 if quick else 3
    dataset = build_panel(n_snps)
    seeds = [BASE_SEED + i for i in range(n_scans)]

    cold, cold_reports = run_cold(dataset, seeds)
    warm, cached, warm_reports, cached_reports = run_served(
        dataset, seeds, replays
    )
    for _ in range(repetitions - 1):
        next_cold, next_cold_reports = run_cold(dataset, seeds)
        if _scan_key(next_cold_reports[0]) != _scan_key(cold_reports[0]):
            raise AssertionError("cold repetitions diverged")
        if next_cold["elapsed_seconds"] < cold["elapsed_seconds"]:
            cold = next_cold
        # a fresh daemon per repetition: replaying against the old one would
        # measure its already-warm result cache, not the warm-farm scans
        next_warm, next_cached, next_warm_reports, _ = run_served(
            dataset, seeds, replays
        )
        if _scan_key(next_warm_reports[0]) != _scan_key(warm_reports[0]):
            raise AssertionError("warm repetitions diverged")
        if next_warm["elapsed_seconds"] < warm["elapsed_seconds"]:
            warm = next_warm
        if next_cached["elapsed_seconds"] < cached["elapsed_seconds"]:
            cached = next_cached

    # a serving speed-up bought with result drift would be worthless: every
    # served scan — computed warm or replayed from the cache — must be
    # fingerprint-identical to the cold in-process scan of the same seed
    for seed, cold_report, warm_report in zip(seeds, cold_reports, warm_reports):
        if _scan_key(warm_report) != _scan_key(cold_report):
            raise AssertionError(f"served scan diverged from cold (seed {seed})")
    for replay in cached_reports:
        if _scan_key(replay) != _scan_key(cold_reports[0]):
            raise AssertionError("cached replay diverged from the cold scan")
        if replay.n_cached_windows != replay.n_windows:
            raise AssertionError("replay was not fully served from the cache")

    return {
        "benchmark": "serve",
        "trace": {
            "n_snps": n_snps,
            "window_size": WINDOW_SIZE,
            "overlap": OVERLAP,
            "n_scans": n_scans,
            "n_replays": replays,
            "repetitions": repetitions,
            "base_seed": BASE_SEED,
            "backend": BACKEND,
            "n_workers": N_WORKERS,
        },
        "results": {
            f"cold_per_invocation_{N_WORKERS}w": cold,
            f"warm_service_{N_WORKERS}w": warm,
            f"cached_replay_{N_WORKERS}w": cached,
        },
        "headline": {
            f"warm_service_vs_cold_gain_at_{N_WORKERS}_workers": (
                cold["seconds_per_scan"] / warm["seconds_per_scan"]
            ),
            "cached_replay_vs_cold_gain": (
                cold["seconds_per_scan"] / cached["seconds_per_scan"]
            ),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized smoke run")
    parser.add_argument("-o", "--output", default=DEFAULT_OUTPUT,
                        help=f"output JSON path (default {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)

    report = run_benchmark(quick=args.quick)

    trace = report["trace"]
    print(
        f"trace: {trace['n_snps']} SNPs, {trace['n_scans']} scan(s) + "
        f"{trace['n_replays']} replay(s), {BACKEND} x{N_WORKERS}"
    )
    for label, result in report["results"].items():
        print(
            f"  {label:24s} {result['elapsed_seconds']:7.2f} s "
            f"({result['seconds_per_scan']:6.3f} s/scan, "
            f"{result['windows_per_second']:7.1f} windows/s, "
            f"{result['n_cached_windows']} cached)"
        )
    for key, gain in report["headline"].items():
        print(f"{key}: {gain:.2f}x")

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
