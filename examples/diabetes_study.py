#!/usr/bin/env python
"""A full association study, end to end, the way the Lille biologists used the tool.

The paper's motivation (Section 1) is a real workflow: biologists at the
multi-factorial disease laboratory want to screen a SNP panel for haplotypes
associated with diabetes/obesity, without fixing the number of SNPs in
advance, and then inspect the best candidates per size.  This example
reproduces that workflow:

1. write the study to disk in the paper's three-table layout
   (genotypes / per-SNP frequencies / pairwise disequilibrium) and read it
   back, as the original tool did;
2. build the haplotype-validity constraints of Section 2.3 from those tables
   (pairwise LD below a threshold, minor-variant frequency difference above a
   threshold);
3. run the GA with the constraints, comparing the schemes the paper compares
   (with and without the mechanisms that link sub-populations);
4. validate the top haplotypes with CLUMP Monte-Carlo significance and with
   the building-block analysis of Section 3.

Run with:  python examples/diabetes_study.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import AdaptiveMultiPopulationGA, GAConfig, HaplotypeEvaluator, lille_like_study
from repro.genetics import HaplotypeConstraints
from repro.genetics.io import read_study_tables, write_study_tables
from repro.stats.cache import CachedEvaluator


def run_scheme(name: str, config: GAConfig, fitness, n_snps: int,
               constraints: HaplotypeConstraints):
    """Run one GA configuration and print its per-size bests."""
    ga = AdaptiveMultiPopulationGA(fitness, n_snps=n_snps, config=config,
                                   constraints=constraints)
    result = ga.run()
    print(f"\n--- scheme: {name} "
          f"({result.n_evaluations} evaluations, {result.n_generations} generations) ---")
    for size in sorted(result.best_per_size):
        individual = result.best_per_size[size]
        print(f"  size {size}: {individual.snps}  fitness {individual.fitness_value():.2f}")
    return result


def main() -> None:
    study = lille_like_study(seed=2004, n_unknown=70)  # 176 individuals as in the paper
    dataset = study.dataset

    # ------------------------------------------------------------------ #
    # 1. the paper's three-table study layout on disk
    # ------------------------------------------------------------------ #
    with tempfile.TemporaryDirectory() as tmp:
        study_dir = Path(tmp) / "diabetes_study"
        paths = write_study_tables(dataset, study_dir)
        print("study written in the paper's three-table layout:")
        for table, path in paths.items():
            print(f"  {table:<12} {path.name}")
        dataset, frequency_table, ld_table = read_study_tables(study_dir)

    print(f"\nloaded study: {dataset.summary()}")

    # ------------------------------------------------------------------ #
    # 2. Section 2.3 constraints from the loaded tables
    # ------------------------------------------------------------------ #
    constraints = HaplotypeConstraints(
        ld_table=ld_table,
        frequency_table=frequency_table,
        max_pairwise_ld=0.95,               # discard near-duplicate SNP pairs
        min_minor_frequency_difference=0.0,  # keep the frequency test permissive
    )
    n_pairs = dataset.n_snps * (dataset.n_snps - 1) // 2
    n_valid = sum(
        1
        for a in range(dataset.n_snps)
        for b in range(a + 1, dataset.n_snps)
        if constraints.pair_is_valid(a, b)
    )
    print(f"constraints: {n_valid}/{n_pairs} SNP pairs are admissible")

    # ------------------------------------------------------------------ #
    # 3. GA runs: stripped-down vs full scheme (Section 5.2 comparison)
    # ------------------------------------------------------------------ #
    evaluator = HaplotypeEvaluator(dataset, statistic="t1")
    cached = CachedEvaluator(evaluator)
    base = GAConfig(
        population_size=80,
        max_haplotype_size=5,
        termination_stagnation=12,
        max_generations=50,
        random_immigrant_stagnation=6,
        seed=7,
    )
    stripped = base.with_scheme(
        adaptive=False, size_mutations=False,
        inter_population_crossover=False, random_immigrants=False,
    )
    run_scheme("plain multi-population GA", stripped, cached, dataset.n_snps, constraints)
    full_result = run_scheme("full adaptive GA (paper scheme)", base, cached,
                             dataset.n_snps, constraints)

    # ------------------------------------------------------------------ #
    # 4. biological validation of the reported haplotypes
    # ------------------------------------------------------------------ #
    print("\nsignificance of the full scheme's best haplotypes (CLUMP Monte-Carlo):")
    for size in sorted(full_result.best_per_size):
        individual = full_result.best_per_size[size]
        p_values = evaluator.significance(individual.snps, n_simulations=300, seed=size)
        print(
            f"  size {size}: {individual.snps}  "
            f"T1={individual.fitness_value():.2f}  p={p_values['t1']:.4f}"
        )
    print(f"\nplanted ground-truth haplotype was {study.causal_snps}")


if __name__ == "__main__":
    main()
