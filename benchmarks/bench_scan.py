"""Benchmark: genome-scale scan — persistent scheduler vs per-window services.

Measures what the scan subsystem was built for: N windowed GA runs over one
shared execution substrate versus the naive loop a user would write around
the one-shot ``RunService`` (one farm spin-up, one shared-memory panel
registration and one cold cache population **per window**).  Records the
trajectory to ``BENCH_scan.json`` (diffable with ``scripts/bench_compare.py``).

Workload
--------
The built-in 249-SNP chromosome-scale panel tiled into overlapping windows
(stride = size - overlap), each searched by a small per-window GA with
deterministic seeds — the CLI ``scan`` command's exact job stream.  Both
contenders execute the identical per-window ``RunRequest`` sequence:

* ``persistent`` — one :class:`repro.runtime.service.RunScheduler` owns the
  backend for the whole scan; windows share the farm, the shared-memory
  segment and the dedup/LRU caches (overlapping windows re-request the same
  global haplotypes).
* ``naive`` — a fresh one-shot ``RunService.run`` per window, the pre-scan
  architecture: per-window farm spin-up/teardown and no cross-window reuse.

The headline number — ``persistent_vs_naive_gain_at_<N>_workers`` — is the
wall-clock ratio of the two loops on the ``process-shm`` backend; the serial
ratio is recorded alongside (it isolates the cache-sharing gain from the
farm spin-up gain).

Usage::

    python benchmarks/bench_scan.py                 # full run
    python benchmarks/bench_scan.py --quick         # CI smoke
    python benchmarks/bench_scan.py -o out.json     # custom output path
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.core.config import GAConfig  # noqa: E402
from repro.experiments.datasets import large249  # noqa: E402
from repro.runtime.service import RunRequest, RunScheduler, RunService  # noqa: E402
from repro.scan.planner import plan_scan  # noqa: E402
from repro.scan.runner import execute_plan  # noqa: E402

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_scan.json"
)


def scan_ga_config(*, quick: bool) -> GAConfig:
    return GAConfig(
        population_size=10,
        min_haplotype_size=2,
        max_haplotype_size=3,
        termination_stagnation=2,
        max_generations=3 if quick else 4,
        point_mutation_trials=1,
    )


def bench_persistent(dataset, plan, *, backend, n_workers, jobs) -> dict:
    """One scheduler for the whole scan (the scan subsystem's architecture)."""
    start = time.perf_counter()
    with RunScheduler(
        dataset, backend=backend, n_workers=n_workers, jobs=jobs
    ) as scheduler:
        windows = execute_plan(plan, scheduler)
        stats = scheduler.stats
    elapsed = time.perf_counter() - start
    return {
        "mode": "persistent",
        "backend": backend,
        "n_workers": n_workers,
        "jobs": jobs,
        "elapsed_seconds": elapsed,
        "windows_per_second": len(windows) / elapsed if elapsed > 0 else 0.0,
        "n_requests": stats.n_requests,
        "n_evaluations": stats.n_evaluations,
        "reuse_rate": stats.reuse_rate,
        "checksum": round(sum(w.best_fitness for w in windows), 6),
    }


def bench_naive(dataset, plan, *, backend, n_workers) -> dict:
    """A fresh one-shot RunService per window (the pre-scan architecture)."""
    start = time.perf_counter()
    n_requests = n_evaluations = 0
    checksum = 0.0
    n_windows = 0
    for window, request in plan.requests():
        service = RunService(dataset.window(window.start, window.stop))
        # the naive loop runs each window on its own sub-panel: local indices,
        # a fresh evaluator, and (on process backends) a fresh farm
        local = RunRequest(
            config=request.config,
            n_runs=request.n_runs,
            seed=request.seed,
            statistic=request.statistic,
            backend=backend,
            n_workers=n_workers,
        )
        run = service.run(local)
        n_requests += run.stats.n_requests
        n_evaluations += run.stats.n_evaluations
        best = max(
            (ind.fitness_value() for ind in run.best_per_size().values()),
            default=0.0,
        )
        checksum += best
        n_windows += 1
    elapsed = time.perf_counter() - start
    return {
        "mode": "naive",
        "backend": backend,
        "n_workers": n_workers,
        "elapsed_seconds": elapsed,
        "windows_per_second": n_windows / elapsed if elapsed > 0 else 0.0,
        "n_requests": n_requests,
        "n_evaluations": n_evaluations,
        "reuse_rate": 1.0 - (n_evaluations / n_requests) if n_requests else 0.0,
        "checksum": round(checksum, 6),
    }


def run_benchmark(*, quick: bool) -> dict:
    dataset = large249().dataset
    window_size, overlap = (6, 3) if quick else (5, 3)
    config = scan_ga_config(quick=quick)
    plan = plan_scan(
        dataset.n_snps,
        window_size=window_size,
        overlap=overlap,
        config=config,
        seed=2004,
    )
    if quick:  # CI smoke: a slice of the window stream is enough
        from dataclasses import replace

        windows = plan.windows.windows[:16]
        plan = replace(plan, windows=replace(plan.windows, windows=windows))
    worker_counts = (2,) if quick else (2, 4)

    report: dict = {
        "benchmark": "scan_scheduler",
        "dataset": "large249",
        "n_windows": plan.n_windows,
        "window_size": window_size,
        "overlap": overlap,
        "results": {},
        "headline": {},
    }
    results = report["results"]

    def check_parity(persistent: dict, naive: dict) -> None:
        # both architectures must find the exact same per-window results; a
        # checksum divergence is a scheduler determinism regression, not a
        # timing artefact, and must fail the (CI smoke) run loudly
        if persistent["checksum"] != naive["checksum"]:
            raise AssertionError(
                f"persistent/naive scan results diverged: "
                f"{persistent['checksum']} != {naive['checksum']} "
                f"({persistent['backend']}, {persistent['n_workers']} workers)"
            )

    results["persistent_serial"] = bench_persistent(
        dataset, plan, backend="serial", n_workers=None, jobs=1
    )
    results["naive_serial"] = bench_naive(
        dataset, plan, backend="serial", n_workers=None
    )
    check_parity(results["persistent_serial"], results["naive_serial"])
    report["headline"]["persistent_vs_naive_gain_serial"] = (
        results["naive_serial"]["elapsed_seconds"]
        / results["persistent_serial"]["elapsed_seconds"]
    )

    for n_workers in worker_counts:
        persistent = bench_persistent(
            dataset, plan, backend="process-shm", n_workers=n_workers, jobs=2
        )
        naive = bench_naive(
            dataset, plan, backend="process-shm", n_workers=n_workers
        )
        check_parity(persistent, naive)
        results[f"persistent_shm_{n_workers}w"] = persistent
        results[f"naive_shm_{n_workers}w"] = naive
        report["headline"][f"persistent_vs_naive_gain_at_{n_workers}_workers"] = (
            naive["elapsed_seconds"] / persistent["elapsed_seconds"]
        )
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized smoke run")
    parser.add_argument("-o", "--output", default=DEFAULT_OUTPUT,
                        help=f"output JSON path (default {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)

    report = run_benchmark(quick=args.quick)

    for label, result in report["results"].items():
        print(
            f"  {label:24s} {result['elapsed_seconds']:8.2f} s "
            f"({result['windows_per_second']:6.2f} windows/s, "
            f"{result['n_evaluations']} evals, reuse {result['reuse_rate']:.1%})"
        )
    for key, gain in report["headline"].items():
        print(f"{key}: {gain:.2f}x")

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
