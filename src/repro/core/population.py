"""Sub-populations per haplotype size and their container.

Section 4.2 of the paper: haplotypes of different sizes are not comparable
(the fitness scale grows with the size), so the global population is divided
into one sub-population per haplotype size.  Sub-population capacities are not
equal — they increase with the haplotype size to follow the growth of the
corresponding slice of the search space — and the sub-populations cooperate
through the size-changing mutations and the inter-population crossover.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from .config import GAConfig
from .individual import HaplotypeIndividual

__all__ = ["SubPopulation", "MultiPopulation", "allocate_capacities"]


def allocate_capacities(
    total: int,
    sizes: Sequence[int],
    n_snps: int,
    strategy: str = "log_proportional",
    *,
    min_capacity: int = 2,
) -> dict[int, int]:
    """Split a total population across haplotype sizes.

    Parameters
    ----------
    total:
        Total number of individuals to distribute.
    sizes:
        Haplotype sizes (one sub-population each).
    n_snps:
        Number of SNPs on the panel; the size of the search-space slice for
        haplotype size ``k`` is ``C(n_snps, k)``.
    strategy:
        ``"log_proportional"`` — weights ∝ ``log(C(n_snps, k))`` (default;
        capacities grow smoothly with the size, as in the paper);
        ``"proportional"`` — weights ∝ ``C(n_snps, k)`` (heavily skewed toward
        the largest size); ``"uniform"`` — equal split.
    min_capacity:
        Every sub-population receives at least this many slots.

    Returns
    -------
    dict
        ``{size: capacity}`` with ``sum(capacities) == total``.
    """
    sizes = list(sizes)
    if not sizes:
        raise ValueError("sizes must not be empty")
    if total < min_capacity * len(sizes):
        raise ValueError(
            f"total={total} cannot give every one of the {len(sizes)} sub-populations "
            f"at least {min_capacity} individuals"
        )
    if strategy == "uniform":
        weights = np.ones(len(sizes), dtype=np.float64)
    elif strategy == "proportional":
        weights = np.asarray([math.comb(n_snps, k) for k in sizes], dtype=np.float64)
    elif strategy == "log_proportional":
        weights = np.asarray(
            [math.log(max(math.comb(n_snps, k), 2)) for k in sizes], dtype=np.float64
        )
    else:
        raise ValueError(f"unknown allocation strategy {strategy!r}")
    weights = weights / weights.sum()

    adjustable = total - min_capacity * len(sizes)
    raw = weights * adjustable
    capacities = np.floor(raw).astype(int) + min_capacity
    # distribute the rounding remainder to the largest fractional parts
    remainder = total - int(capacities.sum())
    if remainder > 0:
        order = np.argsort(raw - np.floor(raw))[::-1]
        for i in order[:remainder]:
            capacities[i] += 1
    return {size: int(cap) for size, cap in zip(sizes, capacities)}


class SubPopulation:
    """The individuals of one haplotype size.

    The sub-population enforces the paper's replacement rule: a new individual
    enters only if it is better than the current worst *and* is not already
    present; when the sub-population is full the worst individual is evicted.
    """

    def __init__(self, haplotype_size: int, capacity: int) -> None:
        if haplotype_size < 1:
            raise ValueError("haplotype_size must be positive")
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.haplotype_size = int(haplotype_size)
        self.capacity = int(capacity)
        self._members: list[HaplotypeIndividual] = []

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self) -> Iterator[HaplotypeIndividual]:
        return iter(self._members)

    @property
    def members(self) -> tuple[HaplotypeIndividual, ...]:
        return tuple(self._members)

    @property
    def is_full(self) -> bool:
        return len(self._members) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._members

    def contains_snps(self, snps: tuple[int, ...]) -> bool:
        """Whether an individual with exactly these SNPs is already present."""
        return any(member.snps == snps for member in self._members)

    # ------------------------------------------------------------------ #
    def _check(self, individual: HaplotypeIndividual) -> None:
        if individual.size != self.haplotype_size:
            raise ValueError(
                f"individual of size {individual.size} does not belong to the "
                f"size-{self.haplotype_size} sub-population"
            )
        if not individual.is_evaluated:
            raise ValueError("only evaluated individuals may enter a sub-population")

    def seed(self, individual: HaplotypeIndividual) -> bool:
        """Insert an initial individual (used during population initialisation).

        Returns ``False`` (and inserts nothing) if the sub-population is full
        or already contains the same haplotype.
        """
        self._check(individual)
        if self.is_full or self.contains_snps(individual.snps):
            return False
        self._members.append(individual)
        return True

    def try_insert(self, individual: HaplotypeIndividual) -> bool:
        """Apply the paper's replacement rule; returns whether the individual entered."""
        self._check(individual)
        if self.contains_snps(individual.snps):
            return False
        if not self.is_full:
            self._members.append(individual)
            return True
        worst_index = self._worst_index()
        if individual.fitness_value() > self._members[worst_index].fitness_value():
            self._members[worst_index] = individual
            return True
        return False

    def replace_member(self, index: int, individual: HaplotypeIndividual) -> None:
        """Unconditionally replace the member at ``index`` (random immigrants)."""
        self._check(individual)
        self._members[index] = individual

    # ------------------------------------------------------------------ #
    def _worst_index(self) -> int:
        return min(range(len(self._members)), key=lambda i: self._members[i].fitness_value())

    def best(self) -> HaplotypeIndividual:
        if self.is_empty:
            raise ValueError("empty sub-population has no best individual")
        return max(self._members, key=lambda ind: ind.fitness_value())

    def worst(self) -> HaplotypeIndividual:
        if self.is_empty:
            raise ValueError("empty sub-population has no worst individual")
        return self._members[self._worst_index()]

    def mean_fitness(self) -> float:
        if self.is_empty:
            raise ValueError("empty sub-population has no mean fitness")
        return float(np.mean([ind.fitness_value() for ind in self._members]))

    def fitness_range(self) -> tuple[float, float]:
        """(worst, best) fitness of the sub-population."""
        if self.is_empty:
            raise ValueError("empty sub-population has no fitness range")
        values = [ind.fitness_value() for ind in self._members]
        return float(min(values)), float(max(values))

    def normalized_fitness(self, fitness: float) -> float:
        """Normalise a fitness against this sub-population's range (Section 4.3.1).

        ``(f - worst) / (best - worst)``, clipped to ``[0, 1]``; when the
        sub-population has no spread the value is 0.5 (no information).
        """
        worst, best = self.fitness_range()
        spread = best - worst
        if spread <= 0:
            return 0.5
        return float(min(max((fitness - worst) / spread, 0.0), 1.0))


class MultiPopulation:
    """All sub-populations of the GA, keyed by haplotype size."""

    def __init__(self, config: GAConfig, n_snps: int) -> None:
        self.config = config
        self.n_snps = int(n_snps)
        capacities = allocate_capacities(
            config.population_size,
            config.haplotype_sizes,
            n_snps,
            strategy=config.allocation,
        )
        self._subpopulations: dict[int, SubPopulation] = {
            size: SubPopulation(size, capacity) for size, capacity in capacities.items()
        }

    # ------------------------------------------------------------------ #
    @property
    def sizes(self) -> tuple[int, ...]:
        return tuple(sorted(self._subpopulations))

    def subpopulation(self, size: int) -> SubPopulation:
        try:
            return self._subpopulations[size]
        except KeyError:
            raise KeyError(f"no sub-population for haplotype size {size}") from None

    def __iter__(self) -> Iterator[SubPopulation]:
        for size in self.sizes:
            yield self._subpopulations[size]

    def __len__(self) -> int:
        return sum(len(sub) for sub in self._subpopulations.values())

    @property
    def capacities(self) -> dict[int, int]:
        return {size: sub.capacity for size, sub in sorted(self._subpopulations.items())}

    def all_members(self) -> list[HaplotypeIndividual]:
        return [ind for sub in self for ind in sub]

    # ------------------------------------------------------------------ #
    def try_insert(self, individual: HaplotypeIndividual) -> bool:
        """Route an individual to the sub-population of its size and apply replacement."""
        if individual.size not in self._subpopulations:
            return False
        return self._subpopulations[individual.size].try_insert(individual)

    def best_per_size(self) -> dict[int, HaplotypeIndividual]:
        """Best individual of every non-empty sub-population."""
        return {size: sub.best() for size, sub in sorted(self._subpopulations.items())
                if not sub.is_empty}

    def global_best(self) -> HaplotypeIndividual:
        """Best individual across all sub-populations by *normalized* fitness.

        Raw fitnesses of different sizes are not comparable, so the global
        best (used for the stagnation tests) is the individual whose
        normalized fitness within its own sub-population is maximal, with the
        raw fitness as tie-breaker.
        """
        candidates = []
        for sub in self:
            if sub.is_empty:
                continue
            best = sub.best()
            candidates.append((sub.normalized_fitness(best.fitness_value()),
                               best.fitness_value(), best))
        if not candidates:
            raise ValueError("population is empty")
        return max(candidates, key=lambda item: (item[0], item[1]))[2]

    def normalized_fitness(self, individual: HaplotypeIndividual) -> float:
        """Normalise an individual's fitness against its own sub-population."""
        sub = self.subpopulation(individual.size)
        if sub.is_empty:
            return 0.5
        return sub.normalized_fitness(individual.fitness_value())
