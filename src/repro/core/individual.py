"""The GA's individual: a candidate haplotype.

Section 4.1 of the paper: "An haplotype is a structure composed of an integer
indicating the size of the haplotype, a table with the SNPs ordered in the
ascending order without repetition, and a real to store the value of the
individual."  :class:`HaplotypeIndividual` is exactly that structure, kept
immutable so individuals can be shared between populations, used as dictionary
keys (duplicate detection at replacement time) and shipped to worker
processes without defensive copies.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Sequence

import numpy as np

from ..genetics.constraints import HaplotypeConstraints

__all__ = ["HaplotypeIndividual", "random_individual"]


@dataclass(frozen=True, order=False)
class HaplotypeIndividual:
    """An immutable candidate haplotype.

    Attributes
    ----------
    snps:
        SNP indices in strictly ascending order (no repetition).
    fitness:
        Cached fitness value, or ``None`` while not yet evaluated.
    """

    snps: tuple[int, ...]
    fitness: float | None = None

    def __post_init__(self) -> None:
        snps = tuple(int(s) for s in self.snps)
        if len(snps) == 0:
            raise ValueError("a haplotype must contain at least one SNP")
        if any(s < 0 for s in snps):
            raise ValueError(f"SNP indices must be non-negative: {snps}")
        if len(set(snps)) != len(snps):
            raise ValueError(f"SNP indices must not repeat: {snps}")
        if tuple(sorted(snps)) != snps:
            snps = tuple(sorted(snps))
        object.__setattr__(self, "snps", snps)
        if self.fitness is not None:
            object.__setattr__(self, "fitness", float(self.fitness))

    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of SNPs in the haplotype (the sub-population it belongs to)."""
        return len(self.snps)

    @property
    def is_evaluated(self) -> bool:
        return self.fitness is not None

    def fitness_value(self) -> float:
        """The fitness, raising if the individual has not been evaluated yet."""
        if self.fitness is None:
            raise ValueError(f"individual {self.snps} has not been evaluated")
        return self.fitness

    def with_fitness(self, fitness: float) -> "HaplotypeIndividual":
        """Copy of this individual carrying the given fitness."""
        return replace(self, fitness=float(fitness))

    def without_fitness(self) -> "HaplotypeIndividual":
        """Copy of this individual with the cached fitness cleared."""
        return replace(self, fitness=None)

    # ------------------------------------------------------------------ #
    def contains(self, snp: int) -> bool:
        return int(snp) in self.snps

    def same_snps(self, other: "HaplotypeIndividual") -> bool:
        """Whether two individuals denote the same haplotype (fitness ignored)."""
        return self.snps == other.snps

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        fit = "unevaluated" if self.fitness is None else f"{self.fitness:.3f}"
        return f"<{' '.join(map(str, self.snps))} | {fit}>"


def random_individual(
    size: int,
    constraints: HaplotypeConstraints,
    rng: np.random.Generator,
    *,
    max_attempts: int = 200,
) -> HaplotypeIndividual:
    """Draw a random constraint-satisfying haplotype of the requested size.

    SNPs are added one at a time, each drawn uniformly from the SNPs still
    compatible with the partial haplotype; if the constraints paint the
    construction into a corner the draw is restarted, up to ``max_attempts``
    times (an error is raised after that, which signals that the constraint
    thresholds leave no feasible haplotype of this size).
    """
    if size <= 0:
        raise ValueError("size must be positive")
    if size > constraints.n_snps:
        raise ValueError(
            f"cannot build a haplotype of {size} SNPs from a panel of {constraints.n_snps}"
        )
    for _ in range(max_attempts):
        chosen: list[int] = []
        for _ in range(size):
            candidates = constraints.compatible_snps(chosen)
            if candidates.size == 0:
                break
            chosen.append(int(rng.choice(candidates)))
        if len(chosen) == size:
            return HaplotypeIndividual(tuple(sorted(chosen)))
    raise RuntimeError(
        f"could not draw a feasible haplotype of size {size} in {max_attempts} attempts; "
        "the constraints may be too strict"
    )
