"""Uniform crossover, intra- and inter-population (paper Section 4.3.2).

The paper's crossover is uniform: the SNP "sites" of the two parents are
randomly shuffled between the two children.  Because a haplotype is a *set*
of SNPs, a naive exchange can create duplicates inside a child; the child is
then repaired by drawing replacement SNPs from the parents' combined pool
(preferring constraint-compatible ones), so that

* **intra-population crossover** (two parents of the same size ``s``) yields
  two children of size ``s`` — they stay in the parents' sub-population;
* **inter-population crossover** (parents of different sizes ``s1`` and
  ``s2``) yields "one child of each parent's size": a size-``s1`` child and a
  size-``s2`` child, each mixing material from both parents.  This is the
  second cooperation mechanism between sub-populations.
"""

from __future__ import annotations

import numpy as np

from ...genetics.constraints import HaplotypeConstraints
from ..individual import HaplotypeIndividual
from .base import CrossoverOperator, SnpTuple, repair_to_size

__all__ = ["IntraPopulationCrossover", "InterPopulationCrossover"]


class IntraPopulationCrossover(CrossoverOperator):
    """Uniform crossover between two parents of the same haplotype size."""

    name = "intra_population_crossover"

    def is_applicable(
        self, parent_a: HaplotypeIndividual, parent_b: HaplotypeIndividual
    ) -> bool:
        return parent_a.size == parent_b.size and parent_a.snps != parent_b.snps

    def recombine(
        self,
        parent_a: HaplotypeIndividual,
        parent_b: HaplotypeIndividual,
        constraints: HaplotypeConstraints,
        rng: np.random.Generator,
    ) -> list[SnpTuple]:
        if not self.is_applicable(parent_a, parent_b):
            return []
        size = parent_a.size
        pool = sorted(set(parent_a.snps) | set(parent_b.snps))
        swap = rng.random(size) < 0.5
        child_a = [parent_b.snps[i] if swap[i] else parent_a.snps[i] for i in range(size)]
        child_b = [parent_a.snps[i] if swap[i] else parent_b.snps[i] for i in range(size)]
        children: list[SnpTuple] = []
        for raw in (child_a, child_b):
            repaired = repair_to_size(raw, size, pool, constraints, rng)
            if repaired is not None and repaired not in (parent_a.snps, parent_b.snps):
                children.append(repaired)
        return children


class InterPopulationCrossover(CrossoverOperator):
    """Uniform crossover between parents of different sizes (one child per size)."""

    name = "inter_population_crossover"

    def is_applicable(
        self, parent_a: HaplotypeIndividual, parent_b: HaplotypeIndividual
    ) -> bool:
        return parent_a.size != parent_b.size

    def recombine(
        self,
        parent_a: HaplotypeIndividual,
        parent_b: HaplotypeIndividual,
        constraints: HaplotypeConstraints,
        rng: np.random.Generator,
    ) -> list[SnpTuple]:
        if not self.is_applicable(parent_a, parent_b):
            return []
        pool = sorted(set(parent_a.snps) | set(parent_b.snps))
        children: list[SnpTuple] = []
        for recipient, donor in ((parent_a, parent_b), (parent_b, parent_a)):
            size = recipient.size
            donor_snps = list(donor.snps)
            raw: list[int] = []
            for i in range(size):
                if rng.random() < 0.5 and donor_snps:
                    raw.append(int(rng.choice(donor_snps)))
                else:
                    raw.append(recipient.snps[i])
            repaired = repair_to_size(raw, size, pool, constraints, rng)
            if repaired is not None and repaired != recipient.snps:
                children.append(repaired)
        return children
