"""Serial (in-process) batch evaluator."""

from __future__ import annotations

import time
from typing import Sequence

from .base import BaseBatchEvaluator, FitnessCallable, SnpSet

__all__ = ["SerialEvaluator"]


class SerialEvaluator(BaseBatchEvaluator):
    """Evaluate every haplotype of a batch in the calling process.

    This is both the reference implementation the parallel backends are tested
    against (they must return bit-identical fitnesses) and the sensible choice
    for small populations, where process start-up and serialisation overheads
    dominate the actual EM cost.
    """

    def __init__(self, fitness: FitnessCallable) -> None:
        super().__init__()
        self._fitness = fitness

    @property
    def fitness_function(self) -> FitnessCallable:
        return self._fitness

    def evaluate_batch(self, batch: Sequence[SnpSet]) -> list[float]:
        start = time.perf_counter()
        results = [float(self._fitness(snps)) for snps in batch]
        self._stats.record_batch(len(batch), time.perf_counter() - start)
        return results
