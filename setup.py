"""Setuptools shim.

The execution environment is offline with setuptools 65 and no ``wheel``
package, so PEP-517/660 editable installs (which need to build a wheel)
cannot run.  This shim lets ``pip install -e . --no-use-pep517
--no-build-isolation`` — and plain ``python setup.py develop`` — work from the
metadata declared in ``pyproject.toml``.
"""

from setuptools import setup

setup()
