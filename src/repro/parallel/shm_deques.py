"""Shared-memory steal deques: slave-side self-serve chunk queues.

PR 4's work-stealing engine keeps every chunk queue master-side: an idle
slave only receives more work after its previous result has crossed a pipe,
been folded in by the master, and a refill message has crossed back.  That
round trip — queue feeder latency + master scheduling + pipe latency — is
pure dead time per chunk, and it is paid by *every* chunk once chunks are
small enough to steal.

This module moves the per-slave chunk queues into one
:mod:`multiprocessing.shared_memory` segment the master and every slave map:

* one **ring** of slot indices per slave (the slave's deque: the master
  pushes fresh chunks at the tail, the owner pops from the head in affinity
  order, and an idle slave *steals from the tail* of the longest other ring —
  the tail is the work least likely to benefit from the owner's caches soon);
* a **claimed cell** per slave recording the task it is currently computing
  (the crash-recovery breadcrumb: a dead slave's claimed task is replayed,
  its ring is rerouted);
* a **slot arena** of fixed-size int64 payload slots holding the encoded
  chunks (``[task_id, n_keys, (key_len, *snps)...]``), allocated and freed
  exclusively by the master.

Slaves therefore refill *themselves*: finishing a chunk and taking the next
one is a few shared-memory words under a lock, not a master round trip.  The
master's remaining jobs are seeding batches into the rings (and staging the
overflow when the arena is full) and harvesting completions over the
existing per-slave result pipes.

All ring/claim operations happen under one farm-wide
``multiprocessing.Lock``; they touch a handful of words each, so the lock is
never the bottleneck next to millisecond-scale evaluations, and a single
lock keeps the pop-vs-steal-vs-drain interleavings trivially correct.  The
master acquires it with a timeout so a slave SIGKILLed in the microseconds
it holds the lock degrades into a loud error, never a wedged farm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from multiprocessing import shared_memory

import numpy as np

__all__ = ["SharedChunkDeques", "SharedDequeHandle"]

#: Default arena size: chunk slots shared by all rings.
DEFAULT_N_SLOTS = 1024
#: Default slot payload capacity in int64 words (task_id + n_keys + keys).
DEFAULT_SLOT_INTS = 512

_NO_CLAIM = -1
_MASTER_LOCK_TIMEOUT = 10.0


def encoded_chunk_ints(chunk) -> int:
    """Payload words one chunk needs in a slot (header + per-key length runs)."""
    return 2 + sum(1 + len(key) for key in chunk)


class _DequeArrays:
    """The numpy views both sides carve out of the shared segment."""

    def __init__(self, buffer, n_workers: int, n_slots: int, slot_ints: int) -> None:
        ints = np.frombuffer(buffer, dtype=np.int64)
        offset = 0

        def take(count: int) -> np.ndarray:
            nonlocal offset
            view = ints[offset: offset + count]
            offset += count
            return view

        # each ring can hold every slot at once, so a push can never overflow
        self.rings = take(n_workers * n_slots).reshape(n_workers, n_slots)
        self.heads = take(n_workers)
        self.counts = take(n_workers)
        self.claimed = take(n_workers)
        self.slots = take(n_slots * slot_ints).reshape(n_slots, slot_ints)

    @staticmethod
    def n_ints(n_workers: int, n_slots: int, slot_ints: int) -> int:
        return n_workers * n_slots + 3 * n_workers + n_slots * slot_ints


def _decode_slot(slot_row: np.ndarray) -> tuple[int, list[tuple[int, ...]]]:
    """Rebuild ``(task_id, chunk)`` from one slot's payload words."""
    task_id = int(slot_row[0])
    n_keys = int(slot_row[1])
    chunk: list[tuple[int, ...]] = []
    cursor = 2
    for _ in range(n_keys):
        length = int(slot_row[cursor])
        cursor += 1
        chunk.append(tuple(int(s) for s in slot_row[cursor: cursor + length]))
        cursor += length
    return task_id, chunk


@dataclass(frozen=True)
class SharedDequeHandle:
    """Picklable pointer a slave uses to attach to the deque segment.

    Carries the segment name, the geometry, and the farm-wide lock (a
    ``multiprocessing`` lock travels to child processes through ``Process``
    arguments).  ``attach()`` maps the segment and returns the slave-side
    view; the attachment lives for the slave's lifetime.
    """

    name: str
    n_workers: int
    n_slots: int
    slot_ints: int
    lock: object = field(compare=False)

    def attach(self) -> "_WorkerDeques":
        return _WorkerDeques(self)


class _WorkerDeques:
    """Slave-side view: ``take`` (pop own head / steal a tail) + claim cells."""

    def __init__(self, handle: SharedDequeHandle) -> None:
        self._handle = handle
        self._segment = shared_memory.SharedMemory(name=handle.name)
        self._arrays = _DequeArrays(
            self._segment.buf, handle.n_workers, handle.n_slots, handle.slot_ints
        )
        self._lock = handle.lock

    def take(
        self, worker: int, *, steal: bool
    ) -> tuple[int, list[tuple[int, ...]]] | None:
        """Pop this slave's next chunk, stealing from the longest ring if idle.

        Returns ``(task_id, chunk)`` — with the claimed cell already set to
        the task, so a crash any time before :meth:`clear_claimed` leaves the
        master a replayable record — or ``None`` when every ring is empty.
        """
        arrays = self._arrays
        with self._lock:
            source = worker
            if arrays.counts[worker] == 0:
                if not steal:
                    return None
                source = -1
                longest = 0
                for victim in range(self._handle.n_workers):
                    if victim != worker and arrays.counts[victim] > longest:
                        source, longest = victim, int(arrays.counts[victim])
                if source < 0:
                    return None
            if source == worker:
                # the owner drains its own ring in affinity (FIFO) order
                position = int(arrays.heads[source])
                arrays.heads[source] = (position + 1) % self._handle.n_slots
            else:
                # the thief takes the victim's *tail*
                position = int(
                    (arrays.heads[source] + arrays.counts[source] - 1)
                    % self._handle.n_slots
                )
            slot = int(arrays.rings[source, position])
            arrays.counts[source] -= 1
            task_id, chunk = _decode_slot(arrays.slots[slot])
            arrays.claimed[worker] = task_id
        return task_id, chunk

    def clear_claimed(self, worker: int) -> None:
        """Forget the claimed task — call only *after* its result was sent."""
        with self._lock:
            self._arrays.claimed[worker] = _NO_CLAIM

    def detach(self) -> None:
        self._arrays = None
        try:
            self._segment.close()
        except OSError:  # pragma: no cover - already closed
            pass


class SharedChunkDeques:
    """Master-side owner of the deque segment (create, seed, reclaim, destroy).

    The master is the only allocator: it pushes encoded chunks into free
    slots, frees a slot when the chunk's result (or its death-reclaim) comes
    back, and drains a dead slave's ring wholesale.  Slaves never allocate —
    they only move ring entries and claim cells — so the free list needs no
    cross-process coordination at all.
    """

    def __init__(
        self,
        n_workers: int,
        *,
        context,
        n_slots: int = DEFAULT_N_SLOTS,
        slot_ints: int = DEFAULT_SLOT_INTS,
    ) -> None:
        if n_slots < n_workers:
            raise ValueError(
                f"n_slots must be at least n_workers ({n_workers}), got {n_slots}"
            )
        if slot_ints < 4:
            raise ValueError(f"slot_ints must be at least 4, got {slot_ints}")
        self._n_workers = n_workers
        self._n_slots = n_slots
        self._slot_ints = slot_ints
        self._lock = context.Lock()
        n_bytes = 8 * _DequeArrays.n_ints(n_workers, n_slots, slot_ints)
        self._segment = shared_memory.SharedMemory(create=True, size=n_bytes)
        self._arrays = _DequeArrays(self._segment.buf, n_workers, n_slots, slot_ints)
        self._arrays.rings[:] = 0
        self._arrays.heads[:] = 0
        self._arrays.counts[:] = 0
        self._arrays.claimed[:] = _NO_CLAIM
        self._free: list[int] = list(range(n_slots - 1, -1, -1))
        self._closed = False

    # ------------------------------------------------------------------ #
    @property
    def n_slots(self) -> int:
        return self._n_slots

    @property
    def slot_ints(self) -> int:
        return self._slot_ints

    @property
    def n_free_slots(self) -> int:
        return len(self._free)

    def max_chunk_keys(self, key_size: int) -> int:
        """Largest chunk of uniformly ``key_size``-sized keys a slot can hold."""
        return (self._slot_ints - 2) // (1 + key_size)

    def handle(self) -> SharedDequeHandle:
        return SharedDequeHandle(
            name=self._segment.name,
            n_workers=self._n_workers,
            n_slots=self._n_slots,
            slot_ints=self._slot_ints,
            lock=self._lock,
        )

    def _acquire(self):
        if not self._lock.acquire(timeout=_MASTER_LOCK_TIMEOUT):
            raise RuntimeError(
                "the shared deque lock is stuck (a slave likely died while "
                "holding it); terminate the farm"
            )
        return self._lock

    # ------------------------------------------------------------------ #
    def push(self, worker: int, task_id: int, chunk) -> int | None:
        """Encode ``chunk`` into a free slot and push it onto ``worker``'s ring.

        Returns the slot index (the master keeps it to free later), or
        ``None`` when the arena is full — the caller then stages the chunk
        master-side and retries as results free slots.
        """
        if not self._free:
            return None
        needed = encoded_chunk_ints(chunk)
        if needed > self._slot_ints:
            raise ValueError(
                f"chunk needs {needed} payload words but slots hold "
                f"{self._slot_ints}; split the chunk"
            )
        slot = self._free.pop()
        arrays = self._arrays
        self._acquire()
        try:
            row = arrays.slots[slot]
            row[0] = task_id
            row[1] = len(chunk)
            cursor = 2
            for key in chunk:
                row[cursor] = len(key)
                cursor += 1
                row[cursor: cursor + len(key)] = key
                cursor += len(key)
            position = int(
                (arrays.heads[worker] + arrays.counts[worker]) % self._n_slots
            )
            arrays.rings[worker, position] = slot
            arrays.counts[worker] += 1
        finally:
            self._lock.release()
        return slot

    def free_slot(self, slot: int) -> None:
        """Return a slot to the arena (its chunk's result — or reclaim — landed)."""
        self._free.append(slot)

    def drain_worker(self, worker: int) -> tuple[list[tuple[int, int]], int | None]:
        """Empty a dead slave's ring and read its claimed cell.

        Returns ``(ring_entries, claimed_task_id)`` where ``ring_entries`` is
        ``[(slot, task_id), ...]`` in ring order (chunks that were queued but
        never claimed — reroutable without a retry charge) and
        ``claimed_task_id`` is the task the slave died computing (``None``
        when it died idle).  Slots are *not* freed — the caller decides their
        fate.
        """
        arrays = self._arrays
        self._acquire()
        try:
            entries: list[tuple[int, int]] = []
            head = int(arrays.heads[worker])
            for offset in range(int(arrays.counts[worker])):
                slot = int(arrays.rings[worker, (head + offset) % self._n_slots])
                entries.append((slot, int(arrays.slots[slot, 0])))
            arrays.heads[worker] = 0
            arrays.counts[worker] = 0
            claimed = int(arrays.claimed[worker])
            arrays.claimed[worker] = _NO_CLAIM
        finally:
            self._lock.release()
        return entries, (None if claimed == _NO_CLAIM else claimed)

    def remove_tasks(self, task_ids: set[int]) -> list[tuple[int, int]]:
        """Pull every ring-resident chunk of ``task_ids`` out of the rings.

        Used when a ticket fails: its not-yet-claimed chunks must not burn
        slave time.  Claimed chunks cannot be removed (a slave is computing
        them); their results arrive later and are discarded as stale.
        Returns the removed ``[(slot, task_id), ...]`` — slots not yet freed.
        """
        if not task_ids:
            return []
        arrays = self._arrays
        removed: list[tuple[int, int]] = []
        self._acquire()
        try:
            for worker in range(self._n_workers):
                head = int(arrays.heads[worker])
                count = int(arrays.counts[worker])
                kept: list[int] = []
                for offset in range(count):
                    slot = int(arrays.rings[worker, (head + offset) % self._n_slots])
                    task_id = int(arrays.slots[slot, 0])
                    if task_id in task_ids:
                        removed.append((slot, task_id))
                    else:
                        kept.append(slot)
                if len(kept) != count:
                    arrays.heads[worker] = 0
                    arrays.counts[worker] = len(kept)
                    for position, slot in enumerate(kept):
                        arrays.rings[worker, position] = slot
        finally:
            self._lock.release()
        return removed

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Unmap and destroy the segment; idempotent.  Call after the slaves
        exited (their attachments keep the mapping valid either way)."""
        if self._closed:
            return
        self._closed = True
        self._arrays = None
        try:
            self._segment.close()
        except OSError:  # pragma: no cover - already closed
            pass
        try:
            self._segment.unlink()
        except (OSError, FileNotFoundError):  # pragma: no cover - already gone
            pass

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown path
        try:
            self.close()
        except Exception:
            pass
