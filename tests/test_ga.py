"""Integration tests of the adaptive multi-population GA."""

import numpy as np
import pytest

from repro.core.config import GAConfig
from repro.core.ga import AdaptiveMultiPopulationGA
from repro.genetics.constraints import build_constraints
from repro.parallel.serial import SerialEvaluator
from repro.stats.cache import CachedEvaluator

from conftest import SMALL_CAUSAL

N_SNPS = 14


def _config(**overrides):
    defaults = dict(
        population_size=24,
        min_haplotype_size=2,
        max_haplotype_size=4,
        termination_stagnation=6,
        max_generations=20,
        random_immigrant_stagnation=3,
        seed=5,
    )
    defaults.update(overrides)
    return GAConfig(**defaults)


@pytest.fixture(scope="module")
def quick_result(small_evaluator_module):
    ga = AdaptiveMultiPopulationGA(
        small_evaluator_module, n_snps=N_SNPS, config=_config()
    )
    return ga.run(), ga


@pytest.fixture(scope="module")
def small_evaluator_module(request):
    # reuse the session-scoped evaluator fixture through the module scope
    return request.getfixturevalue("small_evaluator")


class TestConstruction:
    def test_requires_fitness_or_evaluator(self):
        with pytest.raises(ValueError):
            AdaptiveMultiPopulationGA(n_snps=N_SNPS)

    def test_rejects_small_panel(self, small_evaluator):
        with pytest.raises(ValueError):
            AdaptiveMultiPopulationGA(small_evaluator, n_snps=1)

    def test_rejects_max_size_above_panel(self, small_evaluator):
        with pytest.raises(ValueError):
            AdaptiveMultiPopulationGA(
                small_evaluator, n_snps=3, config=_config(max_haplotype_size=4)
            )

    def test_rejects_mismatched_constraints(self, small_evaluator, small_constraints):
        with pytest.raises(ValueError):
            AdaptiveMultiPopulationGA(
                small_evaluator, n_snps=10, constraints=small_constraints,
                config=_config(),
            )

    def test_rejects_backend_alongside_explicit_evaluator(self, small_evaluator):
        from repro.parallel.serial import SerialEvaluator

        with pytest.raises(ValueError):
            AdaptiveMultiPopulationGA(
                n_snps=N_SNPS, evaluator=SerialEvaluator(small_evaluator),
                backend="serial",
            )

    def test_backend_name_resolves_the_evaluator(self, small_evaluator):
        from repro.parallel.threads import ThreadPoolEvaluator

        with AdaptiveMultiPopulationGA(
            small_evaluator, n_snps=N_SNPS, backend="threads",
            backend_options={"n_workers": 2},
        ) as ga:
            assert isinstance(ga.evaluator, ThreadPoolEvaluator)

    def test_close_releases_only_owned_evaluators(self, small_evaluator):
        from repro.parallel.serial import SerialEvaluator

        owned = AdaptiveMultiPopulationGA(small_evaluator, n_snps=N_SNPS)
        closed = []
        owned.evaluator.register_close_callback(lambda: closed.append("owned"))
        owned.close()
        assert closed == ["owned"]

        supplied = SerialEvaluator(small_evaluator)
        supplied.register_close_callback(lambda: closed.append("supplied"))
        ga = AdaptiveMultiPopulationGA(n_snps=N_SNPS, evaluator=supplied)
        ga.close()
        assert closed == ["owned"]  # the caller's evaluator is left untouched


class TestRunBehaviour:
    def test_produces_one_best_per_size(self, quick_result):
        result, _ga = quick_result
        assert set(result.best_per_size) == {2, 3, 4}
        for size, individual in result.best_per_size.items():
            assert individual.size == size
            assert individual.is_evaluated

    def test_history_and_counters_consistent(self, quick_result):
        result, ga = quick_result
        assert result.n_generations == len(result.history)
        assert result.n_evaluations == ga.n_evaluations
        assert result.termination_reason in {
            "stagnation", "max_generations", "max_evaluations"
        }
        assert result.elapsed_seconds > 0.0
        # evaluation counts are non-decreasing over generations
        evaluations = result.history.evaluations_trajectory()
        assert all(b >= a for a, b in zip(evaluations, evaluations[1:]))
        # evaluations_to_best never exceeds the total
        for size, count in result.evaluations_to_best.items():
            assert 0 <= count <= result.n_evaluations

    def test_best_fitness_never_decreases(self, quick_result):
        result, _ga = quick_result
        for size in (2, 3, 4):
            trajectory = result.history.best_fitness_trajectory(size)
            assert all(b >= a - 1e-9 for a, b in zip(trajectory, trajectory[1:]))

    def test_population_sizes_respect_capacities(self, quick_result):
        _result, ga = quick_result
        population = ga.population
        assert population is not None
        for sub in population:
            assert len(sub) <= sub.capacity
            snp_sets = [member.snps for member in sub]
            assert len(snp_sets) == len(set(snp_sets))  # no duplicates
            for member in sub:
                assert member.size == sub.haplotype_size

    def test_operator_rates_sum_to_global_rate(self, quick_result):
        result, _ga = quick_result
        config = result.config
        for record in result.history:
            assert sum(record.mutation_rates.values()) == pytest.approx(
                config.mutation_rate, abs=1e-9
            )
            assert sum(record.crossover_rates.values()) == pytest.approx(
                config.crossover_rate, abs=1e-9
            )

    def test_determinism_same_seed(self, small_evaluator):
        results = []
        for _ in range(2):
            ga = AdaptiveMultiPopulationGA(
                small_evaluator, n_snps=N_SNPS, config=_config(max_generations=6)
            )
            results.append(ga.run())
        a, b = results
        assert {s: ind.snps for s, ind in a.best_per_size.items()} == {
            s: ind.snps for s, ind in b.best_per_size.items()
        }
        assert a.n_evaluations == b.n_evaluations

    def test_different_seeds_explore_differently(self, small_evaluator):
        a = AdaptiveMultiPopulationGA(
            small_evaluator, n_snps=N_SNPS, config=_config(seed=1, max_generations=6)
        ).run()
        b = AdaptiveMultiPopulationGA(
            small_evaluator, n_snps=N_SNPS, config=_config(seed=2, max_generations=6)
        ).run()
        assert a.n_evaluations != b.n_evaluations or a.best_per_size != b.best_per_size

    def test_max_evaluations_cap_respected(self, small_evaluator):
        config = _config(max_evaluations=80, max_generations=50)
        ga = AdaptiveMultiPopulationGA(small_evaluator, n_snps=N_SNPS, config=config)
        result = ga.run()
        assert result.termination_reason in {"max_evaluations", "stagnation"}
        # the cap is checked between generations, so allow one generation of overshoot
        assert result.n_evaluations <= 80 + 3 * config.n_offspring * (
            1 + config.point_mutation_trials
        )

    def test_finds_planted_haplotype(self, small_evaluator):
        """On the small study the GA must recover the planted 3-SNP haplotype."""
        config = _config(
            population_size=30, max_haplotype_size=4,
            termination_stagnation=8, max_generations=30, seed=11,
        )
        cached = CachedEvaluator(small_evaluator)
        ga = AdaptiveMultiPopulationGA(cached, n_snps=N_SNPS, config=config)
        result = ga.run()
        best3 = result.best_per_size[3]
        # the GA must find a size-3 haplotype at least as good as the planted one,
        # and the planted signal must show up in it
        planted_fitness = small_evaluator.evaluate(SMALL_CAUSAL)
        assert best3.fitness_value() >= planted_fitness - 1e-9
        assert set(best3.snps) & set(SMALL_CAUSAL)

    def test_runs_with_constraints(self, small_evaluator, small_constraints):
        ga = AdaptiveMultiPopulationGA(
            small_evaluator,
            n_snps=N_SNPS,
            config=_config(max_generations=5),
            constraints=small_constraints,
        )
        result = ga.run()
        for individual in result.best_per_size.values():
            assert small_constraints.is_valid(individual.snps)

    def test_continuation_run_keeps_progress(self, small_evaluator):
        ga = AdaptiveMultiPopulationGA(
            small_evaluator, n_snps=N_SNPS, config=_config(max_generations=4)
        )
        first = ga.run()
        best_before = {s: ind.fitness_value() for s, ind in first.best_per_size.items()}
        second = ga.run(reset=False)
        assert ga.n_evaluations >= first.n_evaluations
        for size, fitness in best_before.items():
            assert second.best_per_size[size].fitness_value() >= fitness - 1e-9

    def test_batch_evaluator_injection(self, small_evaluator):
        serial = SerialEvaluator(small_evaluator)
        ga = AdaptiveMultiPopulationGA(
            n_snps=N_SNPS, config=_config(max_generations=3), evaluator=serial
        )
        result = ga.run()
        # every fitness request went through the injected evaluator ...
        assert serial.stats.n_requests == result.n_evaluations
        # ... and the batch fast path answered some of them without
        # re-evaluating (generation-level dedup + cross-batch cache)
        assert serial.stats.n_evaluations <= serial.stats.n_requests
        assert ga.n_distinct_evaluations == serial.stats.n_evaluations

    def test_batch_fast_path_disabled_counts_every_request(self, small_evaluator):
        serial = SerialEvaluator(small_evaluator, dedup=False, cache_size=0)
        ga = AdaptiveMultiPopulationGA(
            n_snps=N_SNPS, config=_config(max_generations=3), evaluator=serial
        )
        result = ga.run()
        assert serial.stats.n_evaluations == result.n_evaluations


class TestSchemeToggles:
    def test_disabling_size_mutations_removes_operators(self, small_evaluator):
        config = _config().with_scheme(size_mutations=False)
        ga = AdaptiveMultiPopulationGA(small_evaluator, n_snps=N_SNPS, config=config)
        assert set(ga.mutation_controller.operator_names) == {"point_mutation"}

    def test_disabling_inter_population_crossover(self, small_evaluator):
        config = _config().with_scheme(inter_population_crossover=False)
        ga = AdaptiveMultiPopulationGA(small_evaluator, n_snps=N_SNPS, config=config)
        assert set(ga.crossover_controller.operator_names) == {"intra_population_crossover"}

    def test_disabling_random_immigrants(self, small_evaluator):
        config = _config(max_generations=8).with_scheme(random_immigrants=False)
        ga = AdaptiveMultiPopulationGA(small_evaluator, n_snps=N_SNPS, config=config)
        result = ga.run()
        assert result.history.n_immigrant_triggers() == 0
        assert ga.immigrant_policy.n_triggers == 0

    def test_full_scheme_triggers_immigrants_under_stagnation(self, small_evaluator):
        config = _config(
            random_immigrant_stagnation=2, termination_stagnation=8, max_generations=25,
        )
        ga = AdaptiveMultiPopulationGA(small_evaluator, n_snps=N_SNPS, config=config)
        result = ga.run()
        if result.termination_reason == "stagnation":
            assert result.history.n_immigrant_triggers() >= 1


class TestSteadyStateOverlap:
    """The opt-in overlap_generations pipelining (tentpole layer 3)."""

    def test_overlap_zero_is_the_barrier_default(self):
        assert GAConfig().overlap_generations == 0
        with pytest.raises(ValueError):
            GAConfig(overlap_generations=-1)

    @pytest.mark.parametrize("overlap", [1, 3])
    def test_deterministic_for_a_fixed_overlap(self, small_evaluator, overlap):
        def run_once():
            ga = AdaptiveMultiPopulationGA(
                small_evaluator,
                n_snps=N_SNPS,
                config=_config(overlap_generations=overlap),
            )
            result = ga.run()
            return [
                (size, ind.snps, ind.fitness_value())
                for size, ind in sorted(result.best_per_size.items())
            ], result.n_evaluations, result.n_generations

        assert run_once() == run_once()

    def test_pipelined_run_is_complete_and_consistent(self, small_evaluator):
        ga = AdaptiveMultiPopulationGA(
            small_evaluator, n_snps=N_SNPS, config=_config(overlap_generations=2)
        )
        result = ga.run()
        assert result.n_generations >= 1
        assert result.n_generations <= _config().max_generations
        assert result.termination_reason in {"stagnation", "max_generations"}
        # every planned generation was integrated: the history is contiguous
        assert [r.generation for r in result.history] == list(
            range(1, result.n_generations + 1)
        )
        assert result.n_evaluations == result.history[-1].n_evaluations
        # the counter matches what the evaluator really received
        assert ga.evaluator.stats.n_requests == result.n_evaluations

    def test_finds_the_planted_signal_like_the_barrier(self, small_evaluator):
        barrier = AdaptiveMultiPopulationGA(
            small_evaluator, n_snps=N_SNPS, config=_config()
        ).run()
        pipelined = AdaptiveMultiPopulationGA(
            small_evaluator, n_snps=N_SNPS, config=_config(overlap_generations=2)
        ).run()
        best_barrier = max(i.fitness_value() for i in barrier.best_per_size.values())
        best_pipelined = max(i.fitness_value() for i in pipelined.best_per_size.values())
        # steady state explores a different trajectory but the same landscape;
        # on this small planted panel both must land in the same ballpark
        assert best_pipelined >= 0.8 * best_barrier

    def test_overlap_on_a_process_backend(self, small_evaluator):
        with AdaptiveMultiPopulationGA(
            small_evaluator,
            n_snps=N_SNPS,
            config=_config(overlap_generations=1, max_generations=6),
            backend="async",
            backend_options={"n_workers": 2},
        ) as ga:
            result = ga.run()
        assert result.n_generations >= 1
