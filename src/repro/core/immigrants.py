"""Random immigrants (paper Section 4.4).

When the best individual has not changed for a configured number of
generations, every individual whose fitness is below its sub-population's
mean is replaced by a freshly drawn random individual.  This injects diversity
when the search stalls and helps avoid premature convergence, at the price of
extra evaluations — which is why the paper counts it among the "advanced
mechanisms requiring additional computations".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..genetics.constraints import HaplotypeConstraints
from .individual import HaplotypeIndividual, random_individual
from .population import MultiPopulation, SubPopulation

__all__ = ["ImmigrantPlan", "RandomImmigrantPolicy"]


@dataclass(frozen=True)
class ImmigrantPlan:
    """The replacements decided by one random-immigrant trigger.

    ``slots`` maps a haplotype size to the member indices that will be
    replaced; ``candidates`` holds, in the same order, the new random
    haplotypes that must be evaluated before taking those slots.
    """

    slots: dict[int, list[int]]
    candidates: dict[int, list[tuple[int, ...]]]

    @property
    def n_replacements(self) -> int:
        return sum(len(v) for v in self.slots.values())


class RandomImmigrantPolicy:
    """Trigger logic and replacement planning for random immigrants.

    Parameters
    ----------
    stagnation_threshold:
        Number of consecutive generations without improvement of the global
        best after which the mechanism fires (paper: 20).
    enabled:
        When ``False`` the policy never triggers (ablation switch).
    """

    def __init__(self, stagnation_threshold: int = 20, *, enabled: bool = True) -> None:
        if stagnation_threshold < 1:
            raise ValueError("stagnation_threshold must be positive")
        self.stagnation_threshold = int(stagnation_threshold)
        self.enabled = bool(enabled)
        self._n_triggers = 0

    @property
    def n_triggers(self) -> int:
        """Number of times the mechanism fired during the run."""
        return self._n_triggers

    def should_trigger(self, stagnation: int) -> bool:
        """Whether the mechanism fires for the given stagnation counter."""
        return self.enabled and stagnation > 0 and stagnation % self.stagnation_threshold == 0

    # ------------------------------------------------------------------ #
    def plan(
        self,
        population: MultiPopulation,
        constraints: HaplotypeConstraints,
        rng: np.random.Generator,
    ) -> ImmigrantPlan:
        """Plan the replacement of every below-mean individual by a random one."""
        self._n_triggers += 1
        slots: dict[int, list[int]] = {}
        candidates: dict[int, list[tuple[int, ...]]] = {}
        for subpopulation in population:
            if subpopulation.is_empty or len(subpopulation) < 2:
                continue
            victim_indices = self._below_mean_indices(subpopulation)
            if not victim_indices:
                continue
            size = subpopulation.haplotype_size
            slots[size] = victim_indices
            news: list[tuple[int, ...]] = []
            existing = {member.snps for member in subpopulation}
            for _ in victim_indices:
                for _ in range(20):  # avoid planting duplicates of surviving members
                    immigrant = random_individual(size, constraints, rng)
                    if immigrant.snps not in existing:
                        existing.add(immigrant.snps)
                        news.append(immigrant.snps)
                        break
                else:
                    news.append(random_individual(size, constraints, rng).snps)
            candidates[size] = news
        return ImmigrantPlan(slots=slots, candidates=candidates)

    @staticmethod
    def _below_mean_indices(subpopulation: SubPopulation) -> list[int]:
        mean = subpopulation.mean_fitness()
        return [
            index
            for index, member in enumerate(subpopulation.members)
            if member.fitness_value() < mean
        ]

    @staticmethod
    def apply(
        population: MultiPopulation,
        plan: ImmigrantPlan,
        evaluated: dict[int, list[HaplotypeIndividual]],
    ) -> int:
        """Install the evaluated immigrants into their reserved slots.

        ``evaluated`` maps each haplotype size to the evaluated immigrants in
        the same order as ``plan.candidates[size]``.  Returns the number of
        individuals actually replaced.
        """
        replaced = 0
        for size, indices in plan.slots.items():
            subpopulation = population.subpopulation(size)
            news = evaluated.get(size, [])
            for slot, immigrant in zip(indices, news):
                subpopulation.replace_member(slot, immigrant)
                replaced += 1
        return replaced
