"""Command-line interface.

``python -m repro <command>`` (or the ``repro-ga`` console script) exposes the
main workflows:

* ``simulate``   — generate a synthetic case/control study and write it as the
  paper's three-table layout;
* ``evaluate``   — score one haplotype (EH-DIALL + CLUMP) on a dataset;
* ``run``        — run the adaptive multi-population GA on a dataset;
* ``table1`` / ``figure4`` / ``table2`` / ``ablation`` / ``speedup`` /
  ``landscape`` — regenerate the corresponding experiment of the paper.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-ga",
        description=(
            "Parallel adaptive GA for linkage disequilibrium "
            "(reproduction of Vermeulen-Jourdan et al., IPDPS 2004)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser("simulate", help="generate a synthetic case/control study")
    p_sim.add_argument("output", help="directory to write the three-table study layout into")
    p_sim.add_argument("--n-snps", type=int, default=51)
    p_sim.add_argument("--n-affected", type=int, default=53)
    p_sim.add_argument("--n-unaffected", type=int, default=53)
    p_sim.add_argument("--seed", type=int, default=2004)

    p_eval = sub.add_parser("evaluate", help="evaluate one haplotype on a study directory")
    p_eval.add_argument("study", help="directory written by the 'simulate' command")
    p_eval.add_argument("snps", nargs="+", type=int, help="SNP indices of the haplotype")
    p_eval.add_argument("--statistic", default="t1",
                        choices=["t1", "t2", "t3", "t4", "lrt"])
    p_eval.add_argument("--significance", action="store_true",
                        help="also report Monte-Carlo p-values")

    p_run = sub.add_parser("run", help="run the adaptive multi-population GA on a study")
    p_run.add_argument("study", nargs="?", default=None,
                       help="study directory (default: the built-in lille-like dataset)")
    p_run.add_argument("--population-size", type=int, default=150)
    p_run.add_argument("--max-size", type=int, default=6)
    p_run.add_argument("--stagnation", type=int, default=100)
    p_run.add_argument("--max-generations", type=int, default=600)
    p_run.add_argument("--backend", default=None,
                       choices=["serial", "threads", "process", "process-shm"],
                       help="execution backend for fitness evaluation "
                            "(default: serial, or process when --workers > 1)")
    p_run.add_argument("--workers", type=int, default=1,
                       help="number of evaluation workers (1 = serial unless "
                            "--backend says otherwise)")
    p_run.add_argument("--chunk-size", type=int, default=None,
                       help="individuals per worker message for the chunked "
                            "backends (default: one chunk per worker)")
    p_run.add_argument("--statistic", default="t1",
                       choices=["t1", "t2", "t3", "t4", "lrt"])
    p_run.add_argument("--seed", type=int, default=0)

    sub.add_parser("table1", help="regenerate Table 1 (search-space sizes)")

    p_fig4 = sub.add_parser("figure4", help="regenerate Figure 4 (evaluation time vs size)")
    p_fig4.add_argument("--samples", type=int, default=20)
    p_fig4.add_argument("--max-size", type=int, default=7)

    p_t2 = sub.add_parser("table2", help="regenerate Table 2 (GA results over repeated runs)")
    p_t2.add_argument("--runs", type=int, default=10)
    p_t2.add_argument("--quick", action="store_true",
                      help="use the reduced configuration (minutes instead of hours)")

    p_abl = sub.add_parser("ablation", help="regenerate the Section 5.2 scheme comparison")
    p_abl.add_argument("--runs", type=int, default=3)

    p_speed = sub.add_parser("speedup", help="parallel speedup study")
    p_speed.add_argument("--measured", action="store_true",
                         help="also time the real multiprocessing farm")
    p_speed.add_argument("--backend", default="process",
                         choices=["threads", "process", "process-shm"],
                         help="parallel backend timed by --measured")
    p_speed.add_argument("--chunk-size", type=int, default=None,
                         help="individuals per worker message for --measured")

    p_land = sub.add_parser("landscape", help="regenerate the Section 3 landscape study")
    p_land.add_argument("--panel-size", type=int, default=16)
    p_land.add_argument("--max-size", type=int, default=4)

    p_rob = sub.add_parser("robustness",
                           help="cross-run solution similarity (Section 5.2 claim)")
    p_rob.add_argument("--runs", type=int, default=5)

    p_obj = sub.add_parser("objectives",
                           help="compare candidate objective functions (paper conclusion)")
    p_obj.add_argument("--per-size", type=int, default=40)

    return parser


def _load_study_dataset(path: str | None):
    from .experiments.datasets import lille51
    from .genetics.io import read_study_tables

    if path is None:
        return lille51().dataset
    dataset, _freq, _ld = read_study_tables(path)
    return dataset


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .genetics.io import write_study_tables
    from .genetics.simulate import lille_like_study

    study = lille_like_study(
        seed=args.seed,
        n_snps=args.n_snps,
        n_affected=args.n_affected,
        n_unaffected=args.n_unaffected,
    )
    paths = write_study_tables(study.dataset, args.output)
    print(f"wrote study ({study.dataset.summary()})")
    for name, path in paths.items():
        print(f"  {name}: {path}")
    print(f"planted causal haplotype: {study.causal_snps}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from .stats.evaluation import HaplotypeEvaluator

    dataset = _load_study_dataset(args.study)
    evaluator = HaplotypeEvaluator(dataset, statistic=args.statistic)
    record = evaluator.evaluate_detailed(args.snps)
    print(f"haplotype {record.snps} (size {record.size})")
    print(f"fitness ({args.statistic.upper()}): {record.fitness:.3f}")
    for name in ("t1", "t2", "t3", "t4"):
        print(f"  {name.upper()}: {record.clump.statistic(name):.3f}")
    if args.significance:
        p_values = evaluator.significance(args.snps)
        for name, p in p_values.items():
            print(f"  Monte-Carlo p({name.upper()}): {p:.4f}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .core.config import GAConfig
    from .runtime.service import RunRequest, RunService

    dataset = _load_study_dataset(args.study)
    config = GAConfig(
        population_size=args.population_size,
        max_haplotype_size=args.max_size,
        termination_stagnation=args.stagnation,
        max_generations=args.max_generations,
        seed=args.seed,
    )
    backend = args.backend or ("process" if args.workers > 1 else "serial")
    service = RunService(dataset)
    run = service.run(
        RunRequest(
            config=config,
            statistic=args.statistic,
            backend=backend,
            # an explicit --backend honours --workers exactly (even 1); only
            # the serial default leaves the worker count to the backend
            n_workers=args.workers if args.backend or args.workers > 1 else None,
            chunk_size=args.chunk_size,
        )
    )
    result = run.result
    print(
        f"finished after {result.n_generations} generations, "
        f"{result.n_evaluations} evaluations ({result.termination_reason}), "
        f"{result.elapsed_seconds:.1f}s"
    )
    print(run.summary_line())
    for row in result.summary_rows():
        print(
            f"  size {row['size']}: [{row['haplotype']}] "
            f"fitness {row['fitness']:.3f} "
            f"(found after {row['evaluations_to_best']} evaluations)"
        )
    return 0


def _cmd_table1(_args: argparse.Namespace) -> int:
    from .experiments.table1 import run_table1

    print(run_table1().format())
    return 0


def _cmd_figure4(args: argparse.Namespace) -> int:
    from .experiments.figure4 import run_figure4

    sizes = tuple(range(2, args.max_size + 1))
    print(run_figure4(sizes=sizes, n_samples=args.samples).format())
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from .experiments.table2 import paper_scale_config, quick_config, run_table2

    config = quick_config() if args.quick else paper_scale_config()
    result = run_table2(config=config, n_runs=args.runs)
    print(result.format())
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    from .experiments.ablation import run_ablation

    print(run_ablation(n_runs=args.runs).format())
    return 0


def _cmd_speedup(args: argparse.Namespace) -> int:
    from .experiments.speedup import run_measured_speedup, run_simulated_speedup

    print(run_simulated_speedup().format())
    if args.measured:
        print()
        print(run_measured_speedup(backend=args.backend,
                                   chunk_size=args.chunk_size).format())
    return 0


def _cmd_landscape(args: argparse.Namespace) -> int:
    from .experiments.landscape_study import run_landscape_study

    sizes = tuple(range(2, args.max_size + 1))
    print(run_landscape_study(panel_size=args.panel_size, sizes=sizes).format())
    return 0


def _cmd_robustness(args: argparse.Namespace) -> int:
    from .experiments.robustness import run_robustness

    result = run_robustness(n_runs=args.runs)
    print(result.format())
    print(f"mean similarity across sizes: {result.mean_similarity():.3f}")
    return 0


def _cmd_objectives(args: argparse.Namespace) -> int:
    from .experiments.objectives import run_objective_comparison

    print(run_objective_comparison(n_per_size=args.per_size).format())
    return 0


_COMMANDS = {
    "simulate": _cmd_simulate,
    "evaluate": _cmd_evaluate,
    "run": _cmd_run,
    "table1": _cmd_table1,
    "figure4": _cmd_figure4,
    "table2": _cmd_table2,
    "ablation": _cmd_ablation,
    "speedup": _cmd_speedup,
    "landscape": _cmd_landscape,
    "robustness": _cmd_robustness,
    "objectives": _cmd_objectives,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _COMMANDS[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
