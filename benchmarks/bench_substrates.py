"""Micro-benchmarks of the substrates (not a paper table; performance guards).

These benchmarks track the cost of the individual pipeline stages — the
haplotype-frequency EM, the CLUMP statistics, the pairwise LD matrix and the
end-to-end evaluation — so that regressions in the expensive inner loops are
visible independently of the GA-level experiments.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.genetics.ld import ld_matrix
from repro.stats.clump import clump_statistics, monte_carlo_p_values
from repro.stats.contingency import ContingencyTable
from repro.stats.em import estimate_haplotype_frequencies
from repro.stats.evaluation import HaplotypeEvaluator


@pytest.mark.parametrize("n_loci", (3, 5, 7))
def test_em_haplotype_frequencies(benchmark, study, n_loci):
    genotypes = study.dataset.genotypes_at(tuple(range(n_loci)))
    result = benchmark(estimate_haplotype_frequencies, genotypes)
    assert result.frequencies.sum() == pytest.approx(1.0)


def test_clump_statistics(benchmark):
    rng = np.random.default_rng(0)
    counts = rng.integers(0, 25, size=(2, 32)).astype(float)
    table = ContingencyTable(counts)
    result = benchmark(clump_statistics, table)
    assert result.statistic("t1") >= 0.0


def test_clump_monte_carlo(benchmark):
    rng = np.random.default_rng(1)
    counts = rng.integers(0, 25, size=(2, 16)).astype(float)
    table = ContingencyTable(counts)
    p_values = benchmark.pedantic(
        monte_carlo_p_values,
        kwargs=dict(table=table, n_simulations=200, seed=0),
        rounds=1,
        iterations=1,
    )
    assert all(0 < p <= 1 for p in p_values.values())


def test_pairwise_ld_matrix(benchmark, study):
    subset = study.dataset.select_snps(range(20))
    matrix = benchmark.pedantic(ld_matrix, args=(subset,), rounds=1, iterations=1)
    assert matrix.shape == (20, 20)


def test_end_to_end_evaluation_size5(benchmark, evaluator):
    value = benchmark(evaluator.evaluate, (3, 11, 22, 35, 47))
    assert value >= 0.0


def test_evaluator_construction(benchmark, study):
    evaluator = benchmark(HaplotypeEvaluator, study.dataset)
    assert evaluator.n_snps == study.dataset.n_snps
