#!/usr/bin/env python
"""Parallel evaluation: the master/slave farm and the simulated PVM cluster.

The paper's Figure 4 shows that a single EH-DIALL + CLUMP evaluation grows
exponentially with the haplotype size, which is why the evaluation phase is
farmed out to slaves (Section 4.5, Figure 6).  This example

1. measures the evaluation cost per haplotype size on this machine
   (regenerating Figure 4's series),
2. runs the same GA once with the serial evaluator and once with the
   multiprocessing master/slave farm, checking they find the same solutions,
3. calibrates the simulated PVM cluster on the measured costs and prints the
   speedup it predicts for growing cluster sizes — the reproducible version
   of the paper's parallel-implementation argument,
4. shards the panel into locus windows over ONE shared-memory segment and
   runs a per-window worker farm against each window handle — the
   deployment shape for workers that must not hold the full panel.

Run with:  python examples/parallel_evaluation.py
"""

from __future__ import annotations

from repro import (
    AdaptiveMultiPopulationGA,
    GAConfig,
    HaplotypeEvaluator,
    MasterSlaveEvaluator,
    SerialEvaluator,
    lille_like_study,
)
from repro.experiments.figure4 import run_figure4
from repro.experiments.speedup import generation_batch, run_simulated_speedup
from repro.genetics.dataset import plan_windows
from repro.runtime import EvaluatorSpec, ShardedGenotypeStore
from repro.runtime.spec import SpecEvaluatorFactory


def main() -> None:
    study = lille_like_study(seed=2004)
    dataset = study.dataset
    evaluator = HaplotypeEvaluator(dataset)

    # ------------------------------------------------------------------ #
    # 1. Figure 4 on this machine
    # ------------------------------------------------------------------ #
    figure4 = run_figure4(study=study, sizes=(2, 3, 4, 5, 6, 7), n_samples=10)
    print(figure4.format())
    print()

    # ------------------------------------------------------------------ #
    # 2. serial vs master/slave GA runs (must agree exactly)
    # ------------------------------------------------------------------ #
    config = GAConfig(
        population_size=60,
        max_haplotype_size=5,
        termination_stagnation=8,
        max_generations=25,
        seed=3,
    )

    serial_backend = SerialEvaluator(evaluator)
    serial_result = AdaptiveMultiPopulationGA(
        n_snps=dataset.n_snps, config=config, evaluator=serial_backend
    ).run()
    print(
        f"serial run:       {serial_result.n_evaluations} evaluations in "
        f"{serial_result.elapsed_seconds:.1f}s"
    )

    parallel_backend = MasterSlaveEvaluator(evaluator, n_workers=4)
    try:
        parallel_result = AdaptiveMultiPopulationGA(
            n_snps=dataset.n_snps, config=config, evaluator=parallel_backend
        ).run()
    finally:
        parallel_backend.close()
    print(
        f"master/slave run: {parallel_result.n_evaluations} evaluations in "
        f"{parallel_result.elapsed_seconds:.1f}s (4 workers)"
    )

    same = all(
        serial_result.best_per_size[size].snps == parallel_result.best_per_size[size].snps
        for size in serial_result.best_per_size
    )
    print(f"identical best haplotypes per size: {same}\n")

    # ------------------------------------------------------------------ #
    # 3. simulated PVM speedup with the measured cost model
    # ------------------------------------------------------------------ #
    batch = generation_batch(n_offspring=68, sizes=(2, 3, 4, 5, 6), n_snps=dataset.n_snps)
    simulated = run_simulated_speedup(
        worker_counts=(1, 2, 4, 8, 16, 32),
        batch=batch,
        cost_model=figure4.cost_model,
    )
    print(simulated.format())
    print(
        "\nNote: on cheap evaluations the real multiprocessing farm is dominated by "
        "inter-process messaging, exactly the trade-off the simulated cluster's "
        "message latency models; the farm pays off as the haplotype size (and thus "
        "the per-evaluation cost) grows.\n"
    )

    # ------------------------------------------------------------------ #
    # 4. window-sharded workers over one shared-memory panel copy
    # ------------------------------------------------------------------ #
    plan = plan_windows(dataset.n_snps, window_size=10, overlap=5)
    spec = EvaluatorSpec()
    reference = HaplotypeEvaluator(dataset)
    print(
        f"sharded store: {plan.n_windows} windows of {dataset.n_snps} loci "
        f"over one shared-memory segment"
    )
    with ShardedGenotypeStore(dataset, plan) as store:
        for window in list(plan)[:2]:
            # each farm's slaves attach to the ONE segment and see only their
            # window's columns; window-local fitnesses match the full panel
            handle = store.window_handle(window.start, window.stop)
            farm = MasterSlaveEvaluator(
                evaluator_factory=SpecEvaluatorFactory(spec, handle),
                dispatch="chunked",
                n_workers=2,
            )
            try:
                local = (0, 1, 2)
                value = farm.evaluate(local)
            finally:
                farm.close()
            assert value == reference.evaluate(window.to_global(local))
            print(
                f"  window {window.span()}: slaves attached to segment "
                f"{store.name!r}, haplotype {window.to_global(local)} -> {value:.3f}"
            )


if __name__ == "__main__":
    main()
