"""Multi-locus haplotype-frequency estimation by EM (gene counting).

This is the computational core of the EH-DIALL substitute.  Given *unphased*
genotypes at ``L`` biallelic loci, the phase of multiply-heterozygous
individuals is unknown, so haplotype frequencies cannot be counted directly.
The classical solution (Excoffier & Slatkin 1995; the EH program of
Terwilliger & Ott that the paper calls through EH-DIALL) is an
expectation-maximisation algorithm over the unknown phases:

* **E-step** — for every individual (grouped by identical multi-locus
  genotype), distribute its two chromosomes over the haplotype pairs
  compatible with the genotype, proportionally to the current haplotype
  frequency estimates;
* **M-step** — re-estimate haplotype frequencies from the expected counts.

The log-likelihood is non-decreasing across iterations; we stop when its
improvement falls below a tolerance.

Complexity: a genotype heterozygous at ``h`` of the ``L`` loci is compatible
with ``2^(h-1)`` unordered haplotype pairs, so the per-iteration work is
``O(sum_g 2^(h_g))`` — exponential in the haplotype size, which is exactly the
behaviour the paper's Figure 4 documents for its evaluation function.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..genetics.alleles import GENOTYPE_MISSING, n_haplotype_states

__all__ = ["EMResult", "PhaseExpansion", "expand_phases", "estimate_haplotype_frequencies"]

_LOG_FLOOR = 1e-300


@dataclass(frozen=True)
class EMResult:
    """Result of a haplotype-frequency EM run.

    Attributes
    ----------
    frequencies:
        Array of length ``2**n_loci``; ``frequencies[s]`` is the estimated
        population frequency of haplotype state ``s`` (see
        :mod:`repro.genetics.alleles` for the state encoding).
    log_likelihood:
        Final observed-data log-likelihood.
    n_iterations:
        Number of EM iterations performed.
    converged:
        Whether the log-likelihood improvement fell below ``tol`` before
        ``max_iter`` was reached.
    n_individuals:
        Number of individuals with complete genotypes that entered the
        estimation.
    n_loci:
        Number of loci of the haplotype.
    """

    frequencies: np.ndarray
    log_likelihood: float
    n_iterations: int
    converged: bool
    n_individuals: int
    n_loci: int

    @property
    def n_chromosomes(self) -> int:
        return 2 * self.n_individuals

    def expected_counts(self) -> np.ndarray:
        """Expected haplotype counts (frequencies × number of chromosomes)."""
        return self.frequencies * self.n_chromosomes


@dataclass(frozen=True)
class PhaseExpansion:
    """Pre-computed phase expansion of a set of multi-locus genotypes.

    The expansion is a flat list of candidate (haplotype a, haplotype b)
    pairs, each tagged with the genotype-class it belongs to and the number of
    ordered phase configurations it represents (1 for ``a == b``, 2
    otherwise).  All EM iterations reuse the same expansion.

    Attributes
    ----------
    n_loci:
        Number of loci.
    class_counts:
        Number of individuals in each genotype class.
    pair_a, pair_b:
        Haplotype state indices of each candidate pair.
    pair_class:
        Genotype-class index of each candidate pair.
    pair_multiplicity:
        1.0 where ``pair_a == pair_b`` else 2.0.
    n_individuals:
        Total number of individuals covered (sum of ``class_counts``).
    """

    n_loci: int
    class_counts: np.ndarray
    pair_a: np.ndarray
    pair_b: np.ndarray
    pair_class: np.ndarray
    pair_multiplicity: np.ndarray

    @property
    def n_individuals(self) -> int:
        return int(self.class_counts.sum())

    @property
    def n_classes(self) -> int:
        return self.class_counts.shape[0]

    @property
    def n_pairs(self) -> int:
        return self.pair_a.shape[0]


def _genotype_pairs(genotype: np.ndarray) -> list[tuple[int, int]]:
    """Enumerate the unordered haplotype pairs compatible with one genotype.

    ``genotype`` is a complete (no missing) vector of codes 0/1/2.  Haplotype
    states are bit masks where bit ``i`` set means allele ``2`` at locus ``i``.
    """
    het = np.flatnonzero(genotype == 1)
    base = 0
    for i in np.flatnonzero(genotype == 2):
        base |= 1 << int(i)
    if het.size == 0:
        return [(base, base)]
    pairs: list[tuple[int, int]] = []
    first = int(het[0])
    rest = [int(i) for i in het[1:]]
    # fix the phase of the first heterozygous locus to avoid double counting
    for assignment in range(1 << len(rest)):
        hap_a = base | (1 << first)
        hap_b = base
        for bit, locus in enumerate(rest):
            if (assignment >> bit) & 1:
                hap_a |= 1 << locus
            else:
                hap_b |= 1 << locus
        pairs.append((hap_a, hap_b))
    return pairs


def expand_phases(genotypes: np.ndarray) -> PhaseExpansion:
    """Group complete genotypes into classes and enumerate their phase pairs.

    Parameters
    ----------
    genotypes:
        ``(n_individuals, n_loci)`` array of codes 0/1/2/-1.  Individuals with
        any missing genotype at these loci are excluded (matching the
        behaviour of the original EH program, which requires complete data).
    """
    genotypes = np.asarray(genotypes)
    if genotypes.ndim != 2:
        raise ValueError("genotypes must be 2-D (individuals x loci)")
    n_loci = genotypes.shape[1]
    if n_loci == 0:
        raise ValueError("at least one locus is required")
    complete = ~np.any(genotypes == GENOTYPE_MISSING, axis=1)
    genotypes = genotypes[complete]

    if genotypes.shape[0] == 0:
        return PhaseExpansion(
            n_loci=n_loci,
            class_counts=np.zeros(0, dtype=np.int64),
            pair_a=np.zeros(0, dtype=np.int64),
            pair_b=np.zeros(0, dtype=np.int64),
            pair_class=np.zeros(0, dtype=np.int64),
            pair_multiplicity=np.zeros(0, dtype=np.float64),
        )

    classes, counts = np.unique(genotypes, axis=0, return_counts=True)
    pair_a: list[int] = []
    pair_b: list[int] = []
    pair_class: list[int] = []
    for class_idx, genotype in enumerate(classes):
        for a, b in _genotype_pairs(genotype):
            pair_a.append(a)
            pair_b.append(b)
            pair_class.append(class_idx)
    pa = np.asarray(pair_a, dtype=np.int64)
    pb = np.asarray(pair_b, dtype=np.int64)
    multiplicity = np.where(pa == pb, 1.0, 2.0)
    return PhaseExpansion(
        n_loci=n_loci,
        class_counts=counts.astype(np.int64),
        pair_a=pa,
        pair_b=pb,
        pair_class=np.asarray(pair_class, dtype=np.int64),
        pair_multiplicity=multiplicity,
    )


def _log_likelihood(expansion: PhaseExpansion, frequencies: np.ndarray) -> float:
    pair_prob = (
        expansion.pair_multiplicity
        * frequencies[expansion.pair_a]
        * frequencies[expansion.pair_b]
    )
    class_prob = np.zeros(expansion.n_classes, dtype=np.float64)
    np.add.at(class_prob, expansion.pair_class, pair_prob)
    return float(np.sum(expansion.class_counts * np.log(np.maximum(class_prob, _LOG_FLOOR))))


def estimate_haplotype_frequencies(
    genotypes: np.ndarray,
    *,
    initial_frequencies: np.ndarray | None = None,
    max_iter: int = 200,
    tol: float = 1e-8,
) -> EMResult:
    """Estimate multi-locus haplotype frequencies from unphased genotypes.

    Parameters
    ----------
    genotypes:
        ``(n_individuals, n_loci)`` unphased genotype codes.
    initial_frequencies:
        Optional starting point on the ``2**n_loci`` simplex; defaults to the
        uniform distribution.
    max_iter:
        Maximum number of EM iterations.
    tol:
        Convergence threshold on the log-likelihood improvement.

    Returns
    -------
    EMResult
    """
    expansion = expand_phases(genotypes)
    return estimate_from_expansion(
        expansion, initial_frequencies=initial_frequencies, max_iter=max_iter, tol=tol
    )


def estimate_from_expansion(
    expansion: PhaseExpansion,
    *,
    initial_frequencies: np.ndarray | None = None,
    max_iter: int = 200,
    tol: float = 1e-8,
) -> EMResult:
    """Run the EM on a pre-computed :class:`PhaseExpansion`."""
    n_states = n_haplotype_states(expansion.n_loci)
    if initial_frequencies is None:
        frequencies = np.full(n_states, 1.0 / n_states, dtype=np.float64)
    else:
        frequencies = np.asarray(initial_frequencies, dtype=np.float64).copy()
        if frequencies.shape != (n_states,):
            raise ValueError(f"initial_frequencies must have length {n_states}")
        if np.any(frequencies < 0):
            raise ValueError("initial_frequencies must be non-negative")
        total = frequencies.sum()
        if total <= 0:
            raise ValueError("initial_frequencies must not be all zero")
        frequencies /= total

    n_individuals = expansion.n_individuals
    if n_individuals == 0:
        return EMResult(
            frequencies=frequencies,
            log_likelihood=0.0,
            n_iterations=0,
            converged=True,
            n_individuals=0,
            n_loci=expansion.n_loci,
        )

    n_chromosomes = 2.0 * n_individuals
    class_counts = expansion.class_counts.astype(np.float64)
    log_likelihood = _log_likelihood(expansion, frequencies)
    converged = False
    iteration = 0
    for iteration in range(1, max_iter + 1):
        # E-step: posterior probability of each compatible pair within its class
        pair_prob = (
            expansion.pair_multiplicity
            * frequencies[expansion.pair_a]
            * frequencies[expansion.pair_b]
        )
        class_prob = np.zeros(expansion.n_classes, dtype=np.float64)
        np.add.at(class_prob, expansion.pair_class, pair_prob)
        class_prob = np.maximum(class_prob, _LOG_FLOOR)
        posterior = pair_prob / class_prob[expansion.pair_class]
        weight = posterior * class_counts[expansion.pair_class]

        # M-step: expected haplotype counts -> new frequencies
        hap_counts = np.zeros(frequencies.shape[0], dtype=np.float64)
        np.add.at(hap_counts, expansion.pair_a, weight)
        np.add.at(hap_counts, expansion.pair_b, weight)
        frequencies = hap_counts / n_chromosomes

        new_log_likelihood = _log_likelihood(expansion, frequencies)
        if abs(new_log_likelihood - log_likelihood) < tol:
            log_likelihood = new_log_likelihood
            converged = True
            break
        log_likelihood = new_log_likelihood

    return EMResult(
        frequencies=frequencies,
        log_likelihood=log_likelihood,
        n_iterations=iteration,
        converged=converged,
        n_individuals=n_individuals,
        n_loci=expansion.n_loci,
    )
