"""Timing utilities and speedup accounting for the parallel experiments."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence
from contextlib import contextmanager

import numpy as np

__all__ = ["Timer", "time_callable", "SpeedupPoint", "SpeedupReport"]


class Timer:
    """Simple wall-clock timer usable as a context manager.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is not None:
            self.elapsed = time.perf_counter() - self._start
            self._start = None


def time_callable(
    func: Callable[[], object],
    *,
    repeats: int = 3,
    warmup: int = 1,
) -> tuple[float, float]:
    """Time a zero-argument callable.

    Returns the (mean, standard deviation) of the wall-clock time over
    ``repeats`` measured runs, after ``warmup`` unmeasured runs.
    """
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    if warmup < 0:
        raise ValueError("warmup must be non-negative")
    for _ in range(warmup):
        func()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        samples.append(time.perf_counter() - start)
    arr = np.asarray(samples)
    return float(arr.mean()), float(arr.std())


@dataclass(frozen=True)
class SpeedupPoint:
    """One point of a speedup curve."""

    n_workers: int
    seconds: float

    def speedup(self, serial_seconds: float) -> float:
        return 0.0 if self.seconds <= 0 else serial_seconds / self.seconds

    def efficiency(self, serial_seconds: float) -> float:
        return 0.0 if self.n_workers == 0 else self.speedup(serial_seconds) / self.n_workers


@dataclass
class SpeedupReport:
    """Speedup curve of a fixed workload across worker counts.

    The serial reference is the measurement at ``n_workers == 1`` if present,
    otherwise the supplied ``serial_seconds``.
    """

    points: list[SpeedupPoint] = field(default_factory=list)
    serial_seconds: float | None = None

    def add(self, n_workers: int, seconds: float) -> None:
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        self.points.append(SpeedupPoint(n_workers=n_workers, seconds=seconds))

    def _reference(self) -> float:
        for point in self.points:
            if point.n_workers == 1:
                return point.seconds
        if self.serial_seconds is not None:
            return self.serial_seconds
        raise ValueError("no serial reference available (add a 1-worker point or serial_seconds)")

    def speedups(self) -> dict[int, float]:
        """``{n_workers: speedup}`` relative to the serial reference."""
        ref = self._reference()
        return {p.n_workers: p.speedup(ref) for p in sorted(self.points, key=lambda p: p.n_workers)}

    def efficiencies(self) -> dict[int, float]:
        """``{n_workers: parallel efficiency}``."""
        ref = self._reference()
        return {
            p.n_workers: p.efficiency(ref)
            for p in sorted(self.points, key=lambda p: p.n_workers)
        }
