"""Tests of the synthetic study generator (the documented data substitution)."""

import numpy as np
import pytest

from repro.genetics.alleles import STATUS_AFFECTED, STATUS_UNAFFECTED, STATUS_UNKNOWN
from repro.genetics.frequencies import allele_frequencies
from repro.genetics.simulate import (
    DiseaseModel,
    PopulationModel,
    large_study_249,
    lille_like_study,
    simulate_case_control_study,
    simulate_haplotypes,
)


class TestPopulationModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            PopulationModel(n_snps=0)
        with pytest.raises(ValueError):
            PopulationModel(n_snps=10, within_block_correlation=1.0)
        with pytest.raises(ValueError):
            PopulationModel(n_snps=10, min_allele_frequency=0.6, max_allele_frequency=0.5)

    def test_haplotype_simulation_shape_and_codes(self, rng):
        model = PopulationModel(n_snps=20)
        haplotypes = simulate_haplotypes(model, 50, rng)
        assert haplotypes.shape == (50, 20)
        assert set(np.unique(haplotypes)) <= {1, 2}

    def test_block_correlation_increases_adjacent_agreement(self, rng):
        correlated = PopulationModel(n_snps=30, block_size=30, within_block_correlation=0.9)
        independent = PopulationModel(n_snps=30, block_size=1, within_block_correlation=0.9)
        freqs = np.full(30, 0.5)
        h_corr = simulate_haplotypes(correlated, 400, rng, freqs)
        h_ind = simulate_haplotypes(independent, 400, rng, freqs)
        agree_corr = np.mean(h_corr[:, :-1] == h_corr[:, 1:])
        agree_ind = np.mean(h_ind[:, :-1] == h_ind[:, 1:])
        assert agree_corr > agree_ind + 0.1


class TestDiseaseModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            DiseaseModel(causal_snps=(), risk_alleles=())
        with pytest.raises(ValueError):
            DiseaseModel(causal_snps=(3, 1), risk_alleles=(2, 2))
        with pytest.raises(ValueError):
            DiseaseModel(causal_snps=(1, 3), risk_alleles=(2, 5))
        with pytest.raises(ValueError):
            DiseaseModel(causal_snps=(1,), risk_alleles=(2,), relative_risk=0.5)
        with pytest.raises(ValueError):
            DiseaseModel(causal_snps=(1,), risk_alleles=(2,), risk_haplotype_frequency=1.5)

    def test_penetrance_is_monotone_and_capped(self):
        model = DiseaseModel(
            causal_snps=(0, 1), risk_alleles=(2, 2),
            baseline_penetrance=0.1, relative_risk=5.0, max_penetrance=0.9,
        )
        assert model.penetrance(0) == pytest.approx(0.1)
        assert model.penetrance(1) == pytest.approx(0.5)
        assert model.penetrance(2) == pytest.approx(0.9)  # capped
        with pytest.raises(ValueError):
            model.penetrance(-1)

    def test_risk_copies(self):
        model = DiseaseModel(causal_snps=(0, 2), risk_alleles=(2, 2))
        pair = np.array([[2, 1, 2, 1], [1, 1, 2, 1]], dtype=np.int8)
        assert model.risk_copies(pair) == 1


class TestSimulateStudy:
    def test_group_sizes_and_determinism(self):
        model = PopulationModel(n_snps=12)
        disease = DiseaseModel(
            causal_snps=(1, 4), risk_alleles=(2, 2),
            baseline_penetrance=0.1, relative_risk=5.0, risk_haplotype_frequency=0.3,
        )
        kwargs = dict(
            population_model=model, disease_model=disease,
            n_affected=20, n_unaffected=25, n_unknown=5, seed=11,
        )
        study1 = simulate_case_control_study(**kwargs)
        study2 = simulate_case_control_study(**kwargs)
        dataset = study1.dataset
        assert dataset.n_affected == 20
        assert dataset.n_unaffected == 25
        assert dataset.n_unknown == 5
        assert dataset.n_snps == 12
        assert study1.dataset == study2.dataset  # deterministic in the seed

    def test_different_seed_changes_data(self):
        study1 = lille_like_study(seed=1, n_affected=10, n_unaffected=10)
        study2 = lille_like_study(seed=2, n_affected=10, n_unaffected=10)
        assert study1.dataset != study2.dataset

    def test_missing_rate_applied(self):
        study = lille_like_study(seed=3, n_affected=20, n_unaffected=20, missing_rate=0.1)
        assert 0.02 < study.dataset.missing_rate < 0.25

    def test_causal_snp_outside_panel_rejected(self):
        model = PopulationModel(n_snps=5)
        disease = DiseaseModel(causal_snps=(10,), risk_alleles=(2,))
        with pytest.raises(ValueError):
            simulate_case_control_study(
                population_model=model, disease_model=disease,
                n_affected=5, n_unaffected=5,
            )

    def test_planted_signal_enriches_cases(self, small_study):
        """The risk alleles must be more frequent among affected individuals."""
        dataset = small_study.dataset
        causal = list(small_study.causal_snps)
        case_freq = allele_frequencies(dataset.affected())[causal]
        control_freq = allele_frequencies(dataset.unaffected())[causal]
        assert np.all(case_freq > control_freq)


class TestCannedStudies:
    def test_lille_like_dimensions_match_paper(self):
        study = lille_like_study(seed=5)
        assert study.dataset.n_snps == 51
        assert study.dataset.n_individuals == 106
        assert study.dataset.n_affected == 53
        assert study.dataset.n_unaffected == 53
        assert all(s < 51 for s in study.causal_snps)

    @pytest.mark.slow
    def test_large_study_dimensions(self):
        study = large_study_249(seed=5)
        assert study.dataset.n_snps == 249
        assert study.dataset.n_individuals == 176
        assert study.dataset.n_unknown == 70
