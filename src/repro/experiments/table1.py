"""Table 1 — size of the search space.

The paper's Table 1 lists the number of possible haplotypes of sizes 2-6 for
panels of 51, 150 and 249 SNPs, to establish that exhaustive enumeration is
impossible.  This harness regenerates the table (exactly — it is closed-form)
and also records the published values so the test suite can check them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..search.search_space import (
    PAPER_TABLE1_SIZES,
    PAPER_TABLE1_SNP_COUNTS,
    n_haplotypes_of_size,
)
from .reporting import format_table

__all__ = ["PAPER_TABLE1_VALUES", "Table1Result", "run_table1"]

#: The values printed in the paper's Table 1 (haplotype size -> {n_snps: count}).
#: The paper's entries are exact binomial coefficients except for the largest
#: cells, which it rounds (e.g. "7.6e9" for C(150, 5)); we store the exact
#: values the rounding corresponds to.
PAPER_TABLE1_VALUES: dict[int, dict[int, int]] = {
    2: {51: 1_275, 150: 11_175, 249: 30_876},
    3: {51: 20_825, 150: 551_300, 249: 2_542_124},
    4: {51: 249_900, 150: 20_260_275, 249: 156_340_626},
    5: {51: 2_349_060, 150: 591_600_030, 249: 7_660_690_674},
    6: {51: 18_009_460, 150: 14_297_000_725, 249: 311_534_754_076},
}


@dataclass(frozen=True)
class Table1Result:
    """The regenerated Table 1."""

    snp_counts: tuple[int, ...]
    sizes: tuple[int, ...]
    values: dict[int, dict[int, int]]

    def row(self, size: int) -> dict[int, int]:
        return self.values[size]

    def format(self) -> str:
        headers = ["Haplotype size"] + [f"{n} SNPs" for n in self.snp_counts]
        rows = [[size, *[self.values[size][n] for n in self.snp_counts]] for size in self.sizes]
        return format_table(headers, rows, title="Table 1 - size of the search space")


def run_table1(
    snp_counts: Sequence[int] = PAPER_TABLE1_SNP_COUNTS,
    sizes: Sequence[int] = PAPER_TABLE1_SIZES,
) -> Table1Result:
    """Regenerate Table 1 for the requested panel sizes and haplotype sizes."""
    values = {
        int(size): {int(n): n_haplotypes_of_size(n, size) for n in snp_counts}
        for size in sizes
    }
    return Table1Result(
        snp_counts=tuple(int(n) for n in snp_counts),
        sizes=tuple(int(s) for s in sizes),
        values=values,
    )
