"""Figure 4 — average evaluation time as a function of haplotype size.

The paper measures the mean EH-DIALL + CLUMP evaluation time for haplotypes of
increasing size (about 6 ms at size 3 up to about 201 ms at size 7 on a
Pentium-IV 1.7 GHz) and shows that it grows exponentially — the observation
that motivates both the parallel evaluation farm and the use of the number of
evaluations as the cost metric.

Absolute milliseconds depend on the host machine (and our EM is vectorised
NumPy rather than the original C programs), so the reproduced quantity is the
*shape*: the per-size mean times and the fitted exponential growth factor per
added SNP.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..genetics.simulate import SimulatedStudy
from ..parallel.pvm import EvaluationCostModel
from ..stats.evaluation import HaplotypeEvaluator
from .datasets import DEFAULT_SEED, lille51
from .reporting import format_table

__all__ = ["Figure4Point", "Figure4Result", "run_figure4", "PAPER_FIGURE4_REFERENCE"]

#: The two evaluation times the paper quotes in the text for Figure 4
#: (haplotype size -> seconds on the paper's hardware).
PAPER_FIGURE4_REFERENCE: dict[int, float] = {3: 0.006, 7: 0.201}


@dataclass(frozen=True)
class Figure4Point:
    """Mean measured evaluation time for one haplotype size."""

    size: int
    n_samples: int
    mean_seconds: float
    std_seconds: float


@dataclass(frozen=True)
class Figure4Result:
    """The regenerated Figure 4 series and its exponential fit."""

    points: tuple[Figure4Point, ...]
    cost_model: EvaluationCostModel

    @property
    def growth_factor(self) -> float:
        """Fitted multiplicative cost increase per additional SNP."""
        return self.cost_model.growth_factor

    def mean_seconds(self, size: int) -> float:
        for point in self.points:
            if point.size == size:
                return point.mean_seconds
        raise KeyError(f"no measurement for haplotype size {size}")

    def format(self) -> str:
        headers = ["Haplotype size", "mean eval time (ms)", "std (ms)", "samples"]
        rows = [
            [p.size, p.mean_seconds * 1e3, p.std_seconds * 1e3, p.n_samples]
            for p in self.points
        ]
        table = format_table(
            headers, rows, title="Figure 4 - average evaluation time vs haplotype size"
        )
        return (
            f"{table}\n"
            f"fitted exponential growth factor per added SNP: {self.growth_factor:.2f}"
        )


def run_figure4(
    *,
    study: SimulatedStudy | None = None,
    sizes: Sequence[int] = (2, 3, 4, 5, 6, 7),
    n_samples: int = 20,
    seed: int = DEFAULT_SEED,
) -> Figure4Result:
    """Measure mean evaluation time per haplotype size on the lille-like dataset.

    Parameters
    ----------
    study:
        Dataset to evaluate against (default: the canonical 106 × 51 study).
    sizes:
        Haplotype sizes to measure.
    n_samples:
        Number of random haplotypes timed per size.
    seed:
        Seed for the haplotype sampling.
    """
    if n_samples < 2:
        raise ValueError("n_samples must be at least 2")
    study = study or lille51(seed)
    evaluator = HaplotypeEvaluator(study.dataset)
    rng = np.random.default_rng(seed)
    n_snps = study.dataset.n_snps

    points: list[Figure4Point] = []
    for size in sizes:
        if size > n_snps:
            raise ValueError(f"haplotype size {size} exceeds the panel ({n_snps} SNPs)")
        samples = []
        for _ in range(n_samples):
            snps = tuple(sorted(rng.choice(n_snps, size=size, replace=False).tolist()))
            start = time.perf_counter()
            evaluator.evaluate(snps)
            samples.append(time.perf_counter() - start)
        arr = np.asarray(samples)
        points.append(
            Figure4Point(
                size=int(size),
                n_samples=n_samples,
                mean_seconds=float(arr.mean()),
                std_seconds=float(arr.std()),
            )
        )
    cost_model = EvaluationCostModel.fit(
        [p.size for p in points], [max(p.mean_seconds, 1e-9) for p in points]
    )
    return Figure4Result(points=tuple(points), cost_model=cost_model)
