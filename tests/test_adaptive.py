"""Tests of the adaptive operator-rate controller (Hong et al. 2000 scheme)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.adaptive import AdaptiveOperatorController
from repro.core.operators.base import OperatorApplication

NAMES = ["point_mutation", "reduction_mutation", "augmentation_mutation"]


def _controller(**kwargs):
    defaults = dict(global_rate=0.6, min_rate=0.05, adaptive=True)
    defaults.update(kwargs)
    return AdaptiveOperatorController(NAMES, **defaults)


class TestConstruction:
    def test_initial_rates_are_uniform_and_sum_to_global(self):
        controller = _controller()
        rates = controller.rates
        assert sum(rates.values()) == pytest.approx(0.6)
        assert all(r == pytest.approx(0.2) for r in rates.values())

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveOperatorController([], global_rate=0.5)
        with pytest.raises(ValueError):
            AdaptiveOperatorController(["a", "a"], global_rate=0.5)
        with pytest.raises(ValueError):
            AdaptiveOperatorController(["a"], global_rate=1.5)
        with pytest.raises(ValueError):
            AdaptiveOperatorController(["a", "b"], global_rate=0.2, min_rate=0.1)
        with pytest.raises(ValueError):
            AdaptiveOperatorController(["a"], global_rate=0.5, min_rate=-0.1)


class TestAdaptation:
    def test_profitable_operator_gains_rate(self):
        controller = _controller()
        controller.record(OperatorApplication("point_mutation", 0.5))
        controller.record(OperatorApplication("point_mutation", 0.3))
        controller.record(OperatorApplication("reduction_mutation", 0.0))
        snapshot = controller.end_generation()
        rates = controller.rates
        assert rates["point_mutation"] > rates["reduction_mutation"]
        assert rates["reduction_mutation"] == pytest.approx(0.05)  # floor delta
        assert sum(rates.values()) == pytest.approx(0.6)
        assert snapshot.profits["point_mutation"] == pytest.approx(0.4)
        assert snapshot.n_applications["point_mutation"] == 2

    def test_rates_unchanged_when_no_progress(self):
        controller = _controller()
        before = controller.rates
        controller.record(OperatorApplication("point_mutation", 0.0))
        controller.end_generation()
        assert controller.rates == before

    def test_non_adaptive_controller_keeps_uniform_rates(self):
        controller = _controller(adaptive=False)
        controller.record(OperatorApplication("point_mutation", 1.0))
        controller.end_generation()
        assert all(r == pytest.approx(0.2) for r in controller.rates.values())

    def test_negative_progress_is_clipped(self):
        controller = _controller()
        controller.record(OperatorApplication("point_mutation", -5.0))
        controller.record(OperatorApplication("reduction_mutation", 0.2))
        controller.end_generation()
        assert controller.rates["point_mutation"] == pytest.approx(0.05)

    def test_unknown_operator_rejected(self):
        controller = _controller()
        with pytest.raises(KeyError):
            controller.record(OperatorApplication("bogus", 0.1))
        with pytest.raises(KeyError):
            controller.probability_of("bogus")

    def test_history_accumulates(self):
        controller = _controller()
        controller.end_generation()
        controller.end_generation()
        assert len(controller.history) == 2
        assert controller.history[1].generation == 2

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.sampled_from(NAMES), st.floats(min_value=0, max_value=1)),
            min_size=0,
            max_size=30,
        )
    )
    def test_invariants_hold_for_any_progress_sequence(self, applications):
        controller = _controller()
        controller.record_many(OperatorApplication(n, p) for n, p in applications)
        controller.end_generation()
        rates = controller.rates
        assert sum(rates.values()) == pytest.approx(0.6)
        assert all(r >= 0.05 - 1e-12 for r in rates.values())


class TestSampling:
    def test_sampling_respects_allowed_subset(self, rng):
        controller = _controller()
        for _ in range(20):
            name = controller.sample(rng, allowed=["reduction_mutation"])
            assert name == "reduction_mutation"

    def test_sampling_follows_rates(self, rng):
        controller = _controller()
        # make point mutation dominant
        controller.record(OperatorApplication("point_mutation", 1.0))
        controller.end_generation()
        draws = [controller.sample(rng) for _ in range(300)]
        assert draws.count("point_mutation") > 150

    def test_empty_allowed_rejected(self, rng):
        controller = _controller()
        with pytest.raises(ValueError):
            controller.sample(rng, allowed=[])

    def test_probability_of(self):
        controller = _controller()
        assert controller.probability_of("point_mutation") == pytest.approx(1 / 3)
