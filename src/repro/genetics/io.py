"""Dataset input/output.

The paper's data arrive as three plain-text tables (Section 5.1):

1. a genotype table giving, for every individual, its group (affected /
   healthy / unknown) and the value of every SNP;
2. a per-SNP allele-frequency table (frequency of forms ``1`` and ``2``);
3. a pairwise-disequilibrium table between every couple of SNPs.

This module reads and writes that three-table layout, plus two widely used
interchange formats:

* a single CSV genotype matrix (individuals × SNPs + a status column), and
* the linkage/PLINK ``.ped`` pedigree format (two allele columns per SNP).
"""

from __future__ import annotations

import csv
import io
import os
from pathlib import Path
from typing import Sequence, TextIO

import numpy as np

from .alleles import (
    GENOTYPE_MISSING,
    STATUS_AFFECTED,
    STATUS_UNAFFECTED,
    STATUS_UNKNOWN,
)
from .dataset import GenotypeDataset
from .frequencies import SnpFrequencyTable, snp_frequency_table
from .ld import PairwiseLDTable, pairwise_ld_table
from .packed import PackedPanel, pack_genotypes, packed_width

__all__ = [
    "write_genotype_csv",
    "read_genotype_csv",
    "write_ped",
    "read_ped",
    "read_bed",
    "write_bed",
    "read_vcf",
    "write_frequency_table",
    "read_frequency_table",
    "write_ld_table",
    "read_ld_table",
    "write_study_tables",
    "read_study_tables",
]

_STATUS_LABELS = {
    STATUS_AFFECTED: "affected",
    STATUS_UNAFFECTED: "unaffected",
    STATUS_UNKNOWN: "unknown",
}
_STATUS_FROM_LABEL = {v: k for k, v in _STATUS_LABELS.items()}
# numeric aliases accepted on input
_STATUS_FROM_LABEL.update({"1": STATUS_AFFECTED, "0": STATUS_UNAFFECTED, "-1": STATUS_UNKNOWN})


def _open_for_write(path: str | Path) -> TextIO:
    return open(path, "w", newline="", encoding="utf-8")


def _open_for_read(path: str | Path) -> TextIO:
    return open(path, "r", newline="", encoding="utf-8")


# --------------------------------------------------------------------------- #
# CSV genotype matrix
# --------------------------------------------------------------------------- #
def write_genotype_csv(dataset: GenotypeDataset, path: str | Path) -> None:
    """Write a dataset as a CSV matrix: one row per individual.

    Columns: ``individual_id, status, <snp names...>``.  Missing genotypes are
    written as empty cells.
    """
    with _open_for_write(path) as fh:
        writer = csv.writer(fh)
        writer.writerow(["individual_id", "status", *dataset.snp_names])
        for i in range(dataset.n_individuals):
            row: list[str] = [dataset.individual_ids[i], _STATUS_LABELS[int(dataset.status[i])]]
            for g in dataset.genotypes[i]:
                row.append("" if g == GENOTYPE_MISSING else str(int(g)))
            writer.writerow(row)


def read_genotype_csv(path: str | Path) -> GenotypeDataset:
    """Read a dataset written by :func:`write_genotype_csv`."""
    with _open_for_read(path) as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header is None or len(header) < 2:
            raise ValueError(f"{path}: missing or malformed header")
        if header[0] != "individual_id" or header[1] != "status":
            raise ValueError(f"{path}: expected 'individual_id,status,...' header")
        snp_names = header[2:]
        ids: list[str] = []
        status: list[int] = []
        rows: list[list[int]] = []
        for line_no, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != len(header):
                raise ValueError(f"{path}:{line_no}: expected {len(header)} fields, got {len(row)}")
            ids.append(row[0])
            label = row[1].strip().lower()
            if label not in _STATUS_FROM_LABEL:
                raise ValueError(f"{path}:{line_no}: unknown status {row[1]!r}")
            status.append(_STATUS_FROM_LABEL[label])
            genos = [GENOTYPE_MISSING if cell.strip() == "" else int(cell) for cell in row[2:]]
            rows.append(genos)
    genotypes = np.asarray(rows, dtype=np.int8)
    if genotypes.size == 0:
        genotypes = genotypes.reshape(0, len(snp_names))
    return GenotypeDataset(genotypes, np.asarray(status, dtype=np.int8),
                           snp_names=snp_names, individual_ids=ids)


# --------------------------------------------------------------------------- #
# linkage / PLINK PED
# --------------------------------------------------------------------------- #
def write_ped(dataset: GenotypeDataset, path: str | Path) -> None:
    """Write a dataset in linkage ``.ped`` format.

    Each row: ``family id, individual id, father, mother, sex, phenotype``
    followed by two allele columns per SNP (``1``/``2``, ``0`` for missing).
    Phenotype uses the linkage convention: 2 = affected, 1 = unaffected,
    0 = unknown.
    """
    pheno_map = {STATUS_AFFECTED: "2", STATUS_UNAFFECTED: "1", STATUS_UNKNOWN: "0"}
    with _open_for_write(path) as fh:
        for i in range(dataset.n_individuals):
            fields = ["FAM1", dataset.individual_ids[i], "0", "0", "0",
                      pheno_map[int(dataset.status[i])]]
            for g in dataset.genotypes[i]:
                if g == GENOTYPE_MISSING:
                    fields.extend(["0", "0"])
                elif g == 0:
                    fields.extend(["1", "1"])
                elif g == 1:
                    fields.extend(["1", "2"])
                else:
                    fields.extend(["2", "2"])
            fh.write(" ".join(fields) + "\n")


def read_ped(path: str | Path, snp_names: Sequence[str] | None = None) -> GenotypeDataset:
    """Read a linkage ``.ped`` file written by :func:`write_ped`.

    Phase is not preserved: the two allele columns per SNP are collapsed to
    the unphased genotype code.
    """
    pheno_map = {"2": STATUS_AFFECTED, "1": STATUS_UNAFFECTED, "0": STATUS_UNKNOWN}
    ids: list[str] = []
    status: list[int] = []
    rows: list[list[int]] = []
    with _open_for_read(path) as fh:
        for line_no, line in enumerate(fh, start=1):
            fields = line.split()
            if not fields:
                continue
            if len(fields) < 6 or (len(fields) - 6) % 2 != 0:
                raise ValueError(f"{path}:{line_no}: malformed PED row")
            ids.append(fields[1])
            if fields[5] not in pheno_map:
                raise ValueError(f"{path}:{line_no}: unknown phenotype {fields[5]!r}")
            status.append(pheno_map[fields[5]])
            alleles = fields[6:]
            genos: list[int] = []
            for a, b in zip(alleles[0::2], alleles[1::2]):
                if a == "0" or b == "0":
                    genos.append(GENOTYPE_MISSING)
                else:
                    genos.append((1 if a == "2" else 0) + (1 if b == "2" else 0))
            rows.append(genos)
    genotypes = np.asarray(rows, dtype=np.int8)
    if genotypes.size == 0:
        raise ValueError(f"{path}: empty PED file")
    n_snps = genotypes.shape[1]
    if snp_names is None:
        snp_names = [f"snp{i}" for i in range(n_snps)]
    return GenotypeDataset(genotypes, np.asarray(status, dtype=np.int8),
                           snp_names=snp_names, individual_ids=ids)


# --------------------------------------------------------------------------- #
# per-SNP frequency table
# --------------------------------------------------------------------------- #
def write_frequency_table(table: SnpFrequencyTable, path: str | Path) -> None:
    """Write the per-SNP allele-frequency table as CSV."""
    with _open_for_write(path) as fh:
        writer = csv.writer(fh)
        writer.writerow(["snp", "freq_allele1", "freq_allele2"])
        for name, f1, f2 in zip(table.snp_names, table.freq_allele1, table.freq_allele2):
            writer.writerow([name, f"{f1:.8f}", f"{f2:.8f}"])


def read_frequency_table(path: str | Path) -> SnpFrequencyTable:
    """Read a frequency table written by :func:`write_frequency_table`."""
    names: list[str] = []
    f1: list[float] = []
    f2: list[float] = []
    with _open_for_read(path) as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header != ["snp", "freq_allele1", "freq_allele2"]:
            raise ValueError(f"{path}: unexpected frequency-table header {header!r}")
        for row in reader:
            if not row:
                continue
            names.append(row[0])
            f1.append(float(row[1]))
            f2.append(float(row[2]))
    return SnpFrequencyTable(snp_names=tuple(names),
                             freq_allele1=np.asarray(f1), freq_allele2=np.asarray(f2))


# --------------------------------------------------------------------------- #
# pairwise LD table
# --------------------------------------------------------------------------- #
def write_ld_table(table: PairwiseLDTable, path: str | Path) -> None:
    """Write the pairwise LD table as CSV (square matrix with header row/column)."""
    with _open_for_write(path) as fh:
        writer = csv.writer(fh)
        writer.writerow(["measure", table.measure])
        writer.writerow(["snp", *table.snp_names])
        for i, name in enumerate(table.snp_names):
            writer.writerow([name, *(f"{v:.8f}" for v in table.values[i])])


def read_ld_table(path: str | Path) -> PairwiseLDTable:
    """Read a pairwise LD table written by :func:`write_ld_table`."""
    with _open_for_read(path) as fh:
        reader = csv.reader(fh)
        measure_row = next(reader, None)
        if not measure_row or measure_row[0] != "measure":
            raise ValueError(f"{path}: missing measure row")
        measure = measure_row[1]
        header = next(reader, None)
        if not header or header[0] != "snp":
            raise ValueError(f"{path}: missing SNP header row")
        names = header[1:]
        values = []
        for row in reader:
            if not row:
                continue
            values.append([float(v) for v in row[1:]])
    return PairwiseLDTable(snp_names=tuple(names),
                           values=np.asarray(values, dtype=np.float64), measure=measure)


# --------------------------------------------------------------------------- #
# the paper's three-table study layout
# --------------------------------------------------------------------------- #
def write_study_tables(dataset: GenotypeDataset, directory: str | Path) -> dict[str, Path]:
    """Write the paper's three-table study layout into a directory.

    Creates ``genotypes.csv``, ``frequencies.csv`` and ``ld.csv`` and returns
    their paths keyed by table name.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = {
        "genotypes": directory / "genotypes.csv",
        "frequencies": directory / "frequencies.csv",
        "ld": directory / "ld.csv",
    }
    write_genotype_csv(dataset, paths["genotypes"])
    write_frequency_table(snp_frequency_table(dataset), paths["frequencies"])
    write_ld_table(pairwise_ld_table(dataset), paths["ld"])
    return paths


def read_study_tables(
    directory: str | Path,
) -> tuple[GenotypeDataset, SnpFrequencyTable, PairwiseLDTable]:
    """Read the three-table study layout written by :func:`write_study_tables`."""
    directory = Path(directory)
    dataset = read_genotype_csv(directory / "genotypes.csv")
    freq = read_frequency_table(directory / "frequencies.csv")
    ld = read_ld_table(directory / "ld.csv")
    if freq.snp_names != dataset.snp_names or ld.snp_names != dataset.snp_names:
        raise ValueError("study tables disagree on SNP names")
    return dataset, freq, ld


# --------------------------------------------------------------------------- #
# PLINK binary (.bed/.bim/.fam)
# --------------------------------------------------------------------------- #
# The PLINK 1 binary layout is already the 2-bit packed representation this
# system runs on: 3 header bytes (magic 0x6c 0x1b + mode 0x01 for SNP-major),
# then ceil(n/4) bytes per SNP with individual i in bits 2*(i % 4).  Only the
# per-field code assignment differs, so loading is a 256-entry byte-level
# translation of the memory-mapped file straight into a
# :class:`~repro.genetics.packed.PackedPanel` — the byte genotype matrix is
# never materialised, which is what makes chromosome-scale real data a CLI
# flag instead of a memory budget.
#
# Code mapping (documented convention: PLINK's A1 allele is our allele ``2``):
#
#   bed 00 (hom A1)  -> 2      bed 10 (het)     -> 1
#   bed 01 (missing) -> 3      bed 11 (hom A2)  -> 0
_BED_MAGIC = b"\x6c\x1b"
_BED_SNP_MAJOR = 0x01

_BED_CODE_TO_DIGIT = np.array([2, 3, 1, 0], dtype=np.uint8)
_DIGIT_TO_BED_CODE = np.array([3, 2, 0, 1], dtype=np.uint8)


def _byte_translation(field_map: np.ndarray) -> np.ndarray:
    """Lift a per-2-bit-field code map to a 256-entry whole-byte table."""
    values = np.arange(256, dtype=np.uint16)
    out = np.zeros(256, dtype=np.uint16)
    for k in range(4):
        out |= field_map[(values >> (2 * k)) & 3].astype(np.uint16) << (2 * k)
    return out.astype(np.uint8)


_BED_TO_PACKED = _byte_translation(_BED_CODE_TO_DIGIT)
_PACKED_TO_BED = _byte_translation(_DIGIT_TO_BED_CODE)

# .fam phenotype column: 2 = affected (case), 1 = unaffected (control),
# anything else (0, -9, ...) = unknown
_PHENO_TO_STATUS = {"2": STATUS_AFFECTED, "1": STATUS_UNAFFECTED}
_STATUS_TO_PHENO = {STATUS_AFFECTED: "2", STATUS_UNAFFECTED: "1", STATUS_UNKNOWN: "0"}


def _bed_paths(prefix: str | Path) -> tuple[Path, Path, Path]:
    text = str(prefix)
    if text.endswith(".bed"):
        text = text[: -len(".bed")]
    return Path(text + ".bed"), Path(text + ".bim"), Path(text + ".fam")


def _read_table_rows(path: Path, n_columns: int, what: str) -> list[list[str]]:
    rows: list[list[str]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for number, line in enumerate(fh, start=1):
            fields = line.split()
            if not fields:
                continue
            if len(fields) < n_columns:
                raise ValueError(
                    f"{path}:{number}: expected at least {n_columns} "
                    f"whitespace-separated {what} columns, got {len(fields)}"
                )
            rows.append(fields)
    return rows


def read_bed(prefix: str | Path, *, mmap: bool = True) -> GenotypeDataset:
    """Read a PLINK binary fileset (``.bed`` + ``.bim`` + ``.fam``).

    ``prefix`` is the shared path stem (a trailing ``.bed`` is tolerated).
    Returns a *packed-native* :class:`GenotypeDataset`: the genotype payload
    is translated byte-for-byte from the (memory-mapped, with ``mmap=True``)
    ``.bed`` file into the 2-bit panel, so memory cost is the packed size —
    the full byte matrix is never built.  Individual ids and status come from
    the ``.fam`` (phenotype 2 = affected, 1 = unaffected, else unknown), SNP
    names from the ``.bim``.
    """
    bed_path, bim_path, fam_path = _bed_paths(prefix)
    for path in (bed_path, bim_path, fam_path):
        if not path.exists():
            raise FileNotFoundError(f"missing PLINK file {path}")
    fam_rows = _read_table_rows(fam_path, 6, ".fam")
    bim_rows = _read_table_rows(bim_path, 2, ".bim")
    if not fam_rows:
        raise ValueError(f"{fam_path}: no individuals")
    if not bim_rows:
        raise ValueError(f"{bim_path}: no SNPs")
    individual_ids = [row[1] for row in fam_rows]
    status = np.array(
        [_PHENO_TO_STATUS.get(row[5], STATUS_UNKNOWN) for row in fam_rows],
        dtype=np.int8,
    )
    snp_names = [row[1] for row in bim_rows]
    n, m = len(individual_ids), len(snp_names)
    width = packed_width(n)
    expected_size = 3 + m * width
    actual_size = os.path.getsize(bed_path)
    if actual_size != expected_size:
        raise ValueError(
            f"{bed_path}: size {actual_size} does not match the "
            f"{n} individuals x {m} SNPs implied by .fam/.bim "
            f"(expected {expected_size} bytes)"
        )
    with open(bed_path, "rb") as fh:
        header = fh.read(3)
    if header[:2] != _BED_MAGIC:
        raise ValueError(f"{bed_path}: not a PLINK .bed file (bad magic)")
    if header[2] != _BED_SNP_MAJOR:
        raise ValueError(
            f"{bed_path}: only SNP-major .bed files are supported "
            f"(mode byte 0x{header[2]:02x})"
        )
    if mmap:
        raw = np.memmap(bed_path, dtype=np.uint8, mode="r", offset=3)
    else:
        with open(bed_path, "rb") as fh:
            fh.seek(3)
            raw = np.frombuffer(fh.read(), dtype=np.uint8)
    data = _BED_TO_PACKED[raw].reshape(m, width)
    if n % 4:
        # bed pads the trailing byte with zero bits; canonicalise the padding
        # fields to the missing code so every kernel sees the same bytes a
        # pack_genotypes-built panel would hold
        keep = (1 << (2 * (n % 4))) - 1
        data[:, -1] = (data[:, -1] & np.uint8(keep)) | np.uint8(0xFF & ~keep)
    return GenotypeDataset(
        None,
        status,
        snp_names=snp_names,
        individual_ids=individual_ids,
        packed=PackedPanel(data, n),
    )


# --------------------------------------------------------------------------- #
# VCF (sites + GT genotypes)
# --------------------------------------------------------------------------- #
#: Packed-field code for a missing call (mirrors packed.CODE_MISSING without
#: importing the kernel module here).
_VCF_MISSING = 3


def _vcf_open(path: str | Path) -> TextIO:
    if str(path).endswith(".gz"):
        import gzip

        return io.TextIOWrapper(gzip.open(path, "rb"), encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def _read_phenotypes(path: str | Path) -> dict[str, int]:
    """``individual pheno`` sidecar (or .fam rows) → status by individual id.

    Two whitespace-separated layouts are accepted per row: ``id pheno`` and
    the 6+-column .fam layout (``fam id father mother sex pheno``); the
    phenotype uses the linkage convention (2 = affected, 1 = unaffected,
    anything else unknown).
    """
    phenotypes: dict[str, int] = {}
    for row in _read_table_rows(Path(path), 2, "phenotype"):
        if len(row) >= 6:  # .fam layout
            iid, pheno = row[1], row[5]
        else:
            iid, pheno = row[0], row[1]
        phenotypes[iid] = _PHENO_TO_STATUS.get(pheno, STATUS_UNKNOWN)
    return phenotypes


def read_vcf(path: str | Path, *, pheno: str | Path | None = None) -> GenotypeDataset:
    """Read a minimal VCF (``.vcf`` or ``.vcf.gz``) into a packed dataset.

    Only the GT field of each sample is used: the genotype digit is the
    number of non-reference alleles (``0/0`` → 0, ``0/1`` → 1, ``1/1`` → 2,
    any allele ``.`` — e.g. ``./.`` — → the missing code 3; every non-zero
    allele index counts as the alternate, so multi-allelic records collapse
    to ref vs non-ref; a haploid call is read as homozygous).  VCF is
    site-major like ``.bed``, so each record packs straight into one row of
    the 2-bit panel and the byte genotype matrix is never materialised.

    SNP names come from the ID column (``chrom:pos`` when ID is ``.``);
    case/control status from the ``pheno`` sidecar (``id pheno`` rows or a
    .fam file, linkage convention), defaulting to *unknown* — most scan
    statistics need affected individuals, so a missing sidecar usually wants
    to be an explicit choice by the caller.
    """
    phenotypes = {} if pheno is None else _read_phenotypes(pheno)
    sample_ids: list[str] | None = None
    snp_names: list[str] = []
    packed_rows: list[np.ndarray] = []
    n = 0
    width = 0
    with _vcf_open(path) as fh:
        for number, line in enumerate(fh, start=1):
            line = line.rstrip("\n")
            if not line or line.startswith("##"):
                continue
            if line.startswith("#"):
                header = line[1:].split("\t")
                if len(header) < 10 or header[8] != "FORMAT":
                    raise ValueError(
                        f"{path}:{number}: VCF header must carry FORMAT and "
                        f"at least one sample column"
                    )
                sample_ids = header[9:]
                n = len(sample_ids)
                width = packed_width(n)
                continue
            if sample_ids is None:
                raise ValueError(f"{path}:{number}: data before the #CHROM header")
            fields = line.split("\t")
            if len(fields) != 9 + n:
                raise ValueError(
                    f"{path}:{number}: expected {9 + n} tab-separated fields, "
                    f"got {len(fields)}"
                )
            chrom, pos, snp_id = fields[0], fields[1], fields[2]
            snp_names.append(snp_id if snp_id not in (".", "") else f"{chrom}:{pos}")
            fmt = fields[8].split(":")
            try:
                gt_index = fmt.index("GT")
            except ValueError:
                raise ValueError(
                    f"{path}:{number}: record has no GT field (FORMAT "
                    f"{fields[8]!r})"
                ) from None
            codes = np.full(width * 4, _VCF_MISSING, dtype=np.uint8)
            for i, sample in enumerate(fields[9:]):
                call = sample.split(":")[gt_index] if ":" in sample else sample
                alleles = call.replace("|", "/").split("/")
                if "." in alleles or call == "":
                    continue  # stays missing
                try:
                    alts = sum(1 for a in alleles if int(a) != 0)
                except ValueError:
                    raise ValueError(
                        f"{path}:{number}: malformed GT {call!r} for sample "
                        f"{sample_ids[i]!r}"
                    ) from None
                if len(alleles) == 1:  # haploid: read as homozygous
                    alts *= 2
                codes[i] = min(alts, 2)
            # pack 4 fields per byte, field k at bits 2k (pack_genotypes'
            # layout; padding fields already hold the missing code)
            packed_rows.append(
                codes[0::4]
                | (codes[1::4] << 2)
                | (codes[2::4] << 4)
                | (codes[3::4] << 6)
            )
    if sample_ids is None:
        raise ValueError(f"{path}: missing #CHROM header line")
    if not packed_rows:
        raise ValueError(f"{path}: no variant records")
    status = np.array(
        [phenotypes.get(iid, STATUS_UNKNOWN) for iid in sample_ids], dtype=np.int8
    )
    data = np.vstack(packed_rows)
    return GenotypeDataset(
        None,
        status,
        snp_names=snp_names,
        individual_ids=sample_ids,
        packed=PackedPanel(data, n),
    )


def write_bed(dataset: GenotypeDataset, prefix: str | Path) -> tuple[Path, Path, Path]:
    """Write a dataset as a PLINK binary fileset; returns (bed, bim, fam) paths.

    The inverse of :func:`read_bed` (same A1-is-allele-2 code convention, so
    a round trip reproduces the dataset exactly, including missing calls).
    """
    bed_path, bim_path, fam_path = _bed_paths(prefix)
    panel = dataset.packed
    n = dataset.n_individuals
    if panel is None or panel.row_start != 0 or panel.data.shape[1] != packed_width(n):
        panel = PackedPanel(pack_genotypes(dataset.genotypes), n)
    data = _PACKED_TO_BED[panel.data]
    if n % 4:
        data[:, -1] &= np.uint8((1 << (2 * (n % 4))) - 1)  # bed padding is zero bits
    with open(bed_path, "wb") as fh:
        fh.write(_BED_MAGIC + bytes([_BED_SNP_MAJOR]))
        fh.write(np.ascontiguousarray(data).tobytes())
    with open(fam_path, "w", encoding="utf-8") as fh:
        for i, iid in enumerate(dataset.individual_ids):
            pheno = _STATUS_TO_PHENO[int(dataset.status[i])]
            fh.write(f"{iid} {iid} 0 0 0 {pheno}\n")
    with open(bim_path, "w", encoding="utf-8") as fh:
        for position, name in enumerate(dataset.snp_names, start=1):
            fh.write(f"1 {name} 0 {position} 2 1\n")
    return bed_path, bim_path, fam_path
