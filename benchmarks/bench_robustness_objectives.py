"""Benchmarks: cross-run robustness (Section 5.2) and objective comparison (conclusion).

Two secondary claims of the paper get their own regenerating benchmarks:

* robustness — "solutions provided are similar from one execution to another":
  repeated GA runs with different seeds must land on strongly overlapping SNP
  sets (mean pairwise Jaccard similarity well above what unrelated random
  haplotypes would give);
* objective functions — the conclusion announces a comparison of alternative
  objectives; the benchmark scores a common candidate set under T1, T2, T4 and
  the case/control likelihood-ratio test and reports their rank agreement.
"""

from __future__ import annotations

from repro.experiments.objectives import run_objective_comparison
from repro.experiments.robustness import run_robustness
from repro.experiments.table2 import quick_config


def test_robustness_across_runs(benchmark, study, ga_config, scale):
    if scale == "paper":
        config, n_runs = ga_config, 5
    else:
        config = quick_config(
            population_size=40, max_haplotype_size=4,
            termination_stagnation=6, max_generations=20,
        )
        n_runs = 3
    result = benchmark.pedantic(
        run_robustness,
        kwargs=dict(study=study, config=config, n_runs=n_runs),
        rounds=1,
        iterations=1,
    )
    # the paper's claim: solutions are similar from one execution to another.
    # Two random size-4 haplotypes over 51 SNPs overlap with Jaccard ~0.02, so
    # anything above 0.2 on average indicates genuine cross-run agreement.
    assert result.mean_similarity() > 0.2
    print()
    print(result.format())


def test_objective_comparison(benchmark, study, scale):
    n_per_size = 60 if scale == "paper" else 20
    result = benchmark.pedantic(
        run_objective_comparison,
        kwargs=dict(study=study, sizes=(2, 3, 4), n_per_size=n_per_size, top_k=10),
        rounds=1,
        iterations=1,
    )
    # the chi-square family must agree strongly with itself, and every
    # objective should surface the planted signal in its top haplotypes
    assert result.correlation("t1", "t2") > 0.5
    assert max(result.causal_hit_rate.values()) > 0.3
    print()
    print(result.format())
