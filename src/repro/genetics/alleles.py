"""Allele and genotype coding conventions.

The paper (and the original EH-DIALL / CLUMP tools it relies on) uses a
biallelic SNP coding where the two observed forms of a SNP are written ``1``
and ``2`` (see Figure 1 of the paper).  Internally we store *unphased
genotypes* as the number of copies of allele ``2`` carried by an individual at
a locus, which is the standard additive coding:

========  =================================  =====================
code      meaning                            alleles carried
========  =================================  =====================
``0``     homozygous for allele ``1``        ``1 / 1``
``1``     heterozygous                       ``1 / 2``
``2``     homozygous for allele ``2``        ``2 / 2``
``-1``    missing genotype                   unknown
========  =================================  =====================

A *haplotype state* over ``L`` SNPs (one allele chosen at each of the ``L``
loci) is represented by an integer in ``[0, 2**L)`` whose ``i``-th bit is
``0`` when the haplotype carries allele ``1`` at the ``i``-th locus and ``1``
when it carries allele ``2``.  The functions in this module convert between
that compact index representation and the human readable ``"1221"`` style
labels used throughout the paper (e.g. Figure 2, "haplotype 1221/1122").
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "ALLELE_1",
    "ALLELE_2",
    "GENOTYPE_HOM_1",
    "GENOTYPE_HET",
    "GENOTYPE_HOM_2",
    "GENOTYPE_MISSING",
    "VALID_GENOTYPES",
    "STATUS_UNAFFECTED",
    "STATUS_AFFECTED",
    "STATUS_UNKNOWN",
    "n_haplotype_states",
    "haplotype_index_to_alleles",
    "alleles_to_haplotype_index",
    "haplotype_label",
    "parse_haplotype_label",
    "all_haplotype_labels",
]

#: The "wild type" allele (paper coding ``1``).
ALLELE_1: int = 1
#: The mutated allele (paper coding ``2``).
ALLELE_2: int = 2

#: Unphased genotype codes (count of :data:`ALLELE_2` copies).
GENOTYPE_HOM_1: int = 0
GENOTYPE_HET: int = 1
GENOTYPE_HOM_2: int = 2
GENOTYPE_MISSING: int = -1

#: The set of genotype codes accepted by :class:`repro.genetics.dataset.GenotypeDataset`.
VALID_GENOTYPES: frozenset[int] = frozenset(
    {GENOTYPE_HOM_1, GENOTYPE_HET, GENOTYPE_HOM_2, GENOTYPE_MISSING}
)

#: Disease-status codes used for individuals.
STATUS_UNAFFECTED: int = 0
STATUS_AFFECTED: int = 1
STATUS_UNKNOWN: int = -1


def n_haplotype_states(n_loci: int) -> int:
    """Number of distinct haplotype states over ``n_loci`` biallelic SNPs.

    Parameters
    ----------
    n_loci:
        Number of SNPs in the haplotype.  Must be non-negative.

    Returns
    -------
    int
        ``2 ** n_loci``.
    """
    if n_loci < 0:
        raise ValueError(f"n_loci must be non-negative, got {n_loci}")
    return 1 << n_loci


def haplotype_index_to_alleles(index: int, n_loci: int) -> np.ndarray:
    """Decode a haplotype state index into its per-locus allele codes.

    Parameters
    ----------
    index:
        Haplotype state in ``[0, 2**n_loci)``.
    n_loci:
        Number of SNPs in the haplotype.

    Returns
    -------
    numpy.ndarray
        Array of length ``n_loci`` containing :data:`ALLELE_1` / :data:`ALLELE_2`.
    """
    if not 0 <= index < n_haplotype_states(n_loci):
        raise ValueError(f"haplotype index {index} out of range for {n_loci} loci")
    bits = (index >> np.arange(n_loci)) & 1
    return np.where(bits == 0, ALLELE_1, ALLELE_2).astype(np.int8)


def alleles_to_haplotype_index(alleles: Sequence[int] | np.ndarray) -> int:
    """Encode a sequence of allele codes (``1``/``2``) into a state index.

    The inverse of :func:`haplotype_index_to_alleles`.
    """
    arr = np.asarray(alleles)
    if arr.ndim != 1:
        raise ValueError("alleles must be a 1-D sequence")
    if not np.all((arr == ALLELE_1) | (arr == ALLELE_2)):
        raise ValueError(f"alleles must contain only {ALLELE_1} or {ALLELE_2}, got {arr!r}")
    bits = (arr == ALLELE_2).astype(np.int64)
    return int(np.sum(bits << np.arange(arr.size)))


def haplotype_label(index: int, n_loci: int) -> str:
    """Render a haplotype state as the paper's ``"1221"`` style string."""
    return "".join(str(int(a)) for a in haplotype_index_to_alleles(index, n_loci))


def parse_haplotype_label(label: str) -> int:
    """Parse a ``"1221"`` style label back into a haplotype state index."""
    if not label:
        raise ValueError("empty haplotype label")
    alleles = [int(c) for c in label]
    return alleles_to_haplotype_index(alleles)


def all_haplotype_labels(n_loci: int) -> list[str]:
    """All ``2**n_loci`` haplotype labels in state-index order."""
    return [haplotype_label(i, n_loci) for i in range(n_haplotype_states(n_loci))]


def validate_genotype_array(genotypes: Iterable[int] | np.ndarray) -> np.ndarray:
    """Validate and normalise a genotype array to ``int8``.

    Raises
    ------
    ValueError
        If any entry is not one of :data:`VALID_GENOTYPES`.
    """
    arr = np.asarray(genotypes, dtype=np.int8)
    bad = ~np.isin(arr, list(VALID_GENOTYPES))
    if np.any(bad):
        bad_values = sorted(set(np.asarray(arr)[bad].tolist()))
        raise ValueError(f"invalid genotype codes present: {bad_values}")
    return arr
