"""Section 4.5 — parallel master/slave evaluation speedup.

The paper's synchronous master/slave farm exists to bring the wall-clock time
of a run down to something reasonable; it does not report a speedup figure,
but the parallel implementation is one of the claimed contributions, so this
harness measures it in two complementary ways:

* **simulated** — schedule a realistic generation-sized batch of evaluations
  on the deterministic PVM model (:class:`~repro.parallel.pvm.SimulatedPVM`)
  for a range of cluster sizes; the evaluation cost model can be calibrated
  from the measured Figure-4 times so the simulated cluster reflects the real
  per-size costs.  This is exactly reproducible on any machine.
* **measured** — time the same batch through the real
  :class:`~repro.parallel.master_slave.MasterSlaveEvaluator` with 1…N worker
  processes on the host machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..genetics.simulate import SimulatedStudy
from ..parallel.master_slave import default_worker_count
from ..parallel.pvm import EvaluationCostModel, SimulatedPVM
from ..parallel.timing import SpeedupReport
from ..runtime.backends import create_evaluator
from ..runtime.spec import EvaluatorSpec
from .datasets import DEFAULT_SEED, lille51
from .reporting import format_table

__all__ = [
    "SimulatedSpeedupResult",
    "MeasuredSpeedupResult",
    "generation_batch",
    "run_simulated_speedup",
    "run_measured_speedup",
]


def generation_batch(
    *,
    n_offspring: int = 68,
    sizes: Sequence[int] = (2, 3, 4, 5, 6),
    size_weights: Sequence[float] | None = None,
    seed: int = DEFAULT_SEED,
    n_snps: int = 51,
) -> list[tuple[int, ...]]:
    """A realistic one-generation batch of haplotypes to evaluate.

    The default batch size (68) matches the paper-scale configuration
    (population 150, crossover rate 0.9 → about 67 crossover applications per
    generation); sizes are drawn with weights following the sub-population
    allocation (larger sizes are more numerous).
    """
    if n_offspring < 1:
        raise ValueError("n_offspring must be positive")
    rng = np.random.default_rng(seed)
    sizes = list(sizes)
    if size_weights is None:
        weights = np.asarray(sizes, dtype=np.float64)
    else:
        weights = np.asarray(size_weights, dtype=np.float64)
    if weights.shape != (len(sizes),):
        raise ValueError("size_weights must have one entry per size")
    weights = weights / weights.sum()
    batch: list[tuple[int, ...]] = []
    for _ in range(n_offspring):
        size = int(rng.choice(sizes, p=weights))
        batch.append(tuple(sorted(rng.choice(n_snps, size=size, replace=False).tolist())))
    return batch


@dataclass(frozen=True)
class SimulatedSpeedupResult:
    """Speedup of one batch on the simulated PVM cluster."""

    worker_counts: tuple[int, ...]
    speedups: dict[int, float]
    efficiencies: dict[int, float]
    cost_model: EvaluationCostModel
    batch_size: int

    def format(self) -> str:
        headers = ["slaves", "speedup", "efficiency"]
        rows = [[n, self.speedups[n], self.efficiencies[n]] for n in self.worker_counts]
        return format_table(
            headers, rows,
            title=f"Simulated PVM speedup ({self.batch_size} evaluations per generation)",
        )


def run_simulated_speedup(
    *,
    worker_counts: Sequence[int] = (1, 2, 4, 8, 16),
    batch: Sequence[tuple[int, ...]] | None = None,
    cost_model: EvaluationCostModel | None = None,
    message_latency_seconds: float = 1.0e-4,
    seed: int = DEFAULT_SEED,
) -> SimulatedSpeedupResult:
    """Schedule a generation batch on simulated clusters of several sizes."""
    if not worker_counts:
        raise ValueError("worker_counts must not be empty")
    batch = list(batch) if batch is not None else generation_batch(seed=seed)
    sizes = [len(snps) for snps in batch]
    cost_model = cost_model or EvaluationCostModel()
    speedups: dict[int, float] = {}
    efficiencies: dict[int, float] = {}
    for n in worker_counts:
        cluster = SimulatedPVM(
            int(n), cost_model=cost_model, message_latency_seconds=message_latency_seconds
        )
        schedule = cluster.schedule_batch(sizes)
        speedups[int(n)] = schedule.speedup
        efficiencies[int(n)] = schedule.efficiency
    return SimulatedSpeedupResult(
        worker_counts=tuple(int(n) for n in worker_counts),
        speedups=speedups,
        efficiencies=efficiencies,
        cost_model=cost_model,
        batch_size=len(batch),
    )


@dataclass(frozen=True)
class MeasuredSpeedupResult:
    """Wall-clock speedup measured with a real parallel backend."""

    report: SpeedupReport
    batch_size: int
    n_repeats: int
    backend: str = "process"

    def format(self) -> str:
        speedups = self.report.speedups()
        efficiencies = self.report.efficiencies()
        headers = ["workers", "speedup", "efficiency"]
        rows = [[n, speedups[n], efficiencies[n]] for n in sorted(speedups)]
        return format_table(
            headers, rows,
            title=(
                f"Measured {self.backend} backend speedup "
                f"({self.batch_size} evaluations per batch)"
            ),
        )


def run_measured_speedup(
    *,
    study: SimulatedStudy | None = None,
    worker_counts: Sequence[int] | None = None,
    batch: Sequence[tuple[int, ...]] | None = None,
    n_repeats: int = 3,
    seed: int = DEFAULT_SEED,
    backend: str = "process",
    chunk_size: int | None = None,
) -> MeasuredSpeedupResult:
    """Time the same evaluation batch through serial and parallel backends.

    ``backend`` names any registered execution backend
    (:mod:`repro.runtime.backends`); one worker always means the in-process
    serial baseline, exactly as in the seed harness.
    """
    if n_repeats < 1:
        raise ValueError("n_repeats must be positive")
    study = study or lille51(seed)
    # reuse caches and warm starts would let the repeated timing batches hit
    # memoised results, turning the measurement into a cache benchmark; the
    # speedup study times raw evaluation cost, so every cache layer — the
    # evaluator's, the master-side batch fast path's and the chunked farm's
    # worker-local LRUs — is disabled here
    spec = EvaluatorSpec(cache_size=0, warm_start=False)
    batch = list(batch) if batch is not None else generation_batch(
        n_snps=study.dataset.n_snps, seed=seed
    )
    if worker_counts is None:
        cpu = default_worker_count()
        worker_counts = sorted({1, 2, min(4, cpu), cpu})
    report = SpeedupReport()

    import time as _time

    for n_workers in worker_counts:
        evaluator = create_evaluator(
            backend if n_workers > 1 else "serial",
            spec,
            dataset=study.dataset,
            n_workers=int(n_workers),
            chunk_size=chunk_size,
            dedup=False,
            cache_size=0,
            worker_cache_size=0,
        )
        try:
            evaluator.evaluate_batch(batch[: max(2, len(batch) // 8)])  # warm-up
            start = _time.perf_counter()
            for _ in range(n_repeats):
                evaluator.evaluate_batch(batch)
            elapsed = (_time.perf_counter() - start) / n_repeats
        finally:
            evaluator.close()
        report.add(int(n_workers), elapsed)
    return MeasuredSpeedupResult(
        report=report, batch_size=len(batch), n_repeats=n_repeats, backend=backend
    )
