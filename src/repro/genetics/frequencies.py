"""Allele and genotype frequency estimation.

These estimators feed two parts of the system:

* the paper's second haplotype-validity constraint (Section 2.3): "the
  difference between the smaller frequencies of their 2 variants must be
  greater than a threshold" — which requires per-SNP minor-variant
  frequencies, and
* the EH-DIALL H0 model, where haplotype frequencies are the product of
  per-locus allele frequencies.

All estimators ignore missing genotypes (code ``-1``) on a per-SNP basis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .alleles import GENOTYPE_MISSING
from .dataset import GenotypeDataset

__all__ = [
    "allele_frequencies",
    "minor_allele_frequencies",
    "genotype_counts",
    "SnpFrequencyTable",
    "snp_frequency_table",
]


def genotype_counts(dataset: GenotypeDataset) -> np.ndarray:
    """Per-SNP genotype counts.

    Returns
    -------
    numpy.ndarray
        Integer array of shape ``(n_snps, 3)`` with counts of genotypes
        ``0``, ``1`` and ``2`` (missing genotypes are excluded).
    """
    geno = dataset.genotypes
    counts = np.empty((dataset.n_snps, 3), dtype=np.int64)
    for g in (0, 1, 2):
        counts[:, g] = np.count_nonzero(geno == g, axis=0)
    return counts


def allele_frequencies(dataset: GenotypeDataset) -> np.ndarray:
    """Per-SNP frequency of allele ``2`` estimated by gene counting.

    Returns
    -------
    numpy.ndarray
        Float array of length ``n_snps``; entry ``j`` is the frequency of
        allele ``2`` at SNP ``j`` among non-missing chromosomes.  SNPs with no
        observed genotypes get frequency ``nan``.
    """
    geno = dataset.genotypes
    observed = geno != GENOTYPE_MISSING
    n_chrom = 2 * np.count_nonzero(observed, axis=0).astype(np.float64)
    allele2_copies = np.where(observed, geno, 0).sum(axis=0).astype(np.float64)
    with np.errstate(invalid="ignore", divide="ignore"):
        freq = allele2_copies / n_chrom
    freq[n_chrom == 0] = np.nan
    return freq


def minor_allele_frequencies(dataset: GenotypeDataset) -> np.ndarray:
    """Per-SNP minor allele frequency (``min(p, 1-p)``)."""
    p2 = allele_frequencies(dataset)
    return np.minimum(p2, 1.0 - p2)


@dataclass(frozen=True)
class SnpFrequencyTable:
    """Per-SNP allele-frequency table (one of the paper's three input tables).

    Attributes
    ----------
    snp_names:
        SNP identifiers, in dataset order.
    freq_allele1:
        Frequency of allele ``1`` at each SNP.
    freq_allele2:
        Frequency of allele ``2`` at each SNP.
    """

    snp_names: tuple[str, ...]
    freq_allele1: np.ndarray
    freq_allele2: np.ndarray

    def __post_init__(self) -> None:
        if len(self.snp_names) != len(self.freq_allele1) or len(self.snp_names) != len(
            self.freq_allele2
        ):
            raise ValueError("frequency arrays must match the number of SNP names")

    @property
    def n_snps(self) -> int:
        return len(self.snp_names)

    def minor_frequency(self, snp: int) -> float:
        """Minor-variant frequency of the given SNP index."""
        return float(min(self.freq_allele1[snp], self.freq_allele2[snp]))

    def minor_frequencies(self) -> np.ndarray:
        """Minor-variant frequency for every SNP."""
        return np.minimum(self.freq_allele1, self.freq_allele2)


def snp_frequency_table(dataset: GenotypeDataset) -> SnpFrequencyTable:
    """Build the paper's per-SNP frequency table from a dataset."""
    p2 = allele_frequencies(dataset)
    return SnpFrequencyTable(
        snp_names=dataset.snp_names,
        freq_allele1=1.0 - p2,
        freq_allele2=p2,
    )
