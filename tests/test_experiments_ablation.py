"""Tests of the Section-5.2 scheme-comparison (ablation) harness."""

import math

import pytest

from repro.experiments.ablation import AblationScheme, default_schemes, run_ablation
from repro.experiments.table2 import quick_config


class TestSchemes:
    def test_default_ladder_is_cumulative(self):
        schemes = default_schemes()
        assert len(schemes) == 4
        # the last scheme is the full algorithm
        full = schemes[-1]
        assert full.adaptive and full.size_mutations
        assert full.inter_population_crossover and full.random_immigrants
        # the first scheme disables every advanced mechanism
        first = schemes[0]
        assert not (first.adaptive or first.size_mutations
                    or first.inter_population_crossover or first.random_immigrants)

    def test_apply_toggles_config(self):
        scheme = AblationScheme(
            name="x", adaptive=False, size_mutations=True,
            inter_population_crossover=False, random_immigrants=True,
        )
        config = scheme.apply(quick_config())
        assert not config.use_adaptive_mutation
        assert config.use_size_mutations
        assert not config.use_inter_population_crossover
        assert config.use_random_immigrants


class TestRunAblation:
    @pytest.fixture(scope="class")
    def result(self, request):
        small_study = request.getfixturevalue("small_study")
        config = quick_config(
            population_size=20, max_haplotype_size=3,
            termination_stagnation=3, max_generations=6,
        )
        schemes = (default_schemes()[0], default_schemes()[-1])
        return run_ablation(
            study=small_study, config=config, schemes=schemes, n_runs=2, seed=3
        )

    def test_one_outcome_per_scheme(self, result):
        assert len(result.outcomes) == 2
        assert result.n_runs == 2
        for outcome in result.outcomes:
            assert set(outcome.mean_best_fitness_per_size) == {2, 3}
            assert outcome.mean_evaluations > 0
            assert outcome.mean_over_sizes() > 0
            assert outcome.largest_size_fitness() == outcome.mean_best_fitness_per_size[3]
            for size, mean_value in outcome.mean_best_fitness_per_size.items():
                assert outcome.max_best_fitness_per_size[size] >= mean_value - 1e-9

    def test_outcome_lookup_and_format(self, result):
        name = result.outcomes[0].scheme.name
        assert result.outcome(name).scheme.name == name
        with pytest.raises(KeyError):
            result.outcome("nonexistent")
        text = result.format()
        assert "Section 5.2" in text

    def test_validation(self, small_study):
        with pytest.raises(ValueError):
            run_ablation(study=small_study, n_runs=0)
