"""Benchmark: work-stealing dispatch vs the affinity-only synchronous farm.

Measures what the steal engine was built for: a *skewed-window-cost* trace —
generation batches mixing many cheap (small-haplotype) evaluations with a
minority of expensive (large-haplotype) ones, the regime of a chromosome scan
whose windows clamp to heterogeneous sizes — dispatched over the same
4-slave :class:`repro.parallel.farm.ChunkedWorkerFarm` with stealing off
(every chunk waits for its affinity owner; the batch barrier waits for the
most-loaded slave) and on (idle slaves are refilled from the longest
affinity queue).  Records the trajectory to ``BENCH_steal.json`` (diffable
with ``scripts/bench_compare.py``, which also gates the ``*_gain*`` leaves).

Workload
--------
Evaluation cost is *modelled*, not measured: the fitness sleeps for the
paper's Figure-4 exponential cost ``base_seconds * growth ** (size - 1)``
(:class:`repro.parallel.pvm.EvaluationCostModel`'s calibration) and returns a
deterministic value.  Sleeping slaves do not contend for CPU, so the
measurement isolates *dispatch quality* — which slave runs what, when — from
host core count, exactly like the repo's ``SimulatedPVM`` but exercising the
real farm code path (queues, chunking, streamed completions, steal refills).

Both modes evaluate the identical batches and must return identical values
and work counters (asserted); only the slave-to-chunk assignment differs.

Usage::

    python benchmarks/bench_substrate_steal.py            # full run
    python benchmarks/bench_substrate_steal.py --quick    # CI smoke
    python benchmarks/bench_substrate_steal.py -o out.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.parallel.farm import ChunkedWorkerFarm, affinity_worker  # noqa: E402
from repro.parallel.pvm import EvaluationCostModel  # noqa: E402

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_steal.json"
)

N_WORKERS = 4
TRACE_SEED = 0
N_SNPS = 240
EXPENSIVE_SIZE = 7
CHEAP_SIZE = 2


class CostModelFitness:
    """Picklable fitness whose runtime is the paper's cost model (a sleep)."""

    def __init__(self, base_seconds: float, growth_factor: float = 2.4) -> None:
        self.model = EvaluationCostModel(
            base_seconds=base_seconds, growth_factor=growth_factor
        )

    def __call__(self, snps) -> float:
        key = tuple(sorted(int(s) for s in snps))
        time.sleep(self.model.cost(len(key)))
        return float(sum(key)) / (1.0 + len(key))


class _FitnessFactory:
    """Picklable zero-argument factory the farm ships to every slave."""

    def __init__(self, fitness: CostModelFitness) -> None:
        self._fitness = fitness

    def __call__(self) -> CostModelFitness:
        return self._fitness


def skewed_trace(
    *, n_batches: int, n_expensive: int, n_cheap: int, seed: int = TRACE_SEED
) -> list[list[tuple[int, ...]]]:
    """Generation batches of mostly-cheap haplotypes with an expensive minority."""
    rng = np.random.default_rng(seed)
    batches = []
    for _ in range(n_batches):
        batch: list[tuple[int, ...]] = []
        seen: set[tuple[int, ...]] = set()

        def draw(size: int, count: int) -> None:
            while sum(1 for b in batch if len(b) == size) < count:
                key = tuple(
                    sorted(int(x) for x in rng.choice(N_SNPS, size, replace=False))
                )
                if key not in seen:
                    seen.add(key)
                    batch.append(key)

        draw(EXPENSIVE_SIZE, n_expensive)
        draw(CHEAP_SIZE, n_cheap)
        rng.shuffle(batch)
        batches.append([tuple(int(s) for s in b) for b in batch])
    return batches


def static_imbalance(batches: list[list[tuple[int, ...]]]) -> float:
    """Mean ratio of the most-loaded slave's expensive share to the fair share."""
    ratios = []
    for batch in batches:
        counts = [0] * N_WORKERS
        for key in batch:
            if len(key) == EXPENSIVE_SIZE:
                counts[affinity_worker(key, N_WORKERS)] += 1
        total = sum(counts)
        if total:
            ratios.append(max(counts) / (total / N_WORKERS))
    return float(np.mean(ratios)) if ratios else 1.0


def run_mode(
    batches: list[list[tuple[int, ...]]], *, steal: bool, base_seconds: float
) -> dict:
    fitness = CostModelFitness(base_seconds)
    n_requests = n_evaluations = 0
    checksum = 0.0
    with ChunkedWorkerFarm(
        _FitnessFactory(fitness),
        N_WORKERS,
        chunk_size=1,
        worker_cache_size=0,
        steal=steal,
        # no prefetch: a buffered expensive chunk cannot be stolen, and the
        # modelled tasks are long enough that the dispatch round-trip is noise
        max_inflight=1,
    ) as farm:
        start = time.perf_counter()
        for batch in batches:
            values, stats = farm.evaluate(batch)
            checksum += sum(values)
            n_requests += stats.n_requests
            n_evaluations += stats.n_evaluations
        elapsed = time.perf_counter() - start
    return {
        "mode": "steal" if steal else "affinity",
        "n_workers": N_WORKERS,
        "elapsed_seconds": elapsed,
        "evaluations_per_second": n_evaluations / elapsed if elapsed > 0 else 0.0,
        "n_requests": n_requests,
        "n_evaluations": n_evaluations,
        "checksum": round(checksum, 9),
    }


def run_benchmark(*, quick: bool) -> dict:
    if quick:
        base_seconds, n_batches, n_expensive, n_cheap = 4e-4, 2, 8, 40
    else:
        base_seconds, n_batches, n_expensive, n_cheap = 8e-4, 3, 8, 60
    batches = skewed_trace(
        n_batches=n_batches, n_expensive=n_expensive, n_cheap=n_cheap
    )
    model = EvaluationCostModel(base_seconds=base_seconds)
    serial_seconds = sum(model.cost(len(key)) for batch in batches for key in batch)
    report: dict = {
        "benchmark": "substrate_steal",
        "trace": {
            "seed": TRACE_SEED,
            "n_batches": n_batches,
            "n_expensive_per_batch": n_expensive,
            "n_cheap_per_batch": n_cheap,
            "expensive_size": EXPENSIVE_SIZE,
            "cheap_size": CHEAP_SIZE,
            "base_seconds": base_seconds,
            "modelled_serial_seconds": serial_seconds,
            "static_imbalance": static_imbalance(batches),
        },
        "results": {},
        "headline": {},
    }
    affinity = run_mode(batches, steal=False, base_seconds=base_seconds)
    steal = run_mode(batches, steal=True, base_seconds=base_seconds)
    # the two engines must do the identical work and agree bit-for-bit; a
    # divergence is a dispatch correctness bug, not a timing artefact
    if affinity["checksum"] != steal["checksum"]:
        raise AssertionError(
            f"steal/affinity results diverged: "
            f"{steal['checksum']} != {affinity['checksum']}"
        )
    if (affinity["n_requests"], affinity["n_evaluations"]) != (
        steal["n_requests"], steal["n_evaluations"]
    ):
        raise AssertionError("steal/affinity work counters diverged")
    report["results"]["affinity_4w"] = affinity
    report["results"]["steal_4w"] = steal
    report["headline"][f"steal_vs_affinity_gain_at_{N_WORKERS}_workers"] = (
        affinity["elapsed_seconds"] / steal["elapsed_seconds"]
    )
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized smoke run")
    parser.add_argument("-o", "--output", default=DEFAULT_OUTPUT,
                        help=f"output JSON path (default {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)

    report = run_benchmark(quick=args.quick)

    print(
        f"trace: static imbalance {report['trace']['static_imbalance']:.2f}x, "
        f"modelled serial {report['trace']['modelled_serial_seconds']:.2f}s"
    )
    for label, result in report["results"].items():
        print(
            f"  {label:14s} {result['elapsed_seconds']:7.2f} s "
            f"({result['evaluations_per_second']:7.1f} evals/s, "
            f"{result['n_evaluations']} evals)"
        )
    for key, gain in report["headline"].items():
        print(f"{key}: {gain:.2f}x")

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
