"""Tests of the Table-1 harness (exact reproduction of the paper's table)."""

import math

from repro.experiments.table1 import PAPER_TABLE1_VALUES, run_table1


class TestTable1:
    def test_reproduces_paper_table_exactly(self):
        """Every cell of the regenerated table matches the published value."""
        result = run_table1()
        for size, row in PAPER_TABLE1_VALUES.items():
            for n_snps, expected in row.items():
                assert result.values[size][n_snps] == expected

    def test_paper_values_are_binomial_coefficients(self):
        for size, row in PAPER_TABLE1_VALUES.items():
            for n_snps, expected in row.items():
                assert expected == math.comb(n_snps, size)

    def test_custom_panels(self):
        result = run_table1(snp_counts=(10, 20), sizes=(2, 3))
        assert result.values[2][10] == 45
        assert result.values[3][20] == 1140
        assert result.row(2) == {10: 45, 20: 190}

    def test_format_contains_all_cells(self):
        text = run_table1().format()
        assert "Table 1" in text
        assert "18,009,460" in text
        assert "1275" in text or "1,275" in text
