"""Tests of the plain-text table rendering."""

import pytest

from repro.experiments.reporting import format_number, format_series, format_table


class TestFormatNumber:
    def test_none_and_bool(self):
        assert format_number(None) == "-"
        assert format_number(True) == "yes"
        assert format_number(False) == "no"

    def test_integers(self):
        assert format_number(42) == "42"
        assert format_number(1_234_567) == "1,234,567"

    def test_floats(self):
        assert format_number(3.14159, decimals=2) == "3.14"
        assert format_number(1.5e9) == "1.500e+09"
        assert format_number(2.5e-5) == "2.500e-05"
        assert format_number(float("nan")) == "nan"

    def test_strings_pass_through(self):
        assert format_number("abc") == "abc"


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(
            ["Size", "Fitness"], [[2, 1.5], [3, 10.25]], title="Demo"
        )
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "Size" in lines[1] and "Fitness" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "10.250" in lines[4]

    def test_row_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_column_width_adapts_to_content(self):
        text = format_table(["x"], [["a-very-long-cell-value"]])
        header, rule, row = text.splitlines()
        assert len(header) == len(row)


class TestFormatSeries:
    def test_pairs_rendered_line_by_line(self):
        text = format_series([(2, 0.006), (7, 0.201)])
        assert text.splitlines() == ["2 -> 0.006", "7 -> 0.201"]
