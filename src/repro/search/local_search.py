"""Hill-climbing baseline (restarted best-improvement local search).

The paper observes that its point mutation "is similar to a local search which
allows to explore the neighborhood of the solution"; this module provides the
pure local-search counterpart as a baseline: starting from a random haplotype
of a fixed size, repeatedly move to the best neighbour obtained by swapping
one SNP for one outside SNP, until no neighbour improves, restarting from a
new random haplotype while budget remains.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.individual import random_individual
from ..genetics.constraints import HaplotypeConstraints
from ..parallel.base import BatchEvaluator, FitnessCallable
from ..runtime.backends import DEFAULT_BACKEND, create_evaluator

__all__ = ["HillClimbingResult", "hill_climb", "restarted_hill_climbing"]


def _batch_values(
    fitness: FitnessCallable | BatchEvaluator, batch: list[tuple[int, ...]]
) -> list[float]:
    """Evaluate a neighbourhood, batched when the fitness is a batch evaluator.

    The batch travels the evaluator's generation-level fast path (dedup +
    LRU), so revisited neighbours across climbs and restarts are answered
    from cache; a plain callable is simply mapped.
    """
    evaluate_batch = getattr(fitness, "evaluate_batch", None)
    if evaluate_batch is not None:
        return [float(v) for v in evaluate_batch(batch)]
    return [float(fitness(snps)) for snps in batch]


@dataclass(frozen=True)
class HillClimbingResult:
    """Outcome of (restarted) hill climbing at one haplotype size."""

    best_snps: tuple[int, ...]
    best_fitness: float
    n_evaluations: int
    n_restarts: int
    evaluations_to_best: int


def _swap_neighbours(
    snps: tuple[int, ...],
    constraints: HaplotypeConstraints,
    rng: np.random.Generator,
    max_neighbours: int | None,
) -> list[tuple[int, ...]]:
    """One-swap neighbourhood of a haplotype (optionally subsampled)."""
    neighbours: list[tuple[int, ...]] = []
    for position in range(len(snps)):
        remaining = [s for i, s in enumerate(snps) if i != position]
        for candidate in constraints.compatible_snps(remaining):
            candidate = int(candidate)
            if candidate == snps[position]:
                continue
            neighbours.append(tuple(sorted(remaining + [candidate])))
    if max_neighbours is not None and len(neighbours) > max_neighbours:
        chosen = rng.choice(len(neighbours), size=max_neighbours, replace=False)
        neighbours = [neighbours[i] for i in chosen]
    return neighbours


def hill_climb(
    fitness: FitnessCallable | BatchEvaluator,
    start: tuple[int, ...],
    *,
    constraints: HaplotypeConstraints,
    rng: np.random.Generator,
    max_evaluations: int,
    max_neighbours: int | None = None,
) -> tuple[tuple[int, ...], float, int]:
    """Best-improvement hill climbing from one start point.

    Each step's whole neighbourhood (truncated to the remaining budget) is
    evaluated as a single batch, so a batch evaluator's dedup/caching fast
    path applies.  Returns the local optimum, its fitness and the number of
    evaluation requests used (including the start's own evaluation).
    """
    current = tuple(sorted(int(s) for s in start))
    current_fitness = _batch_values(fitness, [current])[0]
    used = 1
    improved = True
    while improved and used < max_evaluations:
        improved = False
        neighbours = _swap_neighbours(current, constraints, rng, max_neighbours)
        neighbours = neighbours[: max_evaluations - used]
        if not neighbours:
            break
        values = _batch_values(fitness, neighbours)
        used += len(neighbours)
        best_neighbour = None
        best_value = current_fitness
        for neighbour, value in zip(neighbours, values):
            if value > best_value:
                best_value = value
                best_neighbour = neighbour
        if best_neighbour is not None:
            current, current_fitness = best_neighbour, best_value
            improved = True
    return current, current_fitness, used


def restarted_hill_climbing(
    fitness: FitnessCallable,
    *,
    n_snps: int,
    size: int,
    n_evaluations: int,
    constraints: HaplotypeConstraints | None = None,
    max_neighbours: int | None = None,
    seed: int = 0,
    backend: str | None = None,
    backend_options: dict | None = None,
) -> HillClimbingResult:
    """Hill climbing with random restarts under a fixed evaluation budget.

    The fitness callable is routed through the execution-backend registry
    (``backend``, default ``serial``), so the baseline shares the adaptive
    GA's dedup/LRU caching stack — neighbourhoods revisited across restarts
    are answered from cache — and can be dispatched on any registered
    substrate.
    """
    if n_evaluations < 1:
        raise ValueError("n_evaluations must be positive")
    constraints = constraints or HaplotypeConstraints.unconstrained(n_snps)
    rng = np.random.default_rng(seed)
    evaluator = create_evaluator(
        backend or DEFAULT_BACKEND, fitness, **(backend_options or {})
    )
    best_snps: tuple[int, ...] | None = None
    best_fitness = -np.inf
    used = 0
    restarts = 0
    found_at = 0
    try:
        while used < n_evaluations:
            start = random_individual(size, constraints, rng).snps
            snps, value, spent = hill_climb(
                evaluator,
                start,
                constraints=constraints,
                rng=rng,
                max_evaluations=n_evaluations - used,
                max_neighbours=max_neighbours,
            )
            used += spent
            restarts += 1
            if value > best_fitness:
                best_snps, best_fitness = snps, value
                found_at = used
    finally:
        evaluator.close()
    assert best_snps is not None
    return HillClimbingResult(
        best_snps=best_snps,
        best_fitness=float(best_fitness),
        n_evaluations=used,
        n_restarts=restarts,
        evaluations_to_best=found_at,
    )
