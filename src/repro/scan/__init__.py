"""Genome-scale windowed scan subsystem.

The paper runs its adaptive GA on a single candidate region; this package
scales the same search to chromosome/genome-scale panels the way PLINK-style
systems scale LD computation — by restructuring the workload into sharded,
windowed passes over the genotype matrix:

* :mod:`repro.scan.planner` — tile the panel into overlapping locus windows
  and derive per-window GA jobs with deterministic seeds;
* :mod:`repro.scan.runner` — execute one GA job per window over a single
  persistent :class:`~repro.runtime.service.RunScheduler` substrate (one
  worker farm, one shared-memory panel copy, shared caches);
* :mod:`repro.scan.report` — aggregate per-window best haplotypes into the
  genome-wide LD report, calibrate the paper's PVM cost model from a recorded
  trace and check the scan against the simulated cluster.
"""

from .checkpoint import CheckpointMismatchError, ScanJournal, checkpoint_meta
from .planner import ScanPlan, plan_scan, window_seed
from .report import (
    CostTrace,
    ScanReport,
    SimulatedScanSpeedup,
    WindowResult,
    record_cost_trace,
    simulate_scan_on_cluster,
    window_result_from_json,
    window_result_to_json,
)
from .runner import execute_plan, run_scan

__all__ = [
    "ScanPlan",
    "plan_scan",
    "window_seed",
    "run_scan",
    "execute_plan",
    "ScanReport",
    "WindowResult",
    "window_result_to_json",
    "window_result_from_json",
    "ScanJournal",
    "CheckpointMismatchError",
    "checkpoint_meta",
    "CostTrace",
    "record_cost_trace",
    "SimulatedScanSpeedup",
    "simulate_scan_on_cluster",
]
