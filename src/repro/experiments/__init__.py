"""Experiment harnesses regenerating every table and figure of the paper."""

from .ablation import AblationResult, AblationScheme, SchemeOutcome, default_schemes, run_ablation
from .datasets import (
    DEFAULT_SEED,
    large249,
    lille51,
    lille51_constraints,
    lille51_evaluator,
    reduced_snp_panel,
)
from .figure4 import PAPER_FIGURE4_REFERENCE, Figure4Point, Figure4Result, run_figure4
from .landscape_study import LandscapeStudyResult, run_landscape_study
from .objectives import (
    DEFAULT_OBJECTIVES,
    ObjectiveComparisonResult,
    run_objective_comparison,
)
from .reporting import format_number, format_series, format_table
from .robustness import RobustnessResult, jaccard_similarity, run_robustness
from .speedup import (
    MeasuredSpeedupResult,
    SimulatedSpeedupResult,
    generation_batch,
    run_measured_speedup,
    run_simulated_speedup,
)
from .table1 import PAPER_TABLE1_VALUES, Table1Result, run_table1
from .table2 import (
    PAPER_TABLE2_REFERENCE,
    Table2Result,
    Table2Row,
    paper_scale_config,
    quick_config,
    run_table2,
)

__all__ = [
    "DEFAULT_SEED",
    "lille51",
    "lille51_evaluator",
    "lille51_constraints",
    "reduced_snp_panel",
    "large249",
    "format_table",
    "format_number",
    "format_series",
    "run_table1",
    "Table1Result",
    "PAPER_TABLE1_VALUES",
    "run_figure4",
    "Figure4Result",
    "Figure4Point",
    "PAPER_FIGURE4_REFERENCE",
    "run_table2",
    "Table2Result",
    "Table2Row",
    "PAPER_TABLE2_REFERENCE",
    "paper_scale_config",
    "quick_config",
    "run_ablation",
    "AblationResult",
    "AblationScheme",
    "SchemeOutcome",
    "default_schemes",
    "run_simulated_speedup",
    "run_measured_speedup",
    "SimulatedSpeedupResult",
    "MeasuredSpeedupResult",
    "generation_batch",
    "run_landscape_study",
    "LandscapeStudyResult",
    "run_objective_comparison",
    "ObjectiveComparisonResult",
    "DEFAULT_OBJECTIVES",
    "run_robustness",
    "RobustnessResult",
    "jaccard_similarity",
]
