"""The parallel adaptive multi-population GA (the paper's contribution).

The engine implements the general scheme of the paper's Figure 5:

1. **Initialisation** — every sub-population (one per haplotype size) is
   seeded with random constraint-satisfying haplotypes and evaluated in one
   parallel batch.
2. Each generation:

   * **Selection + crossover** — a number of crossover applications are
     attempted; for each one an operator (intra- or inter-population) is drawn
     from the adaptive crossover controller, parents are chosen by tournament
     inside their sub-population(s) and the children are queued for
     evaluation.
   * **Mutation** — each child is mutated with the global mutation
     probability; the mutation operator (point / reduction / augmentation) is
     drawn from the adaptive mutation controller, and the point mutation
     queues several parallel trials of which the best survives.
   * **Parallel evaluation** — every queued candidate of the generation is
     evaluated in a single batch by the configured
     :class:`~repro.parallel.base.BatchEvaluator` (serial, multiprocessing
     master/slave, …).
   * **Replacement** — each resulting individual enters the sub-population of
     its size if it is better than the worst member and not already present.
   * **Adaptation** — each operator's rate is recomputed from the normalised
     progress its applications achieved (Hong et al. 2000).
   * **Random immigrants** — when the best has stagnated for the configured
     number of generations, below-mean individuals are replaced by fresh
     random ones (also evaluated in a batch).

3. **Termination** — the run stops when the best individual has not improved
   for a fixed number of generations (or a generation/evaluation cap is hit).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..genetics.constraints import HaplotypeConstraints
from ..parallel.base import BatchEvaluator, FitnessCallable
from ..runtime.backends import DEFAULT_BACKEND, create_evaluator
from .adaptive import AdaptiveOperatorController
from .config import GAConfig
from .history import GAResult, GenerationRecord, RunHistory
from .immigrants import RandomImmigrantPolicy
from .individual import HaplotypeIndividual, random_individual
from .operators.base import OperatorApplication, SnpTuple
from .operators.crossover import InterPopulationCrossover, IntraPopulationCrossover
from .operators.mutation import AugmentationMutation, PointMutation, ReductionMutation
from .population import MultiPopulation, SubPopulation
from .selection import select_parent_pair, tournament_selection
from .termination import TerminationCriteria, TerminationState

__all__ = ["AdaptiveMultiPopulationGA"]


@dataclass
class _ChildPlan:
    """One offspring: the crossover child and its (optional) mutation variants."""

    base_snps: SnpTuple
    same_size_parent_fitness_norm: float
    parent_fitness_norms: tuple[float, float]
    crossover_name: str
    mutation_name: str | None = None
    variant_snps: list[SnpTuple] = field(default_factory=list)
    # filled after evaluation
    base_fitness: float | None = None
    variant_fitnesses: list[float] = field(default_factory=list)


class AdaptiveMultiPopulationGA:
    """The paper's dedicated GA for haplotype discovery.

    Parameters
    ----------
    fitness:
        Callable mapping a SNP index sequence to a fitness value (typically a
        :class:`~repro.stats.evaluation.HaplotypeEvaluator`, possibly wrapped
        in a :class:`~repro.stats.cache.CachedEvaluator`).  Ignored when an
        explicit ``evaluator`` is supplied.
    n_snps:
        Size of the SNP panel (defines the search space).
    config:
        Algorithm parameters; defaults to the paper's values.
    constraints:
        Haplotype-validity constraints; defaults to unconstrained.
    evaluator:
        Optional :class:`~repro.parallel.base.BatchEvaluator` (e.g. a
        :class:`~repro.parallel.master_slave.MasterSlaveEvaluator`); when
        omitted the ``backend`` is resolved through the execution-backend
        registry (:mod:`repro.runtime.backends`) around ``fitness``.
    backend:
        Name of the execution backend to build the evaluator on when no
        explicit ``evaluator`` is given (default ``"serial"``).
    backend_options:
        Extra keyword arguments for
        :func:`repro.runtime.backends.create_evaluator` (``n_workers``,
        ``chunk_size``, ...).
    """

    def __init__(
        self,
        fitness: FitnessCallable | None = None,
        *,
        n_snps: int,
        config: GAConfig | None = None,
        constraints: HaplotypeConstraints | None = None,
        evaluator: BatchEvaluator | None = None,
        backend: str | None = None,
        backend_options: dict | None = None,
    ) -> None:
        if fitness is None and evaluator is None:
            raise ValueError("either a fitness callable or a batch evaluator is required")
        if evaluator is not None and backend is not None:
            raise ValueError("backend and an explicit evaluator are mutually exclusive")
        if n_snps < 2:
            raise ValueError("the SNP panel must contain at least two SNPs")
        self.config = config or GAConfig()
        if self.config.max_haplotype_size > n_snps:
            raise ValueError(
                f"max_haplotype_size={self.config.max_haplotype_size} exceeds the panel "
                f"size ({n_snps} SNPs)"
            )
        self.n_snps = int(n_snps)
        self.constraints = constraints or HaplotypeConstraints.unconstrained(n_snps)
        if self.constraints.n_snps != n_snps:
            raise ValueError("constraints cover a different number of SNPs than n_snps")
        self._owns_evaluator = evaluator is None
        if evaluator is None:
            evaluator = create_evaluator(
                backend or DEFAULT_BACKEND, fitness, **(backend_options or {})  # type: ignore[arg-type]
            )
        self.evaluator: BatchEvaluator = evaluator

        cfg = self.config
        self._point_mutation = PointMutation(cfg.point_mutation_trials)
        self._reduction = ReductionMutation(cfg.min_haplotype_size)
        self._augmentation = AugmentationMutation(cfg.max_haplotype_size)
        self._mutations = {self._point_mutation.name: self._point_mutation}
        if cfg.use_size_mutations:
            self._mutations[self._reduction.name] = self._reduction
            self._mutations[self._augmentation.name] = self._augmentation

        self._intra_crossover = IntraPopulationCrossover()
        self._inter_crossover = InterPopulationCrossover()
        self._crossovers = {self._intra_crossover.name: self._intra_crossover}
        if cfg.use_inter_population_crossover:
            self._crossovers[self._inter_crossover.name] = self._inter_crossover

        self.mutation_controller = AdaptiveOperatorController(
            list(self._mutations),
            global_rate=cfg.mutation_rate,
            min_rate=min(cfg.min_operator_rate, cfg.mutation_rate / (2 * len(self._mutations))),
            adaptive=cfg.use_adaptive_mutation,
        )
        self.crossover_controller = AdaptiveOperatorController(
            list(self._crossovers),
            global_rate=cfg.crossover_rate,
            min_rate=min(cfg.min_operator_rate, cfg.crossover_rate / (2 * len(self._crossovers))),
            adaptive=cfg.use_adaptive_crossover,
        )
        self.immigrant_policy = RandomImmigrantPolicy(
            cfg.random_immigrant_stagnation, enabled=cfg.use_random_immigrants
        )
        self.termination = TerminationCriteria(
            stagnation_generations=cfg.termination_stagnation,
            max_generations=cfg.max_generations,
            max_evaluations=cfg.max_evaluations,
        )

        self._n_evaluations = 0
        # evaluation batches normally go straight to the evaluator; the
        # steady-state mode re-routes them through its single pipeline thread
        # so immigrant/lookahead batches cannot race on the evaluator
        self._batch_runner: Callable[[list[SnpTuple]], list[float]] = (
            self.evaluator.evaluate_batch
        )
        self.population: MultiPopulation | None = None

    # ------------------------------------------------------------------ #
    # evaluation plumbing
    # ------------------------------------------------------------------ #
    @property
    def n_evaluations(self) -> int:
        """Number of fitness evaluations performed so far."""
        return self._n_evaluations

    @property
    def n_distinct_evaluations(self) -> int:
        """Evaluations actually executed by the batch evaluator.

        The batch fast path collapses duplicate individuals within a
        generation and answers previously seen haplotypes from its cache, so
        this is at most :attr:`n_evaluations` (the number of fitness
        requests, the paper's cost metric).
        """
        return self.evaluator.stats.n_evaluations

    def _evaluate_batch(self, batch: Sequence[SnpTuple]) -> list[float]:
        if not batch:
            return []
        fitnesses = self._batch_runner(list(batch))
        self._n_evaluations += len(batch)
        return fitnesses

    def close(self) -> None:
        """Release the evaluator's resources if this GA created it.

        A process-backed evaluator resolved from ``backend=`` holds worker
        processes (and, for ``process-shm``, a shared-memory segment); the GA
        owns those and releases them here.  An evaluator supplied explicitly
        by the caller is left untouched.  Idempotent; also available as a
        context manager::

            with AdaptiveMultiPopulationGA(fitness, n_snps=n, backend="process") as ga:
                result = ga.run()
        """
        if self._owns_evaluator:
            self.evaluator.close()

    def __enter__(self) -> "AdaptiveMultiPopulationGA":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # initialisation
    # ------------------------------------------------------------------ #
    def _initialize_population(self, rng: np.random.Generator) -> MultiPopulation:
        population = MultiPopulation(self.config, self.n_snps)
        pending: list[SnpTuple] = []
        pending_sizes: list[int] = []
        for subpopulation in population:
            seen: set[SnpTuple] = set()
            attempts = 0
            while len(seen) < subpopulation.capacity and attempts < 50 * subpopulation.capacity:
                attempts += 1
                individual = random_individual(
                    subpopulation.haplotype_size, self.constraints, rng
                )
                if individual.snps not in seen:
                    seen.add(individual.snps)
            for snps in sorted(seen):
                pending.append(snps)
                pending_sizes.append(subpopulation.haplotype_size)
        fitnesses = self._evaluate_batch(pending)
        for snps, size, fitness in zip(pending, pending_sizes, fitnesses):
            population.subpopulation(size).seed(HaplotypeIndividual(snps, fitness))
        return population

    # ------------------------------------------------------------------ #
    # generation steps
    # ------------------------------------------------------------------ #
    def _eligible_crossovers(self, population: MultiPopulation) -> list[str]:
        eligible: list[str] = []
        sizes_with_pairs = [s for s in population.sizes if len(population.subpopulation(s)) >= 2]
        non_empty = [s for s in population.sizes if len(population.subpopulation(s)) >= 1]
        if sizes_with_pairs and self._intra_crossover.name in self._crossovers:
            eligible.append(self._intra_crossover.name)
        if len(non_empty) >= 2 and self._inter_crossover.name in self._crossovers:
            eligible.append(self._inter_crossover.name)
        return eligible

    def _pick_intra_parents(
        self, population: MultiPopulation, rng: np.random.Generator
    ) -> tuple[HaplotypeIndividual, HaplotypeIndividual] | None:
        sizes = [s for s in population.sizes if len(population.subpopulation(s)) >= 2]
        if not sizes:
            return None
        weights = np.asarray([len(population.subpopulation(s)) for s in sizes], dtype=np.float64)
        size = int(rng.choice(sizes, p=weights / weights.sum()))
        return select_parent_pair(
            population.subpopulation(size), rng, tournament_size=self.config.tournament_size
        )

    def _pick_inter_parents(
        self, population: MultiPopulation, rng: np.random.Generator
    ) -> tuple[HaplotypeIndividual, HaplotypeIndividual] | None:
        sizes = [s for s in population.sizes if len(population.subpopulation(s)) >= 1]
        if len(sizes) < 2:
            return None
        chosen = rng.choice(sizes, size=2, replace=False)
        parents = []
        for size in chosen:
            members = population.subpopulation(int(size)).members
            parents.append(
                tournament_selection(members, rng, tournament_size=self.config.tournament_size)
            )
        return parents[0], parents[1]

    def _plan_mutation(
        self,
        child_snps: SnpTuple,
        rng: np.random.Generator,
    ) -> tuple[str, list[SnpTuple]] | None:
        """Choose a mutation operator for a child and propose its variants."""
        child = HaplotypeIndividual(child_snps)
        applicable = [
            name for name, operator in self._mutations.items() if operator.is_applicable(child)
        ]
        if not applicable:
            return None
        name = self.mutation_controller.sample(rng, allowed=applicable)
        variants = self._mutations[name].propose(child, self.constraints, rng)
        variants = [v for v in variants if self.constraints.is_valid(v)]
        if not variants:
            return None
        return name, variants

    def _plan_generation(
        self, population: MultiPopulation, rng: np.random.Generator
    ) -> list[_ChildPlan]:
        """Selection, crossover and mutation planning for one generation."""
        plans: list[_ChildPlan] = []
        for _ in range(self.config.n_offspring):
            eligible = self._eligible_crossovers(population)
            if not eligible:
                break
            crossover_name = self.crossover_controller.sample(rng, allowed=eligible)
            operator = self._crossovers[crossover_name]
            if crossover_name == self._intra_crossover.name:
                parents = self._pick_intra_parents(population, rng)
            else:
                parents = self._pick_inter_parents(population, rng)
            if parents is None:
                continue
            parent_a, parent_b = parents
            if not operator.is_applicable(parent_a, parent_b):
                continue
            children = operator.recombine(parent_a, parent_b, self.constraints, rng)
            children = [c for c in children if self.constraints.is_valid(c)]
            if not children:
                continue
            norm_a = population.normalized_fitness(parent_a)
            norm_b = population.normalized_fitness(parent_b)
            for child_snps in children:
                child_size = len(child_snps)
                if child_size == parent_a.size:
                    same_size_norm = norm_a
                elif child_size == parent_b.size:
                    same_size_norm = norm_b
                else:  # repaired child drifted in size; compare against the closer parent
                    same_size_norm = norm_a if abs(child_size - parent_a.size) <= abs(
                        child_size - parent_b.size
                    ) else norm_b
                plan = _ChildPlan(
                    base_snps=child_snps,
                    same_size_parent_fitness_norm=same_size_norm,
                    parent_fitness_norms=(norm_a, norm_b),
                    crossover_name=crossover_name,
                )
                if rng.random() < self.config.mutation_rate:
                    mutation = self._plan_mutation(child_snps, rng)
                    if mutation is not None:
                        plan.mutation_name, plan.variant_snps = mutation
                plans.append(plan)
        return plans

    @staticmethod
    def _plans_batch(plans: list[_ChildPlan]) -> list[SnpTuple]:
        """The evaluation batch of one planned generation, in plan order."""
        batch: list[SnpTuple] = []
        for plan in plans:
            batch.append(plan.base_snps)
            batch.extend(plan.variant_snps)
        return batch

    @staticmethod
    def _assign_fitnesses(plans: list[_ChildPlan], fitnesses: list[float]) -> None:
        cursor = 0
        for plan in plans:
            plan.base_fitness = fitnesses[cursor]
            cursor += 1
            plan.variant_fitnesses = fitnesses[cursor: cursor + len(plan.variant_snps)]
            cursor += len(plan.variant_snps)

    def _evaluate_plans(self, plans: list[_ChildPlan]) -> None:
        self._assign_fitnesses(plans, self._evaluate_batch(self._plans_batch(plans)))

    def _normalized(self, population: MultiPopulation, snps: SnpTuple, fitness: float) -> float:
        subpopulation = population.subpopulation(len(snps)) if len(snps) in population.sizes else None
        if subpopulation is None or subpopulation.is_empty:
            return 0.5
        return subpopulation.normalized_fitness(fitness)

    def _integrate_plans(
        self, population: MultiPopulation, plans: list[_ChildPlan]
    ) -> tuple[int, list[OperatorApplication], list[OperatorApplication]]:
        """Replacement and progress accounting for one generation's offspring."""
        n_insertions = 0
        mutation_apps: list[OperatorApplication] = []
        crossover_apps: list[OperatorApplication] = []
        for plan in plans:
            assert plan.base_fitness is not None
            base_norm = self._normalized(population, plan.base_snps, plan.base_fitness)

            # crossover progress (paper Section 4.3.2): intra-population children are
            # compared with the mean of their parents, inter-population children with
            # their same-size parent only.
            if plan.crossover_name == self._intra_crossover.name:
                reference = float(np.mean(plan.parent_fitness_norms))
            else:
                reference = plan.same_size_parent_fitness_norm
            crossover_apps.append(
                OperatorApplication(plan.crossover_name, max(base_norm - reference, 0.0))
            )

            final_snps, final_fitness = plan.base_snps, plan.base_fitness
            if plan.mutation_name is not None and plan.variant_fitnesses:
                best_index = int(np.argmax(plan.variant_fitnesses))
                best_snps = plan.variant_snps[best_index]
                best_fitness = plan.variant_fitnesses[best_index]
                mutated_norm = self._normalized(population, best_snps, best_fitness)
                mutation_apps.append(
                    OperatorApplication(plan.mutation_name, max(mutated_norm - base_norm, 0.0))
                )
                # keep the better of the un-mutated child and the best mutated variant,
                # comparing on normalised fitness because their sizes may differ
                if mutated_norm >= base_norm:
                    final_snps, final_fitness = best_snps, best_fitness

            if population.try_insert(HaplotypeIndividual(final_snps, final_fitness)):
                n_insertions += 1
            # size-changing mutations produce individuals for another sub-population;
            # also offer the un-mutated child to its own sub-population so the
            # crossover's work is not lost when the mutation migrated the individual.
            if final_snps != plan.base_snps:
                if population.try_insert(
                    HaplotypeIndividual(plan.base_snps, plan.base_fitness)
                ):
                    n_insertions += 1
        return n_insertions, mutation_apps, crossover_apps

    def _apply_random_immigrants(
        self, population: MultiPopulation, rng: np.random.Generator
    ) -> bool:
        plan = self.immigrant_policy.plan(population, self.constraints, rng)
        if plan.n_replacements == 0:
            return False
        batch: list[SnpTuple] = []
        order: list[tuple[int, int]] = []  # (size, index within that size's list)
        for size, candidates in plan.candidates.items():
            for i, snps in enumerate(candidates):
                batch.append(snps)
                order.append((size, i))
        fitnesses = self._evaluate_batch(batch)
        evaluated: dict[int, list[HaplotypeIndividual]] = {
            size: [None] * len(cands) for size, cands in plan.candidates.items()  # type: ignore[list-item]
        }
        for (size, i), snps, fitness in zip(order, batch, fitnesses):
            evaluated[size][i] = HaplotypeIndividual(snps, fitness)
        RandomImmigrantPolicy.apply(population, plan, evaluated)
        return True

    # ------------------------------------------------------------------ #
    # main loop
    # ------------------------------------------------------------------ #
    def _finish_generation(
        self,
        *,
        generation: int,
        plans: list[_ChildPlan],
        population: MultiPopulation,
        rng: np.random.Generator,
        best_fitness_per_size: dict[int, float],
        evaluations_to_best: dict[int, int],
        stagnation: int,
        history: RunHistory,
    ) -> int:
        """Everything after a generation's fitnesses arrive; returns stagnation."""
        n_insertions, mutation_apps, crossover_apps = self._integrate_plans(population, plans)

        self.mutation_controller.record_many(mutation_apps)
        self.crossover_controller.record_many(crossover_apps)
        mutation_snapshot = self.mutation_controller.end_generation()
        crossover_snapshot = self.crossover_controller.end_generation()

        # stagnation bookkeeping: progress in *any* sub-population counts
        improved = False
        for size in population.sizes:
            subpopulation = population.subpopulation(size)
            if subpopulation.is_empty:
                continue
            best = subpopulation.best().fitness_value()
            previous = best_fitness_per_size.get(size)
            if previous is None or best > previous + 1e-12:
                best_fitness_per_size[size] = best
                evaluations_to_best[size] = self._n_evaluations
                improved = True
        stagnation = 0 if improved else stagnation + 1

        immigrants_triggered = False
        if self.immigrant_policy.should_trigger(stagnation):
            immigrants_triggered = self._apply_random_immigrants(population, rng)

        history.append(
            GenerationRecord(
                generation=generation,
                n_evaluations=self._n_evaluations,
                best_fitness_per_size=dict(best_fitness_per_size),
                mean_fitness_per_size={
                    size: population.subpopulation(size).mean_fitness()
                    for size in population.sizes
                    if not population.subpopulation(size).is_empty
                },
                mutation_rates=mutation_snapshot.rates,
                crossover_rates=crossover_snapshot.rates,
                stagnation=stagnation,
                n_insertions=n_insertions,
                immigrants_triggered=immigrants_triggered,
            )
        )
        return stagnation

    def _run_barrier(
        self,
        *,
        population: MultiPopulation,
        rng: np.random.Generator,
        best_fitness_per_size: dict[int, float],
        evaluations_to_best: dict[int, int],
        history: RunHistory,
    ) -> tuple[int, str]:
        """The paper's synchronous loop: one generation fully evaluated at a time."""
        stagnation = 0
        generation = 0
        while True:
            state = TerminationState(
                generation=generation,
                stagnation=stagnation,
                n_evaluations=self._n_evaluations,
                best_fitness=max(best_fitness_per_size.values(), default=None),
            )
            reason = self.termination.reason_to_stop(state)
            if reason is not None:
                return generation, reason

            generation += 1
            plans = self._plan_generation(population, rng)
            self._evaluate_plans(plans)
            stagnation = self._finish_generation(
                generation=generation,
                plans=plans,
                population=population,
                rng=rng,
                best_fitness_per_size=best_fitness_per_size,
                evaluations_to_best=evaluations_to_best,
                stagnation=stagnation,
                history=history,
            )

    def _run_steady_state(
        self,
        *,
        population: MultiPopulation,
        rng: np.random.Generator,
        best_fitness_per_size: dict[int, float],
        evaluations_to_best: dict[int, int],
        history: RunHistory,
    ) -> tuple[int, str]:
        """Pipelined loop: up to ``overlap_generations`` generations in flight.

        Planning reads the population as currently integrated (the in-flight
        offspring are not in it yet — the essence of steady state) and queues
        the batch on a single background thread; integration happens in
        generation order as results land.  All evaluator traffic goes through
        that one thread, so the substrate sees exactly one batch at a time —
        the streamed completions of the work-stealing farm fill the batch from
        many slaves concurrently underneath.
        """
        from collections import deque
        from concurrent.futures import Future, ThreadPoolExecutor

        overlap = self.config.overlap_generations
        stagnation = 0
        generation = 0
        planned = 0
        termination_reason: str | None = None
        in_flight: deque[tuple[int, list[_ChildPlan], Future | None, int]] = deque()
        with ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="ga-pipeline"
        ) as pool:
            self._batch_runner = lambda batch: pool.submit(
                self.evaluator.evaluate_batch, batch
            ).result()
            try:
                while True:
                    # top up the pipeline while the (trailing, up to `overlap`
                    # generations old) termination state allows
                    while termination_reason is None and len(in_flight) <= overlap:
                        state = TerminationState(
                            generation=planned,
                            stagnation=stagnation,
                            n_evaluations=self._n_evaluations,
                            best_fitness=max(
                                best_fitness_per_size.values(), default=None
                            ),
                        )
                        termination_reason = self.termination.reason_to_stop(state)
                        if termination_reason is not None:
                            break
                        planned += 1
                        plans = self._plan_generation(population, rng)
                        batch = self._plans_batch(plans)
                        future: Future | None = None
                        if batch:
                            future = pool.submit(
                                self.evaluator.evaluate_batch, list(batch)
                            )
                        in_flight.append((planned, plans, future, len(batch)))
                    if not in_flight:
                        assert termination_reason is not None
                        return generation, termination_reason
                    generation, plans, future, batch_size = in_flight.popleft()
                    self._assign_fitnesses(
                        plans, future.result() if future is not None else []
                    )
                    # count at integration time, exactly like the barrier
                    # loop: generation g's history record and the
                    # evaluations-to-best metric must not include the
                    # lookahead generations' in-flight batches
                    self._n_evaluations += batch_size
                    stagnation = self._finish_generation(
                        generation=generation,
                        plans=plans,
                        population=population,
                        rng=rng,
                        best_fitness_per_size=best_fitness_per_size,
                        evaluations_to_best=evaluations_to_best,
                        stagnation=stagnation,
                        history=history,
                    )
            finally:
                self._batch_runner = self.evaluator.evaluate_batch

    def run(self, *, reset: bool = True) -> GAResult:
        """Execute the GA and return its :class:`~repro.core.history.GAResult`.

        Parameters
        ----------
        reset:
            When ``True`` (default) a fresh population is initialised and the
            evaluation counter restarts from zero.  When ``False`` and a
            population already exists (from a previous :meth:`run` call or
            after injecting migrants in the island model), the run continues
            from it.

        With ``config.overlap_generations == 0`` each generation is evaluated
        behind the paper's synchronous barrier.  With ``k > 0`` the engine
        runs steady-state: up to ``k`` generations are planned from the
        current population and their batches queued on a single pipeline
        thread, so selection/variation/replacement bookkeeping overlaps the
        evaluation of earlier generations' stragglers (see
        :class:`~repro.core.config.GAConfig` for the determinism contract).
        """
        start_time = time.perf_counter()
        rng = np.random.default_rng(self.config.seed + (0 if reset else self._n_evaluations))

        if reset or self.population is None:
            self._n_evaluations = 0
            population = self._initialize_population(rng)
            self.population = population
        else:
            population = self.population
        history = RunHistory()

        best_fitness_per_size = {
            size: population.subpopulation(size).best().fitness_value()
            for size in population.sizes
            if not population.subpopulation(size).is_empty
        }
        evaluations_to_best = {size: self._n_evaluations for size in best_fitness_per_size}

        state = dict(
            population=population,
            rng=rng,
            best_fitness_per_size=best_fitness_per_size,
            evaluations_to_best=evaluations_to_best,
            history=history,
        )
        if self.config.overlap_generations > 0:
            generation, termination_reason = self._run_steady_state(**state)
        else:
            generation, termination_reason = self._run_barrier(**state)

        best_per_size = population.best_per_size()
        return GAResult(
            best_per_size=best_per_size,
            evaluations_to_best={s: evaluations_to_best.get(s, self._n_evaluations)
                                 for s in best_per_size},
            n_evaluations=self._n_evaluations,
            n_generations=generation,
            termination_reason=termination_reason,
            history=history,
            config=self.config,
            elapsed_seconds=time.perf_counter() - start_time,
        )
