"""Tests of the pairwise LD measures."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.genetics.dataset import GenotypeDataset
from repro.genetics.ld import (
    ld_matrix,
    pairwise_ld,
    pairwise_ld_table,
    two_locus_haplotype_frequencies,
)


def _dataset_from_haplotypes(h1: np.ndarray, h2: np.ndarray) -> GenotypeDataset:
    """Build an unphased dataset from two phased haplotype matrices (0/1 coded)."""
    genotypes = (h1 + h2).astype(np.int8)
    status = np.zeros(genotypes.shape[0], dtype=np.int8)
    status[: len(status) // 2] = 1
    return GenotypeDataset(genotypes, status)


class TestTwoLocusEM:
    def test_perfect_ld(self):
        # two loci always inherited together -> only haplotypes 00 and 11 exist
        rng = np.random.default_rng(0)
        allele = rng.random((200, 1)) < 0.4
        h = np.hstack([allele, allele]).astype(np.int8)
        h2 = np.hstack([allele, allele]).astype(np.int8)
        dataset = _dataset_from_haplotypes(h, h2)
        stats = pairwise_ld(dataset, 0, 1)
        assert stats.r_squared == pytest.approx(1.0, abs=1e-6)
        assert abs(stats.d_prime) == pytest.approx(1.0, abs=1e-6)

    def test_independent_loci_have_low_ld(self):
        rng = np.random.default_rng(1)
        h1 = (rng.random((500, 2)) < 0.5).astype(np.int8)
        h2 = (rng.random((500, 2)) < 0.5).astype(np.int8)
        dataset = _dataset_from_haplotypes(h1, h2)
        stats = pairwise_ld(dataset, 0, 1)
        assert stats.r_squared < 0.05

    def test_frequencies_sum_to_one(self, small_dataset):
        geno = small_dataset.genotypes
        freqs, n_chrom = two_locus_haplotype_frequencies(geno[:, 0], geno[:, 1])
        assert n_chrom == 2 * small_dataset.n_individuals
        assert freqs.sum() == pytest.approx(1.0)
        assert np.all(freqs >= 0)

    def test_missing_genotypes_excluded(self):
        g1 = np.array([0, 1, 2, -1])
        g2 = np.array([0, 1, 2, 2])
        freqs, n_chrom = two_locus_haplotype_frequencies(g1, g2)
        assert n_chrom == 6
        assert freqs.sum() == pytest.approx(1.0)

    def test_empty_input(self):
        freqs, n_chrom = two_locus_haplotype_frequencies(np.array([-1]), np.array([0]))
        assert n_chrom == 0
        assert np.isnan(freqs).all()

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            two_locus_haplotype_frequencies(np.array([0, 1]), np.array([0]))


class TestLDBounds:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_measures_within_bounds(self, seed):
        rng = np.random.default_rng(seed)
        n = 60
        p = rng.uniform(0.1, 0.9, size=2)
        h1 = (rng.random((n, 2)) < p).astype(np.int8)
        # induce correlation half of the time
        if seed % 2:
            h1[:, 1] = np.where(rng.random(n) < 0.7, h1[:, 0], h1[:, 1])
        h2 = (rng.random((n, 2)) < p).astype(np.int8)
        if seed % 2:
            h2[:, 1] = np.where(rng.random(n) < 0.7, h2[:, 0], h2[:, 1])
        dataset = _dataset_from_haplotypes(h1, h2)
        stats = pairwise_ld(dataset, 0, 1)
        assert 0.0 <= stats.r_squared <= 1.0
        assert -1.0 <= stats.d_prime <= 1.0
        assert stats.chi_squared >= 0.0


class TestLDMatrix:
    def test_matrix_is_symmetric_with_unit_diagonal(self, small_dataset):
        matrix = ld_matrix(small_dataset.select_snps(range(6)), measure="r_squared")
        assert matrix.shape == (6, 6)
        np.testing.assert_allclose(matrix, matrix.T)
        np.testing.assert_allclose(np.diag(matrix), 1.0)
        assert np.all((matrix >= 0) & (matrix <= 1))

    def test_unknown_measure_rejected(self, small_dataset):
        with pytest.raises(ValueError):
            ld_matrix(small_dataset, measure="bogus")

    def test_table_wrapper(self, small_dataset):
        subset = small_dataset.select_snps(range(5))
        table = pairwise_ld_table(subset)
        assert table.n_snps == 5
        assert table.value(0, 0) == pytest.approx(1.0)
        assert table.measure == "r_squared"

    def test_causal_snps_show_elevated_ld(self, small_study):
        # the risk haplotype is planted jointly on ~30% of chromosomes, so the
        # causal SNPs should be in visibly stronger LD than random pairs
        dataset = small_study.dataset
        causal = small_study.causal_snps
        causal_ld = pairwise_ld(dataset, causal[0], causal[1]).r_squared
        unrelated_ld = pairwise_ld(dataset, 0, 13).r_squared
        assert causal_ld > unrelated_ld
