"""Benchmark: Section 4.5 — synchronous master/slave evaluation speedup.

The paper parallelises the evaluation phase on a PVM cluster to keep run
times reasonable.  This benchmark measures the reproduction's two backends on
one generation-sized batch of evaluations:

* the real ``multiprocessing`` master/slave farm with 1, 2 and 4 workers
  (pytest-benchmark timings → measured speedup on the host), and
* the deterministic simulated PVM cluster, whose cost model is calibrated on
  the measured Figure-4 evaluation times, for 1-32 slaves.
"""

from __future__ import annotations

import pytest

from repro.experiments.figure4 import run_figure4
from repro.experiments.speedup import (
    generation_batch,
    run_simulated_speedup,
)
from repro.parallel.master_slave import MasterSlaveEvaluator
from repro.parallel.serial import SerialEvaluator

WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def batch(study, scale):
    n_offspring = 68 if scale == "paper" else 32
    return generation_batch(
        n_offspring=n_offspring,
        sizes=(2, 3, 4, 5, 6),
        n_snps=study.dataset.n_snps,
    )


def test_speedup_serial_reference(benchmark, evaluator, batch):
    backend = SerialEvaluator(evaluator)
    results = benchmark(backend.evaluate_batch, batch)
    assert len(results) == len(batch)


@pytest.mark.parametrize("n_workers", WORKER_COUNTS[1:])
def test_speedup_master_slave(benchmark, evaluator, batch, n_workers):
    backend = MasterSlaveEvaluator(evaluator, n_workers=n_workers)
    try:
        backend.evaluate_batch(batch[:4])  # warm the workers up
        results = benchmark(backend.evaluate_batch, batch)
    finally:
        backend.close()
    serial = SerialEvaluator(evaluator).evaluate_batch(batch)
    assert results == pytest.approx(serial, rel=1e-12)


def test_speedup_simulated_pvm(benchmark, study, batch):
    # calibrate the cluster's cost model on real measured evaluation times
    figure4 = run_figure4(study=study, sizes=(2, 3, 4, 5, 6), n_samples=5)
    result = benchmark.pedantic(
        run_simulated_speedup,
        kwargs=dict(
            worker_counts=(1, 2, 4, 8, 16, 32),
            batch=batch,
            cost_model=figure4.cost_model,
        ),
        rounds=1,
        iterations=1,
    )
    # the farm must scale: 4 slaves beat 2, which beat 1
    assert result.speedups[4] > result.speedups[2] > 0.9 * result.speedups[1]
    # and saturate well below the slave count once the batch is exhausted
    assert result.speedups[32] < 32
    print()
    print(result.format())
