"""Tests of the parent-selection schemes."""

import numpy as np
import pytest

from repro.core.individual import HaplotypeIndividual
from repro.core.population import SubPopulation
from repro.core.selection import roulette_selection, select_parent_pair, tournament_selection


def _members(fitnesses):
    return [HaplotypeIndividual((0, i + 1), f) for i, f in enumerate(fitnesses)]


class TestTournament:
    def test_empty_population_rejected(self, rng):
        with pytest.raises(ValueError):
            tournament_selection([], rng)
        with pytest.raises(ValueError):
            tournament_selection(_members([1.0]), rng, tournament_size=0)

    def test_full_tournament_returns_best(self, rng):
        members = _members([1.0, 5.0, 3.0])
        winner = tournament_selection(members, rng, tournament_size=3)
        assert winner.fitness_value() == pytest.approx(5.0)

    def test_selection_pressure_favours_fitter(self, rng):
        members = _members([1.0, 2.0, 3.0, 4.0, 10.0])
        wins = sum(
            tournament_selection(members, rng, tournament_size=2).fitness_value() == 10.0
            for _ in range(400)
        )
        # the best individual wins a binary tournament whenever drawn: ~36% of the time
        assert wins > 90

    def test_tournament_larger_than_population(self, rng):
        members = _members([1.0, 2.0])
        winner = tournament_selection(members, rng, tournament_size=10)
        assert winner.fitness_value() == pytest.approx(2.0)


class TestRoulette:
    def test_empty_population_rejected(self, rng):
        with pytest.raises(ValueError):
            roulette_selection([], rng)

    def test_uniform_when_no_spread(self, rng):
        members = _members([2.0, 2.0, 2.0])
        chosen = {roulette_selection(members, rng).snps for _ in range(50)}
        assert len(chosen) > 1

    def test_favours_fitter(self, rng):
        members = _members([0.0, 0.0, 10.0])
        wins = sum(
            roulette_selection(members, rng).fitness_value() == 10.0 for _ in range(200)
        )
        assert wins > 150


class TestParentPair:
    def test_pair_is_distinct_when_possible(self, rng):
        sub = SubPopulation(haplotype_size=2, capacity=10)
        for member in _members([1.0, 2.0, 3.0, 4.0]):
            sub.try_insert(member)
        for _ in range(20):
            a, b = select_parent_pair(sub, rng)
            assert a.snps != b.snps

    def test_single_member_population_returns_same_individual(self, rng):
        sub = SubPopulation(haplotype_size=2, capacity=10)
        sub.try_insert(HaplotypeIndividual((0, 1), 1.0))
        a, b = select_parent_pair(sub, rng)
        assert a.snps == b.snps
