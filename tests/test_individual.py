"""Tests of the haplotype individual encoding (paper Section 4.1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.individual import HaplotypeIndividual, random_individual
from repro.genetics.constraints import HaplotypeConstraints


class TestEncoding:
    def test_snps_are_sorted_ascending(self):
        individual = HaplotypeIndividual((9, 2, 5))
        assert individual.snps == (2, 5, 9)
        assert individual.size == 3

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            HaplotypeIndividual((1, 1, 2))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            HaplotypeIndividual(())

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            HaplotypeIndividual((-1, 2))

    def test_fitness_lifecycle(self):
        individual = HaplotypeIndividual((0, 3))
        assert not individual.is_evaluated
        with pytest.raises(ValueError):
            individual.fitness_value()
        evaluated = individual.with_fitness(12.5)
        assert evaluated.is_evaluated
        assert evaluated.fitness_value() == pytest.approx(12.5)
        assert evaluated.snps == individual.snps
        cleared = evaluated.without_fitness()
        assert not cleared.is_evaluated

    def test_immutable_and_hashable(self):
        individual = HaplotypeIndividual((1, 2), 3.0)
        with pytest.raises(AttributeError):
            individual.snps = (3, 4)  # type: ignore[misc]
        assert len({individual, HaplotypeIndividual((1, 2), 3.0)}) == 1

    def test_same_snps_ignores_fitness(self):
        a = HaplotypeIndividual((1, 2), 3.0)
        b = HaplotypeIndividual((2, 1), 99.0)
        assert a.same_snps(b)
        assert a.contains(1) and not a.contains(5)

    @given(st.sets(st.integers(min_value=0, max_value=100), min_size=1, max_size=8))
    def test_construction_is_canonical(self, snps):
        shuffled = list(snps)
        np.random.default_rng(0).shuffle(shuffled)
        assert HaplotypeIndividual(tuple(shuffled)).snps == tuple(sorted(snps))


class TestRandomIndividual:
    def test_respects_size_and_bounds(self, rng):
        constraints = HaplotypeConstraints.unconstrained(20)
        for size in (1, 3, 6):
            individual = random_individual(size, constraints, rng)
            assert individual.size == size
            assert all(0 <= s < 20 for s in individual.snps)
            assert individual.snps == tuple(sorted(set(individual.snps)))

    def test_invalid_sizes_rejected(self, rng):
        constraints = HaplotypeConstraints.unconstrained(5)
        with pytest.raises(ValueError):
            random_individual(0, constraints, rng)
        with pytest.raises(ValueError):
            random_individual(6, constraints, rng)

    def test_respects_constraints(self, rng):
        # SNPs 0 and 1 are mutually exclusive (high LD)
        ld = np.eye(4)
        ld[0, 1] = ld[1, 0] = 0.99
        from repro.genetics.frequencies import SnpFrequencyTable
        from repro.genetics.ld import PairwiseLDTable

        names = tuple(f"snp{i}" for i in range(4))
        constraints = HaplotypeConstraints(
            ld_table=PairwiseLDTable(names, ld),
            frequency_table=SnpFrequencyTable(
                names, np.full(4, 0.5), np.full(4, 0.5)
            ),
            max_pairwise_ld=0.9,
        )
        for _ in range(20):
            individual = random_individual(2, constraints, rng)
            assert not (0 in individual.snps and 1 in individual.snps)

    def test_infeasible_constraints_raise(self, rng):
        # every pair is in perfect LD -> no haplotype of size 2 exists
        ld = np.ones((3, 3))
        from repro.genetics.frequencies import SnpFrequencyTable
        from repro.genetics.ld import PairwiseLDTable

        names = ("a", "b", "c")
        constraints = HaplotypeConstraints(
            ld_table=PairwiseLDTable(names, ld),
            frequency_table=SnpFrequencyTable(names, np.full(3, 0.5), np.full(3, 0.5)),
            max_pairwise_ld=0.5,
        )
        with pytest.raises(RuntimeError):
            random_individual(2, constraints, rng, max_attempts=5)
