"""Tests of the multiprocessing master/slave evaluator.

The worker pool is real (forked processes), so these tests keep the batches
small; the key property is bit-identical agreement with the serial evaluator.
"""

import pytest

from repro.parallel.master_slave import MasterSlaveEvaluator, default_worker_count
from repro.parallel.serial import SerialEvaluator


def _product_fitness(snps):
    value = 1.0
    for s in snps:
        value *= (s + 1)
    return value


class TestConfiguration:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MasterSlaveEvaluator(_product_fitness, n_workers=0)
        with pytest.raises(ValueError):
            MasterSlaveEvaluator(_product_fitness, chunk_size=0)

    @pytest.mark.parametrize("n_workers", [0, -1, -4, 1.5, True])
    def test_rejects_non_positive_or_non_integer_worker_counts(self, n_workers):
        with pytest.raises(ValueError, match="positive integer"):
            MasterSlaveEvaluator(_product_fitness, n_workers=n_workers)

    def test_rejects_unknown_dispatch(self):
        with pytest.raises(ValueError, match="dispatch"):
            MasterSlaveEvaluator(_product_fitness, dispatch="quantum")

    def test_requires_exactly_one_fitness_source(self):
        with pytest.raises(ValueError):
            MasterSlaveEvaluator()

    def test_default_worker_count_positive(self):
        assert default_worker_count() >= 1


class TestEvaluation:
    def test_matches_serial_on_toy_fitness(self):
        batch = [(0, 1), (2,), (1, 3, 4), (5, 6)]
        serial = SerialEvaluator(_product_fitness).evaluate_batch(batch)
        with MasterSlaveEvaluator(_product_fitness, n_workers=2) as master_slave:
            parallel = master_slave.evaluate_batch(batch)
        assert parallel == pytest.approx(serial)

    def test_matches_serial_on_real_evaluator(self, small_evaluator):
        batch = [(0, 1), (2, 5, 9), (3, 4), (1, 6, 10)]
        serial = [small_evaluator.evaluate(snps) for snps in batch]
        with MasterSlaveEvaluator(small_evaluator, n_workers=2) as master_slave:
            parallel = master_slave.evaluate_batch(batch)
        assert parallel == pytest.approx(serial, rel=1e-12)

    def test_empty_batch(self):
        with MasterSlaveEvaluator(_product_fitness, n_workers=2) as master_slave:
            assert master_slave.evaluate_batch([]) == []

    def test_stats_and_single_evaluate(self):
        with MasterSlaveEvaluator(_product_fitness, n_workers=2) as master_slave:
            assert master_slave.evaluate((1, 2)) == pytest.approx(6.0)
            master_slave.evaluate_batch([(0,), (1,)])
            assert master_slave.stats.n_evaluations == 3
            assert master_slave.n_workers == 2

    def test_closed_evaluator_rejects_work(self):
        master_slave = MasterSlaveEvaluator(_product_fitness, n_workers=2)
        master_slave.close()
        with pytest.raises(RuntimeError):
            master_slave.evaluate_batch([(1,)])
        master_slave.close()  # idempotent

    def test_terminate_is_idempotent(self):
        master_slave = MasterSlaveEvaluator(_product_fitness, n_workers=2)
        master_slave.terminate()
        master_slave.terminate()

    def test_context_manager_closes_and_close_stays_idempotent(self):
        with MasterSlaveEvaluator(_product_fitness, n_workers=2) as master_slave:
            master_slave.evaluate_batch([(1, 2)])
        with pytest.raises(RuntimeError):
            master_slave.evaluate_batch([(3,)])
        master_slave.close()  # after context exit: still a no-op
        master_slave.terminate()


def _failing_fitness(snps):
    raise RuntimeError("boom on " + repr(tuple(snps)))


def _fail_on_marker_fitness(snps):
    if any(s >= 90 for s in tuple(snps)):
        raise RuntimeError("marker haplotype")
    return float(sum(snps)) + 1.0


class TestChunkedDispatch:
    def test_matches_individual_dispatch(self, small_evaluator):
        batch = [(0, 1), (2, 5, 9), (3, 4), (0, 1), (1, 6, 10)]
        with MasterSlaveEvaluator(small_evaluator, n_workers=2) as individual:
            expected = individual.evaluate_batch(batch)
        with MasterSlaveEvaluator(
            small_evaluator, n_workers=2, dispatch="chunked"
        ) as chunked:
            assert chunked.dispatch == "chunked"
            assert chunked.evaluate_batch(batch) == pytest.approx(expected, rel=1e-12)

    def test_small_chunks_cover_the_whole_batch(self):
        with MasterSlaveEvaluator(
            _product_fitness, n_workers=2, dispatch="chunked", chunk_size=1,
            dedup=False, cache_size=0,
        ) as chunked:
            batch = [(i,) for i in range(7)]
            assert chunked.evaluate_batch(batch) == [float(i + 1) for i in range(7)]

    def test_worker_side_cache_reported_in_merged_stats(self):
        # master fast path off: repeats must travel to the slaves, whose
        # affinity-pinned local LRUs answer them without re-evaluating
        with MasterSlaveEvaluator(
            _product_fitness, n_workers=2, dispatch="chunked",
            dedup=False, cache_size=0,
        ) as chunked:
            chunked.evaluate_batch([(1,), (2,), (3,)])
            chunked.evaluate_batch([(1,), (2,), (4,)])
            assert chunked.stats.n_requests == 6
            assert chunked.stats.n_evaluations == 4
            assert chunked.stats.n_cache_hits == 2
            assert chunked.stats.backend_seconds >= 0.0

    def test_worker_exception_propagates_with_traceback(self):
        with MasterSlaveEvaluator(
            _failing_fitness, n_workers=2, dispatch="chunked"
        ) as chunked:
            with pytest.raises(RuntimeError, match="boom"):
                chunked.evaluate_batch([(1, 2)])

    def test_batches_after_a_worker_error_return_correct_values(self):
        # a failed batch must not leave stale messages (results *or* errors)
        # that a later batch consumes: task ids are farm-unique and stale
        # ids are discarded.  Markers 90-93 error on whichever slaves own
        # them, so the aborted batch leaves stale error tuples behind too.
        with MasterSlaveEvaluator(
            _fail_on_marker_fitness, n_workers=2, dispatch="chunked",
            chunk_size=1, dedup=False, cache_size=0,
        ) as chunked:
            with pytest.raises(RuntimeError, match="marker"):
                chunked.evaluate_batch([(1,), (90,), (91,), (92,), (93,), (2,)])
            assert chunked.evaluate_batch([(5,), (6,), (7,)]) == [6.0, 7.0, 8.0]

    def test_affinity_routing_is_deterministic(self):
        from repro.parallel.farm import affinity_worker

        key = (3, 7, 11)
        assert affinity_worker(key, 4) == affinity_worker(key, 4)
        assert 0 <= affinity_worker(key, 4) < 4
