"""Tests of the genome-scale windowed scan subsystem.

Covers the genetics window layer (zero-copy views, whole-panel agreement),
the sharded shared-memory store, the scan planner/runner/report, the PVM
cost-model calibration and — as the acceptance check — a ≥200-locus /
≥100-window panel scanned bit-identically across backends and job counts,
including through the ``scan`` CLI command.
"""

import pickle

import numpy as np
import pytest

from repro.core.config import GAConfig
from repro.genetics.dataset import plan_windows, shard_dataset
from repro.genetics.io import write_study_tables
from repro.genetics.simulate import (
    DiseaseModel,
    PopulationModel,
    simulate_case_control_study,
)
from repro.runtime.service import RunScheduler
from repro.runtime.shm import ShardedGenotypeStore
from repro.scan import (
    plan_scan,
    record_cost_trace,
    run_scan,
    simulate_scan_on_cluster,
    window_seed,
)
from repro.stats.evaluation import HaplotypeEvaluator


class TestWindowPlan:
    def test_tiles_cover_the_panel(self):
        plan = plan_windows(51, window_size=8, overlap=4)
        covered = sorted({s for w in plan for s in w.snp_indices})
        assert covered == list(range(51))
        assert all(w.size == 8 for w in plan)
        assert plan.stride == 4

    def test_final_window_is_anchored_at_the_end(self):
        plan = plan_windows(21, window_size=6, overlap=3)
        assert plan.windows[-1].stop == 21
        assert plan.windows[-1].size == 6

    def test_exact_tiling_adds_no_extra_window(self):
        plan = plan_windows(20, window_size=5, overlap=0)
        assert [w.start for w in plan] == [0, 5, 10, 15]

    def test_window_of(self):
        plan = plan_windows(20, window_size=6, overlap=3)
        owners = plan.window_of(7)
        assert all(w.start <= 7 < w.stop for w in owners)
        assert len(owners) == 2
        with pytest.raises(IndexError):
            plan.window_of(20)

    def test_to_global(self):
        plan = plan_windows(20, window_size=6, overlap=3)
        window = plan.windows[1]  # [3, 9)
        assert window.to_global((0, 5)) == (3, 8)
        with pytest.raises(IndexError):
            window.to_global((6,))

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_windows(10, window_size=12, overlap=0)
        with pytest.raises(ValueError):
            plan_windows(10, window_size=4, overlap=4)
        with pytest.raises(ValueError):
            plan_windows(0, window_size=2)


class TestZeroCopyWindows:
    def test_window_views_share_the_parent_buffer(self, small_dataset):
        plan = plan_windows(small_dataset.n_snps, window_size=6, overlap=3)
        for shard in shard_dataset(small_dataset, plan):
            assert np.shares_memory(shard.genotypes, small_dataset.genotypes)

    def test_window_matches_whole_panel_slicing(self, small_dataset):
        window = small_dataset.window(3, 9)
        assert np.array_equal(window.genotypes, small_dataset.genotypes[:, 3:9])
        assert window.snp_names == small_dataset.snp_names[3:9]
        assert window.individual_ids == small_dataset.individual_ids

    def test_contiguous_select_snps_is_a_view(self, small_dataset):
        view = small_dataset.select_snps(range(2, 7))
        assert np.shares_memory(view.genotypes, small_dataset.genotypes)
        scattered = small_dataset.select_snps([1, 4, 9])
        assert not np.shares_memory(scattered.genotypes, small_dataset.genotypes)

    def test_shard_requires_matching_plan(self, small_dataset):
        plan = plan_windows(10, window_size=4, overlap=2)
        with pytest.raises(ValueError):
            shard_dataset(small_dataset, plan)

    def test_overlapping_windows_agree_with_whole_panel(self, small_dataset):
        """The same global SNP pair scores identically from any window."""
        full = HaplotypeEvaluator(small_dataset)
        plan = plan_windows(small_dataset.n_snps, window_size=8, overlap=6)
        pair = (6, 7)  # contained in several overlapping windows
        expected = full.evaluate(pair)
        checked = 0
        for window, shard in zip(plan, shard_dataset(small_dataset, plan)):
            if not (window.start <= pair[0] and pair[1] < window.stop):
                continue
            local = tuple(s - window.start for s in pair)
            assert HaplotypeEvaluator(shard).evaluate(local) == expected
            checked += 1
        assert checked >= 2


class TestShardedGenotypeStore:
    def test_one_segment_many_window_views(self, small_dataset):
        plan = plan_windows(small_dataset.n_snps, window_size=6, overlap=3)
        with ShardedGenotypeStore(small_dataset, plan) as store:
            handles = store.window_handles()
            assert len(handles) == plan.n_windows
            assert len({h.name for h in handles}) == 1  # one shared segment
            reference = store.dataset()
            for window, handle in zip(plan, handles):
                view = handle.load()
                assert view.n_snps == window.size
                assert np.array_equal(
                    view.genotypes,
                    reference.genotypes[:, window.start: window.stop],
                )
                del view
                handle.detach()
            del reference  # drop the exported view before the store unlinks

    def test_window_handles_survive_pickling(self, small_dataset):
        with ShardedGenotypeStore(small_dataset) as store:
            handle = pickle.loads(pickle.dumps(store.window_handle(2, 8)))
            view = handle.load()
            assert view.n_snps == 6
            assert view.snp_names == store.dataset().snp_names[2:8]
            del view  # the attachment cannot close under an exported view
            handle.detach()

    def test_window_handles_are_memoised(self, small_dataset):
        with ShardedGenotypeStore(small_dataset) as store:
            assert store.window_handle(0, 4) is store.window_handle(0, 4)

    def test_rewindowing_rejected(self, small_dataset):
        with ShardedGenotypeStore(small_dataset) as store:
            windowed = store.window_handle(0, 6)
            with pytest.raises(ValueError):
                windowed.window(0, 3)

    def test_validation(self, small_dataset):
        plan = plan_windows(99, window_size=4, overlap=0)
        with pytest.raises(ValueError):
            ShardedGenotypeStore(small_dataset, plan)
        with ShardedGenotypeStore(small_dataset) as store:
            with pytest.raises(ValueError):
                store.window_handle(0, 99)
            with pytest.raises(ValueError):
                store.window_handles()  # no plan


@pytest.fixture(scope="module")
def scan_config():
    return GAConfig(
        population_size=8,
        min_haplotype_size=2,
        max_haplotype_size=3,
        termination_stagnation=2,
        max_generations=3,
        point_mutation_trials=1,
    )


def _scan_key(report):
    return [(w.window.index, w.best_snps, w.best_fitness) for w in report.windows]


class TestScanPlanner:
    def test_window_seeds_are_distinct_and_deterministic(self):
        seeds = [window_seed(7, i) for i in range(100)]
        assert len(set(seeds)) == 100
        assert seeds == [window_seed(7, i) for i in range(100)]

    def test_requests_carry_window_indices(self, scan_config):
        plan = plan_scan(20, window_size=6, overlap=3, config=scan_config, seed=3)
        for window, request in plan.requests():
            assert request.snp_indices == window.snp_indices
            assert request.seed == window_seed(3, window.index)

    def test_config_clamped_to_window(self):
        config = GAConfig(population_size=12, min_haplotype_size=2,
                          max_haplotype_size=6, termination_stagnation=2,
                          max_generations=3)
        plan = plan_scan(12, window_size=4, overlap=0, config=config, seed=0)
        for window, request in plan.requests():
            assert request.config.max_haplotype_size == 4
        # an amply sized window keeps the base configuration object
        wide = plan_scan(12, window_size=8, overlap=0, config=config, seed=0)
        for _window, request in wide.requests():
            assert request.config is config


class TestScanRunner:
    def test_report_shape_and_global_indices(self, small_dataset, scan_config):
        report = run_scan(
            small_dataset, window_size=6, overlap=3, config=scan_config, seed=11
        )
        assert [w.window.index for w in report.windows] == list(
            range(report.n_windows)
        )
        for w in report.windows:
            assert all(w.window.start <= s < w.window.stop for s in w.best_snps)
            for size, (snps, _fitness) in w.best_per_size.items():
                assert len(snps) == size
        best = report.best_window()
        assert best.best_fitness == max(w.best_fitness for w in report.windows)
        sizes = report.best_per_size()
        assert set(sizes) <= {2, 3}
        payload = report.to_json()
        assert payload["n_windows"] == report.n_windows
        assert len(payload["windows"]) == report.n_windows

    def test_scan_matches_per_window_ga_on_views(self, small_dataset, scan_config):
        """A window's scan result equals a standalone GA on the window view."""
        from repro.runtime.service import RunRequest, RunService

        report = run_scan(
            small_dataset, window_size=6, overlap=3, config=scan_config, seed=11
        )
        window = report.windows[1].window
        plan = plan_scan(
            small_dataset.n_snps, window_size=6, overlap=3,
            config=scan_config, seed=11,
        )
        standalone = RunService(small_dataset.window(window.start, window.stop)).run(
            RunRequest(
                config=plan.window_config(window),
                seed=window_seed(11, window.index),
            )
        )
        expected = {
            size: (window.to_global(ind.snps), ind.fitness_value())
            for size, ind in standalone.best_per_size().items()
        }
        assert report.windows[1].best_per_size == expected

    def test_progress_streams_every_window(self, small_dataset, scan_config):
        seen = []
        report = run_scan(
            small_dataset, window_size=6, overlap=3, config=scan_config,
            seed=11, progress=seen.append,
        )
        assert sorted(r.window.index for r in seen) == [
            w.window.index for w in report.windows
        ]

    def test_scan_refuses_a_scheduler_with_queued_jobs(
        self, small_dataset, scan_config
    ):
        from repro.runtime.service import RunRequest

        with RunScheduler(small_dataset) as scheduler:
            foreign = scheduler.submit(RunRequest(config=scan_config, seed=9))
            with pytest.raises(ValueError, match="drain them"):
                run_scan(
                    small_dataset, window_size=6, overlap=3, config=scan_config,
                    seed=11, scheduler=scheduler,
                )
            # the caller's job is untouched and still runs
            results = dict(scheduler.as_completed())
            assert list(results) == [foreign]
        with RunScheduler(small_dataset, jobs=2) as scheduler:
            for i in range(2):
                scheduler.submit(RunRequest(config=scan_config, seed=20 + i))
            for _job_id, _result in scheduler.as_completed():
                break  # leaves the in-flight job's result unclaimed
            if scheduler.n_unclaimed:
                with pytest.raises(ValueError, match="drain them"):
                    run_scan(
                        small_dataset, window_size=6, overlap=3,
                        config=scan_config, seed=11, scheduler=scheduler,
                    )
            dict(scheduler.as_completed())  # hand the rest back

    def test_scan_reuses_an_external_scheduler(self, small_dataset, scan_config):
        with RunScheduler(small_dataset) as scheduler:
            first = run_scan(
                small_dataset, window_size=6, overlap=3, config=scan_config,
                seed=11, scheduler=scheduler,
            )
            second = run_scan(
                small_dataset, window_size=6, overlap=3, config=scan_config,
                seed=11, scheduler=scheduler,
            )
            assert not scheduler.closed
            # warm substrate: the repeat scan is answered from shared caches
            assert second.stats.n_evaluations == 0
        assert _scan_key(first) == _scan_key(second)

    def test_summary_line_matches_run_format(self, small_dataset, scan_config):
        report = run_scan(
            small_dataset, window_size=6, overlap=3, config=scan_config, seed=11
        )
        line = report.summary_line()
        assert line.startswith("evaluation backend: serial")
        assert "requests" in line and "evaluations" in line


class TestCostModelCalibration:
    def test_trace_fit_and_cluster_check(self, small_dataset):
        with RunScheduler(small_dataset) as scheduler:
            trace = record_cost_trace(
                scheduler, sizes=(2, 3, 4), n_probes=4, seed=5
            )
            model = trace.fit_cost_model()
        assert model.base_seconds > 0
        assert model.growth_factor >= 1.0
        config = GAConfig(population_size=8, max_haplotype_size=3,
                          termination_stagnation=2, max_generations=3)
        report = run_scan(
            small_dataset, window_size=6, overlap=3, config=config, seed=1
        )
        few = simulate_scan_on_cluster(report, model, n_slaves=2)
        many = simulate_scan_on_cluster(report, model, n_slaves=8)
        assert 1.0 <= few.speedup <= 2.0
        assert many.speedup >= few.speedup - 1e-9
        assert 0.0 < few.efficiency <= 1.0

    def test_validation(self, small_dataset):
        with RunScheduler(small_dataset) as scheduler:
            with pytest.raises(ValueError):
                record_cost_trace(scheduler, sizes=(2,))
            with pytest.raises(ValueError):
                record_cost_trace(scheduler, sizes=(2, 99))
            with pytest.raises(ValueError):
                record_cost_trace(scheduler, sizes=(2, 3), n_probes=0)

    def test_fully_cached_size_is_rejected_not_mistimed(self, small_dataset):
        """A substrate whose cache holds every size-2 haplotype cannot be
        calibrated: the probes would time cache lookups, not evaluations."""
        from itertools import combinations

        with RunScheduler(small_dataset, cache_size=None) as scheduler:
            warm = scheduler.probe_evaluator()
            warm.evaluate_batch(list(combinations(range(small_dataset.n_snps), 2)))
            with pytest.raises(RuntimeError, match="cache"):
                record_cost_trace(scheduler, sizes=(2, 3), n_probes=4)


# --------------------------------------------------------------------------- #
# acceptance: a chromosome-scale panel, >=100 windows, bit-identical everywhere
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def chromosome_study():
    """A 201-locus panel (cheap rows, chromosome-scale columns)."""
    model = PopulationModel(n_snps=201, block_size=6, within_block_correlation=0.4)
    disease = DiseaseModel(
        causal_snps=(20, 100, 180),
        risk_alleles=(2, 2, 2),
        baseline_penetrance=0.1,
        relative_risk=6.0,
        risk_haplotype_frequency=0.3,
    )
    return simulate_case_control_study(
        population_model=model,
        disease_model=disease,
        n_affected=20,
        n_unaffected=20,
        seed=31,
    )


class TestChromosomeScaleScan:
    WINDOW_SIZE = 4
    OVERLAP = 2

    @pytest.fixture(scope="class")
    def acceptance_config(self):
        return GAConfig(
            population_size=6,
            min_haplotype_size=2,
            max_haplotype_size=2,
            termination_stagnation=1,
            max_generations=2,
            point_mutation_trials=1,
        )

    def _scan(self, dataset, config, **kwargs):
        return run_scan(
            dataset,
            window_size=self.WINDOW_SIZE,
            overlap=self.OVERLAP,
            config=config,
            seed=17,
            **kwargs,
        )

    def test_bit_identical_across_backends_and_jobs(
        self, chromosome_study, acceptance_config
    ):
        dataset = chromosome_study.dataset
        assert dataset.n_snps >= 200
        serial = self._scan(dataset, acceptance_config)
        assert serial.n_windows >= 100
        shm = self._scan(
            dataset, acceptance_config, backend="process-shm", n_workers=2
        )
        stealing = self._scan(
            dataset, acceptance_config, backend="async", n_workers=2
        )
        threaded_jobs = self._scan(dataset, acceptance_config, jobs=4)
        assert (
            _scan_key(serial)
            == _scan_key(shm)
            == _scan_key(stealing)
            == _scan_key(threaded_jobs)
        )
        assert serial.stats.counters() == shm.stats.counters()
        # the work-stealing farm must preserve exact counter parity too
        assert serial.stats.counters() == stealing.stats.counters()

    def test_bit_identical_on_shm_deques_and_remote_hosts(
        self, chromosome_study, acceptance_config
    ):
        from repro.runtime.remote import LocalWorkerHost

        dataset = chromosome_study.dataset
        serial = self._scan(dataset, acceptance_config)
        deque_steal = self._scan(
            dataset,
            acceptance_config,
            backend="async",
            n_workers=2,
            steal_mode="shm",
        )
        host = LocalWorkerHost()
        try:
            remote = self._scan(
                dataset,
                acceptance_config,
                backend="remote",
                hosts=[host.host, host.host],
            )
        finally:
            host.close()
        assert _scan_key(serial) == _scan_key(deque_steal) == _scan_key(remote)
        # shared-memory stealing keeps exact counter parity with serial
        assert serial.stats.counters() == deque_steal.stats.counters()

    def test_bounded_pending_and_cost_priority_do_not_change_the_scan(
        self, chromosome_study, acceptance_config
    ):
        from repro.parallel.pvm import EvaluationCostModel

        dataset = chromosome_study.dataset
        reference = self._scan(dataset, acceptance_config)
        spilled = self._scan(dataset, acceptance_config, max_pending=3)
        prioritised = self._scan(
            dataset,
            acceptance_config,
            jobs=2,
            max_pending=5,
            cost_model=EvaluationCostModel(),
        )
        assert _scan_key(reference) == _scan_key(spilled) == _scan_key(prioritised)

    def test_cli_scan_command(self, chromosome_study, tmp_path, capsys):
        from repro.cli import main

        study_dir = tmp_path / "chromosome"
        write_study_tables(chromosome_study.dataset, study_dir)
        exit_code = main(
            [
                "scan",
                str(study_dir),
                "--window-size", str(self.WINDOW_SIZE),
                "--window-overlap", str(self.OVERLAP),
                "--population-size", "6",
                "--max-size", "2",
                "--stagnation", "1",
                "--max-generations", "2",
                "--seed", "17",
                "--top", "3",
            ]
        )
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "201 loci" in out
        assert "windows" in out
        assert "evaluation backend: serial" in out


class TestScanReportRoundTrip:
    """Satellite: ScanReport.from_json must round-trip to_json exactly."""

    @pytest.fixture(scope="class")
    def report(self, request):
        small_dataset = request.getfixturevalue("small_dataset")
        config = GAConfig(
            population_size=8, min_haplotype_size=2, max_haplotype_size=3,
            termination_stagnation=2, max_generations=3, point_mutation_trials=1,
        )
        return run_scan(small_dataset, window_size=6, overlap=3, config=config, seed=11)

    def test_json_round_trip_is_exact(self, report):
        import json

        from repro.scan.report import ScanReport

        payload = report.to_json()
        # through an actual serialisation, so types survive real persistence
        reloaded = ScanReport.from_json(json.loads(json.dumps(payload)))
        assert reloaded.to_json() == payload
        assert _scan_key(reloaded) == _scan_key(report)
        assert reloaded.stats.counters() == report.stats.counters()

    def test_reloaded_report_supports_aggregation(self, report):
        from repro.scan.report import ScanReport

        reloaded = ScanReport.from_json(report.to_json())
        assert reloaded.best_window().window.index == report.best_window().window.index
        assert reloaded.best_per_size() == report.best_per_size()
        assert reloaded.summary_line() == report.summary_line()
        assert reloaded.format(top=3) == report.format(top=3)

    def test_legacy_payload_without_new_fields_still_loads(self, report):
        from repro.scan.report import ScanReport

        payload = report.to_json()
        payload.pop("stats")
        for key in ("n_cached_windows", "admission_wait_seconds"):
            payload.pop(key)  # pre-scan-service payloads lack these
        for window in payload["windows"]:
            for key in ("best_per_size", "n_distinct_evaluations",
                        "n_generations", "seed"):
                window.pop(key)
        reloaded = ScanReport.from_json(payload)
        assert _scan_key(reloaded) == _scan_key(report)
        assert reloaded.n_cached_windows == 0
        assert reloaded.admission_wait_seconds == 0.0

    def test_service_counters_round_trip(self, report):
        """The scan-service counters (cache replays, admission wait, the
        per-request result-cache-hit stat) survive to_json/from_json."""
        import dataclasses
        import json

        from repro.scan.report import ScanReport

        stats = report.stats.copy()
        stats.n_result_cache_hits = 4
        served = dataclasses.replace(
            report,
            stats=stats,
            n_cached_windows=4,
            admission_wait_seconds=0.125,
        )
        reloaded = ScanReport.from_json(json.loads(json.dumps(served.to_json())))
        assert reloaded.n_cached_windows == 4
        assert reloaded.admission_wait_seconds == 0.125
        assert reloaded.stats.n_result_cache_hits == 4
        assert reloaded.to_json() == served.to_json()
        # the replay account reaches the human-readable surfaces
        assert "replayed from the cross-request cache" in reloaded.summary_line()
        assert "replayed from the service result cache" in reloaded.format(top=2)
