"""Multi-host slave pools over authenticated, length-prefixed sockets.

The paper ran its master/slave GA on a PVM cluster.  This module is the
socket-era equivalent: worker *hosts* run :func:`serve` (CLI:
``repro-ga worker --bind HOST:PORT``), accepting one connection per slave and
evaluating chunks in a dedicated process per connection;
:class:`RemoteSlavePool` is a :class:`~repro.parallel.farm.ChunkedWorkerFarm`
whose transport is those connections instead of local child processes — the
whole ticket engine (affinity routing, stealing, PR-6 recovery replay)
is inherited unchanged, only the five transport hooks differ.

Wire protocol (``multiprocessing.connection`` — length-prefixed pickles over
TCP, HMAC-authenticated with a shared key):

* master → slave, once: ``(worker_id, evaluator_factory, worker_cache_size)``
  — the factory carries the picklable :class:`~repro.runtime.spec.EvaluatorSpec`
  plus a dataset handle; the ``remote`` backend ships the 2-bit packed panel
  (:class:`~repro.runtime.spec.PackedDatasetHandle`, ~4× smaller than bytes)
  exactly once per connection, after which only haplotype chunks travel.
* master → slave, per chunk: ``(task_id, [haplotype, ...])``; ``None`` stops.
* slave → master, per chunk: ``(task_id, worker_id, values, ChunkStats,
  error)`` — byte-for-byte the local farm's result message.

A dead connection is treated exactly like a dead local slave: the recovery
engine replays its chunks onto survivors (bit-identical by fitness purity)
and raises :class:`~repro.parallel.farm.FarmDeadError` when none remain.

Liveness is active, not just reactive: every slave process runs a heartbeat
thread beating over its connection (``("heartbeat", worker_id, ts)`` —
shape-distinct from the 5-tuple result message, consumed by the farm's
control-message hook), so a host that *silently* stops answering — black-holed
route, frozen VM, partitioned switch — is reaped after ``heartbeat_timeout``
seconds exactly like a torn connection, and its in-flight chunks replay onto
survivors.  Reconnects (the respawn path) go through
:func:`connect_with_timeout` so a black-holed host cannot wedge the master in
an unbounded handshake, and failed reconnects back off exponentially per host
— a flapping host is re-admitted when it answers again, not hammered.

The shared key defaults to a well-known development value; set
``REPRO_REMOTE_AUTHKEY`` on every host for anything beyond localhost.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from multiprocessing.connection import Client, Listener
from typing import Sequence

from ..parallel.base import default_mp_context
from ..parallel.farm import (
    ChunkedWorkerFarm,
    EvaluatorFactory,
    FarmRecoveryPolicy,
    _build_local_evaluator,
    _evaluate_chunk,
)
from ..parallel.pvm import EvaluationCostModel

__all__ = [
    "RemoteSlavePool",
    "LocalWorkerHost",
    "serve",
    "parse_host",
    "parse_hosts",
    "default_authkey",
    "connect_with_timeout",
]

_DEFAULT_AUTHKEY = b"repro-ga-dist"

#: first element of a slave→master heartbeat message (shape-distinct from the
#: 5-tuple chunk result, so the farm's control hook can intercept it)
_HEARTBEAT = "heartbeat"

#: how often a slave process beats while serving a master
DEFAULT_HEARTBEAT_INTERVAL = 1.0

#: master-side silence budget before a host is reaped as dead
DEFAULT_HEARTBEAT_TIMEOUT = 30.0


def connect_with_timeout(
    address: tuple[str, int], *, authkey: bytes, timeout: float | None
):
    """``Client(address, authkey=...)`` with a connect/handshake deadline.

    ``multiprocessing.connection.Client`` has no timeout: against a
    black-holed host (SYN accepted, HMAC challenge never answered) it blocks
    forever, which would wedge the master's reconnect path.  The attempt runs
    on a daemon thread and is abandoned past ``timeout`` — the thread (and
    its half-open socket) dies with the process, bounded by the recovery
    policy's restart budget.  ``timeout=None`` is a plain blocking connect.
    """
    address = tuple(address)
    if timeout is None:
        return Client(address, authkey=authkey)
    box: dict = {}
    done = threading.Event()

    def attempt() -> None:
        try:
            box["conn"] = Client(address, authkey=authkey)
        except BaseException as exc:
            box["error"] = exc
        finally:
            done.set()

    thread = threading.Thread(target=attempt, daemon=True)
    thread.start()
    if not done.wait(timeout):
        raise TimeoutError(
            f"connecting to {address[0]}:{address[1]} did not complete "
            f"within {timeout:.1f}s"
        )
    if "error" in box:
        raise box["error"]
    return box["conn"]


def default_authkey() -> bytes:
    """The wire-authentication key: ``REPRO_REMOTE_AUTHKEY`` or a dev default."""
    value = os.environ.get("REPRO_REMOTE_AUTHKEY")
    if value:
        return value.encode("utf-8")
    return _DEFAULT_AUTHKEY


def parse_host(host) -> tuple[str, int]:
    """``"host:port"`` (or a ``(host, port)`` pair) → ``(host, port)``."""
    if isinstance(host, str):
        name, sep, port = host.rpartition(":")
        if not sep or not name:
            raise ValueError(
                f"remote host must be 'host:port', got {host!r}"
            )
        try:
            return (name, int(port))
        except ValueError:
            raise ValueError(
                f"remote host must be 'host:port' with an integer port, got {host!r}"
            ) from None
    name, port = host
    return (str(name), int(port))


def parse_hosts(hosts: Sequence) -> tuple[tuple[str, int], ...]:
    """Parse a sequence of host specs; order defines worker-slot numbering."""
    parsed = tuple(parse_host(host) for host in hosts)
    if not parsed:
        raise ValueError("at least one remote host is required")
    return parsed


# --------------------------------------------------------------------- #
# worker-host side
# --------------------------------------------------------------------- #
def _install_stop_handlers(stop: threading.Event, on_stop=None) -> None:
    """SIGTERM/SIGINT → set ``stop`` so serving loops drain and exit cleanly.

    ``on_stop`` additionally runs inside the handler — e.g. closing a
    listener so a blocked ``accept()`` (retried after handlers per PEP 475)
    actually wakes up.  Signal handlers can only be installed from a
    process's main thread; elsewhere (e.g. a slave loop driven from a thread
    in tests) this is a silent no-op and the loop simply relies on
    connection teardown.
    """
    if threading.current_thread() is not threading.main_thread():
        return

    def handler(signum, frame):  # pragma: no cover - signal delivery
        stop.set()
        if on_stop is not None:
            try:
                on_stop()
            except OSError:
                pass

    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, handler)
        except (ValueError, OSError):  # pragma: no cover - exotic runtime
            return


def _remote_worker_loop(
    conn, heartbeat_interval: float | None = DEFAULT_HEARTBEAT_INTERVAL
) -> None:
    """Serve one master connection: setup once, then evaluate chunks forever.

    SIGTERM/SIGINT request a graceful stop: the loop polls the connection
    instead of blocking in ``recv``, so a terminated host finishes (and
    replies to) the chunk it is evaluating, then closes the connection — the
    master sees an orderly disconnect instead of a mid-chunk tear it must
    discover via replay.

    With ``heartbeat_interval`` set, a daemon thread beats over the
    connection so the master can tell "evaluating a heavy chunk" from "gone"
    — the beat keeps flowing *during* evaluation, which is exactly when a
    reply-only protocol is silent.  Replies and beats share a send lock so
    their pickles never interleave on the wire.
    """
    stop = threading.Event()
    _install_stop_handlers(stop)
    try:
        setup = conn.recv()
    except (EOFError, OSError):
        return
    worker_id, factory, worker_cache_size = setup
    local = _build_local_evaluator(worker_id, factory, worker_cache_size, conn)
    if local is None:
        return  # start-up failure already reported over the connection
    send_lock = threading.Lock()
    beats: threading.Thread | None = None
    if heartbeat_interval is not None:

        def _beat() -> None:
            while not stop.wait(heartbeat_interval):
                try:
                    with send_lock:
                        conn.send((_HEARTBEAT, worker_id, time.monotonic()))
                except (BrokenPipeError, ConnectionError, OSError, ValueError):
                    return

        beats = threading.Thread(
            target=_beat, daemon=True, name=f"remote-worker-{worker_id}-beat"
        )
        beats.start()
    try:
        while not stop.is_set():
            try:
                if not conn.poll(0.2):
                    continue
                message = conn.recv()
            except (EOFError, OSError):
                return  # master went away; nothing left to serve
            if message is None:
                return
            task_id, chunk = message
            reply = _evaluate_chunk(local, task_id, worker_id, chunk)
            try:
                with send_lock:
                    conn.send(reply)
            except (BrokenPipeError, OSError):
                return
    finally:
        stop.set()
        if beats is not None:
            beats.join(timeout=2.0)
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass


def serve(
    bind: tuple[str, int] | str,
    *,
    authkey: bytes | None = None,
    max_connections: int | None = None,
    start_method: str | None = None,
    heartbeat_interval: float | None = DEFAULT_HEARTBEAT_INTERVAL,
    _ready=None,
) -> None:
    """Run a worker host: accept master connections, one slave process each.

    ``bind`` is ``(host, port)`` or ``"host:port"`` (port ``0`` binds an
    ephemeral port; the resolved address is reported over ``_ready`` when
    given).  Each accepted connection gets its own daemon process running
    :func:`_remote_worker_loop`, so one master's heavy chunk cannot block
    another master's slave.  ``max_connections`` bounds how many connections
    are served before returning (``None`` serves forever).

    SIGTERM/SIGINT shut the host down gracefully: the accept loop stops, and
    every slave process is SIGTERMed — its own handler lets the in-flight
    chunk finish and its reply be delivered before the connection closes —
    then joined (with an escalation to ``kill`` for stragglers).
    """
    if isinstance(bind, str):
        bind = parse_host(bind)
    context = default_mp_context(start_method)
    stop = threading.Event()
    listener = Listener(bind, authkey=authkey or default_authkey())
    # the handler must close the listener as well as set the flag: a blocked
    # accept() is retried after a signal handler returns (PEP 475), so the
    # close is what actually wakes the loop
    _install_stop_handlers(stop, on_stop=listener.close)
    workers: list = []
    try:
        if _ready is not None:
            _ready.send(listener.address)
            _ready.close()
        served = 0
        while not stop.is_set() and (
            max_connections is None or served < max_connections
        ):
            try:
                conn = listener.accept()
            except OSError:
                # listener closed under us, or accept interrupted by a
                # shutdown signal (EINTR surfaces here on some platforms)
                if stop.is_set():
                    break
                return
            except Exception:
                # failed authentication or a scanner poking the port: keep
                # serving legitimate masters
                continue
            worker = context.Process(
                target=_remote_worker_loop,
                args=(conn, heartbeat_interval),
                daemon=True,
            )
            worker.start()
            conn.close()  # the slave process owns it now
            workers = [w for w in workers if w.is_alive()]
            workers.append(worker)
            served += 1
    finally:
        try:
            listener.close()  # may already be closed by the signal handler
        except OSError:  # pragma: no cover - platform dependent
            pass
        # drain: SIGTERM each slave (its handler finishes the in-flight
        # chunk and replies first), join, then kill anything still stuck
        for worker in workers:
            if worker.is_alive():
                worker.terminate()
        for worker in workers:
            worker.join(timeout=10.0)
            if worker.is_alive():  # pragma: no cover - wedged evaluation
                worker.kill()
                worker.join(timeout=1.0)


class LocalWorkerHost:
    """A worker host on an ephemeral localhost port (tests and benchmarks).

    Starts :func:`serve` in a child process bound to ``127.0.0.1:0`` and
    exposes the resolved ``host:port``::

        with LocalWorkerHost() as host:
            pool = RemoteSlavePool(factory, hosts=[host.host])
    """

    def __init__(
        self,
        *,
        authkey: bytes | None = None,
        max_connections: int | None = None,
        start_method: str | None = None,
        heartbeat_interval: float | None = DEFAULT_HEARTBEAT_INTERVAL,
        bind: tuple[str, int] | None = None,
    ) -> None:
        context = default_mp_context(start_method)
        ready_recv, ready_send = context.Pipe(duplex=False)
        # not a daemon: the server forks one slave process per connection,
        # and daemonic processes may not have children
        self._process = context.Process(
            target=serve,
            args=(bind or ("127.0.0.1", 0),),
            kwargs={
                "authkey": authkey,
                "max_connections": max_connections,
                "start_method": start_method,
                "heartbeat_interval": heartbeat_interval,
                "_ready": ready_send,
            },
        )
        self._process.start()
        ready_send.close()
        self.address: tuple[str, int] = ready_recv.recv()
        ready_recv.close()

    @property
    def host(self) -> str:
        """The ``"host:port"`` spec to hand to ``--hosts`` / ``hosts=``."""
        return f"{self.address[0]}:{self.address[1]}"

    def close(self) -> None:
        """Stop accepting connections; idempotent.

        Slaves already serving a master keep running until that master sends
        the stop sentinel or closes the connection.
        """
        if self._process.is_alive():
            self._process.terminate()
        self._process.join(timeout=5.0)

    def __enter__(self) -> "LocalWorkerHost":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# --------------------------------------------------------------------- #
# master side
# --------------------------------------------------------------------- #
class RemoteSlavePool(ChunkedWorkerFarm):
    """The chunked ticket engine over socket connections to worker hosts.

    One slave slot per entry of ``hosts`` (a host serving N slaves is simply
    listed N times).  All of :class:`ChunkedWorkerFarm`'s semantics carry
    over — affinity routing, master-mediated stealing, recovery replay,
    counter parity — with connections in place of child processes:

    * a torn connection is a dead slave (replay onto survivors, optional
      reconnect as the respawn, :class:`FarmDeadError` when none remain);
    * ``steal_mode`` is fixed at ``"master"`` — a shared-memory arena cannot
      span hosts;
    * ``recovery.chunk_timeout`` hangs are healed by dropping the connection;
    * a host silent past ``heartbeat_timeout`` (its slave beats every
      :data:`DEFAULT_HEARTBEAT_INTERVAL` seconds, evaluating or idle) is
      reaped exactly like a torn connection — the black-holed-route failure
      mode a reply-only protocol cannot see;
    * reconnect attempts are bounded by ``connect_timeout`` and back off
      exponentially per host (``reconnect_backoff`` →
      ``max_reconnect_backoff``); a host that answers again is re-admitted
      on the next health pass (within the recovery restart budget).
    """

    def __init__(
        self,
        factory: EvaluatorFactory,
        hosts: Sequence,
        *,
        authkey: bytes | None = None,
        chunk_size: int | None = None,
        worker_cache_size: int | None = 4096,
        steal: bool = False,
        max_inflight: int = 2,
        cost_model: EvaluationCostModel | None = None,
        recovery: FarmRecoveryPolicy | None = None,
        heartbeat_timeout: float | None = DEFAULT_HEARTBEAT_TIMEOUT,
        connect_timeout: float | None = 10.0,
        reconnect_backoff: float = 0.5,
        max_reconnect_backoff: float = 30.0,
    ) -> None:
        addresses = parse_hosts(hosts)
        if heartbeat_timeout is not None and heartbeat_timeout <= 0:
            raise ValueError(
                f"heartbeat_timeout must be positive, got {heartbeat_timeout!r}"
            )
        # transport state must exist before super().__init__ runs the
        # _spawn_worker loop
        self._addresses = addresses
        self._authkey = authkey or default_authkey()
        self._broken = [False] * len(addresses)
        self._heartbeat_timeout = (
            None if heartbeat_timeout is None else float(heartbeat_timeout)
        )
        self._connect_timeout = (
            None if connect_timeout is None else float(connect_timeout)
        )
        self._reconnect_backoff_base = float(reconnect_backoff)
        self._max_reconnect_backoff = float(max_reconnect_backoff)
        self._last_heartbeat = [time.monotonic()] * len(addresses)
        self._reconnect_backoff = [self._reconnect_backoff_base] * len(addresses)
        self._reconnect_at = [0.0] * len(addresses)
        super().__init__(
            factory,
            len(addresses),
            chunk_size=chunk_size,
            worker_cache_size=worker_cache_size,
            steal=steal,
            steal_mode="master",
            max_inflight=max_inflight,
            cost_model=cost_model,
            recovery=recovery,
        )

    # ------------------------------------------------------------------ #
    # transport hooks
    # ------------------------------------------------------------------ #
    def _spawn_worker(self, worker_id: int) -> None:
        """Connect slot ``worker_id`` to its host and ship the setup message."""
        address = self._addresses[worker_id]
        try:
            conn = connect_with_timeout(
                address, authkey=self._authkey, timeout=self._connect_timeout
            )
            conn.send((worker_id, self._factory, self._worker_cache_size))
        except Exception as exc:
            raise ConnectionError(
                f"could not connect worker {worker_id} to remote host "
                f"{address[0]}:{address[1]}: {exc}"
            ) from exc
        self._close_conn(self._result_conns[worker_id])
        self._result_conns[worker_id] = conn
        self._broken[worker_id] = False
        self._inflight[worker_id] = 0
        self._alive[worker_id] = True
        self._last_heartbeat[worker_id] = time.monotonic()
        self._reconnect_backoff[worker_id] = self._reconnect_backoff_base
        self._reconnect_at[worker_id] = 0.0

    def _send_message(self, worker: int, message) -> None:
        conn = self._result_conns[worker]
        try:
            conn.send(message)
        except Exception:
            # the health pass reaps the broken slave and replays its chunks
            self._broken[worker] = True

    def _on_result_channel_error(self, conn) -> None:
        for worker, candidate in enumerate(self._result_conns):
            if candidate is conn:
                self._broken[worker] = True

    def _handle_control_message(self, message) -> bool:
        """Consume a slave heartbeat arriving on the result channel."""
        if (
            isinstance(message, tuple)
            and len(message) == 3
            and message[0] == _HEARTBEAT
        ):
            worker = int(message[1])
            if 0 <= worker < self._n_workers:
                with self._lock:
                    self._last_heartbeat[worker] = time.monotonic()
            return True
        return False

    def _heartbeat_overdue(self, worker: int) -> bool:
        timeout = self._heartbeat_timeout
        if timeout is None:
            return False
        if time.monotonic() - self._last_heartbeat[worker] <= timeout:
            return False
        # beats accumulate unread while no collect loop is draining (between
        # batches, or on an external health probe): readable bytes mean the
        # host is talking, only an *empty* channel past the budget is silence
        conn = self._result_conns[worker]
        if conn is not None and not conn.closed:
            try:
                if conn.poll(0):
                    self._last_heartbeat[worker] = time.monotonic()
                    return False
            except (OSError, ValueError):
                pass
        return True

    def _worker_is_alive(self, worker: int) -> bool:
        return not self._broken[worker] and not self._heartbeat_overdue(worker)

    def _worker_lost_reason(self, worker: int) -> str:
        host, port = self._addresses[worker]
        if not self._broken[worker] and self._heartbeat_overdue(worker):
            silent = time.monotonic() - self._last_heartbeat[worker]
            return (
                f"remote worker {worker} at {host}:{port} went silent "
                f"(no heartbeat for {silent:.1f}s)"
            )
        return f"remote worker {worker} at {host}:{port} disconnected"

    def _kill_worker(self, worker: int) -> None:
        self._broken[worker] = True
        self._close_conn(self._result_conns[worker])
        self._result_conns[worker] = None

    def _respawn_worker(self, worker: int) -> bool:
        """Respawn = reconnect to the same host (it may have restarted).

        Failed reconnects back off exponentially per host: while the backoff
        window is open further attempts are refused immediately, so a dead
        host costs one bounded connect per window instead of a hammering
        loop.  A successful reconnect resets the backoff.
        """
        now = time.monotonic()
        if now < self._reconnect_at[worker]:
            return False
        try:
            self._spawn_worker(worker)
        except ConnectionError:
            backoff = self._reconnect_backoff[worker]
            self._reconnect_at[worker] = now + backoff
            self._reconnect_backoff[worker] = min(
                backoff * 2.0, self._max_reconnect_backoff
            )
            return False
        return True

    def _check_farm_health(self) -> None:
        """The base health pass, plus re-admission of recovered hosts."""
        super()._check_farm_health()
        self._readmit_hosts()

    def _readmit_hosts(self) -> None:
        """Reconnect dead host slots whose backoff window has elapsed.

        Runs under the engine lock (health passes always do).  Re-admission
        spends the same restart budget as any respawn, so a flapping host
        cannot consume unbounded reconnects.
        """
        policy = self._recovery
        if (
            policy is None
            or not policy.respawn
            or self._closed
            or self._dead_error is not None
        ):
            return
        now = time.monotonic()
        for worker in range(self._n_workers):
            if self._alive[worker] or now < self._reconnect_at[worker]:
                continue
            if self._restarts_used >= policy.max_worker_restarts:
                return
            self._restarts_used += 1
            if self._respawn_worker(worker):
                self._n_worker_respawns += 1
                self._pump()

    # ------------------------------------------------------------------ #
    # liveness introspection (the scan service's health probe)
    # ------------------------------------------------------------------ #
    def host_statuses(self) -> list[dict]:
        """Per-host liveness: heartbeat age, broken flag, reconnect backoff."""
        with self._lock:
            now = time.monotonic()
            return [
                {
                    "worker": worker,
                    "host": f"{host}:{port}",
                    "alive": bool(self._alive[worker]),
                    "broken": bool(self._broken[worker]),
                    "seconds_since_heartbeat": now - self._last_heartbeat[worker],
                    "reconnect_backoff_seconds": self._reconnect_backoff[worker],
                    "reconnect_in_seconds": max(
                        0.0, self._reconnect_at[worker] - now
                    ),
                }
                for worker, (host, port) in enumerate(self._addresses)
            ]

    def check_hosts(self) -> list[dict]:
        """Run a health pass now (reap silent hosts, re-admit recovered ones)
        and return :meth:`host_statuses`.  Never raises: a farm found fully
        dead is reported through the statuses, not an exception."""
        from ..parallel.farm import FarmDeadError

        try:
            with self._lock:
                self._check_farm_health()
        except FarmDeadError:
            pass
        return self.host_statuses()

    def _shutdown_transport(self, *, force: bool, join_timeout: float) -> None:
        for worker, conn in enumerate(self._result_conns):
            if conn is None:
                continue
            if not force and not self._broken[worker]:
                try:
                    conn.send(None)
                except (OSError, ValueError):  # pragma: no cover - conn gone
                    pass
            self._close_conn(conn)


def main(argv: Sequence[str] | None = None) -> None:
    """``python -m repro.runtime.remote --bind HOST:PORT`` worker-host entry."""
    import argparse

    parser = argparse.ArgumentParser(
        description="Run a repro-ga remote worker host."
    )
    parser.add_argument(
        "--bind",
        required=True,
        help="address to listen on, e.g. 0.0.0.0:7777 (port 0 = ephemeral)",
    )
    parser.add_argument(
        "--max-connections",
        type=int,
        default=None,
        help="serve this many master connections, then exit (default: forever)",
    )
    options = parser.parse_args(argv)
    address = parse_host(options.bind)
    print(f"repro-ga worker host listening on {address[0]}:{address[1]}", flush=True)
    serve(address, max_connections=options.max_connections)


if __name__ == "__main__":  # pragma: no cover - CLI entry
    main()
