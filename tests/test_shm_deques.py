"""Tests of the shared-memory steal-deque substrate (``steal_mode="shm"``).

Two layers: the arena itself (:mod:`repro.parallel.shm_deques` — ring
discipline, claims, drain/remove bookkeeping) and the farm running on it
(bit-identical results and counter parity vs. the master-mediated modes,
backpressure when the arena is full, oversize-chunk splitting, validation).
"""

import multiprocessing as mp

import pytest

from repro.parallel.farm import ChunkedWorkerFarm, FarmRecoveryPolicy
from repro.parallel.master_slave import MasterSlaveEvaluator
from repro.parallel.shm_deques import (
    SharedChunkDeques,
    encoded_chunk_ints,
)

FAST_POLL = 0.05


def _linear_fitness(snps):
    return float(sum((i + 1) * (s + 1) for i, s in enumerate(sorted(snps))))


class _LinearFactory:
    def __call__(self):
        return _linear_fitness


def _batch(n):
    return [(i, i + 1) for i in range(n)]


def _expected(batch):
    return [_linear_fitness(snps) for snps in batch]


@pytest.fixture()
def deques():
    arena = SharedChunkDeques(3, context=mp.get_context(), n_slots=8, slot_ints=16)
    yield arena
    arena.close()


class TestSharedChunkDeques:
    def test_encoded_chunk_ints(self):
        assert encoded_chunk_ints([(1, 2), (3, 4, 5)]) == 2 + 3 + 4

    def test_push_take_fifo_for_owner(self, deques):
        handle = deques.handle()
        for task_id, chunk in [(10, [(1, 2)]), (11, [(3, 4)]), (12, [(5, 6)])]:
            assert deques.push(0, task_id, chunk) is not None
        worker_view = handle.attach()
        try:
            taken = [worker_view.take(0, steal=False) for _ in range(3)]
            assert [t[0] for t in taken] == [10, 11, 12]  # FIFO from own ring
            assert taken[0][1] == [(1, 2)]
            assert worker_view.take(0, steal=False) is None
        finally:
            worker_view.detach()

    def test_thief_pops_victim_tail(self, deques):
        handle = deques.handle()
        for task_id in (20, 21, 22):
            deques.push(0, task_id, [(task_id, task_id + 1)])
        worker_view = handle.attach()
        try:
            stolen = worker_view.take(2, steal=True)
            assert stolen[0] == 22  # newest (tail) goes to the thief
            owned = worker_view.take(0, steal=False)
            assert owned[0] == 20  # owner still drains its head
        finally:
            worker_view.detach()

    def test_no_steal_without_flag(self, deques):
        deques.push(0, 30, [(0, 1)])
        worker_view = deques.handle().attach()
        try:
            assert worker_view.take(1, steal=False) is None
        finally:
            worker_view.detach()

    def test_take_sets_claim_and_clear_claimed(self, deques):
        deques.push(0, 40, [(0, 1)])
        worker_view = deques.handle().attach()
        try:
            worker_view.take(0, steal=False)
            _entries, claimed = deques.drain_worker(0)
            assert claimed == 40
            # the claim outlives the drain only until the worker clears it
            deques.push(1, 41, [(2, 3)])
            worker_view.take(1, steal=False)
            worker_view.clear_claimed(1)
            _entries, claimed = deques.drain_worker(1)
            assert claimed is None
        finally:
            worker_view.detach()

    def test_arena_full_returns_none_and_free_slot_recycles(self, deques):
        slots = [deques.push(0, 50 + i, [(i, i + 1)]) for i in range(8)]
        assert all(slot is not None for slot in slots)
        assert deques.push(1, 99, [(0, 1)]) is None  # all 8 slots in use
        # a drain hands back every ring entry; freeing their slots makes the
        # arena accept pushes again
        entries, _claimed = deques.drain_worker(0)
        assert {task_id for _slot, task_id in entries} == {50 + i for i in range(8)}
        for slot, _task_id in entries:
            deques.free_slot(slot)
        assert deques.push(1, 99, [(0, 1)]) is not None

    def test_oversize_chunk_rejected(self, deques):
        huge = [tuple(range(20))]  # 2 + 21 ints > slot_ints=16
        with pytest.raises(ValueError, match="slot"):
            deques.push(0, 60, huge)

    def test_remove_tasks_filters_and_compacts(self, deques):
        for task_id in (70, 71, 72, 73):
            deques.push(0, task_id, [(task_id, task_id + 1)])
        removed = deques.remove_tasks({71, 73})
        assert sorted(task_id for _slot, task_id in removed) == [71, 73]
        worker_view = deques.handle().attach()
        try:
            remaining = [worker_view.take(0, steal=False)[0] for _ in range(2)]
            assert remaining == [70, 72]  # survivors keep FIFO order
            assert worker_view.take(0, steal=False) is None
        finally:
            worker_view.detach()

    def test_close_idempotent(self):
        arena = SharedChunkDeques(2, context=mp.get_context(), n_slots=4, slot_ints=8)
        arena.close()
        arena.close()

    def test_validation(self):
        context = mp.get_context()
        with pytest.raises(ValueError):
            SharedChunkDeques(4, context=context, n_slots=2)  # fewer slots than workers
        with pytest.raises(ValueError):
            SharedChunkDeques(2, context=context, slot_ints=2)


def _make_farm(*, steal_mode="shm", n_workers=3, recovery=None, **kwargs):
    kwargs.setdefault("chunk_size", 1)
    kwargs.setdefault("steal", True)
    kwargs.setdefault("worker_cache_size", 0)
    farm = ChunkedWorkerFarm(
        _LinearFactory(), n_workers, steal_mode=steal_mode, recovery=recovery, **kwargs
    )
    farm._RESULT_POLL_SECONDS = FAST_POLL
    return farm


class TestShmFarm:
    @pytest.mark.parametrize("steal", [True, False])
    def test_bit_identical_to_master_mode(self, steal):
        batch = _batch(24)
        with _make_farm(steal_mode="master", steal=steal) as farm:
            master_values, master_stats = farm.evaluate(batch)
        with _make_farm(steal_mode="shm", steal=steal) as farm:
            shm_values, shm_stats = farm.evaluate(batch)
        assert shm_values == master_values == _expected(batch)
        # counter parity: same requests, same total answered
        assert shm_stats.n_requests == master_stats.n_requests
        assert (
            shm_stats.n_evaluations + shm_stats.n_cache_hits
            == master_stats.n_evaluations + master_stats.n_cache_hits
        )

    def test_multi_ticket_streaming(self):
        batch = _batch(32)
        with _make_farm() as farm:
            tickets = [farm.submit(batch[i::4]) for i in range(4)]
            seen = {}
            for ticket_id, values, _stats in farm.as_completed(tickets):
                seen[ticket_id] = values
            for i, ticket_id in enumerate(tickets):
                assert seen[ticket_id] == _expected(batch[i::4])

    def test_tiny_arena_backpressure(self):
        # 4 slots for 3 workers: most of the batch must wait master-side and
        # flow in as results free slots
        batch = _batch(40)
        with _make_farm(deque_slots=4, deque_slot_ints=8) as farm:
            values, stats = farm.evaluate(batch)
        assert values == _expected(batch)
        assert stats.n_requests == len(batch)

    def test_oversize_chunks_split_across_slots(self):
        # chunk_size=None + steal=False sends whole shares, far bigger than
        # one 8-int slot; the farm must split them on push
        batch = _batch(30)
        with _make_farm(chunk_size=None, steal=False, deque_slot_ints=8) as farm:
            values, _stats = farm.evaluate(batch)
        assert values == _expected(batch)

    def test_steal_mode_property(self):
        with _make_farm() as farm:
            assert farm.steal_mode == "shm"
        with _make_farm(steal_mode="master") as farm:
            assert farm.steal_mode == "master"

    def test_worker_error_fails_only_its_ticket(self):
        class _BadFactory:
            def __call__(self):
                def fitness(snps):
                    if sorted(snps) == [2, 3]:
                        raise RuntimeError("poison haplotype")
                    return _linear_fitness(snps)

                return fitness

        farm = ChunkedWorkerFarm(
            _BadFactory(), 2, chunk_size=1, steal_mode="shm", worker_cache_size=0
        )
        farm._RESULT_POLL_SECONDS = FAST_POLL
        with farm:
            good_batch = [(10 + i, 11 + i) for i in range(6)]
            bad = farm.submit([(0, 1), (2, 3), (4, 5)])
            good = farm.submit(good_batch)
            with pytest.raises(RuntimeError, match="poison"):
                farm.collect(bad)
            values, _stats = farm.collect(good)
            assert values == _expected(good_batch)

    def test_rejects_unknown_steal_mode(self):
        with pytest.raises(ValueError, match="steal_mode"):
            ChunkedWorkerFarm(_LinearFactory(), 2, steal_mode="bogus")

    def test_rejects_chunk_timeout(self):
        with pytest.raises(ValueError, match="chunk_timeout"):
            ChunkedWorkerFarm(
                _LinearFactory(),
                2,
                steal_mode="shm",
                recovery=FarmRecoveryPolicy(chunk_timeout=1.0),
            )


class TestMasterSlaveShm:
    def test_evaluator_parity_and_property(self):
        batch = _batch(20)
        with MasterSlaveEvaluator(
            evaluator_factory=_LinearFactory(),
            dispatch="chunked",
            n_workers=3,
            steal=True,
            steal_mode="shm",
            chunk_size=2,
        ) as evaluator:
            assert evaluator.steal_mode == "shm"
            assert evaluator.evaluate_batch(batch) == _expected(batch)

    def test_hosts_reject_shm_mode(self):
        with pytest.raises(ValueError, match="steal_mode"):
            MasterSlaveEvaluator(
                evaluator_factory=_LinearFactory(),
                dispatch="chunked",
                steal_mode="shm",
                hosts=["localhost:1"],
            )
