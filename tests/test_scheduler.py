"""Tests of the persistent RunScheduler (one substrate, many runs)."""

import pytest

from repro.core.config import GAConfig
from repro.runtime.service import RunRequest, RunScheduler, RunService
from repro.runtime.spec import EvaluatorSpec


@pytest.fixture(scope="module")
def quick_config():
    return GAConfig(
        population_size=12,
        max_haplotype_size=3,
        termination_stagnation=2,
        max_generations=4,
    )


def _requests(quick_config, n=4):
    return [RunRequest(config=quick_config, seed=100 + i) for i in range(n)]


def _result_key(result):
    return [
        (size, ind.snps, ind.fitness_value())
        for size, ind in sorted(result.result.best_per_size.items())
    ]


class TestRunScheduler:
    def test_submit_and_stream(self, small_dataset, quick_config):
        with RunScheduler(small_dataset) as scheduler:
            ids = [scheduler.submit(r) for r in _requests(quick_config, 3)]
            assert ids == [0, 1, 2]
            assert scheduler.n_pending == 3
            seen = dict(scheduler.as_completed())
            assert sorted(seen) == ids
            assert scheduler.n_pending == 0
            assert scheduler.n_completed == 3
            for result in seen.values():
                assert result.backend == "serial"
                assert result.runs

    def test_map_preserves_submission_order(self, small_dataset, quick_config):
        requests = _requests(quick_config, 3)
        with RunScheduler(small_dataset) as scheduler:
            results = scheduler.map(requests)
        assert [r.request.seed for r in results] == [100, 101, 102]

    def test_results_identical_across_jobs(self, small_dataset, quick_config):
        requests = _requests(quick_config, 4)
        with RunScheduler(small_dataset, jobs=1) as scheduler:
            sequential = scheduler.map(requests)
            total_seq = scheduler.stats
        with RunScheduler(small_dataset, jobs=3) as scheduler:
            concurrent = scheduler.map(requests)
            total_con = scheduler.stats
        for a, b in zip(sequential, concurrent):
            assert _result_key(a) == _result_key(b)
        # the work totals are completion-order invariant; only the split
        # between dedup hits and cache hits depends on the interleaving
        assert total_seq.n_requests == total_con.n_requests
        assert total_seq.n_evaluations == total_con.n_evaluations
        assert (
            total_seq.n_dedup_hits + total_seq.n_cache_hits
            == total_con.n_dedup_hits + total_con.n_cache_hits
        )

    def test_matches_standalone_service(self, small_dataset, quick_config):
        request = RunRequest(config=quick_config, seed=7)
        standalone = RunService(small_dataset).run(request)
        with RunScheduler(small_dataset) as scheduler:
            scheduled = scheduler.run(request)
        assert _result_key(standalone) == _result_key(scheduled)
        assert standalone.stats.counters() == scheduled.stats.counters()

    def test_per_job_stats_are_scoped(self, small_dataset, quick_config):
        with RunScheduler(small_dataset) as scheduler:
            first = scheduler.run(RunRequest(config=quick_config, seed=1))
            second = scheduler.run(RunRequest(config=quick_config, seed=1))
            # identical request replayed on a warm substrate: all requests
            # answered by the shared cache, none evaluated again
            assert second.stats.n_requests == first.stats.n_requests
            assert second.stats.n_evaluations == 0
            total = scheduler.stats
        assert total.n_requests == first.stats.n_requests + second.stats.n_requests
        assert total.n_evaluations == first.stats.n_evaluations

    def test_window_restriction_matches_window_view(
        self, small_dataset, quick_config
    ):
        window = (3, 9)
        request = RunRequest(
            config=quick_config, seed=5, snp_indices=tuple(range(*window))
        )
        with RunScheduler(small_dataset) as scheduler:
            windowed = scheduler.run(request)
        view_service = RunService(small_dataset.window(*window))
        on_view = view_service.run(RunRequest(config=quick_config, seed=5))
        assert _result_key(windowed) == _result_key(on_view)

    def test_spec_mismatch_rejected(self, small_dataset, quick_config):
        with RunScheduler(small_dataset, statistic="t1") as scheduler:
            with pytest.raises(ValueError, match="spec"):
                scheduler.submit(RunRequest(config=quick_config, statistic="t2"))
            # a matching explicit spec is accepted
            scheduler.submit(
                RunRequest(config=quick_config, spec=EvaluatorSpec(statistic="t1"))
            )

    def test_spec_comparison_is_normalised(self, small_dataset, quick_config):
        """'T1' vs 't1' (the evaluator lower-cases) must not be a mismatch."""
        result = RunService(small_dataset).run(
            RunRequest(config=quick_config, seed=1, statistic="T1")
        )
        assert result.runs
        with RunScheduler(small_dataset, statistic="t1") as scheduler:
            scheduler.submit(RunRequest(config=quick_config, statistic="T1"))

    def test_abandoned_drain_keeps_unstarted_jobs(self, small_dataset, quick_config):
        with RunScheduler(small_dataset) as scheduler:
            ids = [scheduler.submit(r) for r in _requests(quick_config, 3)]
            for job_id, _result in scheduler.as_completed():
                break  # abandon after the first result
            assert scheduler.n_completed == 1
            assert scheduler.n_pending == 2
            remaining = dict(scheduler.as_completed())
            assert sorted(remaining) == ids[1:]

    def test_abandoned_concurrent_drain_loses_nothing(
        self, small_dataset, quick_config
    ):
        """jobs>1: in-flight jobs finish and surface on the next drain."""
        requests = _requests(quick_config, 4)
        with RunScheduler(small_dataset, jobs=1) as scheduler:
            expected = {
                job_id: _result_key(result)
                for job_id, result in zip(
                    range(4), scheduler.map(list(requests))
                )
            }
        with RunScheduler(small_dataset, jobs=2) as scheduler:
            ids = [scheduler.submit(r) for r in requests]
            collected = {}
            for job_id, result in scheduler.as_completed():
                collected[job_id] = _result_key(result)
                break  # abandon with one job potentially still in flight
            collected.update(
                (job_id, _result_key(result))
                for job_id, result in scheduler.as_completed()
            )
            assert sorted(collected) == ids
            assert scheduler.n_completed == len(ids)
        assert collected == expected

    def test_snp_indices_validation(self, small_dataset, quick_config):
        with RunScheduler(small_dataset) as scheduler:
            with pytest.raises(ValueError, match="at least two"):
                scheduler.submit(RunRequest(config=quick_config, snp_indices=(3,)))
            with pytest.raises(ValueError, match="distinct"):
                scheduler.submit(RunRequest(config=quick_config, snp_indices=(3, 3)))
            with pytest.raises(ValueError, match="range"):
                scheduler.submit(
                    RunRequest(config=quick_config, snp_indices=(0, 99))
                )

    def test_validation(self, small_dataset, quick_config):
        with pytest.raises(ValueError):
            RunScheduler(small_dataset, jobs=0)
        with RunScheduler(small_dataset) as scheduler:
            with pytest.raises(ValueError):
                scheduler.submit(RunRequest(config=quick_config, n_runs=0))
        with pytest.raises(RuntimeError):
            scheduler.submit(RunRequest(config=quick_config))
        scheduler.close()  # idempotent

    def test_probe_evaluator_is_stats_isolated(self, small_dataset, quick_config):
        with RunScheduler(small_dataset) as scheduler:
            probe = scheduler.probe_evaluator()
            values = probe.evaluate_batch([(0, 1), (2, 3)])
            assert len(values) == 2
            assert probe.stats.n_requests == 2
            result = scheduler.run(RunRequest(config=quick_config, seed=2))
            # the probe's work is on the substrate but not in the job's stats
            assert scheduler.stats.n_requests == 2 + result.stats.n_requests

    def test_summary_line_matches_run_format(self, small_dataset, quick_config):
        with RunScheduler(small_dataset) as scheduler:
            result = scheduler.run(RunRequest(config=quick_config, seed=3))
            line = scheduler.summary_line()
        assert line == result.summary_line()
