"""Run records: per-generation statistics and the final result object."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from .config import GAConfig
from .individual import HaplotypeIndividual

__all__ = ["GenerationRecord", "RunHistory", "GAResult"]


@dataclass(frozen=True)
class GenerationRecord:
    """Statistics of one GA generation.

    Attributes
    ----------
    generation:
        Generation index (1-based; generation 0 is the initial population).
    n_evaluations:
        Cumulative number of fitness evaluations after this generation.
    best_fitness_per_size:
        Best raw fitness of each sub-population.
    mean_fitness_per_size:
        Mean raw fitness of each sub-population.
    mutation_rates, crossover_rates:
        Operator rates in force after this generation's adaptation step.
    stagnation:
        Number of consecutive generations without improvement so far.
    n_insertions:
        Number of offspring that entered a sub-population this generation.
    immigrants_triggered:
        Whether the random-immigrant mechanism fired this generation.
    """

    generation: int
    n_evaluations: int
    best_fitness_per_size: dict[int, float]
    mean_fitness_per_size: dict[int, float]
    mutation_rates: dict[str, float]
    crossover_rates: dict[str, float]
    stagnation: int
    n_insertions: int
    immigrants_triggered: bool


class RunHistory:
    """Ordered collection of :class:`GenerationRecord`."""

    def __init__(self) -> None:
        self._records: list[GenerationRecord] = []

    def append(self, record: GenerationRecord) -> None:
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[GenerationRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> GenerationRecord:
        return self._records[index]

    @property
    def records(self) -> tuple[GenerationRecord, ...]:
        return tuple(self._records)

    def best_fitness_trajectory(self, size: int) -> list[float]:
        """Best fitness of one sub-population across generations."""
        return [r.best_fitness_per_size[size] for r in self._records
                if size in r.best_fitness_per_size]

    def evaluations_trajectory(self) -> list[int]:
        return [r.n_evaluations for r in self._records]

    def n_immigrant_triggers(self) -> int:
        return sum(1 for r in self._records if r.immigrants_triggered)


@dataclass(frozen=True)
class GAResult:
    """Outcome of one GA run.

    Attributes
    ----------
    best_per_size:
        Best haplotype found for every sub-population size.
    evaluations_to_best:
        Cumulative evaluation count at which the best individual of each size
        was (last) improved — the paper's Table-2 cost indicator.
    n_evaluations:
        Total number of fitness evaluations of the run.
    n_generations:
        Number of generations executed.
    termination_reason:
        Why the run stopped (``"stagnation"``, ``"max_generations"``,
        ``"max_evaluations"`` or ``"target_fitness"``).
    history:
        Per-generation statistics.
    config:
        The configuration the run used.
    elapsed_seconds:
        Wall-clock duration of the run.
    """

    best_per_size: dict[int, HaplotypeIndividual]
    evaluations_to_best: dict[int, int]
    n_evaluations: int
    n_generations: int
    termination_reason: str
    history: RunHistory
    config: GAConfig
    elapsed_seconds: float

    def best_overall(self) -> HaplotypeIndividual:
        """The best individual across sizes by raw fitness (largest sizes win ties)."""
        if not self.best_per_size:
            raise ValueError("the run produced no individuals")
        return max(self.best_per_size.values(), key=lambda ind: ind.fitness_value())

    def best_fitness(self, size: int) -> float:
        return self.best_per_size[size].fitness_value()

    def summary_rows(self) -> list[dict[str, object]]:
        """Rows in the shape of the paper's Table 2 (one per haplotype size)."""
        rows: list[dict[str, object]] = []
        for size in sorted(self.best_per_size):
            individual = self.best_per_size[size]
            rows.append(
                {
                    "size": size,
                    "haplotype": " ".join(str(s) for s in individual.snps),
                    "fitness": individual.fitness_value(),
                    "evaluations_to_best": self.evaluations_to_best.get(size),
                }
            )
        return rows
