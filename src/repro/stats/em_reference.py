"""Reference (pre-optimisation) EM kernel, kept for parity tests and benchmarks.

This module preserves the original scatter-add implementation of the
haplotype-frequency EM exactly as it shipped in the seed:

* class and haplotype accumulations use ``np.add.at`` (unbuffered scatter-add,
  one inner-loop dispatch per pair);
* the pair-probability vector is computed twice per iteration — once for the
  E-step and once more inside the log-likelihood of the updated frequencies.

The optimised kernel in :mod:`repro.stats.em` replaces both with segmented
reductions over a class-sorted expansion and a fused likelihood evaluation.
It must stay numerically equivalent to this reference (log-likelihoods to
1e-9, frequencies to 1e-10, identical iteration counts and convergence
flags); ``tests/test_em_kernel_parity.py`` enforces that property and
``benchmarks/bench_em_kernel.py`` reports the speedup over this baseline.
"""

from __future__ import annotations

import numpy as np

from ..genetics.alleles import GENOTYPE_MISSING, n_haplotype_states
from .em import EMResult, PhaseExpansion, _LOG_FLOOR, _genotype_pairs

__all__ = [
    "reference_expand_phases",
    "reference_log_likelihood",
    "reference_estimate_from_expansion",
    "reference_estimate_haplotype_frequencies",
]


def reference_expand_phases(genotypes: np.ndarray) -> PhaseExpansion:
    """The seed's expansion builder: a Python loop over classes and pairs."""
    genotypes = np.asarray(genotypes)
    if genotypes.ndim != 2:
        raise ValueError("genotypes must be 2-D (individuals x loci)")
    n_loci = genotypes.shape[1]
    if n_loci == 0:
        raise ValueError("at least one locus is required")
    complete = ~np.any(genotypes == GENOTYPE_MISSING, axis=1)
    genotypes = genotypes[complete]

    if genotypes.shape[0] == 0:
        return PhaseExpansion(
            n_loci=n_loci,
            class_counts=np.zeros(0, dtype=np.int64),
            pair_a=np.zeros(0, dtype=np.int64),
            pair_b=np.zeros(0, dtype=np.int64),
            pair_class=np.zeros(0, dtype=np.int64),
            pair_multiplicity=np.zeros(0, dtype=np.float64),
        )

    classes, counts = np.unique(genotypes, axis=0, return_counts=True)
    pair_a: list[int] = []
    pair_b: list[int] = []
    pair_class: list[int] = []
    for class_idx, genotype in enumerate(classes):
        for a, b in _genotype_pairs(genotype):
            pair_a.append(a)
            pair_b.append(b)
            pair_class.append(class_idx)
    pa = np.asarray(pair_a, dtype=np.int64)
    pb = np.asarray(pair_b, dtype=np.int64)
    multiplicity = np.where(pa == pb, 1.0, 2.0)
    return PhaseExpansion(
        n_loci=n_loci,
        class_counts=counts.astype(np.int64),
        pair_a=pa,
        pair_b=pb,
        pair_class=np.asarray(pair_class, dtype=np.int64),
        pair_multiplicity=multiplicity,
    )


def reference_log_likelihood(expansion: PhaseExpansion, frequencies: np.ndarray) -> float:
    """Observed-data log-likelihood via the original ``np.add.at`` scatter."""
    pair_prob = (
        expansion.pair_multiplicity
        * frequencies[expansion.pair_a]
        * frequencies[expansion.pair_b]
    )
    class_prob = np.zeros(expansion.n_classes, dtype=np.float64)
    np.add.at(class_prob, expansion.pair_class, pair_prob)
    return float(np.sum(expansion.class_counts * np.log(np.maximum(class_prob, _LOG_FLOOR))))


def reference_estimate_from_expansion(
    expansion: PhaseExpansion,
    *,
    initial_frequencies: np.ndarray | None = None,
    max_iter: int = 200,
    tol: float = 1e-8,
) -> EMResult:
    """Run the seed's scatter-add EM on a pre-computed :class:`PhaseExpansion`."""
    n_states = n_haplotype_states(expansion.n_loci)
    if initial_frequencies is None:
        frequencies = np.full(n_states, 1.0 / n_states, dtype=np.float64)
    else:
        frequencies = np.asarray(initial_frequencies, dtype=np.float64).copy()
        if frequencies.shape != (n_states,):
            raise ValueError(f"initial_frequencies must have length {n_states}")
        if np.any(frequencies < 0):
            raise ValueError("initial_frequencies must be non-negative")
        total = frequencies.sum()
        if total <= 0:
            raise ValueError("initial_frequencies must not be all zero")
        frequencies /= total

    n_individuals = expansion.n_individuals
    if n_individuals == 0:
        return EMResult(
            frequencies=frequencies,
            log_likelihood=0.0,
            n_iterations=0,
            converged=True,
            n_individuals=0,
            n_loci=expansion.n_loci,
        )

    n_chromosomes = 2.0 * n_individuals
    class_counts = expansion.class_counts.astype(np.float64)
    log_likelihood = reference_log_likelihood(expansion, frequencies)
    converged = False
    iteration = 0
    for iteration in range(1, max_iter + 1):
        # E-step: posterior probability of each compatible pair within its class
        pair_prob = (
            expansion.pair_multiplicity
            * frequencies[expansion.pair_a]
            * frequencies[expansion.pair_b]
        )
        class_prob = np.zeros(expansion.n_classes, dtype=np.float64)
        np.add.at(class_prob, expansion.pair_class, pair_prob)
        class_prob = np.maximum(class_prob, _LOG_FLOOR)
        posterior = pair_prob / class_prob[expansion.pair_class]
        weight = posterior * class_counts[expansion.pair_class]

        # M-step: expected haplotype counts -> new frequencies
        hap_counts = np.zeros(frequencies.shape[0], dtype=np.float64)
        np.add.at(hap_counts, expansion.pair_a, weight)
        np.add.at(hap_counts, expansion.pair_b, weight)
        frequencies = hap_counts / n_chromosomes

        new_log_likelihood = reference_log_likelihood(expansion, frequencies)
        if abs(new_log_likelihood - log_likelihood) < tol:
            log_likelihood = new_log_likelihood
            converged = True
            break
        log_likelihood = new_log_likelihood

    return EMResult(
        frequencies=frequencies,
        log_likelihood=log_likelihood,
        n_iterations=iteration,
        converged=converged,
        n_individuals=n_individuals,
        n_loci=expansion.n_loci,
    )


def reference_estimate_haplotype_frequencies(
    genotypes: np.ndarray,
    *,
    initial_frequencies: np.ndarray | None = None,
    max_iter: int = 200,
    tol: float = 1e-8,
) -> EMResult:
    """Genotype-level entry point of the reference kernel (loop expansion + scatter EM)."""
    expansion = reference_expand_phases(genotypes)
    return reference_estimate_from_expansion(
        expansion, initial_frequencies=initial_frequencies, max_iter=max_iter, tol=tol
    )
