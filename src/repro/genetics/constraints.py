"""Haplotype validity constraints (paper Section 2.3).

In a linkage-disequilibrium study, two SNPs belonging to the same candidate
haplotype must verify two conditions:

1. their pairwise (2-by-2) disequilibrium must be **below** a threshold
   ``max_pairwise_ld`` — otherwise the two SNPs are near-redundant and the
   haplotype wastes a slot on duplicated information;
2. the difference between the smaller frequencies of their two variants must
   be **above** a threshold ``min_minor_frequency_difference`` — SNPs whose
   minor variants have (almost) the same frequency tend to be proxies of one
   another.

The GA, the exhaustive enumerator and the random baselines all share this
:class:`HaplotypeConstraints` object so that every search method explores the
same feasible region.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

import numpy as np

from .dataset import GenotypeDataset
from .frequencies import SnpFrequencyTable, snp_frequency_table
from .ld import PairwiseLDTable, pairwise_ld_table

__all__ = ["HaplotypeConstraints", "build_constraints"]


@dataclass(frozen=True)
class HaplotypeConstraints:
    """Pairwise feasibility constraints on the SNPs of a haplotype.

    Attributes
    ----------
    ld_table:
        Pairwise LD table (the paper's pre-computed disequilibrium table).
    frequency_table:
        Per-SNP allele-frequency table.
    max_pairwise_ld:
        Threshold ``t_d``: any SNP pair in a haplotype must have LD strictly
        below this value.  ``1.0`` (with the default ``r²`` measure) disables
        the constraint for all non-identical SNPs.
    min_minor_frequency_difference:
        Threshold ``t_f``: the absolute difference between the two SNPs' minor
        variant frequencies must be at least this value.  ``0.0`` disables the
        constraint.
    """

    ld_table: PairwiseLDTable
    frequency_table: SnpFrequencyTable
    max_pairwise_ld: float = 1.0
    min_minor_frequency_difference: float = 0.0

    def __post_init__(self) -> None:
        if self.ld_table.n_snps != self.frequency_table.n_snps:
            raise ValueError("LD table and frequency table cover different numbers of SNPs")
        if not 0.0 <= self.max_pairwise_ld <= 1.0 + 1e-12:
            raise ValueError("max_pairwise_ld must be in [0, 1]")
        if not 0.0 <= self.min_minor_frequency_difference <= 0.5:
            raise ValueError("min_minor_frequency_difference must be in [0, 0.5]")

    @property
    def n_snps(self) -> int:
        return self.ld_table.n_snps

    # ------------------------------------------------------------------ #
    def pair_is_valid(self, snp_a: int, snp_b: int) -> bool:
        """Whether two distinct SNPs may appear together in a haplotype."""
        if snp_a == snp_b:
            return False
        if self.ld_table.value(snp_a, snp_b) >= self.max_pairwise_ld and self.max_pairwise_ld < 1.0:
            return False
        if self.min_minor_frequency_difference > 0.0:
            fa = self.frequency_table.minor_frequency(snp_a)
            fb = self.frequency_table.minor_frequency(snp_b)
            if abs(fa - fb) < self.min_minor_frequency_difference:
                return False
        return True

    def is_valid(self, snps: Sequence[int] | np.ndarray) -> bool:
        """Whether every pair of SNPs in the candidate haplotype is valid."""
        snps = [int(s) for s in snps]
        if len(set(snps)) != len(snps):
            return False
        return all(self.pair_is_valid(a, b) for a, b in combinations(snps, 2))

    def compatible_snps(self, snps: Sequence[int] | np.ndarray) -> np.ndarray:
        """SNP indices that could be added to ``snps`` without violating constraints."""
        current = [int(s) for s in snps]
        out = []
        for candidate in range(self.n_snps):
            if candidate in current:
                continue
            if all(self.pair_is_valid(candidate, s) for s in current):
                out.append(candidate)
        return np.asarray(out, dtype=np.intp)

    # ------------------------------------------------------------------ #
    @classmethod
    def unconstrained(cls, n_snps: int) -> "HaplotypeConstraints":
        """Constraints object that accepts every duplicate-free SNP set.

        Useful for tests and for datasets where the pre-computed tables are
        not available.
        """
        names = tuple(f"snp{i}" for i in range(n_snps))
        ld = PairwiseLDTable(snp_names=names, values=np.eye(n_snps), measure="r_squared")
        freq = SnpFrequencyTable(
            snp_names=names,
            freq_allele1=np.full(n_snps, 0.5),
            freq_allele2=np.full(n_snps, 0.5),
        )
        return cls(ld_table=ld, frequency_table=freq)


def build_constraints(
    dataset: GenotypeDataset,
    *,
    max_pairwise_ld: float = 1.0,
    min_minor_frequency_difference: float = 0.0,
    ld_measure: str = "r_squared",
) -> HaplotypeConstraints:
    """Build :class:`HaplotypeConstraints` directly from a genotype dataset."""
    return HaplotypeConstraints(
        ld_table=pairwise_ld_table(dataset, measure=ld_measure),
        frequency_table=snp_frequency_table(dataset),
        max_pairwise_ld=max_pairwise_ld,
        min_minor_frequency_difference=min_minor_frequency_difference,
    )
