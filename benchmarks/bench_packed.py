"""Benchmark: the 2-bit packed genotype substrate.

Three measurements of the packed substrate, recorded to ``BENCH_packed.json``
(diffable with ``scripts/bench_compare.py``, which also gates the ``*_gain*``
leaves):

1. **Shared-memory footprint.**  One ``SharedGenotypeStore`` per
   representation over the same panel; the headline is byte-segment bytes
   over packed-segment bytes.  The run asserts the >= 3.5x acceptance floor
   (4x is the asymptote; the status row and page rounding eat the rest).

2. **Phase-expansion construction.**  ``expand_phases_packed`` (LUT byte
   histograms over packed columns) against the byte-matrix
   ``expand_phases`` (row-sort ``np.unique``) on random locus subsets at
   cohort scale.  Every cell asserts bitwise-identical expansions before it
   is timed; the headline is the *minimum* per-call gain across cells, and
   the run asserts the >= 1.5x acceptance floor.  Cells use n >= 500
   individuals: with ~100 rows the shared pair-enumeration cost dominates
   both paths and the kernels time as a wash — the packed path is built for
   cohorts where the class-counting scan *is* the cost.

3. **End-to-end scan.**  The same windowed scan byte-wise and packed
   (fingerprints asserted identical).  Recorded as
   ``scan_packed_vs_byte_ratio`` — deliberately *not* a ``*_gain*`` leaf:
   at benchmark scale the GA loop, not class counting, dominates wall-clock,
   so the ratio hovers around 1.0 and gating it would gate noise.

Usage::

    python benchmarks/bench_packed.py            # full run
    python benchmarks/bench_packed.py --quick    # CI smoke
    python benchmarks/bench_packed.py -o out.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

import numpy as np  # noqa: E402

from repro.core.config import GAConfig  # noqa: E402
from repro.genetics.dataset import GENOTYPE_MISSING, GenotypeDataset  # noqa: E402
from repro.genetics.packed import PackedPanel, pack_genotypes  # noqa: E402
from repro.genetics.simulate import (  # noqa: E402
    DiseaseModel,
    PopulationModel,
    simulate_case_control_study,
)
from repro.runtime.shm import SharedGenotypeStore  # noqa: E402
from repro.scan import run_scan  # noqa: E402
from repro.stats.em import expand_phases, expand_phases_packed  # noqa: E402

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_packed.json"
)

SHM_REDUCTION_FLOOR = 3.5
EXPANSION_GAIN_FLOOR = 1.5

SCAN_WINDOW_SIZE = 4
SCAN_OVERLAP = 2
SCAN_SEED = 17


def _random_dataset(rng, n, m, missing_rate=0.02):
    g = rng.integers(0, 3, size=(n, m)).astype(np.int8)
    if missing_rate:
        g[rng.random(size=g.shape) < missing_rate] = GENOTYPE_MISSING
    status = np.concatenate(
        [np.ones(n // 2, dtype=np.int8), np.zeros(n - n // 2, dtype=np.int8)]
    )
    return GenotypeDataset(g, status)


# --------------------------------------------------------------------- #
# 1. shared-memory footprint
# --------------------------------------------------------------------- #
def bench_shm_footprint(*, quick: bool) -> tuple[dict, float]:
    rng = np.random.default_rng(2004)
    panels = [(106, 201)] if quick else [(106, 201), (1000, 2001)]
    results = {}
    worst = float("inf")
    for n, m in panels:
        dataset = _random_dataset(rng, n, m)
        byte_store = SharedGenotypeStore(dataset)
        packed_store = SharedGenotypeStore(dataset, packed=True)
        try:
            ratio = byte_store.n_bytes / packed_store.n_bytes
            results[f"shm_{n}x{m}"] = {
                "n_individuals": n,
                "n_snps": m,
                "byte_segment_bytes": byte_store.n_bytes,
                "packed_segment_bytes": packed_store.n_bytes,
                "reduction": ratio,
            }
            worst = min(worst, ratio)
        finally:
            byte_store.release()
            packed_store.release()
    if worst < SHM_REDUCTION_FLOOR:
        raise AssertionError(
            f"packed shm segments only {worst:.2f}x smaller "
            f"(floor {SHM_REDUCTION_FLOOR}x)"
        )
    return results, worst


# --------------------------------------------------------------------- #
# 2. phase-expansion construction
# --------------------------------------------------------------------- #
def _expansions_equal(a, b) -> bool:
    return a.n_loci == b.n_loci and all(
        np.array_equal(getattr(a, f), getattr(b, f))
        for f in (
            "class_counts",
            "class_genotypes",
            "pair_a",
            "pair_b",
            "pair_class",
            "pair_multiplicity",
        )
    )


def bench_expansion(*, quick: bool) -> tuple[dict, float]:
    rng = np.random.default_rng(31)
    n_snps = 201
    cohorts = [500] if quick else [500, 1000]
    sizes = (3, 4) if quick else (3, 4, 6)
    n_subsets = 30 if quick else 100
    results = {}
    min_gain = float("inf")
    for n in cohorts:
        g = rng.integers(0, 3, size=(n, n_snps)).astype(np.int8)
        g[rng.random(size=g.shape) < 0.02] = GENOTYPE_MISSING
        panel = PackedPanel(pack_genotypes(g), n)
        for n_loci in sizes:
            subsets = [
                rng.choice(n_snps, size=n_loci, replace=False).astype(np.intp)
                for _ in range(n_subsets)
            ]
            for subset in subsets:
                if not _expansions_equal(
                    expand_phases_packed(panel, subset), expand_phases(g[:, subset])
                ):
                    raise AssertionError(
                        f"packed expansion diverged at n={n} loci={subset}"
                    )
            start = time.perf_counter()
            for subset in subsets:
                expand_phases(g[:, subset])
            byte_seconds = time.perf_counter() - start
            start = time.perf_counter()
            for subset in subsets:
                expand_phases_packed(panel, subset)
            packed_seconds = time.perf_counter() - start
            gain = byte_seconds / packed_seconds
            min_gain = min(min_gain, gain)
            results[f"expand_n{n}_L{n_loci}"] = {
                "n_individuals": n,
                "n_loci": n_loci,
                "n_subsets": n_subsets,
                "byte_seconds": byte_seconds,
                "packed_seconds": packed_seconds,
                "gain": gain,
            }
    if not quick and min_gain < EXPANSION_GAIN_FLOOR:
        raise AssertionError(
            f"packed expansion construction only {min_gain:.2f}x faster "
            f"(floor {EXPANSION_GAIN_FLOOR}x)"
        )
    return results, min_gain


# --------------------------------------------------------------------- #
# 3. end-to-end scan
# --------------------------------------------------------------------- #
def bench_scan(*, quick: bool) -> tuple[dict, float]:
    n_snps = 101 if quick else 201
    model = PopulationModel(n_snps=n_snps, block_size=6, within_block_correlation=0.4)
    disease = DiseaseModel(
        causal_snps=(20, 60, 90) if quick else (20, 100, 180),
        risk_alleles=(2, 2, 2),
        baseline_penetrance=0.1,
        relative_risk=6.0,
        risk_haplotype_frequency=0.3,
    )
    study = simulate_case_control_study(
        population_model=model,
        disease_model=disease,
        n_affected=20,
        n_unaffected=20,
        seed=31,
    )
    config = GAConfig(
        population_size=6,
        min_haplotype_size=2,
        max_haplotype_size=2,
        termination_stagnation=1,
        max_generations=2,
        point_mutation_trials=1,
    )

    def scan(**kwargs):
        start = time.perf_counter()
        report = run_scan(
            study.dataset,
            window_size=SCAN_WINDOW_SIZE,
            overlap=SCAN_OVERLAP,
            config=config,
            seed=SCAN_SEED,
            **kwargs,
        )
        return report, time.perf_counter() - start

    byte_report, byte_seconds = scan()
    packed_report, packed_seconds = scan(packed=True)
    if packed_report.fingerprint() != byte_report.fingerprint():
        raise AssertionError("the packed scan diverged from the byte scan")
    ratio = byte_seconds / packed_seconds
    results = {
        "scan_byte": {
            "n_windows": byte_report.n_windows,
            "elapsed_seconds": byte_seconds,
        },
        "scan_packed": {
            "n_windows": packed_report.n_windows,
            "elapsed_seconds": packed_seconds,
        },
    }
    return results, ratio


def run_benchmark(*, quick: bool) -> dict:
    shm_results, shm_reduction = bench_shm_footprint(quick=quick)
    expansion_results, expansion_gain = bench_expansion(quick=quick)
    scan_results, scan_ratio = bench_scan(quick=quick)
    return {
        "benchmark": "packed",
        "results": {**shm_results, **expansion_results, **scan_results},
        "headline": {
            # *_gain leaves: gated by scripts/bench_compare.py --gains-only
            "shm_bytes_reduction_gain": shm_reduction,
            "packed_vs_byte_expansion_gain": expansion_gain,
            # end-to-end the GA loop dominates, so this hovers near 1.0 and
            # is recorded ungated (no *_gain* suffix on purpose)
            "scan_packed_vs_byte_ratio": scan_ratio,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized smoke run")
    parser.add_argument("-o", "--output", default=DEFAULT_OUTPUT,
                        help=f"output JSON path (default {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)

    report = run_benchmark(quick=args.quick)

    for label, result in report["results"].items():
        if "reduction" in result:
            print(
                f"  {label:18s} {result['byte_segment_bytes']:>10d} B -> "
                f"{result['packed_segment_bytes']:>9d} B "
                f"({result['reduction']:.2f}x smaller)"
            )
        elif "gain" in result:
            print(
                f"  {label:18s} byte {result['byte_seconds']:.3f} s, "
                f"packed {result['packed_seconds']:.3f} s "
                f"({result['gain']:.2f}x)"
            )
        else:
            print(f"  {label:18s} {result['elapsed_seconds']:7.2f} s")
    headline = report["headline"]
    print(
        f"shm {headline['shm_bytes_reduction_gain']:.2f}x smaller; "
        f"expansion construction {headline['packed_vs_byte_expansion_gain']:.2f}x "
        f"faster; end-to-end scan ratio "
        f"{headline['scan_packed_vs_byte_ratio']:.2f}x"
    )

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
