"""Scan results: per-window records, the genome-wide report, cost calibration.

:class:`WindowResult` is one window's outcome in **global** panel indices;
:class:`ScanReport` aggregates them into the genome-wide LD view (best
haplotype per window, per size, overall) with per-window timing — the
windowed analogue of the paper's Table 2.

The module also keeps the paper's PVM speedup model exercised against the
scan dispatch path: :func:`record_cost_trace` times probe batches of each
haplotype size through a live :class:`~repro.runtime.service.RunScheduler`
substrate (a recorded scan-shaped trace), :meth:`CostTrace.fit_cost_model`
calibrates :class:`~repro.parallel.pvm.EvaluationCostModel` from it, and
:func:`simulate_scan_on_cluster` schedules the scan's per-window evaluation
batches on the deterministic :class:`~repro.parallel.pvm.SimulatedPVM`
cluster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..genetics.dataset import LocusWindow
from ..parallel.base import EvaluationStats
from ..parallel.pvm import EvaluationCostModel, SimulatedPVM
from ..runtime.service import RunScheduler, backend_summary_line

__all__ = [
    "WindowResult",
    "ScanReport",
    "window_result_to_json",
    "window_result_from_json",
    "CostTrace",
    "record_cost_trace",
    "SimulatedScanSpeedup",
    "simulate_scan_on_cluster",
]


@dataclass(frozen=True)
class WindowResult:
    """Outcome of one window's GA job (haplotypes in global panel indices)."""

    window: LocusWindow
    best_snps: tuple[int, ...]
    best_fitness: float
    best_per_size: dict[int, tuple[tuple[int, ...], float]]
    n_evaluations: int
    n_distinct_evaluations: int
    n_generations: int
    seed: int
    elapsed_seconds: float

    @property
    def reuse_rate(self) -> float:
        """Fraction of the window's requests answered by dedup/caches."""
        if self.n_evaluations == 0:
            return 0.0
        return 1.0 - self.n_distinct_evaluations / self.n_evaluations


def window_result_to_json(result: WindowResult) -> dict:
    """One window's JSON payload — the unit both :meth:`ScanReport.to_json`
    and the scan checkpoint journal persist."""
    return {
        "index": result.window.index,
        "start": result.window.start,
        "stop": result.window.stop,
        "best_snps": list(result.best_snps),
        "best_fitness": result.best_fitness,
        "best_per_size": {
            str(size): [list(snps), fitness]
            for size, (snps, fitness) in sorted(result.best_per_size.items())
        },
        "n_evaluations": result.n_evaluations,
        "n_distinct_evaluations": result.n_distinct_evaluations,
        "n_generations": result.n_generations,
        "seed": result.seed,
        "elapsed_seconds": result.elapsed_seconds,
    }


def window_result_from_json(payload: dict) -> WindowResult:
    """Rebuild one window from its :func:`window_result_to_json` payload."""
    return WindowResult(
        window=LocusWindow(
            index=int(payload["index"]),
            start=int(payload["start"]),
            stop=int(payload["stop"]),
        ),
        best_snps=tuple(int(s) for s in payload["best_snps"]),
        best_fitness=float(payload["best_fitness"]),
        best_per_size={
            int(size): (tuple(int(s) for s in snps), float(fitness))
            for size, (snps, fitness) in payload.get("best_per_size", {}).items()
        },
        n_evaluations=int(payload["n_evaluations"]),
        n_distinct_evaluations=int(payload.get("n_distinct_evaluations", 0)),
        n_generations=int(payload.get("n_generations", 0)),
        seed=int(payload.get("seed", 0)),
        elapsed_seconds=float(payload["elapsed_seconds"]),
    )


@dataclass(frozen=True)
class ScanReport:
    """Genome-wide aggregation of a windowed scan.

    Attributes
    ----------
    windows:
        Per-window results, in window order (regardless of completion order).
    backend, n_jobs:
        Execution substrate the scan ran on.
    stats:
        Evaluation stats merged over every window job (substrate-scoped).
    elapsed_seconds:
        Wall-clock time of the whole scan (farm spin-up included).
    n_snps, window_size, overlap, statistic, seed:
        The scan's geometry and seeding, echoed for reproducibility.
    n_cached_windows:
        Windows replayed from a scan service's cross-request result cache
        (0 for in-process scans and cold-cache service scans).
    admission_wait_seconds:
        Time the request spent queued by a scan service's admission
        controller before execution began (0 in-process).
    n_client_retries:
        Transport-level retries the service client spent completing this
        scan (0 in-process and on a fault-free served scan).  Retried
        windows replay from the daemon's result cache/journal, so retries
        never change the fingerprint — like the timings, this is excluded
        from it.
    """

    windows: tuple[WindowResult, ...]
    backend: str
    n_jobs: int
    stats: EvaluationStats
    elapsed_seconds: float
    n_snps: int
    window_size: int
    overlap: int
    statistic: str
    seed: int
    n_cached_windows: int = 0
    admission_wait_seconds: float = 0.0
    n_client_retries: int = 0

    @property
    def n_windows(self) -> int:
        return len(self.windows)

    @property
    def n_evaluations(self) -> int:
        """Total fitness requests across windows (the paper's cost metric)."""
        return sum(w.n_evaluations for w in self.windows)

    def best_window(self) -> WindowResult:
        """The window holding the genome-wide best haplotype."""
        if not self.windows:
            raise ValueError("the scan produced no windows")
        return max(self.windows, key=lambda w: w.best_fitness)

    def top_windows(self, k: int = 10) -> tuple[WindowResult, ...]:
        """The ``k`` windows with the best haplotypes, best first."""
        return tuple(
            sorted(self.windows, key=lambda w: w.best_fitness, reverse=True)[:k]
        )

    def best_per_size(self) -> dict[int, tuple[tuple[int, ...], float]]:
        """Genome-wide best haplotype of every size across all windows."""
        best: dict[int, tuple[tuple[int, ...], float]] = {}
        for window in self.windows:
            for size, (snps, fitness) in window.best_per_size.items():
                current = best.get(size)
                if current is None or fitness > current[1]:
                    best[size] = (snps, fitness)
        return best

    def summary_line(self) -> str:
        """The same reuse account ``run`` prints, over the whole scan."""
        return backend_summary_line(self.backend, self.stats)

    def fingerprint(self) -> dict:
        """The deterministic subset of the report — identical across backends,
        job counts, worker deaths (replayed chunks are bit-identical by
        purity) and checkpoint resumes of the same planned scan.

        Timings are excluded, as is each window's ``n_distinct_evaluations``:
        which cache answers a re-requested haplotype depends on where its
        chunk physically ran (stealing, replay after a death), while
        ``n_evaluations`` (fitness *requests*) and ``n_generations`` are
        functions of the per-window seed alone.
        """
        return {
            "n_snps": self.n_snps,
            "window_size": self.window_size,
            "overlap": self.overlap,
            "statistic": self.statistic,
            "seed": self.seed,
            "windows": [
                {
                    "index": w.window.index,
                    "start": w.window.start,
                    "stop": w.window.stop,
                    "best_snps": list(w.best_snps),
                    "best_fitness": w.best_fitness,
                    "best_per_size": {
                        str(size): [list(snps), fitness]
                        for size, (snps, fitness) in sorted(w.best_per_size.items())
                    },
                    "n_evaluations": w.n_evaluations,
                    "n_generations": w.n_generations,
                    "seed": w.seed,
                }
                for w in self.windows
            ],
        }

    def format(self, *, top: int = 10) -> str:
        """Human-readable genome-wide report (CLI output)."""
        from ..experiments.reporting import format_table

        headline = (
            f"Genome-scale scan: {self.n_snps} loci, {self.n_windows} windows "
            f"(size {self.window_size}, overlap {self.overlap}), "
            f"statistic {self.statistic.upper()}, "
            f"{self.n_evaluations} evaluations in {self.elapsed_seconds:.1f}s "
            f"on {self.backend} (jobs={self.n_jobs})"
        )
        if self.n_cached_windows > 0:
            headline += (
                f"; {self.n_cached_windows} window(s) replayed from the "
                f"service result cache"
            )
        lines = [headline]
        headers = ["window", "loci", "best haplotype", "fitness", "# eval", "seconds"]
        rows = [
            [
                w.window.index,
                w.window.span(),
                " ".join(map(str, w.best_snps)),
                w.best_fitness,
                w.n_evaluations,
                w.elapsed_seconds,
            ]
            for w in self.top_windows(top)
        ]
        lines.append(
            format_table(headers, rows, title=f"Top {min(top, self.n_windows)} windows")
        )
        size_headers = ["size", "best haplotype (global loci)", "fitness"]
        size_rows = [
            [size, " ".join(map(str, snps)), fitness]
            for size, (snps, fitness) in sorted(self.best_per_size().items())
        ]
        lines.append(
            format_table(size_headers, size_rows, title="Genome-wide best per size")
        )
        return "\n\n".join(lines)

    def to_json(self) -> dict:
        """JSON-serialisable form (benchmarks, persisted reports).

        Complete enough for :meth:`from_json` to rebuild an equivalent
        report, so scans can be persisted and later reloaded for stitching
        or cross-scan comparison.
        """
        return {
            "n_snps": self.n_snps,
            "window_size": self.window_size,
            "overlap": self.overlap,
            "n_windows": self.n_windows,
            "statistic": self.statistic,
            "seed": self.seed,
            "backend": self.backend,
            "jobs": self.n_jobs,
            "elapsed_seconds": self.elapsed_seconds,
            "n_cached_windows": self.n_cached_windows,
            "admission_wait_seconds": self.admission_wait_seconds,
            "n_client_retries": self.n_client_retries,
            "n_evaluations": self.n_evaluations,
            "reuse_rate": self.stats.reuse_rate,
            "stats": {
                key: value
                for key, value in self.stats.__dict__.items()
                if not key.startswith("_")
            },
            "windows": [window_result_to_json(w) for w in self.windows],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "ScanReport":
        """Rebuild a report persisted by :meth:`to_json` (round-trip exact).

        Reloaded reports support every aggregation the original did —
        ``best_window``, ``best_per_size``, ``format`` — so persisted scans
        can be stitched or compared without re-running them.
        """
        windows = tuple(window_result_from_json(w) for w in payload["windows"])
        return cls(
            windows=windows,
            backend=str(payload["backend"]),
            n_jobs=int(payload["jobs"]),
            stats=EvaluationStats(**payload.get("stats", {})),
            elapsed_seconds=float(payload["elapsed_seconds"]),
            n_snps=int(payload["n_snps"]),
            window_size=int(payload["window_size"]),
            overlap=int(payload["overlap"]),
            statistic=str(payload["statistic"]),
            seed=int(payload["seed"]),
            # absent in pre-service payloads: legacy reports still load
            n_cached_windows=int(payload.get("n_cached_windows", 0)),
            admission_wait_seconds=float(payload.get("admission_wait_seconds", 0.0)),
            n_client_retries=int(payload.get("n_client_retries", 0)),
        )


# --------------------------------------------------------------------------- #
# cost-model calibration + simulated-cluster check (paper Section 4.5 model)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class CostTrace:
    """A recorded trace of per-size evaluation timings on a live substrate."""

    sizes: tuple[int, ...]
    mean_seconds: tuple[float, ...]
    n_probes: int
    backend: str

    def fit_cost_model(self) -> EvaluationCostModel:
        """Calibrate the paper's exponential cost model on this trace."""
        return EvaluationCostModel.fit(self.sizes, self.mean_seconds)


def record_cost_trace(
    scheduler: RunScheduler,
    *,
    sizes: Sequence[int] = (2, 3, 4, 5),
    n_probes: int = 16,
    seed: int = 0,
) -> CostTrace:
    """Time probe batches of each haplotype size through the scan substrate.

    For every size, ``n_probes`` distinct random haplotypes over the
    scheduler's full panel are evaluated as batches through the scheduler's
    shared evaluator — the exact dispatch path (chunking, affinity routing,
    worker caches) a scan's generation batches travel.  On a warm substrate
    some probes are answered by the shared dedup/LRU caches at ~zero cost;
    those must not deflate the model, so the recorded mean divides the batch
    wall-clock by the evaluations the substrate *actually performed* (the
    per-probe stats delta) and keeps drawing fresh probes until enough real
    evaluations were timed.  A substrate whose cache already holds every
    haplotype of a size cannot be calibrated and raises ``RuntimeError``.
    """
    if n_probes < 1:
        raise ValueError("n_probes must be positive")
    sizes = tuple(int(s) for s in sizes)
    if len(sizes) < 2:
        raise ValueError("need at least two haplotype sizes to calibrate")
    n_snps = scheduler.dataset.n_snps
    if max(sizes) > n_snps:
        raise ValueError(f"probe size {max(sizes)} exceeds the panel ({n_snps} SNPs)")
    import time

    from ..search.search_space import sample_distinct_haplotypes

    rng = np.random.default_rng(seed)
    mean_seconds = []
    for size in sizes:
        elapsed = 0.0
        evaluated = 0
        for _attempt in range(5):
            batch = sample_distinct_haplotypes(rng, n_snps, size, n_probes)
            probe = scheduler.probe_evaluator()
            start = time.perf_counter()
            probe.evaluate_batch(batch)
            elapsed += time.perf_counter() - start
            evaluated += probe.stats.n_evaluations
            if evaluated >= min(n_probes, len(batch)):
                break
        if evaluated == 0:
            raise RuntimeError(
                f"the substrate's caches answered every size-{size} probe; "
                f"calibrate on a cold scheduler or a larger panel"
            )
        mean_seconds.append(elapsed / evaluated)
    return CostTrace(
        sizes=sizes,
        mean_seconds=tuple(mean_seconds),
        n_probes=int(n_probes),
        backend=scheduler.backend,
    )


@dataclass(frozen=True)
class SimulatedScanSpeedup:
    """Predicted scan speedup on the paper's deterministic cluster model."""

    n_slaves: int
    speedup: float
    makespan_seconds: float
    serial_seconds: float

    @property
    def efficiency(self) -> float:
        return 0.0 if self.n_slaves == 0 else self.speedup / self.n_slaves


def simulate_scan_on_cluster(
    report: ScanReport,
    cost_model: EvaluationCostModel,
    *,
    n_slaves: int,
    message_latency_seconds: float = 1.0e-4,
) -> SimulatedScanSpeedup:
    """Schedule the scan's per-window evaluation batches on a simulated PVM.

    Every window contributes one synchronous batch of
    ``n_distinct_evaluations`` tasks whose sizes cycle through the window's
    sub-population sizes (the scan's actual per-generation mix is not
    recorded; the cycle is the deterministic stand-in).  Windows run one
    after another — the scan's generation barrier — so the scan makespan is
    the sum of per-window makespans, and the speedup is the usual serial /
    parallel ratio of the paper's model applied to the scan workload.
    """
    total_makespan = 0.0
    total_serial = 0.0
    cluster = SimulatedPVM(
        n_slaves,
        cost_model=cost_model,
        message_latency_seconds=message_latency_seconds,
    )
    for window in report.windows:
        if window.n_distinct_evaluations == 0:
            continue
        subpop_sizes = sorted(window.best_per_size) or [2]
        batch_sizes = [
            subpop_sizes[i % len(subpop_sizes)]
            for i in range(window.n_distinct_evaluations)
        ]
        schedule = cluster.schedule_batch(batch_sizes)
        total_makespan += schedule.makespan_seconds
        total_serial += schedule.serial_seconds
    speedup = 0.0 if total_makespan <= 0 else total_serial / total_makespan
    return SimulatedScanSpeedup(
        n_slaves=int(n_slaves),
        speedup=speedup,
        makespan_seconds=total_makespan,
        serial_seconds=total_serial,
    )
