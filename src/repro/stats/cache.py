"""Evaluation memoisation and call counting.

The paper's cost metric is the *number of evaluations* (Table 2): each
EH-DIALL + CLUMP run is expensive, so repeatedly evaluating the same haplotype
is wasted work.  :class:`CachedEvaluator` wraps any fitness callable with an
exact-match cache keyed on the sorted SNP tuple (bounded entries are evicted
least-recently-used) and keeps hit/miss counters so experiments can report
both the number of *distinct* haplotypes evaluated and the number of fitness
requests issued by the search algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..lru import LRUCache

__all__ = ["CacheStatistics", "CachedEvaluator", "CountingEvaluator"]

#: Sentinel distinguishing "not cached" from legitimately cached falsy values
#: (a zero fitness is a perfectly valid CLUMP statistic).
_MISSING = object()


@dataclass(frozen=True)
class CacheStatistics:
    """Hit/miss counters of a :class:`CachedEvaluator`."""

    hits: int
    misses: int

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return 0.0 if self.requests == 0 else self.hits / self.requests


def _key(snps: Sequence[int] | np.ndarray) -> tuple[int, ...]:
    return tuple(sorted(int(s) for s in snps))


class CountingEvaluator:
    """Wrap a fitness callable and count how many times it is invoked."""

    def __init__(self, fitness: Callable[[Sequence[int]], float]) -> None:
        self._fitness = fitness
        self._count = 0

    @property
    def n_evaluations(self) -> int:
        return self._count

    def reset(self) -> None:
        self._count = 0

    def __call__(self, snps: Sequence[int] | np.ndarray) -> float:
        self._count += 1
        return float(self._fitness(snps))


class CachedEvaluator:
    """Memoise a fitness callable on the (sorted) SNP tuple.

    Parameters
    ----------
    fitness:
        The underlying fitness callable (typically a
        :class:`~repro.stats.evaluation.HaplotypeEvaluator`).
    max_size:
        Optional bound on the number of cached entries; when exceeded, the
        least-recently-used entry is evicted.  ``None`` means unbounded.
    """

    def __init__(
        self,
        fitness: Callable[[Sequence[int]], float],
        *,
        max_size: int | None = None,
    ) -> None:
        if max_size is not None and max_size <= 0:
            raise ValueError("max_size must be positive or None")
        self._fitness = fitness
        self._max_size = max_size
        self._cache: LRUCache = LRUCache(max_size)
        self._hits = 0
        self._misses = 0

    # ------------------------------------------------------------------ #
    @property
    def statistics(self) -> CacheStatistics:
        return CacheStatistics(hits=self._hits, misses=self._misses)

    @property
    def n_distinct_evaluations(self) -> int:
        """Number of distinct haplotypes whose fitness was actually computed."""
        return self._misses

    def __len__(self) -> int:
        return len(self._cache)

    def __contains__(self, snps: Sequence[int] | np.ndarray) -> bool:
        return _key(snps) in self._cache

    def clear(self) -> None:
        """Drop all cached values and reset the counters."""
        self._cache.clear()
        self._hits = 0
        self._misses = 0

    # ------------------------------------------------------------------ #
    def __call__(self, snps: Sequence[int] | np.ndarray) -> float:
        key = _key(snps)
        # sentinel lookup: 0.0 (or any falsy/negative fitness) is a
        # legitimate cached value and must count as a hit
        cached = self._cache.get(key, _MISSING)
        if cached is not _MISSING:
            self._hits += 1
            return cached
        value = float(self._fitness(snps))
        self._misses += 1
        self._cache.put(key, value)
        return value
