"""Tests of the parallel speedup harness."""

import pytest

from repro.experiments.speedup import (
    generation_batch,
    run_measured_speedup,
    run_simulated_speedup,
)
from repro.parallel.pvm import EvaluationCostModel


class TestGenerationBatch:
    def test_batch_shape(self):
        batch = generation_batch(n_offspring=30, sizes=(2, 3, 4), seed=1, n_snps=20)
        assert len(batch) == 30
        for snps in batch:
            assert 2 <= len(snps) <= 4
            assert len(set(snps)) == len(snps)
            assert all(0 <= s < 20 for s in snps)

    def test_validation(self):
        with pytest.raises(ValueError):
            generation_batch(n_offspring=0)
        with pytest.raises(ValueError):
            generation_batch(sizes=(2, 3), size_weights=(1.0,))


class TestSimulatedSpeedup:
    def test_speedup_increases_then_saturates(self):
        result = run_simulated_speedup(worker_counts=(1, 2, 4, 8, 64))
        # one slave pays the messaging overhead the serial baseline avoids,
        # so its "speedup" sits just below 1
        assert result.speedups[1] == pytest.approx(1.0, abs=0.05)
        assert result.speedups[4] > result.speedups[2] > result.speedups[1] - 1e-9
        # with a 68-task batch, 64 slaves cannot give 64x
        assert result.speedups[64] < 64
        assert all(0 < e <= 1.0 + 1e-9 for e in result.efficiencies.values())

    def test_custom_cost_model_and_batch(self):
        model = EvaluationCostModel(base_seconds=0.01, growth_factor=2.0)
        batch = [(0, 1)] * 16
        result = run_simulated_speedup(
            worker_counts=(1, 4), batch=batch, cost_model=model,
            message_latency_seconds=0.0,
        )
        assert result.batch_size == 16
        assert result.speedups[4] == pytest.approx(4.0, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            run_simulated_speedup(worker_counts=())

    def test_format(self):
        text = run_simulated_speedup(worker_counts=(1, 2)).format()
        assert "speedup" in text


class TestMeasuredSpeedup:
    def test_measured_speedup_runs(self, small_study):
        batch = generation_batch(n_offspring=6, sizes=(2, 3), seed=2, n_snps=14)
        result = run_measured_speedup(
            study=small_study, worker_counts=(1, 2), batch=batch, n_repeats=1
        )
        speedups = result.report.speedups()
        assert set(speedups) == {1, 2}
        assert speedups[1] == pytest.approx(1.0)
        assert speedups[2] > 0.0
        assert result.batch_size == 6
        assert "workers" in result.format()

    def test_validation(self, small_study):
        with pytest.raises(ValueError):
            run_measured_speedup(study=small_study, n_repeats=0)
