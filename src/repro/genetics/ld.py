"""Pairwise linkage-disequilibrium (LD) measures.

The paper's first haplotype-validity constraint (Section 2.3) requires that
any two SNPs in a candidate haplotype have a pairwise disequilibrium below a
threshold ``t_d`` — the idea being that a useful haplotype combines SNPs that
carry *complementary* information rather than near-duplicates.  The paper's
input data includes a pre-computed table of "the disequilibrium between every
couple of SNPs"; this module builds that table from genotypes.

Because the data are unphased, two-locus haplotype frequencies are estimated
with the classical two-locus EM (gene counting) algorithm; from them we derive
the usual LD statistics:

* ``D``      — raw disequilibrium coefficient, ``p_AB - p_A p_B``;
* ``D'``     — Lewontin's normalised coefficient in ``[-1, 1]``;
* ``r²``     — squared correlation between loci, in ``[0, 1]``;
* ``chi²``   — ``r² * 2n`` association chi-square on chromosomes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .alleles import GENOTYPE_MISSING
from .dataset import GenotypeDataset

__all__ = [
    "LDStatistics",
    "two_locus_haplotype_frequencies",
    "pairwise_ld",
    "ld_matrix",
    "PairwiseLDTable",
    "pairwise_ld_table",
]


@dataclass(frozen=True)
class LDStatistics:
    """LD statistics for a pair of SNPs.

    Attributes
    ----------
    d:
        Raw disequilibrium coefficient ``p11 - p1*q1`` where ``p11`` is the
        frequency of the haplotype carrying allele 1 at both loci.
    d_prime:
        Lewontin's ``D'`` (``D`` scaled by its admissible maximum), in
        ``[-1, 1]``.
    r_squared:
        Squared allelic correlation, in ``[0, 1]``.
    n_chromosomes:
        Number of (non-missing) chromosomes used for the estimate.
    """

    d: float
    d_prime: float
    r_squared: float
    n_chromosomes: int

    @property
    def abs_d_prime(self) -> float:
        return abs(self.d_prime)

    @property
    def chi_squared(self) -> float:
        """Chi-square statistic of allelic association (``r² * n_chromosomes``)."""
        return self.r_squared * self.n_chromosomes


def two_locus_haplotype_frequencies(
    g1: np.ndarray,
    g2: np.ndarray,
    *,
    max_iter: int = 100,
    tol: float = 1e-10,
) -> tuple[np.ndarray, int]:
    """Estimate the four two-locus haplotype frequencies by EM.

    Parameters
    ----------
    g1, g2:
        Unphased genotype vectors (codes ``0``/``1``/``2``/``-1``) at the two
        loci for the same individuals.
    max_iter:
        Maximum EM iterations.
    tol:
        Convergence tolerance on the double-heterozygote phase probability.

    Returns
    -------
    (freqs, n_chromosomes):
        ``freqs`` is a ``(2, 2)`` array where ``freqs[a, b]`` is the frequency
        of the haplotype carrying allele ``a+1`` at locus 1 and allele ``b+1``
        at locus 2.  ``n_chromosomes`` is twice the number of individuals with
        both genotypes observed.
    """
    g1 = np.asarray(g1)
    g2 = np.asarray(g2)
    if g1.shape != g2.shape:
        raise ValueError("genotype vectors must have the same length")
    keep = (g1 != GENOTYPE_MISSING) & (g2 != GENOTYPE_MISSING)
    g1 = g1[keep].astype(np.int64)
    g2 = g2[keep].astype(np.int64)
    n = g1.size
    n_chrom = 2 * n
    if n == 0:
        return np.full((2, 2), np.nan), 0

    # Joint genotype counts: cell[i, j] = #individuals with g1 == i and g2 == j.
    cells = np.zeros((3, 3), dtype=np.float64)
    for i in range(3):
        gi = g1 == i
        for j in range(3):
            cells[i, j] = np.count_nonzero(gi & (g2 == j))

    # Haplotype counts that are unambiguous from single/double homozygotes and
    # single heterozygotes.  Index haplotypes as (allele at locus1, allele at
    # locus2) with 0 == allele "1", 1 == allele "2".
    # For an individual with genotypes (i, j) the two haplotypes are fully
    # determined unless i == 1 and j == 1 (double heterozygote), which is
    # either {00, 11} (cis) or {01, 10} (trans).
    def fixed_counts() -> np.ndarray:
        counts = np.zeros((2, 2), dtype=np.float64)
        for i in range(3):
            for j in range(3):
                if i == 1 and j == 1:
                    continue
                c = cells[i, j]
                if c == 0:
                    continue
                # copies of allele "2" at each locus: i at locus 1, j at locus 2
                if i == 1:  # het at locus 1, homozygous at locus 2
                    b = j // 2
                    counts[0, b] += c
                    counts[1, b] += c
                elif j == 1:  # het at locus 2, homozygous at locus 1
                    a = i // 2
                    counts[a, 0] += c
                    counts[a, 1] += c
                else:  # both homozygous
                    a, b = i // 2, j // 2
                    counts[a, b] += 2 * c
        return counts

    base = fixed_counts()
    n_dh = cells[1, 1]  # double heterozygotes

    # EM over the phase of double heterozygotes.
    freqs = np.full((2, 2), 0.25)
    prev_cis = -1.0
    for _ in range(max_iter):
        p_cis_num = freqs[0, 0] * freqs[1, 1]
        p_trans_num = freqs[0, 1] * freqs[1, 0]
        denom = p_cis_num + p_trans_num
        p_cis = 0.5 if denom <= 0 else p_cis_num / denom
        counts = base.copy()
        counts[0, 0] += n_dh * p_cis
        counts[1, 1] += n_dh * p_cis
        counts[0, 1] += n_dh * (1.0 - p_cis)
        counts[1, 0] += n_dh * (1.0 - p_cis)
        freqs = counts / n_chrom
        if abs(p_cis - prev_cis) < tol:
            break
        prev_cis = p_cis
    return freqs, n_chrom


def pairwise_ld(
    dataset: GenotypeDataset,
    snp_a: int,
    snp_b: int,
    *,
    max_iter: int = 100,
) -> LDStatistics:
    """LD statistics between two SNPs of a dataset."""
    geno = dataset.genotypes
    freqs, n_chrom = two_locus_haplotype_frequencies(
        geno[:, snp_a], geno[:, snp_b], max_iter=max_iter
    )
    return _ld_from_freqs(freqs, n_chrom)


def _ld_from_freqs(freqs: np.ndarray, n_chrom: int) -> LDStatistics:
    if n_chrom == 0 or np.any(np.isnan(freqs)):
        return LDStatistics(d=float("nan"), d_prime=float("nan"), r_squared=float("nan"),
                            n_chromosomes=n_chrom)
    p1 = freqs[0, 0] + freqs[0, 1]  # allele "1" frequency at locus 1
    q1 = freqs[0, 0] + freqs[1, 0]  # allele "1" frequency at locus 2
    d = float(freqs[0, 0] - p1 * q1)
    if d >= 0:
        d_max = min(p1 * (1.0 - q1), (1.0 - p1) * q1)
    else:
        d_max = min(p1 * q1, (1.0 - p1) * (1.0 - q1))
    d_prime = 0.0 if d_max <= 0 else d / d_max
    denom = p1 * (1.0 - p1) * q1 * (1.0 - q1)
    r_squared = 0.0 if denom <= 0 else (d * d) / denom
    # guard against tiny numerical overshoot
    r_squared = float(min(max(r_squared, 0.0), 1.0))
    d_prime = float(min(max(d_prime, -1.0), 1.0))
    return LDStatistics(d=d, d_prime=d_prime, r_squared=r_squared, n_chromosomes=n_chrom)


def ld_matrix(
    dataset: GenotypeDataset,
    *,
    measure: str = "r_squared",
    max_iter: int = 100,
) -> np.ndarray:
    """Symmetric matrix of a pairwise LD measure over all SNP pairs.

    Parameters
    ----------
    dataset:
        Input genotypes.
    measure:
        One of ``"r_squared"``, ``"d_prime"``, ``"abs_d_prime"`` or ``"d"``.

    Returns
    -------
    numpy.ndarray
        ``(n_snps, n_snps)`` float array; the diagonal is the measure's value
        for a locus with itself (``1.0`` for ``r²`` and ``|D'|``).
    """
    valid = {"r_squared", "d_prime", "abs_d_prime", "d"}
    if measure not in valid:
        raise ValueError(f"measure must be one of {sorted(valid)}")
    n = dataset.n_snps
    out = np.zeros((n, n), dtype=np.float64)
    for i in range(n):
        for j in range(i + 1, n):
            stats = pairwise_ld(dataset, i, j, max_iter=max_iter)
            value = getattr(stats, measure) if measure != "abs_d_prime" else stats.abs_d_prime
            out[i, j] = out[j, i] = value
    if measure in ("r_squared", "abs_d_prime", "d_prime"):
        np.fill_diagonal(out, 1.0)
    return out


@dataclass(frozen=True)
class PairwiseLDTable:
    """Pre-computed pairwise LD table (one of the paper's three input tables).

    Attributes
    ----------
    snp_names:
        SNP identifiers in matrix order.
    values:
        Symmetric ``(n_snps, n_snps)`` matrix of the chosen measure.
    measure:
        Name of the stored measure (``"r_squared"`` by default).
    """

    snp_names: tuple[str, ...]
    values: np.ndarray
    measure: str = "r_squared"

    def __post_init__(self) -> None:
        v = np.asarray(self.values)
        if v.ndim != 2 or v.shape[0] != v.shape[1]:
            raise ValueError("LD values must be a square matrix")
        if v.shape[0] != len(self.snp_names):
            raise ValueError("LD matrix size does not match the number of SNP names")

    @property
    def n_snps(self) -> int:
        return len(self.snp_names)

    def value(self, snp_a: int, snp_b: int) -> float:
        """LD value between two SNP indices."""
        return float(self.values[snp_a, snp_b])


def pairwise_ld_table(
    dataset: GenotypeDataset,
    *,
    measure: str = "r_squared",
) -> PairwiseLDTable:
    """Compute the paper's pairwise-LD input table from a dataset."""
    return PairwiseLDTable(
        snp_names=dataset.snp_names,
        values=ld_matrix(dataset, measure=measure),
        measure=measure,
    )
