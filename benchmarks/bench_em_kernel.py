"""Microbenchmark: the EM evaluation kernel, seed vs optimised.

Times the haplotype-frequency EM at several haplotype sizes and records the
trajectory to ``BENCH_em_kernel.json`` so regressions are diffable
(``scripts/bench_compare.py``).  Three tiers are measured per size:

* ``kernel`` — one genotype-level EM estimate: the seed's Python-loop phase
  expansion + ``np.add.at`` scatter kernel (preserved in
  :mod:`repro.stats.em_reference`) vs the vectorised expansion + segmented
  reduction kernel of :mod:`repro.stats.em`;
* ``em_path`` — the EM work of one EH-DIALL run.  The seed expanded the
  genotypes twice per run (once for the H0 likelihood, once more inside the
  H1 EM); the optimised pipeline expands once, and with the evaluator's
  :class:`~repro.stats.em.PhaseExpansionCache` warm (the steady state of a GA
  run, where haplotypes are revisited constantly) pays only the EM itself;
* ``warm_rerun`` — re-running the EM seeded from its own final frequencies
  (the ``warm_start="full"`` re-evaluation path), which converges in a couple
  of iterations.

The headline number is the minimum ``em_path_warm`` speedup at >= 6 loci:
the steady-state cost of the evaluation kernel inside a GA run, where the
expansion cache is warm because the affected/unaffected/pooled triple and
repeated candidate haplotypes revisit the same SNP subsets constantly.

A fourth, *batched* tier measures the generation-batched kernel: a whole
distinct batch of candidate problems run through ``run_em_stacked`` (one
numpy dispatch per EM operation for the entire batch, stacking cost
included) against the per-candidate scalar loop over the same prebuilt
expansions, both cold.  Cohort sizes are paper-scale (``--batch-individuals``,
default 150 per group) so the per-problem pair counts sit in the
dispatch-bound regime the stacked kernel exists for; its headline is the
minimum ``batched_vs_scalar_gain`` over L=4-6 at batch sizes >= 32
(acceptance floor: 2x).  Parity is asserted inside the bench — the stacked
results must be bit-identical to the scalar ones.

Usage::

    python benchmarks/bench_em_kernel.py                # full run, 4-8 loci
    python benchmarks/bench_em_kernel.py --quick        # CI smoke, 4+6 loci
    python benchmarks/bench_em_kernel.py -o out.json    # custom output path
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.stats.em import (  # noqa: E402
    estimate_from_expansion,
    estimate_haplotype_frequencies,
    expand_phases,
    run_em_stacked,
    stack_expansions,
)
from repro.stats.em_reference import (  # noqa: E402
    reference_estimate_haplotype_frequencies,
    reference_expand_phases,
)

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_em_kernel.json"
)


def _best_of(fn, repeats: int) -> float:
    """Best-of-N process-time measurement (robust against scheduler noise)."""
    fn()  # warm-up
    best = float("inf")
    for _ in range(repeats):
        start = time.process_time()
        fn()
        best = min(best, time.process_time() - start)
    return best


def bench_size(n_loci: int, *, n_individuals: int, repeats: int, seed: int = 42) -> dict:
    rng = np.random.default_rng(seed + n_loci)
    genotypes = rng.integers(0, 3, size=(n_individuals, n_loci)).astype(np.int8)
    genotypes[rng.random(genotypes.shape) < 0.02] = -1

    expansion = expand_phases(genotypes)
    cold = estimate_from_expansion(expansion)

    timings = {
        # genotype-level estimate (expansion + EM iterations)
        "seed_kernel_seconds": _best_of(
            lambda: reference_estimate_haplotype_frequencies(genotypes), repeats
        ),
        "new_kernel_seconds": _best_of(
            lambda: estimate_haplotype_frequencies(genotypes), repeats
        ),
        # expansion construction alone
        "seed_expand_seconds": _best_of(lambda: reference_expand_phases(genotypes), repeats),
        "new_expand_seconds": _best_of(lambda: expand_phases(genotypes), repeats),
        # EM iterations alone (expansion reused, i.e. expansion-cache hit)
        "new_em_warm_expansion_seconds": _best_of(
            lambda: estimate_from_expansion(expansion), repeats
        ),
        # warm-started re-run from the converged frequencies
        "warm_rerun_seconds": _best_of(
            lambda: estimate_from_expansion(
                expansion, initial_frequencies=cold.frequencies
            ),
            repeats,
        ),
    }
    # the EM work of one seed EH-DIALL run: H0 expansion + (expansion + EM)
    timings["seed_em_path_seconds"] = (
        timings["seed_expand_seconds"] + timings["seed_kernel_seconds"]
    )

    speedups = {
        "kernel": timings["seed_kernel_seconds"] / timings["new_kernel_seconds"],
        "em_path_cold": timings["seed_em_path_seconds"] / timings["new_kernel_seconds"],
        "em_path_warm": (
            timings["seed_em_path_seconds"] / timings["new_em_warm_expansion_seconds"]
        ),
        "warm_rerun": timings["seed_em_path_seconds"] / timings["warm_rerun_seconds"],
        "expand": timings["seed_expand_seconds"] / timings["new_expand_seconds"],
    }
    return {
        "n_loci": n_loci,
        "n_individuals": n_individuals,
        "n_pairs": expansion.n_pairs,
        "n_classes": expansion.n_classes,
        "em_iterations": cold.n_iterations,
        "timings": timings,
        "speedups": speedups,
    }


def bench_batched(
    n_loci: int,
    batch_size: int,
    *,
    n_individuals: int,
    repeats: int,
    n_panel_snps: int = 32,
    seed: int = 97,
) -> dict:
    """Time the stacked kernel vs the scalar loop on one generation-sized batch.

    Both paths work from the same prebuilt expansions (expansion reuse is the
    expansion cache's win, measured separately above); the stacked timing
    includes ``stack_expansions`` — the real per-generation cost of the
    batched path.  Cold EMs throughout: every problem starts uniform.
    """
    rng = np.random.default_rng(seed + 13 * n_loci + batch_size)
    panel = rng.integers(0, 3, size=(n_individuals, n_panel_snps)).astype(np.int8)
    panel[rng.random(panel.shape) < 0.02] = -1
    subsets: set[tuple[int, ...]] = set()
    while len(subsets) < batch_size:
        subsets.add(
            tuple(sorted(rng.choice(n_panel_snps, size=n_loci, replace=False).tolist()))
        )
    expansions = [expand_phases(panel[:, list(subset)]) for subset in sorted(subsets)]

    scalar_results = [estimate_from_expansion(e) for e in expansions]
    stacked_results = run_em_stacked(stack_expansions(expansions))
    for scalar, stacked in zip(scalar_results, stacked_results):
        assert scalar.n_iterations == stacked.n_iterations
        assert scalar.log_likelihood == stacked.log_likelihood
        assert np.array_equal(scalar.frequencies, stacked.frequencies)

    timings = {
        "scalar_loop_seconds": _best_of(
            lambda: [estimate_from_expansion(e) for e in expansions], repeats
        ),
        "stacked_seconds": _best_of(
            lambda: run_em_stacked(stack_expansions(expansions)), repeats
        ),
    }
    return {
        "n_loci": n_loci,
        "batch_size": batch_size,
        "n_individuals": n_individuals,
        "mean_pairs_per_problem": sum(e.n_pairs for e in expansions) / len(expansions),
        "timings": timings,
        "batched_vs_scalar_gain": (
            timings["scalar_loop_seconds"] / timings["stacked_seconds"]
        ),
    }


def run(
    sizes,
    *,
    n_individuals: int,
    repeats: int,
    batch_sizes=(32, 128, 512),
    batch_individuals: int = 150,
) -> dict:
    results = {}
    for n_loci in sizes:
        entry = bench_size(n_loci, n_individuals=n_individuals, repeats=repeats)
        results[str(n_loci)] = entry
        t = entry["timings"]
        s = entry["speedups"]
        print(
            f"L={n_loci}: seed em-path {t['seed_em_path_seconds']*1e3:7.2f} ms | "
            f"new cold {t['new_kernel_seconds']*1e3:7.2f} ms ({s['em_path_cold']:.2f}x) | "
            f"warm {t['new_em_warm_expansion_seconds']*1e3:7.2f} ms ({s['em_path_warm']:.2f}x) | "
            f"warm re-run {t['warm_rerun_seconds']*1e3:7.2f} ms ({s['warm_rerun']:.1f}x)"
        )
    batched = {}
    batch_repeats = min(repeats, 3)  # multi-hundred-ms cells: best-of-3 is stable
    for n_loci in sizes:
        per_size = {}
        for batch_size in batch_sizes:
            entry = bench_batched(
                n_loci,
                batch_size,
                n_individuals=batch_individuals,
                repeats=batch_repeats,
            )
            per_size[f"B{batch_size}"] = entry
            t = entry["timings"]
            print(
                f"L={n_loci} batch={batch_size:4d}: scalar loop "
                f"{t['scalar_loop_seconds']*1e3:8.2f} ms | stacked "
                f"{t['stacked_seconds']*1e3:8.2f} ms "
                f"({entry['batched_vs_scalar_gain']:.2f}x, "
                f"{entry['mean_pairs_per_problem']:.0f} pairs/problem)"
            )
        batched[f"L{n_loci}"] = per_size

    high = [r for r in results.values() if r["n_loci"] >= 6]
    dispatch_bound = [
        entry
        for per_size in (batched[f"L{n}"] for n in sizes if 4 <= n <= 6)
        for entry in per_size.values()
        if entry["batch_size"] >= 32
    ]
    headline = {
        "min_em_path_warm_speedup_6plus": min(
            (r["speedups"]["em_path_warm"] for r in high), default=None
        ),
        "min_em_path_cold_speedup_6plus": min(
            (r["speedups"]["em_path_cold"] for r in high), default=None
        ),
        # the generation-batched kernel's acceptance metric: >= 2x over the
        # scalar loop on generation-sized batches in the dispatch-bound regime
        "min_batched_vs_scalar_gain_L4to6": min(
            (e["batched_vs_scalar_gain"] for e in dispatch_bound), default=None
        ),
    }
    return {
        "benchmark": "em_kernel",
        "unix_time": time.time(),
        "config": {
            "sizes": list(sizes),
            "n_individuals": n_individuals,
            "repeats": repeats,
            "batch_sizes": list(batch_sizes),
            "batch_individuals": batch_individuals,
        },
        "headline": headline,
        "sizes": results,
        "batched": batched,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: sizes 4 and 6 only, fewer repeats")
    parser.add_argument("-o", "--output", default=DEFAULT_OUTPUT,
                        help="JSON trajectory output path")
    parser.add_argument("--individuals", type=int, default=1000,
                        help="cohort size (default 1000, the production-scale "
                             "target of the ROADMAP; the paper's groups are ~53)")
    parser.add_argument("--batch-individuals", type=int, default=150,
                        help="cohort size for the batched tier (default 150 — "
                             "paper-scale groups, the dispatch-bound regime "
                             "the stacked kernel targets)")
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args(argv)

    sizes = (4, 6) if args.quick else (4, 5, 6, 7, 8)
    repeats = args.repeats if args.repeats is not None else (3 if args.quick else 7)
    batch_sizes = (32, 128) if args.quick else (32, 128, 512)
    report = run(
        sizes,
        n_individuals=args.individuals,
        repeats=repeats,
        batch_sizes=batch_sizes,
        batch_individuals=args.batch_individuals,
    )
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    headline = report["headline"]["min_em_path_warm_speedup_6plus"]
    if headline is not None:
        print(f"headline: min warm EM-path speedup at >=6 loci = {headline:.2f}x")
    batched_headline = report["headline"]["min_batched_vs_scalar_gain_L4to6"]
    if batched_headline is not None:
        print(
            f"headline: min batched-vs-scalar gain at L=4-6, batch>=32 = "
            f"{batched_headline:.2f}x"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
