"""Tests of the timing helpers and speedup accounting."""

import pytest

from repro.parallel.timing import SpeedupPoint, SpeedupReport, Timer, time_callable


class TestTimer:
    def test_elapsed_is_non_negative(self):
        with Timer() as timer:
            sum(range(100))
        assert timer.elapsed >= 0.0

    def test_reusable(self):
        timer = Timer()
        with timer:
            pass
        first = timer.elapsed
        with timer:
            sum(range(1000))
        assert timer.elapsed >= 0.0
        assert first >= 0.0


class TestTimeCallable:
    def test_returns_mean_and_std(self):
        mean, std = time_callable(lambda: sum(range(500)), repeats=3, warmup=1)
        assert mean >= 0.0
        assert std >= 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)
        with pytest.raises(ValueError):
            time_callable(lambda: None, warmup=-1)


class TestSpeedupReport:
    def test_speedups_relative_to_single_worker(self):
        report = SpeedupReport()
        report.add(1, 10.0)
        report.add(2, 5.0)
        report.add(4, 3.0)
        speedups = report.speedups()
        assert speedups[1] == pytest.approx(1.0)
        assert speedups[2] == pytest.approx(2.0)
        assert speedups[4] == pytest.approx(10.0 / 3.0)
        efficiencies = report.efficiencies()
        assert efficiencies[2] == pytest.approx(1.0)
        assert efficiencies[4] == pytest.approx(10.0 / 3.0 / 4.0)

    def test_external_serial_reference(self):
        report = SpeedupReport(serial_seconds=8.0)
        report.add(4, 2.0)
        assert report.speedups()[4] == pytest.approx(4.0)

    def test_missing_reference_rejected(self):
        report = SpeedupReport()
        report.add(4, 2.0)
        with pytest.raises(ValueError):
            report.speedups()

    def test_validation(self):
        report = SpeedupReport()
        with pytest.raises(ValueError):
            report.add(0, 1.0)
        with pytest.raises(ValueError):
            report.add(2, -1.0)

    def test_point_helpers(self):
        point = SpeedupPoint(n_workers=4, seconds=2.5)
        assert point.speedup(10.0) == pytest.approx(4.0)
        assert point.efficiency(10.0) == pytest.approx(1.0)
