#!/usr/bin/env python
"""Run every experiment harness and save the paper-style reports.

This is the script used to produce the measured numbers recorded in
``EXPERIMENTS.md``.  It accepts a scale argument:

* ``quick``  — minutes; reduced GA budgets (default);
* ``medium`` — ~15 minutes; the configuration used for EXPERIMENTS.md;
* ``paper``  — the full Section-5.2.1 configuration (hours).

Usage:  python scripts/run_experiments.py [quick|medium|paper] [output_path]
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from repro.experiments.ablation import default_schemes, run_ablation
from repro.experiments.datasets import lille51
from repro.experiments.figure4 import run_figure4
from repro.experiments.landscape_study import run_landscape_study
from repro.experiments.speedup import generation_batch, run_measured_speedup, run_simulated_speedup
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import paper_scale_config, quick_config, run_table2


def configs_for(scale: str):
    if scale == "paper":
        return dict(
            table2_config=paper_scale_config(),
            table2_runs=10,
            exhaustive_sizes=(2, 3),
            ablation_config=paper_scale_config(),
            ablation_runs=5,
            figure4_samples=30,
            landscape_panel=20,
            landscape_sizes=(2, 3, 4),
        )
    if scale == "medium":
        return dict(
            table2_config=quick_config(
                population_size=100, max_haplotype_size=6,
                termination_stagnation=30, max_generations=120,
                random_immigrant_stagnation=10,
            ),
            table2_runs=5,
            exhaustive_sizes=(2,),
            ablation_config=quick_config(
                population_size=60, max_haplotype_size=5,
                termination_stagnation=12, max_generations=40,
            ),
            ablation_runs=3,
            figure4_samples=20,
            landscape_panel=16,
            landscape_sizes=(2, 3, 4),
        )
    return dict(
        table2_config=quick_config(),
        table2_runs=2,
        exhaustive_sizes=(2,),
        ablation_config=quick_config(
            population_size=40, max_haplotype_size=4,
            termination_stagnation=6, max_generations=20,
        ),
        ablation_runs=2,
        figure4_samples=8,
        landscape_panel=12,
        landscape_sizes=(2, 3),
    )


def main() -> int:
    scale = sys.argv[1] if len(sys.argv) > 1 else "quick"
    output = Path(sys.argv[2]) if len(sys.argv) > 2 else Path(f"experiment_results_{scale}.txt")
    settings = configs_for(scale)
    study = lille51()
    sections: list[str] = [f"scale: {scale}", f"dataset: {study.dataset.summary()}",
                           f"planted causal haplotype: {study.causal_snps}"]

    def record(title: str, body: str, started: float) -> None:
        elapsed = time.perf_counter() - started
        sections.append(f"\n{'=' * 72}\n{title}  (wall clock {elapsed:.1f}s)\n{'=' * 72}\n{body}")
        print(f"[done] {title} in {elapsed:.1f}s", flush=True)

    start = time.perf_counter()
    record("Table 1 - search space", run_table1().format(), start)

    start = time.perf_counter()
    figure4 = run_figure4(study=study, sizes=(2, 3, 4, 5, 6, 7),
                          n_samples=settings["figure4_samples"])
    record("Figure 4 - evaluation time vs haplotype size", figure4.format(), start)

    start = time.perf_counter()
    landscape = run_landscape_study(
        study=study, panel_size=settings["landscape_panel"],
        sizes=settings["landscape_sizes"], top_k=10,
    )
    record("Section 3 - landscape study", landscape.format(), start)

    start = time.perf_counter()
    table2 = run_table2(
        study=study,
        config=settings["table2_config"],
        n_runs=settings["table2_runs"],
        exhaustive_reference_sizes=settings["exhaustive_sizes"],
    )
    record("Table 2 - GA results", table2.format(), start)

    start = time.perf_counter()
    ablation = run_ablation(
        study=study,
        config=settings["ablation_config"],
        schemes=default_schemes(),
        n_runs=settings["ablation_runs"],
    )
    record("Section 5.2 - scheme comparison", ablation.format(), start)

    start = time.perf_counter()
    batch = generation_batch(n_offspring=68, n_snps=study.dataset.n_snps)
    simulated = run_simulated_speedup(
        worker_counts=(1, 2, 4, 8, 16, 32), batch=batch, cost_model=figure4.cost_model
    )
    measured = run_measured_speedup(study=study, worker_counts=(1, 2, 4), batch=batch,
                                    n_repeats=2)
    record("Section 4.5 - parallel speedup",
           simulated.format() + "\n\n" + measured.format(), start)

    output.write_text("\n".join(sections) + "\n", encoding="utf-8")
    print(f"\nwrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
