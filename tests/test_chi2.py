"""Tests of the Pearson chi-square helper (checked against scipy)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import stats as scipy_stats

from repro.stats.chi2 import chi2_sf, pearson_chi2
from repro.stats.contingency import ContingencyTable


class TestPearsonChi2:
    def test_matches_scipy_on_integer_table(self):
        observed = np.array([[10, 20, 30], [25, 15, 10]], dtype=float)
        ours = pearson_chi2(ContingencyTable(observed))
        scipy_stat, scipy_p, scipy_df, _ = scipy_stats.chi2_contingency(observed,
                                                                        correction=False)
        assert ours.statistic == pytest.approx(scipy_stat)
        assert ours.df == scipy_df
        assert ours.p_value == pytest.approx(scipy_p)

    def test_accepts_plain_arrays(self):
        result = pearson_chi2(np.array([[5.0, 5.0], [5.0, 5.0]]))
        assert result.statistic == pytest.approx(0.0)
        assert result.p_value == pytest.approx(1.0)

    def test_empty_columns_are_dropped(self):
        with_zero = np.array([[10, 0, 20], [5, 0, 25]], dtype=float)
        without_zero = np.array([[10, 20], [5, 25]], dtype=float)
        assert pearson_chi2(with_zero).statistic == pytest.approx(
            pearson_chi2(without_zero).statistic
        )
        assert pearson_chi2(with_zero).df == 1

    def test_float_conversion(self):
        result = pearson_chi2(np.array([[10.0, 20.0], [20.0, 10.0]]))
        assert float(result) == pytest.approx(result.statistic)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=50), min_size=2, max_size=6),
        st.lists(st.integers(min_value=0, max_value=50), min_size=2, max_size=6),
    )
    def test_agrees_with_scipy_on_random_tables(self, row_a, row_b):
        m = min(len(row_a), len(row_b))
        observed = np.array([row_a[:m], row_b[:m]], dtype=float)
        # need non-degenerate margins for scipy
        if observed.sum() == 0 or np.any(observed.sum(axis=1) == 0):
            return
        keep = observed.sum(axis=0) > 0
        if keep.sum() < 2:
            return
        ours = pearson_chi2(ContingencyTable(observed))
        scipy_stat, _, scipy_df, _ = scipy_stats.chi2_contingency(
            observed[:, keep], correction=False
        )
        assert ours.statistic == pytest.approx(scipy_stat, rel=1e-10, abs=1e-10)
        assert ours.df == scipy_df


class TestChi2Sf:
    def test_zero_df_returns_one(self):
        assert chi2_sf(5.0, 0) == 1.0

    def test_matches_scipy(self):
        assert chi2_sf(3.84, 1) == pytest.approx(scipy_stats.chi2.sf(3.84, 1))
