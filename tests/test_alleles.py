"""Tests of the allele / haplotype-state coding."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.genetics.alleles import (
    ALLELE_1,
    ALLELE_2,
    all_haplotype_labels,
    alleles_to_haplotype_index,
    haplotype_index_to_alleles,
    haplotype_label,
    n_haplotype_states,
    parse_haplotype_label,
    validate_genotype_array,
)


class TestNHaplotypeStates:
    def test_powers_of_two(self):
        assert n_haplotype_states(0) == 1
        assert n_haplotype_states(1) == 2
        assert n_haplotype_states(6) == 64

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            n_haplotype_states(-1)


class TestIndexAlleleConversion:
    def test_index_zero_is_all_allele1(self):
        assert haplotype_index_to_alleles(0, 4).tolist() == [ALLELE_1] * 4

    def test_max_index_is_all_allele2(self):
        assert haplotype_index_to_alleles(15, 4).tolist() == [ALLELE_2] * 4

    def test_bit_order_is_little_endian(self):
        # index 1 sets the first locus (bit 0) to allele 2
        assert haplotype_index_to_alleles(1, 3).tolist() == [2, 1, 1]
        assert haplotype_index_to_alleles(4, 3).tolist() == [1, 1, 2]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            haplotype_index_to_alleles(8, 3)
        with pytest.raises(ValueError):
            haplotype_index_to_alleles(-1, 3)

    def test_alleles_to_index_rejects_bad_values(self):
        with pytest.raises(ValueError):
            alleles_to_haplotype_index([1, 0, 2])
        with pytest.raises(ValueError):
            alleles_to_haplotype_index(np.array([[1, 2]]))

    @given(st.integers(min_value=1, max_value=10), st.data())
    def test_roundtrip(self, n_loci, data):
        index = data.draw(st.integers(min_value=0, max_value=2**n_loci - 1))
        alleles = haplotype_index_to_alleles(index, n_loci)
        assert alleles_to_haplotype_index(alleles) == index


class TestLabels:
    def test_label_format_matches_paper(self):
        # Figure 2's haplotype "1221" = allele 1, 2, 2, 1 at the four SNPs
        index = alleles_to_haplotype_index([1, 2, 2, 1])
        assert haplotype_label(index, 4) == "1221"

    def test_parse_roundtrip(self):
        for label in ("11", "22", "1221", "212121"):
            assert haplotype_label(parse_haplotype_label(label), len(label)) == label

    def test_parse_empty_rejected(self):
        with pytest.raises(ValueError):
            parse_haplotype_label("")

    def test_all_labels_are_unique_and_complete(self):
        labels = all_haplotype_labels(3)
        assert len(labels) == 8
        assert len(set(labels)) == 8
        assert all(len(lbl) == 3 for lbl in labels)


class TestValidateGenotypeArray:
    def test_accepts_valid_codes(self):
        arr = validate_genotype_array([[0, 1, 2, -1]])
        assert arr.dtype == np.int8

    def test_rejects_invalid_codes(self):
        with pytest.raises(ValueError, match="invalid genotype codes"):
            validate_genotype_array([[0, 3]])
