"""A small bounded least-recently-used mapping shared by every cache layer.

Four subsystems memoise on the sorted-SNP-tuple key (the fitness cache of
:mod:`repro.stats.cache`, the expansion and result caches of
:mod:`repro.stats.em` / :mod:`repro.stats.evaluation`, and the batch
evaluators' master-side cache in :mod:`repro.parallel.base`); they all share
this one eviction implementation instead of four hand-rolled copies.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable

__all__ = ["LRUCache"]


class LRUCache:
    """Bounded LRU mapping.

    ``max_size=None`` means unbounded; ``max_size=0`` disables the cache
    entirely (every :meth:`get` misses, :meth:`put` is a no-op), which lets
    callers keep a single code path for the "caching off" configuration.
    A hit refreshes the entry's recency; when full, :meth:`put` evicts the
    least-recently-used entry.
    """

    __slots__ = ("_data", "_max_size")

    def __init__(self, max_size: int | None) -> None:
        if max_size is not None and max_size < 0:
            raise ValueError("max_size must be non-negative or None")
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._max_size = max_size

    @property
    def max_size(self) -> int | None:
        return self._max_size

    @property
    def enabled(self) -> bool:
        return self._max_size is None or self._max_size > 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value (refreshing its recency) or ``default``."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            return default
        self._data.move_to_end(key)
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert/overwrite an entry, evicting the LRU one when full."""
        if not self.enabled:
            return
        data = self._data
        if self._max_size is not None and key not in data and len(data) >= self._max_size:
            data.popitem(last=False)
        data[key] = value
        data.move_to_end(key)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        # membership test without touching recency
        return key in self._data

    def clear(self) -> None:
        self._data.clear()


_MISSING = object()
