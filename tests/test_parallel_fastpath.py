"""Tests of the generation-level batch fast path (dedup + cross-batch cache)."""

import pytest

from repro.parallel.serial import SerialEvaluator


def _counting_fitness_factory():
    calls = []

    def fitness(snps):
        calls.append(tuple(snps))
        return float(sum(snps))

    return fitness, calls


class TestWithinBatchDedup:
    def test_duplicates_evaluated_once(self):
        fitness, calls = _counting_fitness_factory()
        evaluator = SerialEvaluator(fitness)
        batch = [(1, 2), (3,), (1, 2), (2, 1), (3,)]
        results = evaluator.evaluate_batch(batch)
        assert results == [3.0, 3.0, 3.0, 3.0, 3.0]
        assert len(calls) == 2  # only (1, 2) and (3,)
        assert evaluator.stats.n_requests == 5
        assert evaluator.stats.n_evaluations == 2
        assert evaluator.stats.n_dedup_hits == 3

    def test_order_preserved_with_duplicates(self):
        fitness, _ = _counting_fitness_factory()
        evaluator = SerialEvaluator(fitness)
        batch = [(5,), (1,), (5,), (2,)]
        assert evaluator.evaluate_batch(batch) == [5.0, 1.0, 5.0, 2.0]

    def test_key_is_the_sorted_tuple(self):
        fitness, calls = _counting_fitness_factory()
        evaluator = SerialEvaluator(fitness)
        evaluator.evaluate_batch([(3, 1, 2), (2, 3, 1)])
        assert len(calls) == 1


class TestCrossBatchCache:
    def test_seen_haplotypes_not_rescattered(self):
        fitness, calls = _counting_fitness_factory()
        evaluator = SerialEvaluator(fitness)
        evaluator.evaluate_batch([(1,), (2,)])
        evaluator.evaluate_batch([(2,), (3,)])
        assert len(calls) == 3
        assert evaluator.stats.n_cache_hits == 1
        assert evaluator.stats.n_requests == 4
        assert evaluator.stats.n_evaluations == 3
        assert evaluator.stats.reuse_rate == pytest.approx(0.25)

    def test_zero_fitness_counts_as_cached(self):
        calls = []

        def zero_fitness(snps):
            calls.append(tuple(snps))
            return 0.0

        evaluator = SerialEvaluator(zero_fitness)
        assert evaluator.evaluate_batch([(1,)]) == [0.0]
        assert evaluator.evaluate_batch([(1,)]) == [0.0]
        assert len(calls) == 1
        assert evaluator.stats.n_cache_hits == 1

    def test_bounded_cache_evicts_lru(self):
        fitness, calls = _counting_fitness_factory()
        evaluator = SerialEvaluator(fitness, cache_size=2)
        evaluator.evaluate_batch([(1,), (2,)])
        evaluator.evaluate_batch([(1,)])  # refresh (1,)
        evaluator.evaluate_batch([(3,)])  # evicts (2,)
        evaluator.evaluate_batch([(2,)])  # re-evaluated
        assert calls.count((2,)) == 2
        assert calls.count((1,)) == 1

    def test_disabled_fast_path_forwards_everything(self):
        fitness, calls = _counting_fitness_factory()
        evaluator = SerialEvaluator(fitness, dedup=False, cache_size=0)
        evaluator.evaluate_batch([(1,), (1,), (1,)])
        evaluator.evaluate_batch([(1,)])
        assert len(calls) == 4
        assert evaluator.stats.n_evaluations == 4
        assert evaluator.stats.n_requests == 4

    def test_validation(self):
        fitness, _ = _counting_fitness_factory()
        with pytest.raises(ValueError):
            SerialEvaluator(fitness, cache_size=-1)

    def test_single_evaluate_uses_cache(self):
        fitness, calls = _counting_fitness_factory()
        evaluator = SerialEvaluator(fitness)
        assert evaluator.evaluate((4, 2)) == 6.0
        assert evaluator.evaluate((2, 4)) == 6.0
        assert len(calls) == 1


class TestRealEvaluatorIntegration:
    def test_dedup_matches_direct_evaluation(self, small_evaluator):
        serial = SerialEvaluator(small_evaluator)
        batch = [(0, 1), (2, 5), (0, 1), (1, 0)]
        results = serial.evaluate_batch(batch)
        direct = small_evaluator.evaluate((0, 1))
        assert results[0] == results[2] == results[3] == pytest.approx(direct)
        assert serial.stats.n_evaluations == 2
        assert serial.stats.n_requests == 4


class TestMasterSlaveFastPath:
    def test_duplicates_collapsed_before_scatter(self):
        from repro.parallel.master_slave import MasterSlaveEvaluator

        def fitness(snps):
            return float(sum(snps))

        with MasterSlaveEvaluator(fitness, n_workers=2) as evaluator:
            batch = [(1, 2), (1, 2), (3,), (2, 1)]
            assert evaluator.evaluate_batch(batch) == [3.0, 3.0, 3.0, 3.0]
            assert evaluator.stats.n_requests == 4
            assert evaluator.stats.n_evaluations == 2
            # a second generation re-using the haplotypes is pure cache
            assert evaluator.evaluate_batch([(1, 2), (3,)]) == [3.0, 3.0]
            assert evaluator.stats.n_evaluations == 2
            assert evaluator.stats.n_cache_hits == 2
