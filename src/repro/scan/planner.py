"""Scan planning: turn a panel + window geometry into per-window GA jobs.

The genome-scale scan searches every overlapping locus window of a
chromosome-scale panel with an independent GA run.  The planner owns the
deterministic part of that: the window tiling (delegated to
:func:`repro.genetics.dataset.plan_windows`), the per-window GA configuration
(the base configuration clamped to the window's size — a 6-locus window
cannot host a size-8 sub-population) and the per-window seeds.

Seeds are a pure function of the scan's base seed and the window index,
spaced so that the ``seed + run_index`` offsets used inside a repeated-run
request can never collide across windows.  Two scans with the same base seed
therefore produce bit-identical per-window results regardless of backend,
job concurrency or completion order.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator

from ..core.config import GAConfig
from ..genetics.dataset import LocusWindow, WindowPlan, plan_windows
from ..parallel.pvm import EvaluationCostModel
from ..runtime.service import RunRequest, estimate_request_cost

__all__ = ["ScanPlan", "plan_scan", "window_seed"]

#: Seed spacing between windows; any ``n_runs`` below this cannot make run
#: seeds of different windows collide.
_WINDOW_SEED_STRIDE = 100_003


def window_seed(base_seed: int, window_index: int) -> int:
    """Deterministic base seed of one window's GA job."""
    return int(base_seed) + _WINDOW_SEED_STRIDE * int(window_index)


@dataclass(frozen=True)
class ScanPlan:
    """A fully-determined genome-scale scan: windows + per-window GA jobs."""

    windows: WindowPlan
    config: GAConfig
    base_seed: int
    statistic: str = "t1"
    n_runs: int = 1

    def __post_init__(self) -> None:
        if self.n_runs < 1:
            raise ValueError("n_runs must be positive")
        if self.n_runs >= _WINDOW_SEED_STRIDE:  # pragma: no cover - absurd input
            raise ValueError("n_runs too large for the per-window seed spacing")

    @property
    def n_windows(self) -> int:
        return self.windows.n_windows

    def window_config(self, window: LocusWindow) -> GAConfig:
        """The base configuration clamped to the window's locus count."""
        max_size = min(self.config.max_haplotype_size, window.size)
        min_size = min(self.config.min_haplotype_size, max_size)
        if (max_size, min_size) == (
            self.config.max_haplotype_size,
            self.config.min_haplotype_size,
        ):
            return self.config
        return replace(
            self.config, min_haplotype_size=min_size, max_haplotype_size=max_size
        )

    def request_for(self, window: LocusWindow) -> RunRequest:
        """The :class:`RunRequest` searching one window."""
        return RunRequest(
            config=self.window_config(window),
            n_runs=self.n_runs,
            seed=window_seed(self.base_seed, window.index),
            statistic=self.statistic,
            snp_indices=window.snp_indices,
        )

    def window_cost(
        self, window: LocusWindow, cost_model: EvaluationCostModel
    ) -> float:
        """Estimated compute cost of one window's job (a scheduling priority).

        Windows clamped to smaller haplotype sizes are exponentially cheaper
        under the paper's cost model — exactly the heterogeneity the
        cost-aware executor schedules around (expensive windows first, so no
        straggler outlives the rest of the scan).
        """
        return estimate_request_cost(self.request_for(window), cost_model)

    def requests(self) -> Iterator[tuple[LocusWindow, RunRequest]]:
        """Every window paired with its run request, in window order.

        A lazy stream on purpose: a chromosome-scale plan can hold tens of
        thousands of windows, and the scan runner submits only a bounded
        number of jobs at a time.
        """
        for window in self.windows:
            yield window, self.request_for(window)


def plan_scan(
    n_snps: int,
    *,
    window_size: int,
    overlap: int = 0,
    config: GAConfig | None = None,
    seed: int = 0,
    statistic: str = "t1",
    n_runs: int = 1,
) -> ScanPlan:
    """Plan a windowed scan of an ``n_snps`` panel.

    ``config`` defaults to a scan-sized configuration (small populations —
    windows are small search spaces — and short stagnation patience) rather
    than the paper's single-region defaults.
    """
    windows = plan_windows(n_snps, window_size=window_size, overlap=overlap)
    if config is None:
        config = GAConfig(
            population_size=30,
            min_haplotype_size=2,
            max_haplotype_size=min(4, window_size),
            termination_stagnation=8,
            max_generations=60,
        )
    return ScanPlan(
        windows=windows,
        config=config,
        base_seed=int(seed),
        statistic=statistic,
        n_runs=int(n_runs),
    )
