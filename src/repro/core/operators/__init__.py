"""Genetic operators of the adaptive multi-population GA."""

from .base import CrossoverOperator, MutationOperator, OperatorApplication, SnpTuple
from .crossover import InterPopulationCrossover, IntraPopulationCrossover
from .mutation import AugmentationMutation, PointMutation, ReductionMutation

__all__ = [
    "SnpTuple",
    "OperatorApplication",
    "MutationOperator",
    "CrossoverOperator",
    "PointMutation",
    "ReductionMutation",
    "AugmentationMutation",
    "IntraPopulationCrossover",
    "InterPopulationCrossover",
]
