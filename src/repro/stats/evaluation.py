"""The haplotype evaluation pipeline of the paper (Figure 3).

Starting from a set of candidate SNPs, the pipeline

1. runs EH-DIALL independently on the affected and on the unaffected
   individuals, obtaining the estimated haplotype distribution of each group;
2. concatenates the two distributions (as expected haplotype counts) into a
   2 × 2^L contingency table;
3. runs CLUMP on that table and returns the requested statistic — by default
   T1, the statistic the paper optimises.

The resulting scalar is the GA's fitness: the higher, the more the haplotype's
distribution differs between affected and unaffected people.

The evaluator counts every call (the paper reports the *number of
evaluations* as its main cost indicator, since each evaluation is expensive)
and can be wrapped in a cache (:mod:`repro.stats.cache`) or farmed out to
worker processes (:mod:`repro.parallel`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..genetics.alleles import all_haplotype_labels
from ..genetics.dataset import GenotypeDataset
from .clump import ClumpResult, clump_statistics, monte_carlo_p_values
from .contingency import ContingencyTable
from .ehdiall import EHDiallResult, run_ehdiall

__all__ = ["EvaluationRecord", "HaplotypeEvaluator", "FitnessFunction"]

#: Names of the fitness criteria: the four CLUMP statistics the paper uses,
#: plus the case/control haplotype-frequency likelihood-ratio test ("lrt"),
#: included as the alternative objective function the paper's conclusion
#: announces ("different objective functions are going to be used in order to
#: compare them").
_VALID_STATISTICS = ("t1", "t2", "t3", "t4", "lrt")


@dataclass(frozen=True)
class EvaluationRecord:
    """Full trace of one haplotype evaluation.

    Attributes
    ----------
    snps:
        The evaluated SNP indices (sorted).
    fitness:
        The scalar fitness (value of the selected CLUMP statistic).
    clump:
        All four CLUMP statistics.
    table:
        The 2 × 2^L contingency table fed to CLUMP.
    affected, unaffected:
        The EH-DIALL results for each group.
    elapsed_seconds:
        Wall-clock time of the evaluation.
    """

    snps: tuple[int, ...]
    fitness: float
    clump: ClumpResult
    table: ContingencyTable
    affected: EHDiallResult
    unaffected: EHDiallResult
    elapsed_seconds: float

    @property
    def size(self) -> int:
        return len(self.snps)


class HaplotypeEvaluator:
    """Evaluate candidate haplotypes against a case/control dataset.

    Parameters
    ----------
    dataset:
        Case/control genotypes.  Individuals with unknown status are ignored.
    statistic:
        Which CLUMP statistic to return as the fitness (default ``"t1"``).
    em_max_iter, em_tol:
        EM control parameters forwarded to EH-DIALL.
    clump_min_expected:
        Pooling threshold for the T2 statistic.

    Notes
    -----
    The evaluator is picklable, so it can be shipped once to each worker
    process of the parallel master/slave evaluator.
    """

    def __init__(
        self,
        dataset: GenotypeDataset,
        *,
        statistic: str = "t1",
        em_max_iter: int = 200,
        em_tol: float = 1e-8,
        clump_min_expected: float = 5.0,
    ) -> None:
        statistic = statistic.lower()
        if statistic not in _VALID_STATISTICS:
            raise ValueError(f"statistic must be one of {_VALID_STATISTICS}")
        if dataset.n_affected == 0 or dataset.n_unaffected == 0:
            raise ValueError("the dataset must contain both affected and unaffected individuals")
        self._dataset = dataset
        self._affected = dataset.affected()
        self._unaffected = dataset.unaffected()
        self._combined = dataset.with_known_status()
        self._statistic = statistic
        self._em_max_iter = int(em_max_iter)
        self._em_tol = float(em_tol)
        self._clump_min_expected = float(clump_min_expected)
        self._n_evaluations = 0

    # ------------------------------------------------------------------ #
    @property
    def dataset(self) -> GenotypeDataset:
        return self._dataset

    @property
    def statistic(self) -> str:
        """Name of the CLUMP statistic used as fitness."""
        return self._statistic

    @property
    def n_snps(self) -> int:
        return self._dataset.n_snps

    @property
    def n_evaluations(self) -> int:
        """Number of fitness evaluations performed by this evaluator instance."""
        return self._n_evaluations

    def reset_counter(self) -> None:
        """Reset the evaluation counter to zero."""
        self._n_evaluations = 0

    # ------------------------------------------------------------------ #
    def _validate_snps(self, snps: Sequence[int] | np.ndarray) -> tuple[int, ...]:
        snps = tuple(int(s) for s in snps)
        if len(snps) == 0:
            raise ValueError("a haplotype must contain at least one SNP")
        if len(set(snps)) != len(snps):
            raise ValueError(f"duplicate SNPs in haplotype {snps}")
        if min(snps) < 0 or max(snps) >= self.n_snps:
            raise ValueError(f"SNP index out of range [0, {self.n_snps}) in {snps}")
        return tuple(sorted(snps))

    def build_table(self, snps: Sequence[int] | np.ndarray) -> ContingencyTable:
        """Build the CLUMP input table for a haplotype without computing the fitness."""
        snps = self._validate_snps(snps)
        affected = run_ehdiall(self._affected, snps,
                               max_iter=self._em_max_iter, tol=self._em_tol)
        unaffected = run_ehdiall(self._unaffected, snps,
                                 max_iter=self._em_max_iter, tol=self._em_tol)
        return self._table_from_results(snps, affected, unaffected)

    @staticmethod
    def _table_from_results(
        snps: tuple[int, ...], affected: EHDiallResult, unaffected: EHDiallResult
    ) -> ContingencyTable:
        labels = all_haplotype_labels(len(snps))
        return ContingencyTable.from_rows(
            affected.expected_haplotype_counts(),
            unaffected.expected_haplotype_counts(),
            column_labels=labels,
        )

    def case_control_lrt(self, snps: Sequence[int] | np.ndarray) -> float:
        """Likelihood-ratio chi-square for a case/control haplotype-frequency difference.

        Fits the haplotype-frequency EM separately in the affected and
        unaffected groups and once on the pooled sample, and returns
        ``2 * (llik_affected + llik_unaffected - llik_pooled)``.  This is the
        alternative objective function announced in the paper's conclusion; it
        is available both as a standalone diagnostic and as the fitness when
        the evaluator is built with ``statistic="lrt"``.
        """
        snps = self._validate_snps(snps)
        affected = run_ehdiall(self._affected, snps,
                               max_iter=self._em_max_iter, tol=self._em_tol)
        unaffected = run_ehdiall(self._unaffected, snps,
                                 max_iter=self._em_max_iter, tol=self._em_tol)
        return self._lrt_from_results(snps, affected, unaffected)

    def _lrt_from_results(
        self, snps: tuple[int, ...], affected: EHDiallResult, unaffected: EHDiallResult
    ) -> float:
        pooled = run_ehdiall(self._combined, snps,
                             max_iter=self._em_max_iter, tol=self._em_tol)
        statistic = 2.0 * (
            affected.h1_log_likelihood
            + unaffected.h1_log_likelihood
            - pooled.h1_log_likelihood
        )
        return float(max(statistic, 0.0))

    # ------------------------------------------------------------------ #
    def evaluate_detailed(self, snps: Sequence[int] | np.ndarray) -> EvaluationRecord:
        """Run the full Figure-3 pipeline and return every intermediate result."""
        start = time.perf_counter()
        snps = self._validate_snps(snps)
        affected = run_ehdiall(self._affected, snps,
                               max_iter=self._em_max_iter, tol=self._em_tol)
        unaffected = run_ehdiall(self._unaffected, snps,
                                 max_iter=self._em_max_iter, tol=self._em_tol)
        table = self._table_from_results(snps, affected, unaffected)
        clump = clump_statistics(table, min_expected=self._clump_min_expected)
        if self._statistic == "lrt":
            fitness = self._lrt_from_results(snps, affected, unaffected)
        else:
            fitness = clump.statistic(self._statistic)
        elapsed = time.perf_counter() - start
        self._n_evaluations += 1
        return EvaluationRecord(
            snps=snps,
            fitness=fitness,
            clump=clump,
            table=table,
            affected=affected,
            unaffected=unaffected,
            elapsed_seconds=elapsed,
        )

    def evaluate(self, snps: Sequence[int] | np.ndarray) -> float:
        """Scalar fitness of a haplotype (the selected CLUMP statistic)."""
        return self.evaluate_detailed(snps).fitness

    def __call__(self, snps: Sequence[int] | np.ndarray) -> float:
        return self.evaluate(snps)

    # ------------------------------------------------------------------ #
    def significance(
        self,
        snps: Sequence[int] | np.ndarray,
        *,
        n_simulations: int = 1000,
        seed: int | None = 0,
    ) -> dict[str, float]:
        """Monte-Carlo p-values of the haplotype's CLUMP statistics.

        The GA only needs the raw statistic, but biologists interpreting a
        reported haplotype need its empirical significance, which the original
        CLUMP program obtains by simulation.
        """
        table = self.build_table(snps)
        return monte_carlo_p_values(table, n_simulations=n_simulations,
                                    min_expected=self._clump_min_expected, seed=seed)

    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)


#: Type alias for anything usable as a fitness function by the GA and the
#: baselines: a callable mapping a SNP index sequence to a float.
FitnessFunction = HaplotypeEvaluator
