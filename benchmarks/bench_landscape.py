"""Benchmark: Section 3 — landscape study of the problem structure.

Reruns the paper's pre-algorithm study (exhaustive enumeration of small
haplotype sizes) on a reduced SNP panel and checks the two findings that
motivated the GA design:

1. the fitness scale grows with the haplotype size, and
2. the best large haplotypes are not reliably built out of the best smaller
   ones (so the greedy constructive method falls short of the exhaustive
   optimum or, at best, merely ties it).
"""

from __future__ import annotations

from repro.experiments.landscape_study import run_landscape_study


def test_landscape_study(benchmark, study, scale):
    panel_size = 20 if scale == "paper" else 12
    sizes = (2, 3, 4) if scale == "paper" else (2, 3)
    result = benchmark.pedantic(
        run_landscape_study,
        kwargs=dict(study=study, panel_size=panel_size, sizes=sizes, top_k=10),
        rounds=1,
        iterations=1,
    )

    smallest, largest = min(sizes), max(sizes)
    # finding 2: the fitness scale grows with the size
    assert (
        result.scale_by_size[largest].mean_fitness
        > result.scale_by_size[smallest].mean_fitness
    )
    # finding 1's consequence: greedy construction cannot beat the exhaustive optimum
    assert result.greedy_gap(largest) >= -1e-9
    # the planted haplotype's SNPs surface in the exhaustive optimum
    assert set(result.exhaustive_best[largest].snps) & set(study.causal_snps)
    print()
    print(result.format())
