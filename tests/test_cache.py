"""Tests of the evaluation cache and counting wrappers."""

import pytest

from repro.stats.cache import CachedEvaluator, CountingEvaluator


def _fake_fitness_factory():
    calls = []

    def fitness(snps):
        calls.append(tuple(snps))
        return float(sum(snps))

    return fitness, calls


class TestCountingEvaluator:
    def test_counts_calls(self):
        fitness, _ = _fake_fitness_factory()
        counting = CountingEvaluator(fitness)
        counting((1, 2))
        counting((3, 4))
        assert counting.n_evaluations == 2
        counting.reset()
        assert counting.n_evaluations == 0

    def test_returns_underlying_value(self):
        fitness, _ = _fake_fitness_factory()
        counting = CountingEvaluator(fitness)
        assert counting((1, 2, 3)) == pytest.approx(6.0)


class TestCachedEvaluator:
    def test_cache_hit_avoids_recomputation(self):
        fitness, calls = _fake_fitness_factory()
        cached = CachedEvaluator(fitness)
        assert cached((3, 1)) == pytest.approx(4.0)
        assert cached((1, 3)) == pytest.approx(4.0)  # same haplotype, different order
        assert len(calls) == 1
        assert cached.statistics.hits == 1
        assert cached.statistics.misses == 1
        assert cached.statistics.hit_rate == pytest.approx(0.5)
        assert cached.n_distinct_evaluations == 1

    def test_contains_and_len(self):
        fitness, _ = _fake_fitness_factory()
        cached = CachedEvaluator(fitness)
        cached((0, 2))
        assert (2, 0) in cached
        assert (0, 1) not in cached
        assert len(cached) == 1

    def test_clear(self):
        fitness, calls = _fake_fitness_factory()
        cached = CachedEvaluator(fitness)
        cached((0, 1))
        cached.clear()
        assert len(cached) == 0
        cached((0, 1))
        assert len(calls) == 2

    def test_max_size_eviction_without_touches_is_insertion_order(self):
        fitness, calls = _fake_fitness_factory()
        cached = CachedEvaluator(fitness, max_size=2)
        cached((0,))
        cached((1,))
        cached((2,))  # evicts (0,), the least recently used
        assert (0,) not in cached
        assert (1,) in cached and (2,) in cached
        cached((0,))  # recomputed
        assert len(calls) == 4

    def test_eviction_is_lru_not_fifo(self):
        fitness, calls = _fake_fitness_factory()
        cached = CachedEvaluator(fitness, max_size=2)
        cached((0,))
        cached((1,))
        cached((0,))  # hit refreshes (0,)'s recency
        cached((2,))  # must evict (1,), not the older-inserted (0,)
        assert (0,) in cached
        assert (1,) not in cached
        assert (2,) in cached
        cached((0,))  # still cached: no recomputation
        assert len(calls) == 3

    def test_zero_fitness_is_cached(self):
        # regression: a dict.get(key) truthiness-style miss test treated a
        # legitimately cached 0.0 (or negative) fitness as a miss forever
        calls = []

        def zero_fitness(snps):
            calls.append(tuple(snps))
            return 0.0

        cached = CachedEvaluator(zero_fitness)
        assert cached((1, 2)) == 0.0
        assert cached((2, 1)) == 0.0
        assert len(calls) == 1
        assert cached.statistics.hits == 1
        assert cached.n_distinct_evaluations == 1

    def test_negative_fitness_is_cached(self):
        calls = []

        def negative_fitness(snps):
            calls.append(tuple(snps))
            return -3.5

        cached = CachedEvaluator(negative_fitness)
        assert cached((4,)) == -3.5
        assert cached((4,)) == -3.5
        assert len(calls) == 1

    def test_invalid_max_size(self):
        fitness, _ = _fake_fitness_factory()
        with pytest.raises(ValueError):
            CachedEvaluator(fitness, max_size=0)

    def test_empty_statistics(self):
        fitness, _ = _fake_fitness_factory()
        cached = CachedEvaluator(fitness)
        assert cached.statistics.hit_rate == 0.0

    def test_wraps_real_evaluator(self, small_evaluator):
        cached = CachedEvaluator(small_evaluator)
        direct = small_evaluator.evaluate((1, 4, 8))
        assert cached((8, 4, 1)) == pytest.approx(direct)
        assert cached((1, 4, 8)) == pytest.approx(direct)
        assert cached.n_distinct_evaluations == 1
