"""Statistical evaluation substrate: EH-DIALL, CLUMP and the fitness pipeline.

Implements from scratch the two published procedures the paper delegates its
haplotype evaluation to — EH-DIALL (multi-locus haplotype-frequency estimation
by EM) and CLUMP (contingency-table case/control statistics with Monte-Carlo
significance) — and composes them into the Figure-3 evaluation pipeline that
the GA uses as its objective function.
"""

from .cache import CachedEvaluator, CacheStatistics, CountingEvaluator
from .chi2 import Chi2Result, chi2_sf, pearson_chi2
from .clump import (
    ClumpResult,
    clump_statistics,
    monte_carlo_p_values,
    simulate_table_with_margins,
    t1_statistic,
    t2_statistic,
    t3_statistic,
    t4_statistic,
)
from .contingency import ContingencyTable
from .ehdiall import (
    EHDiallResult,
    ehdiall_batch,
    ehdiall_from_expansion,
    h0_frequencies,
    run_ehdiall,
)
from .em import (
    EMResult,
    PhaseExpansion,
    PhaseExpansionCache,
    StackedExpansion,
    concat_expansions,
    estimate_from_expansion,
    estimate_haplotype_frequencies,
    expand_phases,
    expansion_log_likelihood,
    run_em_stacked,
    stack_expansions,
)
from .evaluation import EvaluationRecord, HaplotypeEvaluator

__all__ = [
    "ContingencyTable",
    "Chi2Result",
    "pearson_chi2",
    "chi2_sf",
    "EMResult",
    "PhaseExpansion",
    "PhaseExpansionCache",
    "StackedExpansion",
    "concat_expansions",
    "estimate_from_expansion",
    "estimate_haplotype_frequencies",
    "expand_phases",
    "expansion_log_likelihood",
    "run_em_stacked",
    "stack_expansions",
    "EHDiallResult",
    "ehdiall_batch",
    "ehdiall_from_expansion",
    "run_ehdiall",
    "h0_frequencies",
    "ClumpResult",
    "clump_statistics",
    "t1_statistic",
    "t2_statistic",
    "t3_statistic",
    "t4_statistic",
    "simulate_table_with_margins",
    "monte_carlo_p_values",
    "EvaluationRecord",
    "HaplotypeEvaluator",
    "CachedEvaluator",
    "CountingEvaluator",
    "CacheStatistics",
]
