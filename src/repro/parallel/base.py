"""Common interfaces of the parallel evaluation substrate.

The paper parallelises only the *evaluation phase* of the GA: at every
generation the master holds a batch of new individuals whose fitnesses are
unknown, farms them out to slaves, and waits for every result before
continuing (a synchronous master/slave organisation, Figure 6).  All the GA
needs from the substrate is therefore a single operation — "evaluate this
batch of haplotypes and give me their fitnesses in order" — which is captured
by the :class:`BatchEvaluator` protocol below.  Three implementations are
provided:

* :class:`~repro.parallel.serial.SerialEvaluator` — evaluate in-process;
* :class:`~repro.parallel.master_slave.MasterSlaveEvaluator` — a real
  ``multiprocessing`` worker farm;
* :class:`~repro.parallel.pvm.SimulatedPVM` — a deterministic model of the
  paper's PVM cluster used for reproducible speedup studies.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Protocol, Sequence, runtime_checkable

__all__ = ["SnpSet", "FitnessCallable", "BatchEvaluator", "EvaluationStats"]

#: A candidate haplotype: a sequence of SNP indices.
SnpSet = Sequence[int]

#: Any callable mapping a SNP set to a scalar fitness.
FitnessCallable = Callable[[SnpSet], float]


@dataclass
class EvaluationStats:
    """Running counters kept by every batch evaluator.

    Attributes
    ----------
    n_evaluations:
        Total number of haplotype evaluations performed.
    n_batches:
        Number of batches submitted.
    total_seconds:
        Wall-clock time spent inside ``evaluate_batch`` calls.
    """

    n_evaluations: int = 0
    n_batches: int = 0
    total_seconds: float = 0.0

    def record_batch(self, batch_size: int, elapsed: float) -> None:
        self.n_evaluations += batch_size
        self.n_batches += 1
        self.total_seconds += elapsed

    @property
    def mean_seconds_per_evaluation(self) -> float:
        return 0.0 if self.n_evaluations == 0 else self.total_seconds / self.n_evaluations


@runtime_checkable
class BatchEvaluator(Protocol):
    """Protocol implemented by every evaluation backend."""

    def evaluate_batch(self, batch: Sequence[SnpSet]) -> list[float]:
        """Evaluate a batch of haplotypes, returning fitnesses in batch order."""
        ...

    def evaluate(self, snps: SnpSet) -> float:
        """Evaluate a single haplotype."""
        ...

    @property
    def stats(self) -> EvaluationStats:
        """Running evaluation counters."""
        ...

    def close(self) -> None:
        """Release any resources (worker processes); idempotent."""
        ...


class BaseBatchEvaluator(abc.ABC):
    """Shared bookkeeping for concrete evaluators."""

    def __init__(self) -> None:
        self._stats = EvaluationStats()

    @property
    def stats(self) -> EvaluationStats:
        return self._stats

    @abc.abstractmethod
    def evaluate_batch(self, batch: Sequence[SnpSet]) -> list[float]:
        """Evaluate a batch of haplotypes."""

    def evaluate(self, snps: SnpSet) -> float:
        return self.evaluate_batch([snps])[0]

    def close(self) -> None:  # pragma: no cover - default no-op
        return None

    def __enter__(self) -> "BaseBatchEvaluator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
