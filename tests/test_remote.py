"""Tests of the multi-host ``remote`` backend and its socket slave pool.

Everything runs against real sockets on localhost: `LocalWorkerHost` starts a
worker host on an ephemeral port and the pool connects like it would to
another machine.  The properties under test are the distributed contract —
bit-identical fitnesses vs. the serial reference, the packed panel crossing
the wire once per connection, and the recovery engine treating a dead
connection exactly like a dead local slave.
"""

import pickle

import pytest

from repro.core.config import GAConfig
from repro.experiments.datasets import lille51
from repro.parallel.farm import FarmDeadError, FarmRecoveryPolicy
from repro.runtime.backends import backend_names, create_evaluator
from repro.runtime.remote import (
    LocalWorkerHost,
    RemoteSlavePool,
    parse_host,
    parse_hosts,
)
from repro.runtime.service import RunRequest, RunScheduler
from repro.runtime.spec import EvaluatorSpec, PackedDatasetHandle

FAST_POLL = 0.05


def _linear_fitness(snps):
    return float(sum((i + 1) * (s + 1) for i, s in enumerate(sorted(snps))))


class _LinearFactory:
    def __call__(self):
        return _linear_fitness


def _batch(n):
    return [(i, i + 1) for i in range(n)]


def _expected(batch):
    return [_linear_fitness(snps) for snps in batch]


@pytest.fixture(scope="module")
def worker_host():
    host = LocalWorkerHost()
    yield host
    host.close()


class TestHostParsing:
    def test_parse_host(self):
        assert parse_host("node7:7777") == ("node7", 7777)
        assert parse_host(("node7", 7777)) == ("node7", 7777)

    @pytest.mark.parametrize("bad", ["node7", ":7777", "node7:port"])
    def test_parse_host_rejects_malformed(self, bad):
        with pytest.raises(ValueError, match="host:port"):
            parse_host(bad)

    def test_parse_hosts_requires_one(self):
        with pytest.raises(ValueError, match="at least one"):
            parse_hosts([])


class TestRemoteSlavePool:
    def test_bit_identical_to_serial(self, worker_host):
        batch = _batch(24)
        pool = RemoteSlavePool(
            _LinearFactory(),
            [worker_host.host, worker_host.host],
            chunk_size=2,
            steal=True,
            worker_cache_size=0,
        )
        pool._RESULT_POLL_SECONDS = FAST_POLL
        with pool:
            values, stats = pool.evaluate(batch)
        assert values == _expected(batch)
        assert stats.n_requests == len(batch)
        assert stats.n_evaluations + stats.n_cache_hits == len(batch)

    def test_connection_refused_is_loud(self):
        with pytest.raises(ConnectionError, match="could not connect"):
            RemoteSlavePool(_LinearFactory(), ["127.0.0.1:1"])

    def test_dead_connection_replayed_on_survivor(self, worker_host):
        batch = _batch(20)
        pool = RemoteSlavePool(
            _LinearFactory(),
            [worker_host.host, worker_host.host],
            chunk_size=1,
            worker_cache_size=0,
            recovery=FarmRecoveryPolicy(respawn=False),
        )
        pool._RESULT_POLL_SECONDS = FAST_POLL
        with pool:
            # sever slave 1's connection the way a dying host does
            pool._result_conns[1].close()
            pool._broken[1] = True
            values, _stats = pool.evaluate(batch)
            counters = pool.recovery_counters()
        assert values == _expected(batch)
        assert counters["n_worker_deaths"] == 1

    def test_reconnect_as_respawn(self, worker_host):
        batch = _batch(20)
        pool = RemoteSlavePool(
            _LinearFactory(),
            [worker_host.host, worker_host.host],
            chunk_size=1,
            worker_cache_size=0,
            recovery=FarmRecoveryPolicy(respawn=True),
        )
        pool._RESULT_POLL_SECONDS = FAST_POLL
        with pool:
            pool._result_conns[0].close()
            pool._broken[0] = True
            values, _stats = pool.evaluate(batch)
            counters = pool.recovery_counters()
            assert pool.n_alive_workers == 2  # reconnected to the same host
        assert values == _expected(batch)
        assert counters["n_worker_respawns"] == 1

    def test_farm_dead_when_every_connection_lost(self, worker_host):
        pool = RemoteSlavePool(
            _LinearFactory(),
            [worker_host.host],
            chunk_size=1,
            worker_cache_size=0,
            recovery=FarmRecoveryPolicy(respawn=False),
        )
        pool._RESULT_POLL_SECONDS = FAST_POLL
        with pool:
            pool._result_conns[0].close()
            pool._broken[0] = True
            with pytest.raises(FarmDeadError, match="no surviving workers"):
                pool.evaluate(_batch(4))


class TestPackedDatasetHandle:
    def test_wire_payload_is_packed(self):
        import numpy as np

        from repro.genetics.dataset import GenotypeDataset

        rng = np.random.default_rng(3)
        dataset = GenotypeDataset(
            rng.integers(0, 3, size=(400, 500), dtype=np.int8),
            rng.integers(0, 2, size=400, dtype=np.int8),
        )
        handle = PackedDatasetHandle(dataset)
        loaded = handle.load()
        assert loaded.packed is not None
        # rows are reordered affected-first, but the case/control content —
        # all any fitness statistic sees — is preserved
        assert loaded.n_affected == dataset.n_affected
        assert loaded.n_unaffected == dataset.n_unaffected
        assert loaded.n_snps == dataset.n_snps
        assert (
            loaded.affected().fingerprint() == dataset.affected().fingerprint()
        )
        # the pickle must carry the packed panel, ~4x smaller than the bytes
        packed_wire = len(pickle.dumps(handle))
        byte_wire = len(pickle.dumps(dataset.genotypes))
        assert packed_wire < byte_wire / 2


class TestRemoteBackend:
    def test_registered(self):
        assert "remote" in backend_names()

    def test_requires_hosts(self):
        dataset = lille51().dataset
        with pytest.raises(TypeError, match="hosts"):
            create_evaluator("remote", EvaluatorSpec(), dataset=dataset)

    def test_requires_spec(self, worker_host):
        with pytest.raises(TypeError, match="EvaluatorSpec"):
            create_evaluator(
                "remote", _linear_fitness, hosts=[worker_host.host]
            )

    def test_rejects_shm_steal_mode(self, worker_host):
        dataset = lille51().dataset
        with pytest.raises(TypeError, match="steal_mode"):
            create_evaluator(
                "remote",
                EvaluatorSpec(),
                dataset=dataset,
                hosts=[worker_host.host],
                steal_mode="shm",
            )

    @pytest.mark.parametrize("backend", ["serial", "threads", "process", "async"])
    def test_local_backends_reject_hosts(self, backend):
        dataset = lille51().dataset
        with pytest.raises(TypeError, match="hosts|remote"):
            create_evaluator(
                backend, EvaluatorSpec(), dataset=dataset, hosts=["x:1"]
            )

    def test_evaluator_parity(self, worker_host):
        dataset = lille51().dataset
        spec = EvaluatorSpec()
        serial = create_evaluator("serial", spec, dataset=dataset)
        batch = [(0, 1), (2, 5), (1, 3, 7), (0, 4)]
        expected = serial.evaluate_batch(batch)
        remote = create_evaluator(
            "remote", spec, dataset=dataset, hosts=[worker_host.host]
        )
        with remote:
            assert remote.evaluate_batch(batch) == expected


class TestSchedulerIntegration:
    def test_run_scheduler_over_remote_backend(self, worker_host):
        dataset = lille51().dataset
        config = GAConfig(
            population_size=12,
            max_haplotype_size=3,
            termination_stagnation=4,
            max_generations=8,
            seed=11,
        )
        request = RunRequest(config=config, n_runs=1, seed=11)
        with RunScheduler(dataset, backend="serial") as scheduler:
            reference = scheduler.run(request)
        with RunScheduler(
            dataset,
            backend="remote",
            hosts=[worker_host.host, worker_host.host],
        ) as scheduler:
            remote = scheduler.run(request)
        remote_best = remote.runs[0].best_overall()
        reference_best = reference.runs[0].best_overall()
        assert remote_best.snps == reference_best.snps
        assert remote_best.fitness_value() == reference_best.fitness_value()
