"""Crash-safe scan checkpointing: a JSONL journal of completed windows.

A genome-scale scan is hundreds of independent window jobs whose results are
pure functions of the per-window seeds, so the natural checkpoint unit is one
*completed window*: the journal's first line pins the scan's identity
(geometry + seeding — resuming against the wrong panel or seed must fail
loudly, not silently merge incompatible results) and every further line is
one window's :func:`~repro.scan.report.window_result_to_json` payload,
written, flushed and fsynced the moment the window finishes.  A scan process
killed at any point therefore loses at most the windows still in flight, and
``run_scan(..., resume=True)`` re-plans the scan, skips the journaled
windows, runs the rest and merges both sets — bit-identical to an
uninterrupted run, because every window is fully determined by its seed.

The only corruption a crash can produce with this write discipline is a torn
*final* line, which :meth:`ScanJournal.open` tolerates (the half-written
window simply re-runs, and the torn bytes are truncated before appending).
Anything malformed earlier in the file means the journal was not written by
this discipline and raises :class:`CheckpointMismatchError`.
"""

from __future__ import annotations

import json
import os

from .planner import ScanPlan
from .report import WindowResult, window_result_from_json, window_result_to_json

__all__ = ["ScanJournal", "CheckpointMismatchError", "checkpoint_meta"]

#: bump when the journal layout changes incompatibly
#: (v2: the header names the panel representation and its content hash)
JOURNAL_VERSION = 2


class CheckpointMismatchError(ValueError):
    """The journal does not belong to this scan (or is corrupt mid-file)."""


def checkpoint_meta(
    plan: ScanPlan,
    n_snps: int,
    *,
    panel: str = "byte",
    panel_fingerprint: str | None = None,
) -> dict:
    """The identity header of a scan's journal: resuming requires an exact
    match on geometry and seeding, since those determine every window result.

    ``panel`` names the genotype substrate the scan runs on (``"byte"`` or
    ``"packed"``) and ``panel_fingerprint`` (optional) pins the panel's
    content hash (:meth:`~repro.genetics.dataset.GenotypeDataset.fingerprint`),
    so a resume can never silently mix packed and byte substrates — or two
    different panels that happen to share a shape.
    """
    meta = {
        "kind": "scan-checkpoint",
        "version": JOURNAL_VERSION,
        "n_snps": int(n_snps),
        "window_size": plan.windows.window_size,
        "overlap": plan.windows.overlap,
        "n_windows": plan.n_windows,
        "statistic": plan.statistic,
        "seed": plan.base_seed,
        "n_runs": plan.n_runs,
        "panel": str(panel),
    }
    if panel_fingerprint is not None:
        meta["panel_fingerprint"] = str(panel_fingerprint)
    return meta


class ScanJournal:
    """Append-only JSONL journal of a scan's completed windows.

    Use :meth:`open` — it loads and validates any existing journal (resume),
    or truncates and starts a fresh one, and returns the journal together
    with the windows already on disk.  :meth:`append` persists one completed
    window durably (flush + fsync) before returning, so the journal never
    claims a window the filesystem might still lose.
    """

    def __init__(self, path, meta: dict) -> None:
        self._path = str(path)
        self._meta = dict(meta)
        self._handle = None
        self._journaled: set[int] = set()
        self._valid_bytes = 0

    @classmethod
    def open(
        cls, path, meta: dict, *, resume: bool = False
    ) -> tuple["ScanJournal", dict[int, WindowResult]]:
        """Open the journal; returns ``(journal, completed_windows_by_index)``.

        ``resume=False`` truncates any existing file and starts fresh (the
        completed dict is then empty).  ``resume=True`` loads the journal,
        validates its header against ``meta``, truncates a torn final line if
        the previous scan died mid-write, and positions for appending.
        """
        journal = cls(path, meta)
        completed: dict[int, WindowResult] = {}
        if resume and os.path.exists(journal._path):
            completed = journal._load()
            handle = open(journal._path, "r+")
            handle.truncate(journal._valid_bytes)
            handle.seek(journal._valid_bytes)
            journal._handle = handle
            if journal._valid_bytes == 0:
                journal._write_line(journal._meta)
        else:
            journal._handle = open(journal._path, "w")
            journal._write_line(journal._meta)
        journal._journaled = set(completed)
        return journal, completed

    # ------------------------------------------------------------------ #
    def _load(self) -> dict[int, WindowResult]:
        with open(self._path, "r") as handle:
            text = handle.read()
        records: list[dict] = []
        consumed = 0
        self._valid_bytes = 0
        lines = text.splitlines(keepends=True)
        for number, line in enumerate(lines):
            consumed += len(line.encode("utf-8")) if isinstance(line, str) else len(line)
            stripped = line.strip()
            if not stripped:
                self._valid_bytes = consumed
                continue
            try:
                records.append(json.loads(stripped))
            except json.JSONDecodeError:
                if number == len(lines) - 1:
                    # torn final line: the scan died mid-append; that window
                    # simply re-runs (truncated before we append)
                    break
                raise CheckpointMismatchError(
                    f"{self._path}:{number + 1}: corrupt journal line (only the "
                    f"final line may be torn by a crash)"
                ) from None
            self._valid_bytes = consumed
        if not records:
            return {}
        header, *window_records = records
        expected = self._meta
        found = {key: header.get(key) for key in expected}
        if found != expected:
            raise CheckpointMismatchError(
                f"checkpoint {self._path} belongs to a different scan: "
                f"journal header {found} != this scan {expected}"
            )
        completed: dict[int, WindowResult] = {}
        for record in window_records:
            if record.get("kind") != "window":
                raise CheckpointMismatchError(
                    f"{self._path}: unexpected journal record kind "
                    f"{record.get('kind')!r}"
                )
            result = window_result_from_json(record)
            index = result.window.index
            if not 0 <= index < self._meta["n_windows"]:
                raise CheckpointMismatchError(
                    f"{self._path}: journaled window index {index} outside the "
                    f"scan's {self._meta['n_windows']} windows"
                )
            completed[index] = result
        return completed

    def _write_line(self, payload: dict) -> None:
        self._handle.write(json.dumps(payload, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    # ------------------------------------------------------------------ #
    @property
    def path(self) -> str:
        return self._path

    @property
    def n_journaled(self) -> int:
        return len(self._journaled)

    def append(self, result: WindowResult) -> None:
        """Durably journal one completed window (idempotent per index)."""
        if self._handle is None:
            raise RuntimeError("the journal has been closed")
        if result.window.index in self._journaled:
            return
        self._write_line({"kind": "window", **window_result_to_json(result)})
        self._journaled.add(result.window.index)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ScanJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
