"""Tests of the sub-populations and their container (paper Section 4.2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import GAConfig
from repro.core.individual import HaplotypeIndividual
from repro.core.population import MultiPopulation, SubPopulation, allocate_capacities


class TestAllocateCapacities:
    def test_total_is_conserved(self):
        capacities = allocate_capacities(150, [2, 3, 4, 5, 6], 51)
        assert sum(capacities.values()) == 150

    def test_capacity_increases_with_size(self):
        """Paper: sub-population sizes grow with the haplotype size."""
        capacities = allocate_capacities(150, [2, 3, 4, 5, 6], 51,
                                         strategy="log_proportional")
        values = [capacities[s] for s in (2, 3, 4, 5, 6)]
        assert all(b >= a for a, b in zip(values, values[1:]))
        assert values[-1] > values[0]

    def test_uniform_allocation(self):
        capacities = allocate_capacities(100, [2, 3, 4, 5], 51, strategy="uniform")
        assert set(capacities.values()) == {25}

    def test_proportional_allocation_skews_to_largest(self):
        capacities = allocate_capacities(100, [2, 6], 51, strategy="proportional")
        assert capacities[6] > capacities[2]

    def test_minimum_capacity_respected(self):
        capacities = allocate_capacities(20, [2, 3, 4, 5, 6], 51, min_capacity=2)
        assert all(c >= 2 for c in capacities.values())

    def test_validation(self):
        with pytest.raises(ValueError):
            allocate_capacities(3, [2, 3, 4], 51, min_capacity=2)
        with pytest.raises(ValueError):
            allocate_capacities(10, [], 51)
        with pytest.raises(ValueError):
            allocate_capacities(10, [2, 3], 51, strategy="bogus")

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=20, max_value=300), st.integers(min_value=10, max_value=100))
    def test_total_conserved_property(self, total, n_snps):
        sizes = [2, 3, 4, 5, 6]
        for strategy in ("log_proportional", "proportional", "uniform"):
            capacities = allocate_capacities(total, sizes, n_snps, strategy=strategy)
            assert sum(capacities.values()) == total
            assert all(c >= 2 for c in capacities.values())


def _ind(snps, fitness):
    return HaplotypeIndividual(snps, fitness)


class TestSubPopulation:
    def test_rejects_wrong_size_or_unevaluated(self):
        sub = SubPopulation(haplotype_size=3, capacity=5)
        with pytest.raises(ValueError):
            sub.try_insert(_ind((1, 2), 1.0))
        with pytest.raises(ValueError):
            sub.try_insert(HaplotypeIndividual((1, 2, 3)))

    def test_insert_until_full_then_replace_worst(self):
        sub = SubPopulation(haplotype_size=2, capacity=2)
        assert sub.try_insert(_ind((0, 1), 5.0))
        assert sub.try_insert(_ind((0, 2), 3.0))
        assert sub.is_full
        # equal-or-worse than the worst -> rejected
        assert not sub.try_insert(_ind((0, 3), 3.0))
        # better than the worst -> replaces it
        assert sub.try_insert(_ind((0, 4), 4.0))
        assert sub.worst().fitness_value() == pytest.approx(4.0)
        assert sub.best().fitness_value() == pytest.approx(5.0)

    def test_duplicates_rejected(self):
        sub = SubPopulation(haplotype_size=2, capacity=5)
        sub.try_insert(_ind((0, 1), 5.0))
        assert not sub.try_insert(_ind((1, 0), 10.0))
        assert len(sub) == 1

    def test_seed_does_not_replace(self):
        sub = SubPopulation(haplotype_size=2, capacity=1)
        assert sub.seed(_ind((0, 1), 1.0))
        assert not sub.seed(_ind((0, 2), 10.0))  # full
        assert len(sub) == 1

    def test_statistics(self):
        sub = SubPopulation(haplotype_size=2, capacity=5)
        for i, fitness in enumerate((1.0, 3.0, 5.0)):
            sub.try_insert(_ind((0, i + 1), fitness))
        assert sub.mean_fitness() == pytest.approx(3.0)
        assert sub.fitness_range() == (1.0, 5.0)
        assert sub.normalized_fitness(3.0) == pytest.approx(0.5)
        assert sub.normalized_fitness(0.0) == 0.0  # clipped
        assert sub.normalized_fitness(99.0) == 1.0  # clipped

    def test_normalized_fitness_degenerate_spread(self):
        sub = SubPopulation(haplotype_size=2, capacity=5)
        sub.try_insert(_ind((0, 1), 2.0))
        assert sub.normalized_fitness(2.0) == pytest.approx(0.5)

    def test_empty_population_statistics_raise(self):
        sub = SubPopulation(haplotype_size=2, capacity=5)
        with pytest.raises(ValueError):
            sub.best()
        with pytest.raises(ValueError):
            sub.worst()
        with pytest.raises(ValueError):
            sub.mean_fitness()

    def test_replace_member(self):
        sub = SubPopulation(haplotype_size=2, capacity=3)
        sub.try_insert(_ind((0, 1), 1.0))
        sub.replace_member(0, _ind((5, 6), 0.5))
        assert sub.members[0].snps == (5, 6)


class TestMultiPopulation:
    @pytest.fixture()
    def population(self):
        config = GAConfig(population_size=30, min_haplotype_size=2, max_haplotype_size=4)
        return MultiPopulation(config, n_snps=14)

    def test_structure(self, population):
        assert population.sizes == (2, 3, 4)
        assert sum(population.capacities.values()) == 30
        assert len(population) == 0

    def test_insert_routes_by_size(self, population):
        assert population.try_insert(_ind((0, 1, 2), 5.0))
        assert len(population.subpopulation(3)) == 1
        assert len(population.subpopulation(2)) == 0
        # sizes outside the configured range are ignored, not errors
        assert not population.try_insert(_ind((0, 1, 2, 3, 4, 5), 50.0))

    def test_unknown_size_lookup_raises(self, population):
        with pytest.raises(KeyError):
            population.subpopulation(9)

    def test_best_per_size_and_global_best(self, population):
        population.try_insert(_ind((0, 1), 4.0))
        population.try_insert(_ind((0, 2), 2.0))
        population.try_insert(_ind((0, 1, 2), 30.0))
        population.try_insert(_ind((0, 1, 3), 10.0))
        best = population.best_per_size()
        assert best[2].fitness_value() == pytest.approx(4.0)
        assert best[3].fitness_value() == pytest.approx(30.0)
        global_best = population.global_best()
        # both sub-population bests have normalized fitness 1; ties break on raw fitness
        assert global_best.fitness_value() == pytest.approx(30.0)

    def test_global_best_of_empty_population_raises(self, population):
        with pytest.raises(ValueError):
            population.global_best()

    def test_normalized_fitness_uses_own_subpopulation(self, population):
        population.try_insert(_ind((0, 1), 0.0))
        population.try_insert(_ind((0, 2), 10.0))
        individual = _ind((0, 3), 5.0)
        assert population.normalized_fitness(individual) == pytest.approx(0.5)
