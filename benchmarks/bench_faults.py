"""Benchmark: the cost of surviving faults — recovery overhead and resume gain.

Two measurements of the robustness layer, recorded to ``BENCH_faults.json``
(diffable with ``scripts/bench_compare.py``, which also gates the ``*_gain*``
leaves):

1. **Recovery overhead.**  The work-stealing farm evaluates the same
   skewed-cost trace as ``bench_substrate_steal.py`` twice — fault-free, and
   with a :class:`repro.testing.faults.ChaosPolicy` hard-killing exactly one
   of the 4 slaves early in the run (token file: one victim, not four) under
   a ``respawn=True`` :class:`repro.parallel.farm.FarmRecoveryPolicy`.  Both
   runs must return identical checksums (replay is bit-identical by purity);
   the headline is how much wall-clock one slave death costs.  The run
   asserts the overhead stays within the 25% acceptance budget.

2. **Checkpoint resume.**  A windowed scan is journaled to a checkpoint and
   interrupted halfway; the headline compares finishing via
   ``run_scan(..., resume=True)`` against re-running the scan cold.  Both
   reports must be fingerprint-identical.

3. **Served restart recovery.**  A served scan is torn down halfway by a
   :class:`repro.testing.faults.ConnectionChaos` link severance, the daemon
   is replaced by a fresh :class:`repro.runtime.server.ScanServer` (cold
   cache) on the same ``journal_dir``, and the client re-submits.  The
   headline compares the recovered scan — journaled windows replayed, the
   remainder recomputed — against a cold served scan; both must be
   fingerprint-identical to the in-process reference.

Usage::

    python benchmarks/bench_faults.py            # full run
    python benchmarks/bench_faults.py --quick    # CI smoke
    python benchmarks/bench_faults.py -o out.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, _SRC)
_HERE = os.path.dirname(os.path.abspath(__file__))
if _HERE not in sys.path:
    sys.path.insert(0, _HERE)

from bench_substrate_steal import (  # noqa: E402
    N_WORKERS,
    CostModelFitness,
    _FitnessFactory,
    skewed_trace,
)
from repro.core.config import GAConfig  # noqa: E402
from repro.genetics.simulate import (  # noqa: E402
    DiseaseModel,
    PopulationModel,
    simulate_case_control_study,
)
from repro.parallel.farm import ChunkedWorkerFarm, FarmRecoveryPolicy  # noqa: E402
from repro.scan import run_scan  # noqa: E402
from repro.testing.faults import ChaosFactory, ChaosPolicy  # noqa: E402

DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_faults.json"
)

#: faster death detection than the production 0.5 s poll, so the benchmark
#: measures recovery work rather than polling latency
POLL_SECONDS = 0.1

OVERHEAD_BUDGET = 0.25  # acceptance: one death costs <= 25% wall-clock

SCAN_WINDOW_SIZE = 4
SCAN_OVERLAP = 2
SCAN_SEED = 17


def run_farm_mode(
    batches, *, base_seconds: float, chaos: ChaosPolicy | None = None
) -> dict:
    factory = _FitnessFactory(CostModelFitness(base_seconds))
    if chaos is not None:
        factory = ChaosFactory(factory, chaos)
    recovery = FarmRecoveryPolicy(
        respawn=True, max_worker_restarts=4, max_chunk_retries=3
    )
    n_requests = n_evaluations = 0
    checksum = 0.0
    with ChunkedWorkerFarm(
        factory,
        N_WORKERS,
        chunk_size=1,
        worker_cache_size=0,
        steal=True,
        max_inflight=1,
        recovery=recovery,
    ) as farm:
        farm._RESULT_POLL_SECONDS = POLL_SECONDS
        start = time.perf_counter()
        for batch in batches:
            values, stats = farm.evaluate(batch)
            checksum += sum(values)
            n_requests += stats.n_requests
            n_evaluations += stats.n_evaluations
        elapsed = time.perf_counter() - start
        counters = farm.recovery_counters()
    return {
        "mode": "fault_free" if chaos is None else "one_worker_killed",
        "n_workers": N_WORKERS,
        "elapsed_seconds": elapsed,
        "n_requests": n_requests,
        "n_evaluations": n_evaluations,
        "checksum": round(checksum, 9),
        "recovery_counters": counters,
    }


def bench_recovery_overhead(*, quick: bool) -> tuple[dict, dict, float]:
    if quick:
        base_seconds, n_batches, n_expensive, n_cheap = 4e-4, 2, 8, 40
    else:
        base_seconds, n_batches, n_expensive, n_cheap = 8e-4, 4, 8, 60
    batches = skewed_trace(
        n_batches=n_batches, n_expensive=n_expensive, n_cheap=n_cheap
    )
    fault_free = run_farm_mode(batches, base_seconds=base_seconds)
    with tempfile.TemporaryDirectory() as tmp:
        chaos = ChaosPolicy(
            kill_after=3, token_path=os.path.join(tmp, "chaos.token")
        )
        faulty = run_farm_mode(batches, base_seconds=base_seconds, chaos=chaos)
    if faulty["checksum"] != fault_free["checksum"]:
        raise AssertionError(
            f"recovery changed the results: "
            f"{faulty['checksum']} != {fault_free['checksum']}"
        )
    if faulty["recovery_counters"]["n_worker_deaths"] != 1:
        raise AssertionError(
            f"expected exactly one injected death, got "
            f"{faulty['recovery_counters']}"
        )
    overhead = (
        faulty["elapsed_seconds"] / fault_free["elapsed_seconds"] - 1.0
    )
    if not quick and overhead > OVERHEAD_BUDGET:
        raise AssertionError(
            f"one worker death cost {overhead:.0%} wall-clock "
            f"(budget {OVERHEAD_BUDGET:.0%})"
        )
    return fault_free, faulty, overhead


class _Interrupted(Exception):
    """Stand-in for the scan process being killed mid-flight."""


def _acceptance_panel(*, quick: bool):
    """The (study, config) pair shared by the resume and served benchmarks."""
    n_snps = 101 if quick else 201
    model = PopulationModel(n_snps=n_snps, block_size=6, within_block_correlation=0.4)
    disease = DiseaseModel(
        causal_snps=(20, 60, 90) if quick else (20, 100, 180),
        risk_alleles=(2, 2, 2),
        baseline_penetrance=0.1,
        relative_risk=6.0,
        risk_haplotype_frequency=0.3,
    )
    study = simulate_case_control_study(
        population_model=model,
        disease_model=disease,
        n_affected=20,
        n_unaffected=20,
        seed=31,
    )
    config = GAConfig(
        population_size=6,
        min_haplotype_size=2,
        max_haplotype_size=2,
        termination_stagnation=1,
        max_generations=2,
        point_mutation_trials=1,
    )
    return study, config


def bench_checkpoint_resume(*, quick: bool) -> tuple[dict, dict]:
    study, config = _acceptance_panel(quick=quick)

    def scan(**kwargs):
        return run_scan(
            study.dataset,
            window_size=SCAN_WINDOW_SIZE,
            overlap=SCAN_OVERLAP,
            config=config,
            seed=SCAN_SEED,
            **kwargs,
        )

    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = os.path.join(tmp, "scan.jsonl")

        start = time.perf_counter()
        cold = scan()
        cold_seconds = time.perf_counter() - start
        half = cold.n_windows // 2
        seen = 0

        def die_at_half(result):
            nonlocal seen
            seen += 1
            if seen >= half:
                raise _Interrupted()

        try:
            scan(checkpoint_path=checkpoint, progress=die_at_half)
        except _Interrupted:
            pass
        start = time.perf_counter()
        resumed = scan(checkpoint_path=checkpoint, resume=True)
        resume_seconds = time.perf_counter() - start
    if resumed.fingerprint() != cold.fingerprint():
        raise AssertionError("resumed scan diverged from the cold scan")
    cold_result = {
        "mode": "cold_full_scan",
        "n_windows": cold.n_windows,
        "elapsed_seconds": cold_seconds,
    }
    resume_result = {
        "mode": "resume_from_half_checkpoint",
        "n_windows": resumed.n_windows,
        "n_windows_restored": half,
        "elapsed_seconds": resume_seconds,
    }
    return cold_result, resume_result


def bench_served_restart(*, quick: bool) -> tuple[dict, dict]:
    from repro.runtime.client import ConnectionLostError, ScanClient
    from repro.runtime.server import ScanServer
    from repro.testing.faults import ChaosConnection, ConnectionChaos

    study, config = _acceptance_panel(quick=quick)

    def serve(journal_dir: str) -> ScanServer:
        server = ScanServer(study.dataset, journal_dir=journal_dir)
        server.start(("127.0.0.1", 0))
        return server

    def served_scan(server, **client_kwargs):
        with ScanClient(server.address, **client_kwargs) as client:
            return client.scan(
                window_size=SCAN_WINDOW_SIZE,
                overlap=SCAN_OVERLAP,
                config=config,
                seed=SCAN_SEED,
            )

    with tempfile.TemporaryDirectory() as tmp:
        # cold served scan: fresh daemon, empty journal
        with serve(os.path.join(tmp, "cold")) as server:
            start = time.perf_counter()
            cold = served_scan(server, client_id="bench-cold")
            cold_seconds = time.perf_counter() - start

        # the link tears halfway through the stream (hello is recv #1),
        # then the daemon is replaced by a cold-cache restart on the same
        # journal and the client re-submits
        journal_dir = os.path.join(tmp, "served")
        half = cold.n_windows // 2
        chaos = ConnectionChaos(sever_on_recv=half + 2)
        with serve(journal_dir) as server:
            try:
                served_scan(
                    server,
                    client_id="bench-doomed",
                    retry=None,
                    wrap_connection=lambda conn: ChaosConnection(conn, chaos),
                )
            except ConnectionLostError:
                pass
            else:
                raise AssertionError("the severed scan should not complete")
        with serve(journal_dir) as server:
            start = time.perf_counter()
            recovered = served_scan(server, client_id="bench-recovered")
            restart_seconds = time.perf_counter() - start
            health = server.health()

    if recovered.fingerprint() != cold.fingerprint():
        raise AssertionError("recovered served scan diverged from the cold scan")
    n_replayed = health["journal"]["n_recovered_windows"]
    if n_replayed < 1:
        raise AssertionError("restarted daemon replayed no journaled windows")
    cold_result = {
        "mode": "served_cold_scan",
        "n_windows": cold.n_windows,
        "elapsed_seconds": cold_seconds,
    }
    restart_result = {
        "mode": "served_restart_from_journal",
        "n_windows": recovered.n_windows,
        "n_windows_replayed": n_replayed,
        "elapsed_seconds": restart_seconds,
    }
    return cold_result, restart_result


def run_benchmark(*, quick: bool) -> dict:
    fault_free, faulty, overhead = bench_recovery_overhead(quick=quick)
    cold, resumed = bench_checkpoint_resume(quick=quick)
    served_cold, served_restart = bench_served_restart(quick=quick)
    report: dict = {
        "benchmark": "faults",
        "results": {
            f"fault_free_{N_WORKERS}w": fault_free,
            f"one_death_{N_WORKERS}w": faulty,
            "scan_cold": cold,
            "scan_resume": resumed,
            "served_cold": served_cold,
            "served_restart": served_restart,
        },
        "headline": {
            # all three are *_gain leaves for scripts/bench_compare.py --gains-only
            f"recovery_vs_faultfree_gain_at_{N_WORKERS}_workers": (
                fault_free["elapsed_seconds"] / faulty["elapsed_seconds"]
            ),
            "resume_vs_cold_gain": (
                cold["elapsed_seconds"] / resumed["elapsed_seconds"]
            ),
            "served_restart_resume_vs_cold_gain": (
                served_cold["elapsed_seconds"]
                / served_restart["elapsed_seconds"]
            ),
            "recovery_overhead_fraction": overhead,
        },
    }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized smoke run")
    parser.add_argument("-o", "--output", default=DEFAULT_OUTPUT,
                        help=f"output JSON path (default {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)

    report = run_benchmark(quick=args.quick)

    for label, result in report["results"].items():
        extra = ""
        if "recovery_counters" in result:
            counters = result["recovery_counters"]
            extra = (
                f" (deaths {counters['n_worker_deaths']}, "
                f"replays {counters['n_chunks_replayed']}, "
                f"respawns {counters['n_worker_respawns']})"
            )
        print(f"  {label:16s} {result['elapsed_seconds']:7.2f} s{extra}")
    headline = report["headline"]
    print(
        f"one slave death costs "
        f"{headline['recovery_overhead_fraction']:+.1%} wall-clock; "
        f"resume vs cold rescan: {headline['resume_vs_cold_gain']:.2f}x; "
        f"served restart vs cold: "
        f"{headline['served_restart_resume_vs_cold_gain']:.2f}x"
    )

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
