"""Round-trip tests of the dataset I/O formats."""

import numpy as np
import pytest

from repro.genetics.frequencies import snp_frequency_table
from repro.genetics.io import (
    read_frequency_table,
    read_genotype_csv,
    read_ld_table,
    read_ped,
    read_study_tables,
    write_frequency_table,
    write_genotype_csv,
    write_ld_table,
    write_ped,
    write_study_tables,
)
from repro.genetics.ld import pairwise_ld_table
from repro.genetics.simulate import lille_like_study


@pytest.fixture(scope="module")
def dataset():
    return lille_like_study(seed=9, n_affected=12, n_unaffected=12, n_snps=16,
                            missing_rate=0.05).dataset


class TestGenotypeCSV:
    def test_roundtrip(self, dataset, tmp_path):
        path = tmp_path / "genotypes.csv"
        write_genotype_csv(dataset, path)
        loaded = read_genotype_csv(path)
        assert loaded == dataset

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("foo,bar\n")
        with pytest.raises(ValueError):
            read_genotype_csv(path)

    def test_malformed_row_rejected(self, dataset, tmp_path):
        path = tmp_path / "genotypes.csv"
        write_genotype_csv(dataset, path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("extra,affected\n")
        with pytest.raises(ValueError, match="expected"):
            read_genotype_csv(path)

    def test_unknown_status_label_rejected(self, tmp_path):
        path = tmp_path / "bad_status.csv"
        path.write_text("individual_id,status,snp0\nind0,sick,1\n")
        with pytest.raises(ValueError, match="unknown status"):
            read_genotype_csv(path)


class TestPed:
    def test_roundtrip_preserves_genotypes_and_status(self, dataset, tmp_path):
        path = tmp_path / "study.ped"
        write_ped(dataset, path)
        loaded = read_ped(path, snp_names=dataset.snp_names)
        assert np.array_equal(loaded.genotypes, dataset.genotypes)
        assert np.array_equal(loaded.status, dataset.status)
        assert loaded.individual_ids == dataset.individual_ids

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.ped"
        path.write_text("")
        with pytest.raises(ValueError):
            read_ped(path)

    def test_malformed_row_rejected(self, tmp_path):
        path = tmp_path / "bad.ped"
        path.write_text("FAM1 ind0 0 0 0 2 1\n")  # odd number of allele columns
        with pytest.raises(ValueError):
            read_ped(path)


class TestFrequencyTable:
    def test_roundtrip(self, dataset, tmp_path):
        table = snp_frequency_table(dataset)
        path = tmp_path / "frequencies.csv"
        write_frequency_table(table, path)
        loaded = read_frequency_table(path)
        assert loaded.snp_names == table.snp_names
        np.testing.assert_allclose(loaded.freq_allele2, table.freq_allele2, atol=1e-8)

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n")
        with pytest.raises(ValueError):
            read_frequency_table(path)


class TestLdTable:
    def test_roundtrip(self, dataset, tmp_path):
        table = pairwise_ld_table(dataset)
        path = tmp_path / "ld.csv"
        write_ld_table(table, path)
        loaded = read_ld_table(path)
        assert loaded.snp_names == table.snp_names
        assert loaded.measure == table.measure
        np.testing.assert_allclose(loaded.values, table.values, atol=1e-8)


class TestStudyTables:
    def test_three_table_roundtrip(self, dataset, tmp_path):
        paths = write_study_tables(dataset, tmp_path / "study")
        assert set(paths) == {"genotypes", "frequencies", "ld"}
        loaded, freq, ld = read_study_tables(tmp_path / "study")
        assert loaded == dataset
        assert freq.snp_names == dataset.snp_names
        assert ld.n_snps == dataset.n_snps
