"""Benchmark: Section 5.2 — comparison of the GA schemes.

Reruns the paper's mechanism study (without/with the sub-population links,
the adaptive operators and the random immigrants) and checks its qualitative
conclusion: the full algorithm reaches solutions at least as good as the
stripped-down scheme, and the mechanisms that link sub-populations help the
larger haplotype sizes.
"""

from __future__ import annotations

from repro.experiments.ablation import default_schemes, run_ablation
from repro.experiments.table2 import quick_config


def test_ablation_schemes(benchmark, study, ga_config, n_runs, scale):
    if scale == "paper":
        config = ga_config
        schemes = default_schemes()
    else:
        # a reduced budget keeps the four schemes comparable in ~a minute
        config = quick_config(
            population_size=40, max_haplotype_size=4,
            termination_stagnation=6, max_generations=20,
        )
        schemes = (default_schemes()[0], default_schemes()[2], default_schemes()[3])
    result = benchmark.pedantic(
        run_ablation,
        kwargs=dict(study=study, config=config, schemes=schemes, n_runs=n_runs),
        rounds=1,
        iterations=1,
    )

    baseline = result.outcomes[0]
    full = result.outcomes[-1]
    largest_size = max(full.mean_best_fitness_per_size)
    # Section 5.2's conclusion: the linking mechanisms find better solutions.
    # Allow a small tolerance because the quick scale uses few, short runs.
    assert full.mean_best_fitness_per_size[largest_size] >= (
        0.9 * baseline.mean_best_fitness_per_size.get(largest_size, 0.0)
    )
    print()
    print(result.format())
