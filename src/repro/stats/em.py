"""Multi-locus haplotype-frequency estimation by EM (gene counting).

This is the computational core of the EH-DIALL substitute.  Given *unphased*
genotypes at ``L`` biallelic loci, the phase of multiply-heterozygous
individuals is unknown, so haplotype frequencies cannot be counted directly.
The classical solution (Excoffier & Slatkin 1995; the EH program of
Terwilliger & Ott that the paper calls through EH-DIALL) is an
expectation-maximisation algorithm over the unknown phases:

* **E-step** — for every individual (grouped by identical multi-locus
  genotype), distribute its two chromosomes over the haplotype pairs
  compatible with the genotype, proportionally to the current haplotype
  frequency estimates;
* **M-step** — re-estimate haplotype frequencies from the expected counts.

The log-likelihood is non-decreasing across iterations; we stop when its
improvement falls below a tolerance.

Complexity: a genotype heterozygous at ``h`` of the ``L`` loci is compatible
with ``2^(h-1)`` unordered haplotype pairs, so the per-iteration work is
``O(sum_g 2^(h_g))`` — exponential in the haplotype size, which is exactly the
behaviour the paper's Figure 4 documents for its evaluation function.

Performance notes
-----------------
The kernel is organised for throughput (the GA's entire cost model is the
number and cost of these EM runs):

* the phase expansion is built **once** per (genotype matrix, SNP subset) and
  stored class-sorted, so every per-class accumulation is a segmented
  reduction (``np.add.reduceat`` over contiguous class blocks, with an
  ``np.bincount`` fallback for hand-built unsorted expansions) instead of an
  unbuffered ``np.add.at`` scatter;
* pair enumeration is vectorised: all ``2^(h-1)`` phase assignments of every
  genotype class are emitted by a handful of broadcast bit operations rather
  than a Python loop per pair;
* each EM iteration computes the pair-probability vector **once** and derives
  both the E-step posterior and the log-likelihood from it (the textbook
  formulation — and the seed implementation, preserved in
  :mod:`repro.stats.em_reference` — pays for it twice per iteration);
* expansions are reusable and composable: :func:`concat_expansions` builds
  the pooled case+control expansion by concatenating the per-group class
  tables (duplicated genotype classes are *exactly* equivalent to one merged
  class for the likelihood and the EM updates), and
  :class:`PhaseExpansionCache` memoises expansions per SNP subset so
  re-evaluating a haplotype never repeats genotype slicing, ``np.unique``,
  or pair enumeration;
* :func:`estimate_from_expansion` accepts ``initial_frequencies``, enabling
  warm starts (e.g. seeding the pooled EM from the count-weighted mix of the
  two group solutions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Sequence

import numpy as np

from ..genetics.alleles import GENOTYPE_MISSING, n_haplotype_states
from ..genetics.packed import CODE_MISSING, PackedPanel
from ..lru import LRUCache

__all__ = [
    "EMResult",
    "PhaseExpansion",
    "PhaseExpansionCache",
    "StackedExpansion",
    "expand_phases",
    "expand_phases_packed",
    "concat_expansions",
    "stack_expansions",
    "expansion_log_likelihood",
    "estimate_haplotype_frequencies",
    "estimate_from_expansion",
    "run_em_stacked",
    "STACK_MAX_PAIRS_PER_PROBLEM",
    "STACK_MAX_TOTAL_PAIRS",
]

_LOG_FLOOR = 1e-300

#: ``np.add.reduceat`` offsets for a single whole-array segment.  The scalar
#: kernel sums its per-class log-likelihood contributions through this (a
#: strict left-to-right reduction) so that the stacked kernel — which reduces
#: the same contributions as one segment of a larger concatenated array — is
#: bit-identical to it: ``reduceat`` segment sums depend only on the segment's
#: own values, while ``np.dot``/``np.sum`` use pairwise/BLAS orders that do.
_WHOLE_SEGMENT = np.zeros(1, dtype=np.intp)

#: Stacking pays off while the per-problem EM is dispatch-bound; above this
#: pair count a single problem's arrays are large enough that the scalar
#: kernel is compute-bound and stacking only adds gather/compaction overhead
#: (measured crossover ~1.5-2k pairs on the dev container).  Values are
#: identical either way — this is purely a throughput routing hint for the
#: evaluation layer.
STACK_MAX_PAIRS_PER_PROBLEM = 2048

#: Cap on the summed pair count of one stacked call: beyond this the
#: concatenated working set falls out of cache and the batched gathers lose
#: to the scalar loop's cache-resident arrays, so bigger batches are split.
STACK_MAX_TOTAL_PAIRS = 1 << 18


@dataclass(frozen=True)
class EMResult:
    """Result of a haplotype-frequency EM run.

    Attributes
    ----------
    frequencies:
        Array of length ``2**n_loci``; ``frequencies[s]`` is the estimated
        population frequency of haplotype state ``s`` (see
        :mod:`repro.genetics.alleles` for the state encoding).
    log_likelihood:
        Final observed-data log-likelihood.
    n_iterations:
        Number of EM iterations performed.
    converged:
        Whether the log-likelihood improvement fell below ``tol`` before
        ``max_iter`` was reached.
    n_individuals:
        Number of individuals with complete genotypes that entered the
        estimation.
    n_loci:
        Number of loci of the haplotype.
    """

    frequencies: np.ndarray
    log_likelihood: float
    n_iterations: int
    converged: bool
    n_individuals: int
    n_loci: int

    @property
    def n_chromosomes(self) -> int:
        return 2 * self.n_individuals

    def expected_counts(self) -> np.ndarray:
        """Expected haplotype counts (frequencies × number of chromosomes)."""
        return self.frequencies * self.n_chromosomes


@dataclass(frozen=True)
class PhaseExpansion:
    """Pre-computed phase expansion of a set of multi-locus genotypes.

    The expansion is a flat list of candidate (haplotype a, haplotype b)
    pairs, each tagged with the genotype-class it belongs to and the number of
    ordered phase configurations it represents (1 for ``a == b``, 2
    otherwise).  All EM iterations reuse the same expansion.

    :func:`expand_phases` emits the pairs sorted by class, which lets the EM
    kernel use contiguous segmented reductions; hand-built expansions may be
    unsorted and are normalised on entry via :meth:`sorted_by_class`.

    Attributes
    ----------
    n_loci:
        Number of loci.
    class_counts:
        Number of individuals in each genotype class.
    pair_a, pair_b:
        Haplotype state indices of each candidate pair.
    pair_class:
        Genotype-class index of each candidate pair.
    pair_multiplicity:
        1.0 where ``pair_a == pair_b`` else 2.0.
    class_genotypes:
        Optional ``(n_classes, n_loci)`` table of the class genotypes; kept so
        per-locus allele frequencies and pooled expansions can be derived
        without going back to the raw genotype matrix.
    n_individuals:
        Total number of individuals covered (sum of ``class_counts``).
    """

    n_loci: int
    class_counts: np.ndarray
    pair_a: np.ndarray
    pair_b: np.ndarray
    pair_class: np.ndarray
    pair_multiplicity: np.ndarray
    class_genotypes: np.ndarray | None = field(default=None)

    @property
    def n_individuals(self) -> int:
        return int(self.class_counts.sum())

    @property
    def n_classes(self) -> int:
        return self.class_counts.shape[0]

    @property
    def n_pairs(self) -> int:
        return self.pair_a.shape[0]

    # -- segmented-reduction support ----------------------------------- #
    @cached_property
    def is_class_sorted(self) -> bool:
        """Whether the pair arrays are sorted by ``pair_class``."""
        return bool(self.n_pairs == 0 or np.all(np.diff(self.pair_class) >= 0))

    def sorted_by_class(self) -> "PhaseExpansion":
        """Return an equivalent expansion whose pairs are sorted by class.

        Returns ``self`` when already sorted (always the case for expansions
        built by :func:`expand_phases` or :func:`concat_expansions`).
        """
        if self.is_class_sorted:
            return self
        order = np.argsort(self.pair_class, kind="stable")
        return PhaseExpansion(
            n_loci=self.n_loci,
            class_counts=self.class_counts,
            pair_a=self.pair_a[order],
            pair_b=self.pair_b[order],
            pair_class=self.pair_class[order],
            pair_multiplicity=self.pair_multiplicity[order],
            class_genotypes=self.class_genotypes,
        )

    @cached_property
    def class_starts(self) -> np.ndarray:
        """First pair index of each class (requires a class-sorted expansion)."""
        return np.searchsorted(self.pair_class, np.arange(self.n_classes))

    @cached_property
    def _can_reduceat(self) -> bool:
        # ``np.add.reduceat`` needs a class-sorted expansion with every
        # segment non-empty; expansions built by expand_phases always satisfy
        # this (each genotype class emits at least one pair), hand-built ones
        # may not.
        if self.n_pairs == 0 or self.n_classes == 0 or not self.is_class_sorted:
            return False
        starts = self.class_starts
        return bool(
            starts[0] == 0 and starts[-1] < self.n_pairs and np.all(np.diff(starts) > 0)
        )

    def class_reduce(self, pair_values: np.ndarray) -> np.ndarray:
        """Sum a per-pair vector into per-class totals (segmented reduction)."""
        if self._can_reduceat:
            return np.add.reduceat(pair_values, self.class_starts)
        return np.bincount(
            self.pair_class, weights=pair_values, minlength=self.n_classes
        )

    # -- derived per-locus statistics ---------------------------------- #
    def allele_frequencies(self) -> np.ndarray:
        """Per-locus frequency of allele ``2`` among the covered individuals.

        Requires ``class_genotypes``; returns NaNs when the expansion covers
        no individuals (matching gene counting on an empty sample).
        """
        if self.class_genotypes is None:
            raise ValueError("expansion was built without class_genotypes")
        n = self.n_individuals
        if n == 0:
            return np.full(self.n_loci, np.nan)
        totals = self.class_counts.astype(np.float64) @ self.class_genotypes.astype(np.float64)
        return totals / (2.0 * n)


def _genotype_pairs(genotype: np.ndarray) -> list[tuple[int, int]]:
    """Enumerate the unordered haplotype pairs compatible with one genotype.

    ``genotype`` is a complete (no missing) vector of codes 0/1/2.  Haplotype
    states are bit masks where bit ``i`` set means allele ``2`` at locus ``i``.

    This is the scalar reference enumeration; :func:`expand_phases` uses the
    vectorised :func:`_enumerate_pairs`, which must emit the same pairs in the
    same order.
    """
    het = np.flatnonzero(genotype == 1)
    base = 0
    for i in np.flatnonzero(genotype == 2):
        base |= 1 << int(i)
    if het.size == 0:
        return [(base, base)]
    pairs: list[tuple[int, int]] = []
    first = int(het[0])
    rest = [int(i) for i in het[1:]]
    # fix the phase of the first heterozygous locus to avoid double counting
    for assignment in range(1 << len(rest)):
        hap_a = base | (1 << first)
        hap_b = base
        for bit, locus in enumerate(rest):
            if (assignment >> bit) & 1:
                hap_a |= 1 << locus
            else:
                hap_b |= 1 << locus
        pairs.append((hap_a, hap_b))
    return pairs


def _enumerate_pairs(classes: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised phase enumeration for a table of distinct complete genotypes.

    Returns ``(pair_a, pair_b, pair_class)`` sorted by class, with pairs
    within a class ordered by ascending phase-assignment index — the same
    order the scalar :func:`_genotype_pairs` produces.
    """
    n_classes, n_loci = classes.shape
    locus_bits = (np.int64(1) << np.arange(n_loci, dtype=np.int64))
    base = ((classes == 2).astype(np.int64) @ locus_bits)
    het_mask = classes == 1
    het_count = het_mask.sum(axis=1)

    pa_parts: list[np.ndarray] = []
    pb_parts: list[np.ndarray] = []
    pc_parts: list[np.ndarray] = []

    # fully phased classes: a single (base, base) pair each
    hom_rows = np.flatnonzero(het_count == 0)
    if hom_rows.size:
        pa_parts.append(base[hom_rows])
        pb_parts.append(base[hom_rows])
        pc_parts.append(hom_rows.astype(np.int64))

    # classes heterozygous at h loci: 2^(h-1) pairs each, the phase of the
    # first heterozygous locus fixed to avoid double counting
    for h in np.unique(het_count[het_count > 0]):
        h = int(h)
        rows = np.flatnonzero(het_count == h)
        het_pos = np.nonzero(het_mask[rows])[1].reshape(rows.size, h)
        first_mask = locus_bits[het_pos[:, 0]]
        rest_masks = locus_bits[het_pos[:, 1:]]  # (m, h-1)
        n_assignments = 1 << (h - 1)
        bits = (
            (np.arange(n_assignments, dtype=np.int64)[:, None]
             >> np.arange(h - 1, dtype=np.int64)[None, :]) & 1
        )  # (k, h-1)
        a_extra = rest_masks @ bits.T  # (m, k)
        b_extra = rest_masks.sum(axis=1, keepdims=True) - a_extra
        pa_parts.append(((base[rows] + first_mask)[:, None] + a_extra).ravel())
        pb_parts.append((base[rows][:, None] + b_extra).ravel())
        pc_parts.append(np.repeat(rows.astype(np.int64), n_assignments))

    if not pa_parts:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()

    pa = np.concatenate(pa_parts)
    pb = np.concatenate(pb_parts)
    pc = np.concatenate(pc_parts)
    order = np.argsort(pc, kind="stable")
    return pa[order], pb[order], pc[order]


def expand_phases(genotypes: np.ndarray) -> PhaseExpansion:
    """Group complete genotypes into classes and enumerate their phase pairs.

    Parameters
    ----------
    genotypes:
        ``(n_individuals, n_loci)`` array of codes 0/1/2/-1.  Individuals with
        any missing genotype at these loci are excluded (matching the
        behaviour of the original EH program, which requires complete data).
    """
    genotypes = np.asarray(genotypes)
    if genotypes.ndim != 2:
        raise ValueError("genotypes must be 2-D (individuals x loci)")
    n_loci = genotypes.shape[1]
    if n_loci == 0:
        raise ValueError("at least one locus is required")
    complete = ~np.any(genotypes == GENOTYPE_MISSING, axis=1)
    genotypes = genotypes[complete]

    if genotypes.shape[0] == 0:
        return PhaseExpansion(
            n_loci=n_loci,
            class_counts=np.zeros(0, dtype=np.int64),
            pair_a=np.zeros(0, dtype=np.int64),
            pair_b=np.zeros(0, dtype=np.int64),
            pair_class=np.zeros(0, dtype=np.int64),
            pair_multiplicity=np.zeros(0, dtype=np.float64),
            class_genotypes=np.zeros((0, n_loci), dtype=genotypes.dtype),
        )

    classes, counts = np.unique(genotypes, axis=0, return_counts=True)
    pa, pb, pc = _enumerate_pairs(classes)
    multiplicity = np.where(pa == pb, 1.0, 2.0)
    return PhaseExpansion(
        n_loci=n_loci,
        class_counts=counts.astype(np.int64),
        pair_a=pa,
        pair_b=pb,
        pair_class=pc,
        pair_multiplicity=multiplicity,
        class_genotypes=classes,
    )


#: histogram span cap for the packed class-counting path; denser spans fall
#: back to sorting the radix codes (``np.unique``), which is O(n log n) in the
#: number of individuals instead of O(4^L) in the state space.
_PACKED_BINCOUNT_MAX = 1 << 20

#: loci bound of the int64 radix code (4^31 < 2^63); larger subsets unpack.
_PACKED_MAX_LOCI = 31


def expand_phases_packed(
    panel: PackedPanel, snps: Sequence[int] | np.ndarray
) -> PhaseExpansion:
    """Packed fast path of :func:`expand_phases` — bit-identical output.

    Instead of slicing byte columns and running ``np.unique`` over rows, the
    genotype classes are counted as base-4 radix codes built straight from the
    packed 2-bit columns (:meth:`PackedPanel.codes`): a histogram (or a code
    sort for large state spaces) yields the classes in ascending code order.

    Bit-identity argument: the radix code puts locus 0 in the most significant
    digit, so ascending code order *is* the lexicographic row order
    ``np.unique(genotypes, axis=0)`` sorts complete rows into (genotype values
    0/1/2 order identically as bytes and as 2-bit digits).  Individuals with a
    missing genotype carry digit 3 somewhere; the byte path drops those rows
    before uniquing, this path drops the classes containing digit 3 after
    counting — same surviving classes, same order, same counts.  The decoded
    classes then feed the same :func:`_enumerate_pairs`, so every
    :class:`PhaseExpansion` field matches the byte path exactly.
    """
    idx = np.asarray(snps, dtype=np.intp)
    n_loci = idx.shape[0]
    if n_loci == 0:
        raise ValueError("at least one locus is required")
    if n_loci > _PACKED_MAX_LOCI:
        return expand_phases(panel.unpack_columns(idx))

    codes = panel.codes(idx)
    n_states = 4**n_loci
    if n_states <= min(_PACKED_BINCOUNT_MAX, max(4096, 4 * codes.size)):
        histogram = np.bincount(codes, minlength=n_states)
        present = np.flatnonzero(histogram)
        counts = histogram[present]
    else:
        present, counts = np.unique(codes, return_counts=True)

    shifts = 2 * (n_loci - 1 - np.arange(n_loci))
    digits = (present[:, None] >> shifts) & 3
    complete = ~np.any(digits == CODE_MISSING, axis=1)
    digits = digits[complete]
    counts = counts[complete]

    if digits.shape[0] == 0:
        return PhaseExpansion(
            n_loci=n_loci,
            class_counts=np.zeros(0, dtype=np.int64),
            pair_a=np.zeros(0, dtype=np.int64),
            pair_b=np.zeros(0, dtype=np.int64),
            pair_class=np.zeros(0, dtype=np.int64),
            pair_multiplicity=np.zeros(0, dtype=np.float64),
            class_genotypes=np.zeros((0, n_loci), dtype=np.int8),
        )

    classes = digits.astype(np.int8)
    pa, pb, pc = _enumerate_pairs(classes)
    multiplicity = np.where(pa == pb, 1.0, 2.0)
    return PhaseExpansion(
        n_loci=n_loci,
        class_counts=counts.astype(np.int64),
        pair_a=pa,
        pair_b=pb,
        pair_class=pc,
        pair_multiplicity=multiplicity,
        class_genotypes=classes,
    )


def concat_expansions(first: PhaseExpansion, second: PhaseExpansion) -> PhaseExpansion:
    """Pool two expansions over the same loci by concatenating class tables.

    A genotype class duplicated across the two inputs is *exactly* equivalent
    to one merged class for both the log-likelihood and the EM updates
    (``n1·log P + n2·log P = (n1+n2)·log P``, and the E-step weights are
    linear in the class counts), so pooling needs no re-expansion, no
    ``np.unique`` and no cross-group dedup — just an offset on the class
    indices of the second input.
    """
    if first.n_loci != second.n_loci:
        raise ValueError("cannot concatenate expansions over different loci counts")
    if first.n_individuals == 0:
        return second
    if second.n_individuals == 0:
        return first
    class_genotypes = None
    if first.class_genotypes is not None and second.class_genotypes is not None:
        class_genotypes = np.concatenate([first.class_genotypes, second.class_genotypes])
    return PhaseExpansion(
        n_loci=first.n_loci,
        class_counts=np.concatenate([first.class_counts, second.class_counts]),
        pair_a=np.concatenate([first.pair_a, second.pair_a]),
        pair_b=np.concatenate([first.pair_b, second.pair_b]),
        pair_class=np.concatenate(
            [first.pair_class, second.pair_class + first.n_classes]
        ),
        pair_multiplicity=np.concatenate(
            [first.pair_multiplicity, second.pair_multiplicity]
        ),
        class_genotypes=class_genotypes,
    )


class PhaseExpansionCache:
    """Bounded LRU cache of phase expansions for SNP subsets of one matrix.

    Building an expansion means slicing the genotype matrix, running
    ``np.unique`` over the rows and enumerating up to ``2^(h-1)`` phase pairs
    per class; the GA re-evaluates the same haplotype many times (elitism,
    re-insertion, the affected/unaffected/pooled triple of the LRT), so the
    expansion is worth memoising per sorted SNP tuple.

    Parameters
    ----------
    genotypes:
        The full ``(n_individuals, n_snps)`` genotype matrix the cached
        expansions are column subsets of — either a byte matrix or a 2-bit
        :class:`~repro.genetics.packed.PackedPanel` (misses then build
        through :func:`expand_phases_packed`, never touching byte storage).
    max_size:
        Bound on the number of cached expansions (least-recently-used entries
        are evicted); ``None`` means unbounded.
    """

    def __init__(
        self, genotypes: np.ndarray | PackedPanel, *, max_size: int | None = 256
    ) -> None:
        if max_size is not None and max_size <= 0:
            raise ValueError("max_size must be positive or None")
        if isinstance(genotypes, PackedPanel):
            self._panel: PackedPanel | None = genotypes
            self._genotypes = None
        else:
            self._panel = None
            self._genotypes = np.asarray(genotypes)
            if self._genotypes.ndim != 2:
                raise ValueError("genotypes must be 2-D (individuals x loci)")
        self._cache: LRUCache = LRUCache(max_size)
        self._hits = 0
        self._misses = 0

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    def __len__(self) -> int:
        return len(self._cache)

    def clear(self) -> None:
        self._cache.clear()
        self._hits = 0
        self._misses = 0

    def get(
        self, snps: Sequence[int] | np.ndarray, *, presorted: bool = False
    ) -> PhaseExpansion:
        """Return the (possibly cached) expansion of the given SNP columns.

        ``presorted=True`` promises that ``snps`` is already a sorted tuple of
        ints (the normalised form :meth:`HaplotypeEvaluator._validate_snps`
        produces), skipping the per-lookup re-sort/re-tuple on the hot path —
        the key cost is then paid once per request instead of once per cache
        layer.
        """
        if presorted:
            key = snps if type(snps) is tuple else tuple(snps)
        else:
            key = tuple(sorted(int(s) for s in snps))
        cached = self._cache.get(key)
        if cached is not None:
            self._hits += 1
            return cached
        self._misses += 1
        if self._panel is not None:
            expansion = expand_phases_packed(self._panel, np.asarray(key, dtype=np.intp))
        else:
            expansion = expand_phases(self._genotypes[:, np.asarray(key, dtype=np.intp)])
        self._cache.put(key, expansion)
        return expansion


def expansion_log_likelihood(expansion: PhaseExpansion, frequencies: np.ndarray) -> float:
    """Observed-data log-likelihood of ``frequencies`` under an expansion."""
    expansion = expansion.sorted_by_class()
    if expansion.n_classes == 0:
        return 0.0
    pair_prob = (
        expansion.pair_multiplicity
        * frequencies[expansion.pair_a]
        * frequencies[expansion.pair_b]
    )
    class_prob = expansion.class_reduce(pair_prob)
    return float(np.sum(expansion.class_counts * np.log(np.maximum(class_prob, _LOG_FLOOR))))


# backwards-compatible alias (the seed exposed the helper under this name)
_log_likelihood = expansion_log_likelihood


def estimate_haplotype_frequencies(
    genotypes: np.ndarray,
    *,
    initial_frequencies: np.ndarray | None = None,
    max_iter: int = 200,
    tol: float = 1e-8,
) -> EMResult:
    """Estimate multi-locus haplotype frequencies from unphased genotypes.

    Parameters
    ----------
    genotypes:
        ``(n_individuals, n_loci)`` unphased genotype codes.
    initial_frequencies:
        Optional starting point on the ``2**n_loci`` simplex; defaults to the
        uniform distribution.
    max_iter:
        Maximum number of EM iterations.
    tol:
        Convergence threshold on the log-likelihood improvement.

    Returns
    -------
    EMResult
    """
    expansion = expand_phases(genotypes)
    return estimate_from_expansion(
        expansion, initial_frequencies=initial_frequencies, max_iter=max_iter, tol=tol
    )


def estimate_from_expansion(
    expansion: PhaseExpansion,
    *,
    initial_frequencies: np.ndarray | None = None,
    max_iter: int = 200,
    tol: float = 1e-8,
) -> EMResult:
    """Run the EM on a pre-computed :class:`PhaseExpansion`.

    Each iteration computes the pair-probability vector once and derives both
    the log-likelihood of the *current* frequencies and the E-step posterior
    from it; per-class totals use a contiguous segmented reduction and the
    M-step haplotype counts use ``np.bincount``.  The iteration schedule,
    convergence test and reported diagnostics are identical to the seed's
    scatter-add kernel (:mod:`repro.stats.em_reference`).
    """
    n_states = n_haplotype_states(expansion.n_loci)
    if initial_frequencies is None:
        frequencies = np.full(n_states, 1.0 / n_states, dtype=np.float64)
    else:
        frequencies = np.asarray(initial_frequencies, dtype=np.float64).copy()
        if frequencies.shape != (n_states,):
            raise ValueError(f"initial_frequencies must have length {n_states}")
        if np.any(frequencies < 0):
            raise ValueError("initial_frequencies must be non-negative")
        total = frequencies.sum()
        if total <= 0:
            raise ValueError("initial_frequencies must not be all zero")
        frequencies /= total

    n_individuals = expansion.n_individuals
    if n_individuals == 0:
        return EMResult(
            frequencies=frequencies,
            log_likelihood=0.0,
            n_iterations=0,
            converged=True,
            n_individuals=0,
            n_loci=expansion.n_loci,
        )

    expansion = expansion.sorted_by_class()
    pair_a = expansion.pair_a
    pair_b = expansion.pair_b
    pair_class = expansion.pair_class
    multiplicity = expansion.pair_multiplicity
    class_counts = expansion.class_counts.astype(np.float64)
    counts_per_pair = class_counts[pair_class]  # loop-invariant gather
    n_pairs = pair_a.shape[0]
    n_classes = expansion.n_classes
    n_chromosomes = 2.0 * n_individuals

    # preallocated per-iteration buffers: the pair counts are small enough
    # that ufunc dispatch and allocation dominate, so every step below writes
    # into a reused buffer (the arithmetic order matches the reference kernel
    # exactly: (multiplicity * f[a]) * f[b], posterior = pair_prob /
    # class_prob[class], weight = posterior * counts[class])
    pair_ab = np.concatenate([pair_a, pair_b])
    freq_ab = np.empty(2 * n_pairs, dtype=np.float64)
    pair_prob = np.empty(n_pairs, dtype=np.float64)
    class_per_pair = np.empty(n_pairs, dtype=np.float64)
    weight = np.empty(n_pairs, dtype=np.float64)
    log_class = np.empty(n_classes, dtype=np.float64)

    log_likelihood = 0.0
    previous_ll: float | None = None
    iteration = 0
    converged = False
    while True:
        # pair probabilities under the current frequencies, computed once and
        # shared by the likelihood and the E-step
        np.take(frequencies, pair_ab, out=freq_ab)
        np.multiply(multiplicity, freq_ab[:n_pairs], out=pair_prob)
        pair_prob *= freq_ab[n_pairs:]
        class_prob = expansion.class_reduce(pair_prob)
        np.maximum(class_prob, _LOG_FLOOR, out=class_prob)
        np.log(class_prob, out=log_class)
        log_class *= class_counts
        # sequential segment sum, not a dot product: bit-identical to the
        # per-problem segments of run_em_stacked (see _WHOLE_SEGMENT)
        log_likelihood = float(np.add.reduceat(log_class, _WHOLE_SEGMENT)[0])

        if previous_ll is not None and abs(log_likelihood - previous_ll) < tol:
            converged = True
            break
        if iteration >= max_iter:
            break
        previous_ll = log_likelihood

        # E-step: posterior probability of each compatible pair within its
        # class, weighted by the class population
        np.take(class_prob, pair_class, out=class_per_pair)
        np.divide(pair_prob, class_per_pair, out=weight)
        weight *= counts_per_pair

        # M-step: expected haplotype counts -> new frequencies
        hap_counts = np.bincount(pair_a, weights=weight, minlength=n_states)
        hap_counts += np.bincount(pair_b, weights=weight, minlength=n_states)
        frequencies = hap_counts / n_chromosomes
        iteration += 1

    return EMResult(
        frequencies=frequencies,
        log_likelihood=log_likelihood,
        n_iterations=iteration,
        converged=converged,
        n_individuals=n_individuals,
        n_loci=expansion.n_loci,
    )


# --------------------------------------------------------------------- #
# the generation-batched multi-problem kernel
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class StackedExpansion:
    """A batch of :class:`PhaseExpansion` problems packed into flat arrays.

    The GA's evaluation layers hand the kernel *batches* of independent EM
    problems (one per distinct candidate × status group per generation), each
    of which is tiny: below ~1k pairs the per-iteration numpy dispatch
    overhead dominates the arithmetic.  Stacking the problems — concatenated
    pair/class arrays with per-problem segment offsets, haplotype-state
    indices shifted so every problem owns a disjoint block of one flat
    frequency vector — lets :func:`run_em_stacked` drive **all** problems
    through one numpy dispatch per EM operation.

    The ragged layout is fully general: problems may differ in locus count
    (and therefore state-space size), class count, pair count and chromosome
    total.  Segment boundaries are carried as per-problem lengths; offsets
    are their cumulative sums.

    Attributes
    ----------
    n_loci, n_states, n_individuals:
        Per-problem metadata (``n_states[p] == 2**n_loci[p]``).
    classes_per_problem, pairs_per_problem:
        Per-problem segment lengths of the concatenated class/pair arrays.
    pairs_per_class:
        Pairs in each concatenated class (for segmented class reductions).
    class_counts:
        Concatenated per-class individual counts.
    pair_a, pair_b:
        Haplotype states of each candidate pair as *global* indices into the
        flat frequency vector (local state + the problem's state offset).
    pair_class:
        Global class index of each pair.
    pair_multiplicity:
        1.0 where ``pair_a == pair_b`` else 2.0.
    can_reduceat:
        Whether every non-empty problem supports contiguous segmented
        reductions (class-sorted, no empty class) — true for every expansion
        built by :func:`expand_phases` / :func:`concat_expansions`; the
        kernel falls back to ``np.bincount`` otherwise.
    """

    n_loci: np.ndarray
    n_states: np.ndarray
    n_individuals: np.ndarray
    classes_per_problem: np.ndarray
    pairs_per_problem: np.ndarray
    pairs_per_class: np.ndarray
    class_counts: np.ndarray
    pair_a: np.ndarray
    pair_b: np.ndarray
    pair_class: np.ndarray
    pair_multiplicity: np.ndarray
    can_reduceat: bool

    @property
    def n_problems(self) -> int:
        return self.n_loci.shape[0]

    @property
    def n_total_states(self) -> int:
        return int(self.n_states.sum())

    @property
    def n_total_pairs(self) -> int:
        return self.pair_a.shape[0]


def stack_expansions(expansions: Sequence[PhaseExpansion]) -> StackedExpansion:
    """Pack a batch of phase expansions into one :class:`StackedExpansion`.

    Problems keep their identity (nothing is merged — contrast with
    :func:`concat_expansions`, which pools two groups into *one* problem);
    empty problems (no complete individuals) are carried through and resolved
    immediately by :func:`run_em_stacked`, exactly like the scalar kernel.
    """
    if len(expansions) == 0:
        raise ValueError("at least one expansion is required")
    exps = [e.sorted_by_class() for e in expansions]
    n_loci = np.array([e.n_loci for e in exps], dtype=np.int64)
    n_states = np.array([n_haplotype_states(e.n_loci) for e in exps], dtype=np.int64)
    n_individuals = np.array([e.n_individuals for e in exps], dtype=np.int64)
    classes_pp = np.array([e.n_classes for e in exps], dtype=np.int64)
    pairs_pp = np.array([e.n_pairs for e in exps], dtype=np.int64)
    state_offsets = np.concatenate([[0], np.cumsum(n_states)])
    class_offsets = np.concatenate([[0], np.cumsum(classes_pp)])
    pairs_per_class = np.concatenate(
        [np.diff(np.append(e.class_starts, e.n_pairs)) for e in exps]
    )
    return StackedExpansion(
        n_loci=n_loci,
        n_states=n_states,
        n_individuals=n_individuals,
        classes_per_problem=classes_pp,
        pairs_per_problem=pairs_pp,
        pairs_per_class=pairs_per_class.astype(np.int64),
        class_counts=np.concatenate([e.class_counts for e in exps]),
        pair_a=np.concatenate(
            [e.pair_a + state_offsets[i] for i, e in enumerate(exps)]
        ),
        pair_b=np.concatenate(
            [e.pair_b + state_offsets[i] for i, e in enumerate(exps)]
        ),
        pair_class=np.concatenate(
            [e.pair_class + class_offsets[i] for i, e in enumerate(exps)]
        ),
        pair_multiplicity=np.concatenate([e.pair_multiplicity for e in exps]),
        can_reduceat=all(e._can_reduceat for e in exps if e.n_pairs > 0),
    )


def _stacked_initial_frequencies(
    stacked: StackedExpansion,
    initial_frequencies: "Sequence[np.ndarray | None] | None",
) -> np.ndarray:
    """The flat per-problem starting frequencies, validated like the scalar kernel."""
    total_states = stacked.n_total_states
    frequencies = np.empty(total_states, dtype=np.float64)
    state_offsets = np.concatenate([[0], np.cumsum(stacked.n_states)])
    if initial_frequencies is not None and len(initial_frequencies) != stacked.n_problems:
        raise ValueError(
            f"initial_frequencies must provide one entry per problem "
            f"({stacked.n_problems}), got {len(initial_frequencies)}"
        )
    for p in range(stacked.n_problems):
        n_states = int(stacked.n_states[p])
        segment = frequencies[state_offsets[p]: state_offsets[p + 1]]
        initial = None if initial_frequencies is None else initial_frequencies[p]
        if initial is None:
            segment[:] = 1.0 / n_states
            continue
        initial = np.asarray(initial, dtype=np.float64)
        if initial.shape != (n_states,):
            raise ValueError(f"initial_frequencies must have length {n_states}")
        if np.any(initial < 0):
            raise ValueError("initial_frequencies must be non-negative")
        total = initial.sum()
        if total <= 0:
            raise ValueError("initial_frequencies must not be all zero")
        segment[:] = initial / total
    return frequencies


def run_em_stacked(
    stacked: StackedExpansion,
    *,
    initial_frequencies: "Sequence[np.ndarray | None] | None" = None,
    max_iter: int = 200,
    tol: float = 1e-8,
) -> list[EMResult]:
    """Run the EM on every problem of a stacked batch, one dispatch per op.

    Per iteration the kernel performs the *same arithmetic per problem* as
    :func:`estimate_from_expansion` — pair-probability gather, segmented
    class reduction, floored log-likelihood, posterior E-step, ``bincount``
    M-step — but over the concatenated arrays, so the whole batch pays one
    numpy dispatch per operation instead of one per problem.  Every segmented
    operation it uses is bit-stable under concatenation (segment sums depend
    only on the segment's own values), so each problem reproduces the scalar
    kernel's trajectory **exactly**: identical per-problem iteration counts,
    convergence flags, log-likelihoods and frequencies, independent of how
    the batch is composed.

    Problems converge at different iterations; converged problems are
    compacted out of the active arrays, so late iterations only pay for the
    stragglers.

    Parameters
    ----------
    stacked:
        The packed batch (see :func:`stack_expansions`).
    initial_frequencies:
        Optional per-problem warm starts (``None`` entries mean uniform).
    max_iter, tol:
        EM control parameters, shared by every problem in the batch.

    Returns
    -------
    list[EMResult] in problem order.
    """
    n_problems = stacked.n_problems
    frequencies = _stacked_initial_frequencies(stacked, initial_frequencies)
    results: list[EMResult | None] = [None] * n_problems

    # --- active-subset state (mutated by compaction) ------------------- #
    active = np.arange(n_problems)
    states_pp = stacked.n_states.copy()
    classes_pp = stacked.classes_per_problem.copy()
    pairs_pp = stacked.pairs_per_problem.copy()
    pairs_pc = stacked.pairs_per_class.copy()
    class_counts = stacked.class_counts.astype(np.float64)
    pair_a = stacked.pair_a
    pair_b = stacked.pair_b
    pair_class = stacked.pair_class
    multiplicity = stacked.pair_multiplicity
    n_chromosomes = 2.0 * stacked.n_individuals.astype(np.float64)
    chrom_per_state = np.repeat(n_chromosomes, states_pp)
    counts_per_pair = class_counts[pair_class]
    prev_ll = np.zeros(n_problems, dtype=np.float64)
    state_offsets = np.concatenate([[0], np.cumsum(states_pp)])
    class_starts = np.concatenate([[0], np.cumsum(pairs_pc)[:-1]]).astype(np.intp)
    problem_class_starts = np.concatenate(
        [[0], np.cumsum(classes_pp)[:-1]]
    ).astype(np.intp)

    def finish(local: int, iteration: int, ll: float, converged: bool) -> None:
        p = int(active[local])
        segment = frequencies[state_offsets[local]: state_offsets[local + 1]]
        results[p] = EMResult(
            frequencies=segment.copy(),
            log_likelihood=ll,
            n_iterations=iteration,
            converged=converged,
            n_individuals=int(stacked.n_individuals[p]),
            n_loci=int(stacked.n_loci[p]),
        )

    def compact(keep: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Drop finished problems; returns (pair_keep, class_keep) masks."""
        nonlocal active, states_pp, classes_pp, pairs_pp, pairs_pc, class_counts
        nonlocal pair_a, pair_b, pair_class, multiplicity, counts_per_pair
        nonlocal n_chromosomes, chrom_per_state, frequencies, prev_ll
        nonlocal state_offsets, class_starts, problem_class_starts
        state_keep = np.repeat(keep, states_pp)
        class_keep = np.repeat(keep, classes_pp)
        pair_keep = np.repeat(keep, pairs_pp)
        state_map = np.cumsum(state_keep) - 1
        class_map = np.cumsum(class_keep) - 1
        pair_a = state_map[pair_a[pair_keep]]
        pair_b = state_map[pair_b[pair_keep]]
        pair_class = class_map[pair_class[pair_keep]]
        multiplicity = multiplicity[pair_keep]
        counts_per_pair = counts_per_pair[pair_keep]
        class_counts = class_counts[class_keep]
        pairs_pc = pairs_pc[class_keep]
        frequencies = frequencies[state_keep]
        chrom_per_state = chrom_per_state[state_keep]
        active = active[keep]
        states_pp = states_pp[keep]
        classes_pp = classes_pp[keep]
        pairs_pp = pairs_pp[keep]
        n_chromosomes = n_chromosomes[keep]
        prev_ll = prev_ll[keep]
        state_offsets = np.concatenate([[0], np.cumsum(states_pp)])
        class_starts = np.concatenate([[0], np.cumsum(pairs_pc)[:-1]]).astype(np.intp)
        problem_class_starts = np.concatenate(
            [[0], np.cumsum(classes_pp)[:-1]]
        ).astype(np.intp)
        return pair_keep, class_keep

    # problems with no complete individuals finish immediately (the scalar
    # kernel's early return: ll 0.0, zero iterations, converged)
    empty = stacked.n_individuals == 0
    if empty.any():
        for local in np.flatnonzero(empty):
            finish(int(local), 0, 0.0, True)
        compact(~empty)
    if active.shape[0] == 0:
        return results  # type: ignore[return-value]

    # Finished problems are compacted out *lazily*: compaction costs several
    # O(active) passes (masks, remaps, cumsums), so it only pays for itself
    # once the finished problems own a decent share of the pair work.  Until
    # then they simply keep iterating (their results were already recorded
    # from a copy; the extra iterations are wasted but cheap, and the floored
    # class probabilities keep the arithmetic NaN-free).
    done = np.zeros(active.shape[0], dtype=bool)
    n_total_states = int(states_pp.sum())
    total_pairs = int(pairs_pp.sum())
    iteration = 0
    while True:
        # pair probabilities under the current frequencies, shared by the
        # likelihood and the E-step — arithmetic order matches the scalar
        # kernel exactly: (multiplicity * f[a]) * f[b]
        pair_prob = multiplicity * frequencies[pair_a]
        pair_prob *= frequencies[pair_b]
        if stacked.can_reduceat:
            class_prob = np.add.reduceat(pair_prob, class_starts)
        else:
            class_prob = np.bincount(
                pair_class, weights=pair_prob, minlength=class_counts.shape[0]
            )
        np.maximum(class_prob, _LOG_FLOOR, out=class_prob)
        log_class = np.log(class_prob)
        log_class *= class_counts
        log_likelihood = np.add.reduceat(log_class, problem_class_starts)

        if iteration > 0:
            converged = np.abs(log_likelihood - prev_ll) < tol
        else:
            converged = np.zeros(active.shape[0], dtype=bool)
        if iteration >= max_iter:
            finished_now = ~done
        else:
            finished_now = converged & ~done

        if finished_now.any():
            for local in np.flatnonzero(finished_now):
                finish(
                    int(local),
                    iteration,
                    float(log_likelihood[local]),
                    bool(converged[local]),
                )
            done |= finished_now
            if done.all():
                break
            if 4 * int(pairs_pp[done].sum()) >= total_pairs:
                keep = ~done
                prev_ll = log_likelihood  # compact() subsets it via keep
                pair_keep, class_keep = compact(keep)
                pair_prob = pair_prob[pair_keep]
                class_prob = class_prob[class_keep]
                done = np.zeros(active.shape[0], dtype=bool)
                n_total_states = int(states_pp.sum())
                total_pairs = int(pairs_pp.sum())
            else:
                prev_ll = log_likelihood
        else:
            prev_ll = log_likelihood

        # E-step: posterior probability of each compatible pair within its
        # class, weighted by the class population
        weight = pair_prob / class_prob[pair_class]
        weight *= counts_per_pair

        # M-step: expected haplotype counts -> new frequencies
        hap_counts = np.bincount(pair_a, weights=weight, minlength=n_total_states)
        hap_counts += np.bincount(pair_b, weights=weight, minlength=n_total_states)
        frequencies = hap_counts / chrom_per_state
        iteration += 1

    return results  # type: ignore[return-value]
