"""The haplotype evaluation pipeline of the paper (Figure 3).

Starting from a set of candidate SNPs, the pipeline

1. runs EH-DIALL independently on the affected and on the unaffected
   individuals, obtaining the estimated haplotype distribution of each group;
2. concatenates the two distributions (as expected haplotype counts) into a
   2 × 2^L contingency table;
3. runs CLUMP on that table and returns the requested statistic — by default
   T1, the statistic the paper optimises.

The resulting scalar is the GA's fitness: the higher, the more the haplotype's
distribution differs between affected and unaffected people.

The evaluator counts every call (the paper reports the *number of
evaluations* as its main cost indicator, since each evaluation is expensive)
and can be wrapped in a cache (:mod:`repro.stats.cache`) or farmed out to
worker processes (:mod:`repro.parallel`).

Performance notes
-----------------
The evaluator keeps three layers of reuse, all keyed on the sorted SNP tuple
(the caches are on by default and result-preserving; disable with
``cache_size=0`` when timing raw evaluation cost, as the speedup experiments
do):

* **expansion reuse** — one :class:`~repro.stats.em.PhaseExpansionCache` per
  group, so re-evaluating a haplotype never repeats genotype slicing,
  ``np.unique`` or phase-pair enumeration; the pooled case+control expansion
  of the LRT path is built by *concatenating* the two group expansions
  (:func:`~repro.stats.em.concat_expansions`) instead of re-expanding the
  pooled genotype matrix;
* **EM warm starts** (opt-in) — ``warm_start=True`` seeds the pooled EM from
  the count-weighted mix of the two group solutions and ``warm_start="full"``
  additionally seeds re-runs of evicted haplotypes from their remembered
  final frequencies, converging in a handful of iterations.  Both are *off*
  by default: a warm-started EM can stall in a different (worse) optimum
  than the cold uniform start, shifting the LRT statistic by a few percent,
  so the default preserves the seed pipeline's exact statistical behaviour;
* **result reuse** — a bounded LRU of finished :class:`EHDiallResult` per
  group makes re-evaluation (elitism, duplicate offspring, the
  affected/unaffected/pooled triple of the LRT) return bit-identical results
  without re-running the EM.

``n_evaluations`` still counts every fitness request, preserving the paper's
cost metric; ``n_em_runs`` counts how many EM fits were actually performed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..genetics.alleles import all_haplotype_labels
from ..lru import LRUCache
from ..genetics.dataset import GenotypeDataset
from .clump import ClumpResult, clump_statistics, monte_carlo_p_values
from .contingency import ContingencyTable
from .ehdiall import EHDiallResult, ehdiall_batch, ehdiall_from_expansion
from .em import (
    STACK_MAX_PAIRS_PER_PROBLEM,
    STACK_MAX_TOTAL_PAIRS,
    PhaseExpansion,
    PhaseExpansionCache,
    concat_expansions,
    expand_phases,
    expand_phases_packed,
)

__all__ = ["EvaluationRecord", "HaplotypeEvaluator", "FitnessFunction"]

#: Names of the fitness criteria: the four CLUMP statistics the paper uses,
#: plus the case/control haplotype-frequency likelihood-ratio test ("lrt"),
#: included as the alternative objective function the paper's conclusion
#: announces ("different objective functions are going to be used in order to
#: compare them").
_VALID_STATISTICS = ("t1", "t2", "t3", "t4", "lrt")

#: Group keys of the three EH-DIALL runs an evaluation can need.
_GROUPS = ("affected", "unaffected", "pooled")

#: Weight of the uniform distribution mixed into warm-start frequencies, so a
#: state estimated at exactly zero by both groups is not locked out of the
#: pooled EM (EM updates are multiplicative in the current frequency).
_WARM_START_UNIFORM_WEIGHT = 1e-3


@dataclass(frozen=True)
class EvaluationRecord:
    """Full trace of one haplotype evaluation.

    Attributes
    ----------
    snps:
        The evaluated SNP indices (sorted).
    fitness:
        The scalar fitness (value of the selected CLUMP statistic).
    clump:
        All four CLUMP statistics.
    table:
        The 2 × 2^L contingency table fed to CLUMP.
    affected, unaffected:
        The EH-DIALL results for each group.
    elapsed_seconds:
        Wall-clock time of the evaluation.
    """

    snps: tuple[int, ...]
    fitness: float
    clump: ClumpResult
    table: ContingencyTable
    affected: EHDiallResult
    unaffected: EHDiallResult
    elapsed_seconds: float

    @property
    def size(self) -> int:
        return len(self.snps)


class HaplotypeEvaluator:
    """Evaluate candidate haplotypes against a case/control dataset.

    Parameters
    ----------
    dataset:
        Case/control genotypes.  Individuals with unknown status are ignored.
    statistic:
        Which CLUMP statistic to return as the fitness (default ``"t1"``).
    em_max_iter, em_tol:
        EM control parameters forwarded to EH-DIALL.
    clump_min_expected:
        Pooling threshold for the T2 statistic.
    cache_size:
        Bound on the per-group expansion and EH-DIALL-result LRU caches
        (``0`` disables them, ``None`` means unbounded).  Default 256.
    warm_start:
        ``False`` (default) runs every EM from the uniform start, exactly as
        the seed pipeline did.  ``True`` seeds the pooled EM of the LRT path
        from the count-weighted mix of the two group solutions —
        deterministic (the mix depends only on the SNP set) and much faster,
        but the EM may then stall in a *different* local optimum, shifting
        the LRT statistic by a few percent, which is why it is opt-in.
        ``"full"`` additionally seeds re-runs of haplotypes evicted from the
        result cache from their remembered final frequencies (kept in an LRU
        eight times the ``cache_size``); that converges in a handful of
        iterations but also makes a re-evaluation's result depend on the
        request history.

    Notes
    -----
    The evaluator is picklable, so it can be shipped once to each worker
    process of the parallel master/slave evaluator (internal caches are
    dropped on pickling and rebuilt per process).
    """

    def __init__(
        self,
        dataset: GenotypeDataset,
        *,
        statistic: str = "t1",
        em_max_iter: int = 200,
        em_tol: float = 1e-8,
        clump_min_expected: float = 5.0,
        cache_size: int | None = 256,
        warm_start: bool | str = False,
    ) -> None:
        statistic = statistic.lower()
        if statistic not in _VALID_STATISTICS:
            raise ValueError(f"statistic must be one of {_VALID_STATISTICS}")
        if dataset.n_affected == 0 or dataset.n_unaffected == 0:
            raise ValueError("the dataset must contain both affected and unaffected individuals")
        if cache_size is not None and cache_size < 0:
            raise ValueError("cache_size must be non-negative or None")
        if warm_start not in (True, False, "full"):
            raise ValueError("warm_start must be True, False or 'full'")
        self._dataset = dataset
        self._affected = dataset.affected()
        self._unaffected = dataset.unaffected()
        self._statistic = statistic
        self._em_max_iter = int(em_max_iter)
        self._em_tol = float(em_tol)
        self._clump_min_expected = float(clump_min_expected)
        self._cache_size = cache_size
        self._warm_start = warm_start
        self._n_evaluations = 0
        self._n_em_runs = 0
        self._n_stacked_em = 0
        self._n_stacked_problems = 0
        self._build_caches()

    def _build_caches(self) -> None:
        size = self._cache_size
        enabled = size is None or size > 0
        self._expansion_caches: dict[str, PhaseExpansionCache] | None = None
        if enabled:
            # packed-aware group panels: when a group dataset carries a 2-bit
            # panel, cache misses count classes straight from packed columns
            # (expand_phases_packed) instead of slicing the byte matrix
            self._expansion_caches = {
                "affected": PhaseExpansionCache(
                    self._affected.packed
                    if self._affected.packed is not None
                    else self._affected.genotypes,
                    max_size=size,
                ),
                "unaffected": PhaseExpansionCache(
                    self._unaffected.packed
                    if self._unaffected.packed is not None
                    else self._unaffected.genotypes,
                    max_size=size,
                ),
            }
        self._result_caches: dict[str, LRUCache] | None = (
            {group: LRUCache(size) for group in _GROUPS} if enabled else None
        )
        warm_size = None if size is None else 8 * size
        self._warm_caches: dict[str, LRUCache] | None = (
            {group: LRUCache(warm_size) for group in _GROUPS}
            if enabled and self._warm_start == "full"
            else None
        )

    # ------------------------------------------------------------------ #
    @property
    def dataset(self) -> GenotypeDataset:
        return self._dataset

    @property
    def statistic(self) -> str:
        """Name of the CLUMP statistic used as fitness."""
        return self._statistic

    @property
    def em_max_iter(self) -> int:
        return self._em_max_iter

    @property
    def em_tol(self) -> float:
        return self._em_tol

    @property
    def clump_min_expected(self) -> float:
        return self._clump_min_expected

    @property
    def cache_size(self) -> int | None:
        """Bound of the per-group reuse caches (see the constructor)."""
        return self._cache_size

    @property
    def warm_start(self) -> bool | str:
        return self._warm_start

    @property
    def n_snps(self) -> int:
        return self._dataset.n_snps

    @property
    def n_evaluations(self) -> int:
        """Number of fitness evaluations performed by this evaluator instance."""
        return self._n_evaluations

    @property
    def n_em_runs(self) -> int:
        """Number of EH-DIALL EM fits actually performed (cache misses)."""
        return self._n_em_runs

    @property
    def n_stacked_em(self) -> int:
        """Number of multi-problem stacked EM kernel calls performed."""
        return self._n_stacked_em

    @property
    def n_stacked_problems(self) -> int:
        """Total EM problems answered by stacked kernel calls.

        ``n_stacked_problems / n_stacked_em`` is the mean stacked batch
        occupancy — the quantity the generation-batched kernel exists to
        maximise.
        """
        return self._n_stacked_problems

    def reset_counter(self) -> None:
        """Reset the evaluation counter to zero."""
        self._n_evaluations = 0
        self._n_em_runs = 0
        self._n_stacked_em = 0
        self._n_stacked_problems = 0

    def clear_caches(self) -> None:
        """Drop every internal reuse cache (expansions, results, warm starts)."""
        self._build_caches()

    # ------------------------------------------------------------------ #
    def _validate_snps(self, snps: Sequence[int] | np.ndarray) -> tuple[int, ...]:
        snps = tuple(int(s) for s in snps)
        if len(snps) == 0:
            raise ValueError("a haplotype must contain at least one SNP")
        if len(set(snps)) != len(snps):
            raise ValueError(f"duplicate SNPs in haplotype {snps}")
        if min(snps) < 0 or max(snps) >= self.n_snps:
            raise ValueError(f"SNP index out of range [0, {self.n_snps}) in {snps}")
        return tuple(sorted(snps))

    # ------------------------------------------------------------------ #
    # EH-DIALL plumbing: cached expansions, warm-started EM, cached results
    # ------------------------------------------------------------------ #
    def _group_expansion(self, group: str, snps: tuple[int, ...]) -> PhaseExpansion:
        if self._expansion_caches is not None:
            # snps is the normalised sorted tuple from _validate_snps; the
            # cache can use it as-is instead of re-sorting per lookup
            return self._expansion_caches[group].get(snps, presorted=True)
        source = self._affected if group == "affected" else self._unaffected
        if source.packed is not None:
            return expand_phases_packed(source.packed, np.asarray(snps, dtype=np.intp))
        return expand_phases(source.genotypes_at(np.asarray(snps, dtype=np.intp)))

    def _warm_frequencies(self, group: str, snps: tuple[int, ...]) -> np.ndarray | None:
        if self._warm_caches is None:
            return None
        return self._warm_caches[group].get(snps)

    def _remember(self, group: str, snps: tuple[int, ...], result: EHDiallResult) -> None:
        if self._result_caches is not None:
            self._result_caches[group].put(snps, result)
        if self._warm_caches is not None:
            self._warm_caches[group].put(snps, result.em.frequencies)

    @staticmethod
    def _blend_with_uniform(frequencies: np.ndarray) -> np.ndarray:
        uniform = 1.0 / frequencies.shape[0]
        return (
            (1.0 - _WARM_START_UNIFORM_WEIGHT) * frequencies
            + _WARM_START_UNIFORM_WEIGHT * uniform
        )

    def _pooled_warm_start(
        self, snps: tuple[int, ...], affected: EHDiallResult, unaffected: EHDiallResult
    ) -> np.ndarray | None:
        if self._warm_start is False:
            return None
        remembered = self._warm_frequencies("pooled", snps)
        if remembered is not None:
            return self._blend_with_uniform(remembered)
        total = affected.n_chromosomes + unaffected.n_chromosomes
        if total == 0:
            return None
        mix = (
            affected.n_chromosomes * affected.em.frequencies
            + unaffected.n_chromosomes * unaffected.em.frequencies
        ) / total
        return self._blend_with_uniform(mix)

    def _group_ehdiall(self, group: str, snps: tuple[int, ...]) -> EHDiallResult:
        """EH-DIALL for one of the two status groups, with full reuse."""
        if self._result_caches is not None:
            cached = self._result_caches[group].get(snps)
            if cached is not None:
                return cached
        expansion = self._group_expansion(group, snps)
        initial = self._warm_frequencies(group, snps)
        if initial is not None:
            initial = self._blend_with_uniform(initial)
        result = ehdiall_from_expansion(
            expansion,
            max_iter=self._em_max_iter,
            tol=self._em_tol,
            initial_frequencies=initial,
        )
        self._n_em_runs += 1
        self._remember(group, snps, result)
        return result

    def _pooled_ehdiall(
        self, snps: tuple[int, ...], affected: EHDiallResult, unaffected: EHDiallResult
    ) -> EHDiallResult:
        """Pooled case+control EH-DIALL built from the group expansions."""
        if self._result_caches is not None:
            cached = self._result_caches["pooled"].get(snps)
            if cached is not None:
                return cached
        expansion = concat_expansions(
            self._group_expansion("affected", snps),
            self._group_expansion("unaffected", snps),
        )
        initial = self._pooled_warm_start(snps, affected, unaffected)
        result = ehdiall_from_expansion(
            expansion,
            max_iter=self._em_max_iter,
            tol=self._em_tol,
            initial_frequencies=initial,
        )
        self._n_em_runs += 1
        self._remember("pooled", snps, result)
        return result

    # ------------------------------------------------------------------ #
    def build_table(self, snps: Sequence[int] | np.ndarray) -> ContingencyTable:
        """Build the CLUMP input table for a haplotype without computing the fitness."""
        snps = self._validate_snps(snps)
        affected = self._group_ehdiall("affected", snps)
        unaffected = self._group_ehdiall("unaffected", snps)
        return self._table_from_results(snps, affected, unaffected)

    @staticmethod
    def _table_from_results(
        snps: tuple[int, ...], affected: EHDiallResult, unaffected: EHDiallResult
    ) -> ContingencyTable:
        labels = all_haplotype_labels(len(snps))
        return ContingencyTable.from_rows(
            affected.expected_haplotype_counts(),
            unaffected.expected_haplotype_counts(),
            column_labels=labels,
        )

    def case_control_lrt(self, snps: Sequence[int] | np.ndarray) -> float:
        """Likelihood-ratio chi-square for a case/control haplotype-frequency difference.

        Fits the haplotype-frequency EM separately in the affected and
        unaffected groups and once on the pooled sample, and returns
        ``2 * (llik_affected + llik_unaffected - llik_pooled)``.  This is the
        alternative objective function announced in the paper's conclusion; it
        is available both as a standalone diagnostic and as the fitness when
        the evaluator is built with ``statistic="lrt"``.

        The pooled fit reuses the group expansions (concatenated class
        tables); with ``warm_start=True`` it is additionally seeded from the
        count-weighted mix of the two group solutions.
        """
        snps = self._validate_snps(snps)
        affected = self._group_ehdiall("affected", snps)
        unaffected = self._group_ehdiall("unaffected", snps)
        return self._lrt_from_results(snps, affected, unaffected)

    def _lrt_from_results(
        self, snps: tuple[int, ...], affected: EHDiallResult, unaffected: EHDiallResult
    ) -> float:
        pooled = self._pooled_ehdiall(snps, affected, unaffected)
        statistic = 2.0 * (
            affected.h1_log_likelihood
            + unaffected.h1_log_likelihood
            - pooled.h1_log_likelihood
        )
        return float(max(statistic, 0.0))

    # ------------------------------------------------------------------ #
    def evaluate_detailed(self, snps: Sequence[int] | np.ndarray) -> EvaluationRecord:
        """Run the full Figure-3 pipeline and return every intermediate result."""
        start = time.perf_counter()
        snps = self._validate_snps(snps)
        affected = self._group_ehdiall("affected", snps)
        unaffected = self._group_ehdiall("unaffected", snps)
        table = self._table_from_results(snps, affected, unaffected)
        clump = clump_statistics(table, min_expected=self._clump_min_expected)
        if self._statistic == "lrt":
            fitness = self._lrt_from_results(snps, affected, unaffected)
        else:
            fitness = clump.statistic(self._statistic)
        elapsed = time.perf_counter() - start
        self._n_evaluations += 1
        return EvaluationRecord(
            snps=snps,
            fitness=fitness,
            clump=clump,
            table=table,
            affected=affected,
            unaffected=unaffected,
            elapsed_seconds=elapsed,
        )

    def evaluate(self, snps: Sequence[int] | np.ndarray) -> float:
        """Scalar fitness of a haplotype (the selected CLUMP statistic)."""
        return self.evaluate_detailed(snps).fitness

    def __call__(self, snps: Sequence[int] | np.ndarray) -> float:
        return self.evaluate(snps)

    # ------------------------------------------------------------------ #
    # generation-batched evaluation: one stacked EM kernel call per wave
    # ------------------------------------------------------------------ #
    def _run_problem_wave(
        self,
        wave: list[tuple[str, int, tuple[int, ...]]],
        resolved: dict[tuple[str, int], EHDiallResult],
    ) -> None:
        """Fit the EM problems of one wave, stacking the dispatch-bound ones.

        ``wave`` holds ``(group, slot, key)`` problems whose expansions and
        warm starts are all derivable *now* (group problems always are; pooled
        problems join a later wave when their warm start needs the group
        results).  Problems small enough to be dispatch-bound are packed into
        stacked kernel calls (split at :data:`STACK_MAX_TOTAL_PAIRS` summed
        pairs); larger ones run the scalar kernel, which is compute-bound and
        gains nothing from stacking.  Either path produces bit-identical
        results — the split is purely a throughput decision.
        """
        expansions: list[PhaseExpansion] = []
        initials: list[np.ndarray | None] = []
        for group, slot, key in wave:
            if group == "pooled":
                expansion = concat_expansions(
                    self._group_expansion("affected", key),
                    self._group_expansion("unaffected", key),
                )
                if self._warm_start is False:
                    # cold pooled EMs join the group problems' wave, before
                    # the group results exist — which is fine, their warm
                    # start is always None
                    initial = None
                else:
                    initial = self._pooled_warm_start(
                        key,
                        resolved[("affected", slot)],
                        resolved[("unaffected", slot)],
                    )
            else:
                expansion = self._group_expansion(group, key)
                initial = self._warm_frequencies(group, key)
                if initial is not None:
                    initial = self._blend_with_uniform(initial)
            expansions.append(expansion)
            initials.append(initial)

        # partition into stacked chunks and scalar stragglers
        stack: list[int] = []
        stack_pairs = 0
        chunks: list[list[int]] = []
        scalars: list[int] = []
        for index in range(len(wave)):
            n_pairs = expansions[index].n_pairs
            if n_pairs > STACK_MAX_PAIRS_PER_PROBLEM:
                scalars.append(index)
                continue
            if stack and stack_pairs + n_pairs > STACK_MAX_TOTAL_PAIRS:
                chunks.append(stack)
                stack, stack_pairs = [], 0
            stack.append(index)
            stack_pairs += n_pairs
        if stack:
            chunks.append(stack)

        for chunk in chunks:
            if len(chunk) == 1:
                scalars.append(chunk[0])
                continue
            batch_results = ehdiall_batch(
                [expansions[i] for i in chunk],
                max_iter=self._em_max_iter,
                tol=self._em_tol,
                initial_frequencies=[initials[i] for i in chunk],
            )
            self._n_em_runs += len(chunk)
            self._n_stacked_em += 1
            self._n_stacked_problems += len(chunk)
            for index, result in zip(chunk, batch_results):
                group, slot, key = wave[index]
                resolved[(group, slot)] = result
                self._remember(group, key, result)
        for index in scalars:
            group, slot, key = wave[index]
            result = ehdiall_from_expansion(
                expansions[index],
                max_iter=self._em_max_iter,
                tol=self._em_tol,
                initial_frequencies=initials[index],
            )
            self._n_em_runs += 1
            resolved[(group, slot)] = result
            self._remember(group, key, result)

    def evaluate_many(
        self, batch: Sequence[Sequence[int] | np.ndarray]
    ) -> list[float]:
        """Fitnesses of a whole batch of haplotypes through the stacked EM kernel.

        Semantically identical to ``[self.evaluate(snps) for snps in batch]``
        — same per-candidate results (bit-identical: the stacked kernel
        reproduces the scalar kernel's arithmetic exactly, so the batch
        composition never changes a value), same cache population, same
        ``n_evaluations``/``n_em_runs`` accounting — but the EM fits of the
        whole batch are packed into a handful of stacked kernel calls instead
        of one Python-level EM loop per candidate, which is the difference
        between dispatch-bound and compute-bound below ~1k phase pairs.

        With reuse caches enabled, duplicate candidates within the batch are
        fitted once (they would have been answered by the result cache in the
        sequential loop anyway); with caches disabled (``cache_size=0``) each
        request is fitted independently, exactly like the sequential loop.
        The only divergence from the sequential loop is cache *recency* order
        under ``warm_start="full"`` with overflowing caches, where results
        already depend on request history.
        """
        keys = [self._validate_snps(snps) for snps in batch]
        if not keys:
            return []
        caches_enabled = self._result_caches is not None
        # one evaluation slot per distinct candidate (per request when the
        # reuse caches are off, mirroring the sequential loop's re-fits)
        if caches_enabled:
            slot_keys = list(dict.fromkeys(keys))
            slot_of = {key: slot for slot, key in enumerate(slot_keys)}
        else:
            slot_keys = list(keys)
            slot_of = None
        need_pooled = self._statistic == "lrt"

        resolved: dict[tuple[str, int], EHDiallResult] = {}
        group_wave: list[tuple[str, int, tuple[int, ...]]] = []
        for slot, key in enumerate(slot_keys):
            for group in ("affected", "unaffected"):
                cached = (
                    self._result_caches[group].get(key) if caches_enabled else None
                )
                if cached is not None:
                    resolved[(group, slot)] = cached
                else:
                    group_wave.append((group, slot, key))
        pooled_wave: list[tuple[str, int, tuple[int, ...]]] = []
        if need_pooled:
            for slot, key in enumerate(slot_keys):
                cached = (
                    self._result_caches["pooled"].get(key) if caches_enabled else None
                )
                if cached is not None:
                    resolved[("pooled", slot)] = cached
                else:
                    pooled_wave.append(("pooled", slot, key))

        if pooled_wave and self._warm_start is False:
            # no warm starts: pooled EMs start uniform, so they can join the
            # group problems in one stacked wave
            self._run_problem_wave(group_wave + pooled_wave, resolved)
        else:
            if group_wave:
                self._run_problem_wave(group_wave, resolved)
            if pooled_wave:
                # warm-started pooled EMs are seeded from the group results,
                # so they form a second wave (exactly the scalar ordering)
                self._run_problem_wave(pooled_wave, resolved)

        fitnesses: list[float] = []
        slot_fitness: dict[int, float] = {}
        for position, key in enumerate(keys):
            slot = slot_of[key] if slot_of is not None else position
            if slot in slot_fitness:
                fitnesses.append(slot_fitness[slot])
                continue
            affected = resolved[("affected", slot)]
            unaffected = resolved[("unaffected", slot)]
            if need_pooled:
                pooled = resolved[("pooled", slot)]
                statistic = 2.0 * (
                    affected.h1_log_likelihood
                    + unaffected.h1_log_likelihood
                    - pooled.h1_log_likelihood
                )
                fitness = float(max(statistic, 0.0))
            else:
                table = self._table_from_results(key, affected, unaffected)
                clump = clump_statistics(table, min_expected=self._clump_min_expected)
                fitness = float(clump.statistic(self._statistic))
            slot_fitness[slot] = fitness
            fitnesses.append(fitness)
        self._n_evaluations += len(keys)
        return fitnesses

    # ------------------------------------------------------------------ #
    def significance(
        self,
        snps: Sequence[int] | np.ndarray,
        *,
        n_simulations: int = 1000,
        seed: int | None = 0,
    ) -> dict[str, float]:
        """Monte-Carlo p-values of the haplotype's CLUMP statistics.

        The GA only needs the raw statistic, but biologists interpreting a
        reported haplotype need its empirical significance, which the original
        CLUMP program obtains by simulation.
        """
        table = self.build_table(snps)
        return monte_carlo_p_values(table, n_simulations=n_simulations,
                                    min_expected=self._clump_min_expected, seed=seed)

    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict:
        # drop the (potentially large) reuse caches: each worker process
        # rebuilds its own, and the pickled payload stays small
        state = self.__dict__.copy()
        state["_expansion_caches"] = None
        state["_result_caches"] = None
        state["_warm_caches"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._build_caches()


#: Type alias for anything usable as a fitness function by the GA and the
#: baselines: a callable mapping a SNP index sequence to a float.
FitnessFunction = HaplotypeEvaluator
