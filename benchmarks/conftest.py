"""Benchmark conftest: a thin shim over :mod:`bench_fixtures`.

The actual fixtures live in ``bench_fixtures.py`` so that they are importable
under a name that cannot collide with ``tests/conftest.py`` (``pytest``
imports every collected ``conftest.py`` as a module literally named
``conftest``; two of them in one run shadow each other).  The repo-root
``pyproject.toml`` restricts default collection to ``tests/`` — run the
benchmarks explicitly with ``python -m pytest benchmarks``.
"""

from __future__ import annotations

import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
if _HERE not in sys.path:  # pragma: no cover - environment dependent
    sys.path.insert(0, _HERE)

from bench_fixtures import (  # noqa: E402,F401 - re-exported fixtures
    bench_scale,
    evaluator,
    ga_config,
    n_runs,
    scale,
    study,
)
