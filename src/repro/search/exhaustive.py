"""Exhaustive enumeration of haplotypes of a given size.

The paper enumerates all haplotypes of sizes 2-4 on the 51-SNP dataset to
study the structure of the problem (Section 3) and to know the exact optima
against which the GA's results are compared (the "Dev." column of Table 2).
Enumeration is only feasible for small sizes — which is precisely Table 1's
point — so :func:`enumerate_best` also accepts a restriction to a subset of
SNPs for landscape studies on reduced panels.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from ..genetics.constraints import HaplotypeConstraints
from ..parallel.base import FitnessCallable, SnpSet

__all__ = ["ScoredHaplotype", "enumerate_haplotypes", "evaluate_all", "enumerate_best"]


@dataclass(frozen=True)
class ScoredHaplotype:
    """A haplotype together with its fitness."""

    snps: tuple[int, ...]
    fitness: float

    @property
    def size(self) -> int:
        return len(self.snps)


def enumerate_haplotypes(
    n_snps: int,
    size: int,
    *,
    constraints: HaplotypeConstraints | None = None,
    snp_subset: Sequence[int] | None = None,
) -> Iterator[tuple[int, ...]]:
    """Yield every (constraint-satisfying) haplotype of the given size.

    Parameters
    ----------
    n_snps:
        Panel size.
    size:
        Haplotype size to enumerate.
    constraints:
        Optional validity constraints; infeasible combinations are skipped.
    snp_subset:
        Optional subset of SNP indices to enumerate within (landscape studies
        on reduced panels).
    """
    if size < 1:
        raise ValueError("size must be positive")
    pool: Iterable[int] = range(n_snps) if snp_subset is None else sorted(
        {int(s) for s in snp_subset}
    )
    pool = [s for s in pool if 0 <= s < n_snps]
    for combo in combinations(pool, size):
        if constraints is None or constraints.is_valid(combo):
            yield combo


def evaluate_all(
    fitness: FitnessCallable,
    n_snps: int,
    size: int,
    *,
    constraints: HaplotypeConstraints | None = None,
    snp_subset: Sequence[int] | None = None,
) -> list[ScoredHaplotype]:
    """Evaluate every haplotype of the given size and return them all, scored."""
    return [
        ScoredHaplotype(snps=combo, fitness=float(fitness(combo)))
        for combo in enumerate_haplotypes(
            n_snps, size, constraints=constraints, snp_subset=snp_subset
        )
    ]


def enumerate_best(
    fitness: FitnessCallable,
    n_snps: int,
    size: int,
    *,
    constraints: HaplotypeConstraints | None = None,
    snp_subset: Sequence[int] | None = None,
    top_k: int = 1,
) -> list[ScoredHaplotype]:
    """The ``top_k`` best haplotypes of the given size, by exhaustive search.

    Unlike :func:`evaluate_all` this keeps only the current top-``k`` in
    memory, so it can sweep large slices without storing every score.
    """
    if top_k < 1:
        raise ValueError("top_k must be positive")
    best: list[ScoredHaplotype] = []
    for combo in enumerate_haplotypes(
        n_snps, size, constraints=constraints, snp_subset=snp_subset
    ):
        scored = ScoredHaplotype(snps=combo, fitness=float(fitness(combo)))
        if len(best) < top_k:
            best.append(scored)
            best.sort(key=lambda s: s.fitness, reverse=True)
        elif scored.fitness > best[-1].fitness:
            best[-1] = scored
            best.sort(key=lambda s: s.fitness, reverse=True)
    return best
