"""Genomics substrate: datasets, allele/genotype coding, LD, simulation, I/O.

This package provides every data-facing component the paper's pipeline needs:
the case/control genotype container (:class:`GenotypeDataset`), allele and
genotype frequency estimation, pairwise linkage-disequilibrium measures, the
two haplotype-validity constraints of Section 2.3, a forward simulator with a
planted causal haplotype (the documented substitute for the proprietary Lille
dataset), and readers/writers for the paper's three-table study layout as
well as CSV, PED and HapMap-style files.
"""

from .alleles import (
    ALLELE_1,
    ALLELE_2,
    GENOTYPE_HET,
    GENOTYPE_HOM_1,
    GENOTYPE_HOM_2,
    GENOTYPE_MISSING,
    STATUS_AFFECTED,
    STATUS_UNAFFECTED,
    STATUS_UNKNOWN,
    all_haplotype_labels,
    alleles_to_haplotype_index,
    haplotype_index_to_alleles,
    haplotype_label,
    n_haplotype_states,
    parse_haplotype_label,
)
from .constraints import HaplotypeConstraints, build_constraints
from .dataset import (
    DatasetSummary,
    GenotypeDataset,
    PackedGenotypeStore,
    as_packed_dataset,
)
from .packed import CODE_MISSING, PackedPanel, pack_genotypes, unpack_genotypes
from .frequencies import (
    SnpFrequencyTable,
    allele_frequencies,
    genotype_counts,
    minor_allele_frequencies,
    snp_frequency_table,
)
from .ld import (
    LDStatistics,
    PairwiseLDTable,
    ld_matrix,
    pairwise_ld,
    pairwise_ld_table,
    two_locus_haplotype_frequencies,
)
from .simulate import (
    DiseaseModel,
    PopulationModel,
    SimulatedStudy,
    large_study_249,
    lille_like_study,
    simulate_case_control_study,
    simulate_haplotypes,
)

__all__ = [
    # alleles
    "ALLELE_1",
    "ALLELE_2",
    "GENOTYPE_HOM_1",
    "GENOTYPE_HET",
    "GENOTYPE_HOM_2",
    "GENOTYPE_MISSING",
    "STATUS_AFFECTED",
    "STATUS_UNAFFECTED",
    "STATUS_UNKNOWN",
    "n_haplotype_states",
    "haplotype_index_to_alleles",
    "alleles_to_haplotype_index",
    "haplotype_label",
    "parse_haplotype_label",
    "all_haplotype_labels",
    # dataset
    "GenotypeDataset",
    "DatasetSummary",
    "PackedGenotypeStore",
    "as_packed_dataset",
    # packed storage
    "CODE_MISSING",
    "PackedPanel",
    "pack_genotypes",
    "unpack_genotypes",
    # frequencies
    "allele_frequencies",
    "minor_allele_frequencies",
    "genotype_counts",
    "SnpFrequencyTable",
    "snp_frequency_table",
    # LD
    "LDStatistics",
    "two_locus_haplotype_frequencies",
    "pairwise_ld",
    "ld_matrix",
    "PairwiseLDTable",
    "pairwise_ld_table",
    # constraints
    "HaplotypeConstraints",
    "build_constraints",
    # simulation
    "PopulationModel",
    "DiseaseModel",
    "SimulatedStudy",
    "simulate_haplotypes",
    "simulate_case_control_study",
    "lille_like_study",
    "large_study_249",
]
