"""Tests of allele/genotype frequency estimation."""

import numpy as np
import pytest

from repro.genetics.dataset import GenotypeDataset
from repro.genetics.frequencies import (
    allele_frequencies,
    genotype_counts,
    minor_allele_frequencies,
    snp_frequency_table,
)


@pytest.fixture()
def known_dataset():
    # SNP 0: genotypes 0,0,1,1 -> allele-2 frequency 2/8 = 0.25
    # SNP 1: genotypes 2,2,2,2 -> frequency 1.0
    # SNP 2: genotypes 0,1,2,-1 -> frequency 3/6 = 0.5 (missing excluded)
    genotypes = np.array(
        [[0, 2, 0], [0, 2, 1], [1, 2, 2], [1, 2, -1]], dtype=np.int8
    )
    return GenotypeDataset(genotypes, [1, 1, 0, 0])


class TestAlleleFrequencies:
    def test_known_values(self, known_dataset):
        freqs = allele_frequencies(known_dataset)
        assert freqs[0] == pytest.approx(0.25)
        assert freqs[1] == pytest.approx(1.0)
        assert freqs[2] == pytest.approx(0.5)

    def test_all_missing_is_nan(self):
        dataset = GenotypeDataset([[-1], [-1]], [1, 0])
        assert np.isnan(allele_frequencies(dataset)[0])

    def test_minor_allele_frequency_bounded(self, known_dataset):
        maf = minor_allele_frequencies(known_dataset)
        assert np.all(maf[~np.isnan(maf)] <= 0.5)
        assert maf[1] == pytest.approx(0.0)

    def test_matches_simulated_frequencies(self, small_dataset):
        freqs = allele_frequencies(small_dataset)
        assert freqs.shape == (small_dataset.n_snps,)
        assert np.all((freqs >= 0) & (freqs <= 1))


class TestGenotypeCounts:
    def test_counts_sum_to_observed(self, known_dataset):
        counts = genotype_counts(known_dataset)
        assert counts.shape == (3, 3)
        assert counts[0].sum() == 4
        assert counts[2].sum() == 3  # one missing
        assert counts[1, 2] == 4  # all homozygous-2 at SNP 1


class TestSnpFrequencyTable:
    def test_table_consistency(self, known_dataset):
        table = snp_frequency_table(known_dataset)
        assert table.n_snps == 3
        np.testing.assert_allclose(table.freq_allele1 + table.freq_allele2, 1.0)
        assert table.minor_frequency(0) == pytest.approx(0.25)
        np.testing.assert_allclose(
            table.minor_frequencies(),
            np.minimum(table.freq_allele1, table.freq_allele2),
        )

    def test_length_mismatch_rejected(self):
        from repro.genetics.frequencies import SnpFrequencyTable

        with pytest.raises(ValueError):
            SnpFrequencyTable(("a",), np.array([0.5, 0.5]), np.array([0.5, 0.5]))
