"""Island-model extension of the GA.

The paper parallelises only the evaluation phase (master/slave); its
conclusion mentions comparing different strategies as future work.  The
island model is the natural next step for this algorithm — several complete
GA instances ("islands") run independently with different random seeds and
periodically exchange their best individuals — and is included here as the
implemented extension: it reuses the sequential engine unchanged and layers
migration on top of it, so it also doubles as a robustness harness (the
paper's Section 5.2 remarks that solutions are similar from one execution to
another).

The implementation is deliberately synchronous and deterministic: islands are
advanced round-robin for ``migration_interval`` generations at a time (each on
its own evaluator, which may itself be a multiprocessing master/slave farm),
then the best individual of every sub-population of every island is broadcast
to the other islands, which accept it through the normal replacement rule.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..core.config import GAConfig
from ..core.ga import AdaptiveMultiPopulationGA
from ..core.history import GAResult
from ..core.individual import HaplotypeIndividual
from ..genetics.constraints import HaplotypeConstraints
from .base import FitnessCallable

__all__ = ["IslandResult", "IslandModelGA"]


@dataclass(frozen=True)
class IslandResult:
    """Outcome of an island-model run.

    Attributes
    ----------
    island_results:
        The per-island :class:`~repro.core.history.GAResult` of the final
        epoch (indexed by island).
    best_per_size:
        Best haplotype of every size across all islands.
    n_evaluations:
        Total number of fitness requests across islands (the paper's cost
        metric).
    n_distinct_evaluations:
        Evaluations actually executed by the islands' batch evaluators after
        generation-level dedup and cache reuse; at most ``n_evaluations``.
    n_migrations:
        Number of migration rounds performed.
    elapsed_seconds:
        Wall-clock duration.
    """

    island_results: tuple[GAResult, ...]
    best_per_size: dict[int, HaplotypeIndividual]
    n_evaluations: int
    n_migrations: int
    elapsed_seconds: float
    n_distinct_evaluations: int = 0

    @property
    def n_islands(self) -> int:
        return len(self.island_results)

    @property
    def evaluation_reuse_rate(self) -> float:
        """Fraction of fitness requests answered without re-evaluating."""
        if self.n_evaluations == 0:
            return 0.0
        return 1.0 - self.n_distinct_evaluations / self.n_evaluations


class IslandModelGA:
    """Several cooperating instances of the adaptive multi-population GA.

    Parameters
    ----------
    fitness:
        Fitness callable shared by all islands.
    n_snps:
        SNP panel size.
    config:
        Base configuration; island ``i`` runs with seed ``config.seed + i``.
    n_islands:
        Number of islands.
    migration_interval:
        Number of generations every island runs between migrations.
    n_epochs:
        Number of (run + migrate) rounds.
    constraints:
        Shared haplotype constraints.
    backend:
        Execution-backend name each island's evaluator is resolved on
        through :mod:`repro.runtime.backends` (default ``"serial"``); a
        parallel backend gives every island its own worker farm.
    backend_options:
        Extra keyword arguments forwarded to
        :func:`repro.runtime.backends.create_evaluator` (``n_workers``, ...).
    """

    def __init__(
        self,
        fitness: FitnessCallable,
        *,
        n_snps: int,
        config: GAConfig | None = None,
        n_islands: int = 4,
        migration_interval: int = 10,
        n_epochs: int = 5,
        constraints: HaplotypeConstraints | None = None,
        backend: str | None = None,
        backend_options: dict | None = None,
    ) -> None:
        if n_islands < 2:
            raise ValueError("an island model needs at least two islands")
        if migration_interval < 1:
            raise ValueError("migration_interval must be positive")
        if n_epochs < 1:
            raise ValueError("n_epochs must be positive")
        self.fitness = fitness
        self.n_snps = int(n_snps)
        self.base_config = config or GAConfig()
        self.n_islands = int(n_islands)
        self.migration_interval = int(migration_interval)
        self.n_epochs = int(n_epochs)
        self.constraints = constraints or HaplotypeConstraints.unconstrained(n_snps)
        self.backend = backend
        self.backend_options = dict(backend_options or {})

    # ------------------------------------------------------------------ #
    def _island_config(self, island: int, epoch_generations: int) -> GAConfig:
        # each epoch is a bounded continuation: cap generations, disable the
        # long stagnation stop so the epochs stay comparable in length
        return self.base_config.with_seed(self.base_config.seed + island)

    def run(self) -> IslandResult:
        """Run the island model and return the aggregated result."""
        start = time.perf_counter()
        islands = []
        results: list[GAResult] = [None] * self.n_islands  # type: ignore[list-item]
        n_migrations = 0
        migrants: list[HaplotypeIndividual] = []
        try:
            for island in range(self.n_islands):
                config = self.base_config.with_seed(self.base_config.seed + island)
                ga = AdaptiveMultiPopulationGA(
                    self.fitness,
                    n_snps=self.n_snps,
                    config=config,
                    constraints=self.constraints,
                    backend=self.backend,
                    backend_options=self.backend_options or None,
                )
                # epochs are driven from here: keep each run() short
                ga.termination = ga.termination.__class__(
                    stagnation_generations=max(self.migration_interval, 2),
                    max_generations=self.migration_interval,
                    max_evaluations=config.max_evaluations,
                )
                islands.append(ga)

            for epoch in range(self.n_epochs):
                for index, ga in enumerate(islands):
                    # inject the previous epoch's migrants through the normal
                    # replacement rule before continuing the island's evolution
                    if migrants and ga.population is not None:
                        for migrant in migrants:
                            ga.population.try_insert(migrant)
                    results[index] = ga.run(reset=(epoch == 0))
                # collect this epoch's migrants (best of each size of each island)
                migrants = [
                    individual
                    for result in results
                    for individual in result.best_per_size.values()
                ]
                n_migrations += 1
        finally:
            # a parallel backend holds worker processes per island; never leak
            for ga in islands:
                ga.close()

        best_per_size: dict[int, HaplotypeIndividual] = {}
        for result in results:
            for size, individual in result.best_per_size.items():
                current = best_per_size.get(size)
                if current is None or individual.fitness_value() > current.fitness_value():
                    best_per_size[size] = individual
        total_evaluations = sum(ga.n_evaluations for ga in islands)
        total_distinct = sum(ga.n_distinct_evaluations for ga in islands)
        return IslandResult(
            island_results=tuple(results),
            best_per_size=best_per_size,
            n_evaluations=total_evaluations,
            n_migrations=n_migrations,
            elapsed_seconds=time.perf_counter() - start,
            n_distinct_evaluations=total_distinct,
        )
