"""Fault injection for the self-healing execution core.

The recovery machinery of :class:`~repro.parallel.farm.ChunkedWorkerFarm`
(death detection, chunk replay, respawn, hang reaping) only runs when slaves
actually fail, so its tests and benchmarks need failures on demand — in the
*slave process*, at a deterministic point in the evaluation stream, without
touching production code paths.

:class:`ChaosPolicy` describes one fault (die hard, hang, or raise, after the
N-th evaluation or on a poison haplotype); :func:`chaos_wrapper` turns it
into a ``worker_wrapper`` for :func:`repro.runtime.backends.create_evaluator`
/ :class:`~repro.runtime.service.RunScheduler`, and :class:`ChaosFactory`
wraps an evaluator factory directly for farm-level tests.  Everything is
picklable — the chaos ships to the slaves exactly like the real evaluator
factory does.

Faults fired *before* the fault point evaluate normally, so values produced
by a chaotic run are bit-identical to a fault-free one — which is precisely
the property the recovery tests assert.  With a ``token_path``, only the
first slave to claim the token file fires (``O_CREAT | O_EXCL`` — atomic
across processes), turning "every slave would die on call 3" into the
realistic "exactly one slave dies".
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

__all__ = ["ChaosPolicy", "ChaosError", "ChaosFactory", "chaos_wrapper"]


class ChaosError(RuntimeError):
    """The injected in-band failure (travels the worker-error path)."""


@dataclass(frozen=True)
class ChaosPolicy:
    """One injected fault in a slave's evaluation stream.

    Exactly one trigger must be set:

    * ``kill_after=N`` — the N-th evaluation hard-kills the slave process
      (``os._exit(exit_code)``: no traceback, no queue flush — what a
      SIGKILLed or OOM-killed cluster node looks like to the master);
    * ``hang_after=N`` — the N-th evaluation sleeps ``hang_seconds`` (a
      wedged slave: alive but silent, detectable only via chunk deadlines);
    * ``raise_after=N`` — the N-th evaluation raises :class:`ChaosError`
      (an in-band evaluation error: travels the normal per-ticket error
      path, no recovery involved);
    * ``kill_on_key=(snp, ...)`` — evaluating exactly this haplotype kills
      the slave.  A *poison chunk*: replaying it kills the replayer too,
      which is how retry-exhaustion is exercised.

    ``token_path`` (optional) arms the fault only in the one process that
    wins the token file; everyone else evaluates normally forever.
    """

    kill_after: int | None = None
    hang_after: int | None = None
    raise_after: int | None = None
    kill_on_key: tuple[int, ...] | None = None
    exit_code: int = 23
    hang_seconds: float = 3600.0
    token_path: str | None = None

    def __post_init__(self) -> None:
        triggers = [
            self.kill_after is not None,
            self.hang_after is not None,
            self.raise_after is not None,
            self.kill_on_key is not None,
        ]
        if sum(triggers) != 1:
            raise ValueError(
                "exactly one of kill_after, hang_after, raise_after or "
                "kill_on_key must be set"
            )
        for name in ("kill_after", "hang_after", "raise_after"):
            value = getattr(self, name)
            if value is not None and (
                not isinstance(value, int) or isinstance(value, bool) or value < 1
            ):
                raise ValueError(f"{name} must be a positive integer, got {value!r}")
        if self.kill_on_key is not None:
            object.__setattr__(
                self, "kill_on_key", tuple(sorted(int(s) for s in self.kill_on_key))
            )

    def claim_token(self) -> bool:
        """Atomically claim the fault token (True = this process faults).

        Without a ``token_path`` every process is armed.
        """
        if self.token_path is None:
            return True
        try:
            fd = os.open(self.token_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True


class _ChaosFitness:
    """Wraps a slave's fitness callable, firing the policy's fault in stream.

    Deliberately does *not* expose ``evaluate_many``: the scalar loop keeps
    the evaluation count exact (so ``kill_after`` means what it says) and the
    values stay bit-identical — the stacked path computes the same numbers,
    only faster.
    """

    def __init__(self, fitness, policy: ChaosPolicy) -> None:
        self._fitness = fitness
        self._policy = policy
        self._armed = policy.claim_token()
        self._calls = 0

    def __call__(self, snps) -> float:
        policy = self._policy
        if self._armed:
            self._calls += 1
            if policy.kill_on_key is not None:
                if tuple(sorted(int(s) for s in snps)) == policy.kill_on_key:
                    os._exit(policy.exit_code)
            elif policy.kill_after is not None and self._calls == policy.kill_after:
                os._exit(policy.exit_code)
            elif policy.hang_after is not None and self._calls == policy.hang_after:
                time.sleep(policy.hang_seconds)
            elif policy.raise_after is not None and self._calls == policy.raise_after:
                raise ChaosError(
                    f"injected failure on evaluation {self._calls}"
                )
        return float(self._fitness(snps))


@dataclass(frozen=True)
class ChaosFactory:
    """Picklable evaluator factory wrapping another factory with a policy.

    Use directly as a :class:`~repro.parallel.farm.ChunkedWorkerFarm`
    factory; for the backend/scheduler layers prefer :func:`chaos_wrapper`.
    """

    factory: object
    policy: ChaosPolicy

    def __call__(self):
        return _ChaosFitness(self.factory(), self.policy)


@dataclass(frozen=True)
class _ChaosWrapper:
    """The picklable ``worker_wrapper`` :func:`chaos_wrapper` returns."""

    policy: ChaosPolicy

    def __call__(self, factory) -> ChaosFactory:
        return ChaosFactory(factory, self.policy)


def chaos_wrapper(policy: ChaosPolicy) -> _ChaosWrapper:
    """A ``worker_wrapper`` installing ``policy`` in every slave's evaluator.

    Pass to :func:`repro.runtime.backends.create_evaluator`,
    :class:`~repro.runtime.service.RunScheduler` or
    :class:`~repro.parallel.master_slave.MasterSlaveEvaluator` via their
    ``worker_wrapper`` parameter.
    """
    return _ChaosWrapper(policy)
