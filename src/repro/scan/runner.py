"""Scan execution: one GA job per window over one shared substrate.

``run_scan`` is the front door of the genome-scale scan subsystem: it plans
the windows, opens (or borrows) a persistent
:class:`~repro.runtime.service.RunScheduler`, submits one
:class:`~repro.runtime.service.RunRequest` per window and folds the streamed
per-window results into a :class:`~repro.scan.report.ScanReport`.  All
windows share a single worker farm, a single shared-memory panel
registration and the substrate's dedup/LRU caches — overlapping windows
re-request many of the same haplotypes (in global indices), so later windows
are answered partly from the cache population earlier windows built.

Window-local results are translated back to global panel indices here, so
everything downstream (the report, the CLI, the benchmarks) speaks global
locus coordinates.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

from ..core.config import GAConfig
from ..genetics.dataset import GenotypeDataset, LocusWindow
from ..parallel.farm import FarmRecoveryPolicy
from ..parallel.pvm import EvaluationCostModel
from ..runtime.backends import DEFAULT_BACKEND
from ..runtime.service import RunResult, RunScheduler, estimate_request_cost
from .checkpoint import ScanJournal, checkpoint_meta
from .planner import ScanPlan, plan_scan
from .report import ScanReport, WindowResult

__all__ = ["run_scan", "execute_plan", "DEFAULT_MAX_PENDING"]

#: Optional progress hook: called with each window's result as it completes.
ProgressCallback = Callable[[WindowResult], None]

#: Default bound on the number of window jobs submitted but not yet finished:
#: enough to keep any realistic job concurrency fed, small enough that a
#: 10k-window plan never materialises all its requests at once.
DEFAULT_MAX_PENDING = 256


def _window_result(window: LocusWindow, run: RunResult) -> WindowResult:
    """Fold one window job's RunResult into global-index form."""
    best_per_size: dict[int, tuple[tuple[int, ...], float]] = {}
    for size, individual in run.best_per_size().items():
        best_per_size[size] = (
            window.to_global(individual.snps),
            individual.fitness_value(),
        )
    best_size = max(best_per_size, key=lambda s: best_per_size[s][1])
    best_snps, best_fitness = best_per_size[best_size]
    n_generations = sum(r.n_generations for r in run.runs)
    return WindowResult(
        window=window,
        best_snps=best_snps,
        best_fitness=best_fitness,
        best_per_size=best_per_size,
        n_evaluations=run.stats.n_requests,
        n_distinct_evaluations=run.stats.n_evaluations,
        n_generations=n_generations,
        seed=run.request.seed if run.request.seed is not None else 0,
        elapsed_seconds=run.elapsed_seconds,
    )


def execute_plan(
    plan: ScanPlan,
    scheduler: RunScheduler,
    *,
    progress: ProgressCallback | None = None,
    max_pending: int | None = DEFAULT_MAX_PENDING,
    cost_model: EvaluationCostModel | None = None,
    checkpoint_path=None,
    resume: bool = False,
) -> tuple[WindowResult, ...]:
    """Run every window job of ``plan`` on ``scheduler``; window order output.

    Results stream through ``progress`` in completion order (whatever the
    scheduler's job concurrency makes that); the returned tuple is always in
    window order and bit-identical regardless of it.

    ``max_pending`` bounds how many window jobs are submitted but not yet
    finished: the plan's request stream is consumed lazily and topped up as
    results come back, so a 10k-window plan holds a bounded deque of live
    jobs instead of materialising every request up front (``None`` submits
    everything at once).  With a ``cost_model``, each job carries its
    :meth:`~repro.scan.planner.ScanPlan.window_cost` estimate and a
    multi-job scheduler starts the most expensive queued window first.

    ``checkpoint_path`` journals every completed window to a crash-safe JSONL
    file (:class:`~repro.scan.checkpoint.ScanJournal`) as it finishes; with
    ``resume=True`` windows already in the journal are restored instead of
    re-run (``progress`` still sees them, first) and the merged output is
    bit-identical to an uninterrupted run.

    The scheduler's queue (and any unclaimed results of an abandoned drain)
    must be empty: draining them would consume — and lose — results of jobs
    the caller submitted before the scan.
    """
    if scheduler.n_pending or scheduler.n_unclaimed:
        raise ValueError(
            f"the scheduler has {scheduler.n_pending} queued job(s) and "
            f"{scheduler.n_unclaimed} unclaimed result(s); drain them before "
            f"running a scan on it (the scan would consume them)"
        )
    if max_pending is not None and max_pending < 1:
        raise ValueError(f"max_pending must be a positive integer or None, got {max_pending!r}")
    if resume and checkpoint_path is None:
        raise ValueError("resume=True requires a checkpoint_path")
    journal = None
    completed: dict[int, WindowResult] = {}
    if checkpoint_path is not None:
        # the journal pins the substrate representation and the panel's
        # content hash: a resume against a byte journal with --packed (or
        # against a different panel entirely) fails loudly instead of
        # silently merging results from incompatible substrates
        journal, completed = ScanJournal.open(
            checkpoint_path,
            checkpoint_meta(
                plan,
                scheduler.dataset.n_snps,
                panel="packed" if scheduler.packed else "byte",
                panel_fingerprint=scheduler.dataset.fingerprint(),
            ),
            resume=resume,
        )
    try:
        results: dict[int, WindowResult] = {}
        for index in sorted(completed):
            restored = completed[index]
            results[index] = restored
            if progress is not None:
                progress(restored)
        request_stream = iter(
            (window, request)
            for window, request in plan.requests()
            if window.index not in results
        )
        windows_by_job: dict[int, LocusWindow] = {}
        n_outstanding = 0
        exhausted = False

        def top_up() -> None:
            nonlocal n_outstanding, exhausted
            while not exhausted and (max_pending is None or n_outstanding < max_pending):
                try:
                    window, request = next(request_stream)
                except StopIteration:
                    exhausted = True
                    return
                # price the request already in hand (equivalent to
                # plan.window_cost without rebuilding the window's request)
                cost = (
                    None if cost_model is None
                    else estimate_request_cost(request, cost_model)
                )
                windows_by_job[scheduler.submit(request, cost=cost)] = window
                n_outstanding += 1

        top_up()
        while n_outstanding:
            # one drain usually finishes the scan (mid-drain submissions join
            # it); re-drain if its job threads raced out while work remained
            for job_id, run in scheduler.as_completed():
                window = windows_by_job.pop(job_id)
                result = _window_result(window, run)
                results[window.index] = result
                if journal is not None:
                    journal.append(result)
                n_outstanding -= 1
                if progress is not None:
                    progress(result)
                top_up()
        return tuple(results[index] for index in sorted(results))
    finally:
        if journal is not None:
            journal.close()


def run_scan(
    dataset: GenotypeDataset | None,
    *,
    window_size: int,
    overlap: int = 0,
    config: GAConfig | None = None,
    seed: int = 0,
    statistic: str = "t1",
    n_runs: int = 1,
    backend: str = DEFAULT_BACKEND,
    n_workers: int | None = None,
    chunk_size: int | None = None,
    jobs: int = 1,
    scheduler: RunScheduler | None = None,
    client=None,
    progress: ProgressCallback | None = None,
    max_pending: int | None = DEFAULT_MAX_PENDING,
    cost_model: EvaluationCostModel | None = None,
    recovery: FarmRecoveryPolicy | None = None,
    checkpoint_path=None,
    resume: bool = False,
    packed: bool = False,
    hosts: Sequence[str] | None = None,
    steal_mode: str = "master",
    client_timeout: float | None = None,
) -> ScanReport:
    """Scan a panel with one GA job per overlapping locus window.

    Parameters mirror :func:`repro.scan.planner.plan_scan` (geometry, GA
    configuration, seeding) plus the execution substrate (``backend``,
    ``n_workers``, ``chunk_size``, ``jobs``).  Passing an existing
    ``scheduler`` reuses its warm substrate (and ignores the execution
    parameters); otherwise a scheduler is created for the scan and released
    afterwards.

    Window jobs flow through the bounded, cost-prioritised pipeline of
    :func:`execute_plan`: at most ``max_pending`` jobs are live at a time,
    and with ``jobs > 1`` the priciest windows under ``cost_model`` start
    first (default: the paper's Figure-4
    :class:`~repro.parallel.pvm.EvaluationCostModel`, so clamped small
    windows defer to full-size ones).  Neither knob changes the report —
    per-window results are a pure function of their seeds.

    Robustness: ``recovery`` installs a
    :class:`~repro.parallel.farm.FarmRecoveryPolicy` on a scan-owned
    scheduler's process farm (ignored when an existing ``scheduler`` is
    passed — its substrate is already built), so slave deaths mid-scan are
    survived with a bit-identical report.  ``checkpoint_path`` journals each
    completed window durably and ``resume=True`` restores journaled windows
    instead of re-running them — a scan killed halfway resumes to the same
    report an uninterrupted run produces (window results are pure functions
    of their seeds).

    ``packed=True`` runs the scan on the 2-bit packed genotype substrate
    (~4× smaller shared-memory panels, packed class-counting kernels) with a
    bit-identical report; like ``recovery``, it configures a scan-owned
    scheduler and is ignored when an existing ``scheduler`` is passed.

    ``hosts`` (with ``backend="remote"``) scans against remote worker hosts
    (``"host:port"`` specs, one slave per entry); ``steal_mode="shm"`` runs
    the local process farms on the shared-memory steal deques.  Both ride
    the same scan-owned-scheduler rule as ``recovery``/``packed``, and the
    report stays bit-identical — per-window results are pure functions of
    their seeds.  A persisted, calibrated ``cost_model``
    (:meth:`~repro.parallel.pvm.EvaluationCostModel.from_json`) both
    prioritises window jobs and drives the farm's cost-balanced chunking.

    ``client`` (a :class:`~repro.runtime.client.ScanClient`) submits the scan
    to a running ``repro serve`` daemon instead of building any local
    substrate: the daemon's warm farm executes (or replays from its result
    cache) every window, and all execution parameters — and ``dataset``,
    which may be ``None`` — are ignored in favour of the service's.  The
    report is fingerprint-identical to the in-process scan of the same
    (geometry, config, seed).  Checkpointing is the daemon's concern, so
    ``client`` is mutually exclusive with ``scheduler`` and
    ``checkpoint_path``.  ``client_timeout`` bounds the whole served scan
    (seconds): the client's deadline/retry machinery
    (:class:`~repro.runtime.client.RetryPolicy`) re-submits idempotently on
    transport loss and raises
    :class:`~repro.runtime.client.DeadlineExceeded` past the budget.
    """
    if client is not None:
        if scheduler is not None:
            raise ValueError("pass either client or scheduler, not both")
        if checkpoint_path is not None or resume:
            raise ValueError(
                "checkpointing happens daemon-side; client scans cannot take "
                "checkpoint_path/resume"
            )
        return client.scan(
            window_size=window_size,
            overlap=overlap,
            config=config,
            seed=seed,
            statistic=statistic,
            n_runs=n_runs,
            progress=progress,
            timeout=client_timeout,
        )
    if dataset is None:
        raise ValueError("dataset may only be omitted when a client is given")
    if cost_model is None and jobs > 1:
        cost_model = EvaluationCostModel()
    start = time.perf_counter()
    plan = plan_scan(
        dataset.n_snps,
        window_size=window_size,
        overlap=overlap,
        config=config,
        seed=seed,
        statistic=statistic,
        n_runs=n_runs,
    )
    owns_scheduler = scheduler is None
    if scheduler is None:
        scheduler = RunScheduler(
            dataset,
            statistic=statistic,
            backend=backend,
            n_workers=n_workers,
            chunk_size=chunk_size,
            jobs=jobs,
            cost_model=cost_model,
            recovery=recovery,
            packed=packed,
            hosts=hosts,
            steal_mode=steal_mode,
        )
    stats_before = scheduler.stats
    try:
        windows = execute_plan(
            plan,
            scheduler,
            progress=progress,
            max_pending=max_pending,
            cost_model=cost_model,
            checkpoint_path=checkpoint_path,
            resume=resume,
        )
        stats = scheduler.stats.since(stats_before)
    finally:
        if owns_scheduler:
            scheduler.close()
    return ScanReport(
        windows=windows,
        backend=scheduler.backend,
        n_jobs=scheduler.jobs,
        stats=stats,
        elapsed_seconds=time.perf_counter() - start,
        n_snps=dataset.n_snps,
        window_size=window_size,
        overlap=overlap,
        statistic=statistic,
        seed=int(seed),
    )
