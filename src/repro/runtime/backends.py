"""The pluggable execution-backend registry.

Every layer that needs fitnesses — the GA core, the island model, the
experiment harnesses, the CLI — asks this registry for a
:class:`~repro.parallel.base.BatchEvaluator` by *name* instead of
hand-building one:

========== ==================================================================
name       substrate
========== ==================================================================
serial     in-process loop (the reference backend)
threads    thread pool; shared arrays, per-thread evaluators, GIL-bound
process    chunked master/slave farm; data pickled once per slave
process-shm chunked master/slave farm; slaves attach to one shared-memory
           copy of the genotype matrices and rebuild lightweight evaluator
           views over it
async      work-stealing master/slave farm: bounded per-slave in-flight
           chunks, idle slaves refilled from the longest affinity queue,
           completions streamed instead of barrier-joined; shared-memory
           data when a spec + dataset is available, pickled otherwise
           (``steal_mode="shm"`` moves the chunk queues themselves into a
           shared-memory deque arena: slaves self-serve and steal without a
           master round trip per chunk)
remote     multi-host master/slave farm over authenticated sockets
           (``hosts=["host:port", ...]``, one slave per entry): each
           connection ships the 2-bit packed panel once, then only
           haplotype chunks travel; dead connections replay like dead
           slaves
========== ==================================================================

A backend factory receives the normalised request — an
:class:`~repro.runtime.spec.EvaluatorSpec` plus dataset and/or a plain
fitness callable — and returns a live evaluator.  New substrates (sharded,
remote) become a :func:`register_backend` call instead of a rewrite of every
call site.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..genetics.dataset import GenotypeDataset, as_packed_dataset
from ..parallel.base import BaseBatchEvaluator, BatchEvaluator, FitnessCallable
from ..parallel.farm import FarmRecoveryPolicy
from ..parallel.master_slave import MasterSlaveEvaluator
from ..parallel.pvm import EvaluationCostModel
from ..parallel.serial import SerialEvaluator
from ..parallel.threads import ThreadPoolEvaluator
from ..stats.evaluation import HaplotypeEvaluator
from .shm import SharedGenotypeStore
from .spec import (
    EvaluatorSpec,
    InMemoryDatasetHandle,
    PackedDatasetHandle,
    SpecEvaluatorFactory,
)

__all__ = [
    "BackendRequest",
    "BackendFactory",
    "register_backend",
    "backend_names",
    "resolve_backend",
    "create_evaluator",
    "DEFAULT_BACKEND",
]

DEFAULT_BACKEND = "serial"


@dataclass(frozen=True)
class BackendRequest:
    """Normalised arguments every backend factory receives.

    Exactly one of (``fitness``) or (``spec`` + ``dataset``) is guaranteed to
    be usable; backends that must rebuild evaluators in another process
    (``process-shm``) require the spec form and raise a ``TypeError``
    otherwise.
    """

    spec: EvaluatorSpec | None
    dataset: GenotypeDataset | None
    fitness: FitnessCallable | None
    n_workers: int | None
    chunk_size: int | None
    dedup: bool
    cache_size: int | None
    worker_cache_size: int | None
    start_method: str | None
    cost_model: EvaluationCostModel | None = None
    recovery: FarmRecoveryPolicy | None = None
    worker_wrapper: Callable | None = None
    packed: bool = False
    hosts: tuple[str, ...] | None = None
    steal_mode: str = "master"

    def local_fitness(self) -> FitnessCallable:
        """A fitness callable usable in the calling process."""
        if self.fitness is not None:
            return self.fitness
        assert self.spec is not None and self.dataset is not None
        return self.spec.build(self.dataset)

    def require_spec(self, backend: str) -> tuple[EvaluatorSpec, GenotypeDataset]:
        if self.spec is None or self.dataset is None:
            raise TypeError(
                f"the {backend!r} backend rebuilds evaluators in worker processes "
                f"and therefore needs an EvaluatorSpec + dataset (or a "
                f"HaplotypeEvaluator to derive them from), not a bare callable"
            )
        return self.spec, self.dataset


BackendFactory = Callable[[BackendRequest], BatchEvaluator]

_REGISTRY: dict[str, BackendFactory] = {}


def register_backend(name: str, factory: BackendFactory, *, replace: bool = False) -> None:
    """Register an execution backend under ``name``."""
    if not replace and name in _REGISTRY:
        raise ValueError(f"backend {name!r} is already registered")
    _REGISTRY[name] = factory


def backend_names() -> tuple[str, ...]:
    """Names of all registered backends (sorted)."""
    return tuple(sorted(_REGISTRY))


def resolve_backend(name: str) -> BackendFactory:
    """Look up a backend factory by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown execution backend {name!r}; available: {', '.join(backend_names())}"
        ) from None


def create_evaluator(
    backend: str,
    source: HaplotypeEvaluator | EvaluatorSpec | FitnessCallable,
    *,
    dataset: GenotypeDataset | None = None,
    n_workers: int | None = None,
    chunk_size: int | None = None,
    dedup: bool = True,
    cache_size: int | None = BaseBatchEvaluator.DEFAULT_CACHE_SIZE,
    worker_cache_size: int | None = BaseBatchEvaluator.DEFAULT_CACHE_SIZE,
    start_method: str | None = None,
    cost_model: EvaluationCostModel | None = None,
    recovery: FarmRecoveryPolicy | None = None,
    worker_wrapper: Callable | None = None,
    packed: bool = False,
    hosts: Sequence[str] | None = None,
    steal_mode: str = "master",
) -> BatchEvaluator:
    """Build a batch evaluator on the named backend.

    ``source`` may be a live :class:`HaplotypeEvaluator` (spec and dataset
    are derived from it), an :class:`EvaluatorSpec` (``dataset`` required),
    or any fitness callable (sufficient for the in-process backends and, if
    picklable, for ``process``).  ``cost_model`` (optional) feeds the chunked
    farms' cost-driven auto chunking, e.g. a model the scheduler calibrated
    on measured evaluation times.  ``recovery`` (optional) installs a
    :class:`~repro.parallel.farm.FarmRecoveryPolicy` on the process-farm
    backends so slave deaths and hangs are survived instead of fatal;
    ``worker_wrapper`` (optional, fault-injection harness) wraps the worker
    evaluator factory before it ships to the slaves.  Both are process-farm
    features — the in-process backends reject them.

    ``packed=True`` runs the whole pipeline on the 2-bit packed substrate:
    the dataset is converted to packed affected-first form
    (:func:`~repro.genetics.dataset.as_packed_dataset`), shared-memory
    segments hold the packed panel (~4× smaller), and phase expansions are
    counted from packed columns.  Results are bit-identical to the byte
    path.  Requires the spec form (a bare fitness callable carries no
    dataset to pack).

    ``hosts`` (the ``remote`` backend only) lists the worker hosts as
    ``"host:port"`` specs, one slave per entry.  ``steal_mode`` selects the
    chunked farms' queue substrate: ``"master"`` (default) or ``"shm"``
    (shared-memory steal deques; local process farms only).
    """
    spec: EvaluatorSpec | None = None
    fitness: FitnessCallable | None = None
    if isinstance(source, EvaluatorSpec):
        if dataset is None:
            raise TypeError("an EvaluatorSpec source requires the dataset argument")
        spec = source
    elif isinstance(source, HaplotypeEvaluator):
        spec = EvaluatorSpec.from_evaluator(source)
        dataset = source.dataset if dataset is None else dataset
        fitness = source
    elif callable(source):
        fitness = source
    else:
        raise TypeError(
            f"source must be a HaplotypeEvaluator, EvaluatorSpec or callable, "
            f"got {type(source).__name__}"
        )
    if packed:
        if spec is None or dataset is None:
            raise TypeError(
                "packed=True needs an EvaluatorSpec + dataset (or a "
                "HaplotypeEvaluator to derive them from), not a bare callable"
            )
        dataset = as_packed_dataset(dataset)
        # a live evaluator from the caller is bound to the byte dataset;
        # rebuild from the spec so every backend runs on the packed panel
        fitness = None
    request = BackendRequest(
        spec=spec,
        dataset=dataset,
        fitness=fitness,
        n_workers=n_workers,
        chunk_size=chunk_size,
        dedup=dedup,
        cache_size=cache_size,
        worker_cache_size=worker_cache_size,
        start_method=start_method,
        cost_model=cost_model,
        recovery=recovery,
        worker_wrapper=worker_wrapper,
        packed=packed,
        hosts=tuple(hosts) if hosts is not None else None,
        steal_mode=steal_mode,
    )
    return resolve_backend(backend)(request)


# --------------------------------------------------------------------- #
# the built-in backends
# --------------------------------------------------------------------- #
def _require_process_farm_features_unused(request: BackendRequest, backend: str) -> None:
    """In-process backends have no slave processes to heal or wrap."""
    if request.recovery is not None or request.worker_wrapper is not None:
        raise TypeError(
            f"the {backend!r} backend runs in-process and supports neither a "
            f"recovery policy nor a worker_wrapper; use a process-farm backend "
            f"(process, process-shm, async)"
        )
    if request.hosts is not None:
        raise TypeError(
            f"the {backend!r} backend runs in-process and cannot use remote "
            f"hosts; use the 'remote' backend"
        )
    if request.steal_mode != "master":
        raise TypeError(
            f"the {backend!r} backend runs in-process and has no shared-memory "
            f"deque arena; steal_mode applies to the process-farm backends"
        )


def _require_local_farm(request: BackendRequest, backend: str) -> None:
    """Local process farms cannot reach remote hosts."""
    if request.hosts is not None:
        raise TypeError(
            f"the {backend!r} backend runs local slave processes and ignores "
            f"hosts; use the 'remote' backend for multi-host dispatch"
        )


def _serial_backend(request: BackendRequest) -> BatchEvaluator:
    _require_process_farm_features_unused(request, "serial")
    return SerialEvaluator(
        request.local_fitness(), dedup=request.dedup, cache_size=request.cache_size
    )


def _threads_backend(request: BackendRequest) -> BatchEvaluator:
    _require_process_farm_features_unused(request, "threads")
    if request.spec is not None and request.dataset is not None:
        # per-thread evaluators over the (naturally shared) in-process arrays
        return ThreadPoolEvaluator(
            evaluator_factory=SpecEvaluatorFactory(
                request.spec, InMemoryDatasetHandle(request.dataset)
            ),
            n_workers=request.n_workers,
            chunk_size=request.chunk_size,
            dedup=request.dedup,
            cache_size=request.cache_size,
        )
    return ThreadPoolEvaluator(
        request.fitness,
        n_workers=request.n_workers,
        chunk_size=request.chunk_size,
        dedup=request.dedup,
        cache_size=request.cache_size,
    )


def _farm_kwargs(request: BackendRequest, *, steal: bool) -> dict:
    """The MasterSlaveEvaluator arguments shared by every chunked-farm backend."""
    return dict(
        dispatch="chunked",
        n_workers=request.n_workers,
        chunk_size=request.chunk_size,
        worker_cache_size=request.worker_cache_size,
        start_method=request.start_method,
        dedup=request.dedup,
        cache_size=request.cache_size,
        steal=steal,
        steal_mode=request.steal_mode,
        cost_model=request.cost_model,
        recovery=request.recovery,
        worker_wrapper=request.worker_wrapper,
    )


def _process_backend(request: BackendRequest, *, steal: bool = False) -> BatchEvaluator:
    _require_local_farm(request, "process")
    if request.spec is not None and request.dataset is not None:
        factory = SpecEvaluatorFactory(request.spec, InMemoryDatasetHandle(request.dataset))
        return MasterSlaveEvaluator(
            evaluator_factory=factory, **_farm_kwargs(request, steal=steal)
        )
    return MasterSlaveEvaluator(request.fitness, **_farm_kwargs(request, steal=steal))


def _shm_farm_backend(
    request: BackendRequest, *, backend_name: str, steal: bool
) -> BatchEvaluator:
    _require_local_farm(request, backend_name)
    spec, dataset = request.require_spec(backend_name)
    store = SharedGenotypeStore(dataset, packed=request.packed)
    try:
        evaluator = MasterSlaveEvaluator(
            evaluator_factory=SpecEvaluatorFactory(spec, store.handle),
            **_farm_kwargs(request, steal=steal),
        )
    except BaseException:
        store.release()
        raise
    evaluator.register_close_callback(store.release)
    return evaluator


def _process_shm_backend(request: BackendRequest) -> BatchEvaluator:
    return _shm_farm_backend(request, backend_name="process-shm", steal=False)


def _async_backend(request: BackendRequest) -> BatchEvaluator:
    """The work-stealing farm: shared-memory data when possible, pickled otherwise.

    Synchronous calls (``evaluate_batch``) return bit-identical fitnesses to
    the other farm backends — stealing only changes which slave evaluates a
    chunk, never the result.  Requests and total answered work match too;
    only the evaluations-vs-slave-cache-hits split can shift when repeats
    reach the slaves (the master-side dedup/LRU normally prevents that).
    """
    if request.spec is not None and request.dataset is not None:
        return _shm_farm_backend(request, backend_name="async", steal=True)
    return _process_backend(request, steal=True)


def _remote_backend(request: BackendRequest) -> BatchEvaluator:
    """The multi-host farm: slaves behind sockets, packed panel shipped once.

    Requires the spec form (the factory must be rebuilt on another machine)
    and ``hosts``.  The dataset always crosses the wire in its 2-bit packed
    form — bit-identical to the byte path and ~4× cheaper to ship.  Stealing
    stays master-mediated (the shm arena cannot span hosts), and the PR-6
    recovery engine treats a dead connection exactly like a dead local slave.
    """
    from .remote import RemoteSlavePool  # noqa: F401 - validates availability

    spec, dataset = request.require_spec("remote")
    if request.hosts is None:
        raise TypeError(
            "the 'remote' backend needs hosts=[\"host:port\", ...] naming the "
            "worker hosts (one slave per entry)"
        )
    if request.steal_mode != "master":
        raise TypeError(
            "the 'remote' backend requires steal_mode='master': a "
            "shared-memory deque arena cannot span hosts"
        )
    kwargs = _farm_kwargs(request, steal=True)
    kwargs.pop("n_workers")  # one slave per host entry
    kwargs.pop("start_method")  # slaves are started by their hosts
    return MasterSlaveEvaluator(
        evaluator_factory=SpecEvaluatorFactory(spec, PackedDatasetHandle(dataset)),
        hosts=request.hosts,
        **kwargs,
    )


register_backend("serial", _serial_backend)
register_backend("threads", _threads_backend)
register_backend("process", _process_backend)
register_backend("process-shm", _process_shm_backend)
register_backend("async", _async_backend)
register_backend("remote", _remote_backend)
