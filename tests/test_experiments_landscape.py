"""Tests of the Section-3 landscape-study harness."""

import math

import pytest

from repro.experiments.landscape_study import run_landscape_study


class TestLandscapeStudy:
    @pytest.fixture(scope="class")
    def result(self, request):
        small_study = request.getfixturevalue("small_study")
        # a 8-SNP panel keeps the exhaustive sweeps tiny (C(8,2)+C(8,3)+C(8,4) = 154)
        panel = tuple(sorted(set(small_study.causal_snps) | {0, 1, 3, 7, 11}))
        return run_landscape_study(
            study=small_study, panel=panel, sizes=(2, 3), top_k=5, seed=1
        )

    def test_panel_and_summaries(self, result):
        assert len(result.panel) == 8
        assert set(result.scale_by_size) == {2, 3}
        assert result.scale_by_size[2].n_haplotypes == math.comb(8, 2)
        assert result.scale_by_size[3].n_haplotypes == math.comb(8, 3)

    def test_fitness_scale_grows_with_size(self, result):
        """Finding 2 of the paper's Section 3."""
        assert (
            result.scale_by_size[3].mean_fitness > result.scale_by_size[2].mean_fitness
        )
        assert result.scale_by_size[3].max_fitness > result.scale_by_size[2].max_fitness

    def test_building_block_reports(self, result):
        assert set(result.building_blocks) == {2, 3}
        for report in result.building_blocks.values():
            assert 0.0 <= report.containment_fraction <= 1.0

    def test_greedy_never_beats_exhaustive(self, result):
        for size in result.greedy_results:
            assert result.greedy_gap(size) >= -1e-9

    def test_exhaustive_best_contains_planted_signal(self, result, small_study):
        best3 = result.exhaustive_best[3]
        assert set(best3.snps) & set(small_study.causal_snps)

    def test_evaluation_count_reported(self, result):
        # distinct evaluations <= total enumerated haplotypes (cache removes repeats)
        assert 0 < result.n_evaluations <= math.comb(8, 2) + math.comb(8, 3) + 8

    def test_format(self, result):
        text = result.format()
        assert "Fitness scale" in text
        assert "Building-block" in text
        assert "Greedy" in text

    def test_validation(self, small_study):
        with pytest.raises(ValueError):
            run_landscape_study(study=small_study, panel=(0, 1, 2), sizes=(0,))
