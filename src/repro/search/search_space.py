"""Closed-form size of the haplotype search space (paper Table 1).

The search space for haplotypes of size ``k`` over ``n`` SNPs is the set of
``k``-subsets of the panel, of size ``C(n, k)``; Table 1 of the paper lists
these numbers for 51, 150 and 249 SNPs and sizes 2-6 to argue that exhaustive
enumeration is impossible beyond very small sizes.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = [
    "n_haplotypes_of_size",
    "n_haplotypes_up_to_size",
    "sample_distinct_haplotypes",
    "search_space_table",
    "PAPER_TABLE1_SNP_COUNTS",
    "PAPER_TABLE1_SIZES",
]


def sample_distinct_haplotypes(
    rng, n_snps: int, size: int, count: int
) -> list[tuple[int, ...]]:
    """``count`` distinct random haplotypes of one size (sorted SNP tuples).

    The count is clamped to ``C(n_snps, size)`` — a small panel cannot supply
    more distinct subsets, and an unclamped rejection loop would never
    terminate.  (Several experiment harnesses keep their own historical
    sampling loops because changing their RNG draw order would change
    recorded results; new call sites should use this helper.)
    """
    if count < 1:
        raise ValueError("count must be positive")
    if not 1 <= size <= n_snps:
        raise ValueError(f"size must be in [1, n_snps={n_snps}], got {size}")
    target = min(count, n_haplotypes_of_size(n_snps, size))
    batch: list[tuple[int, ...]] = []
    seen: set[tuple[int, ...]] = set()
    while len(batch) < target:
        snps = tuple(sorted(rng.choice(n_snps, size=size, replace=False).tolist()))
        if snps not in seen:
            seen.add(snps)
            batch.append(snps)
    return batch

#: The SNP panel sizes of the paper's Table 1.
PAPER_TABLE1_SNP_COUNTS: tuple[int, ...] = (51, 150, 249)
#: The haplotype sizes of the paper's Table 1.
PAPER_TABLE1_SIZES: tuple[int, ...] = (2, 3, 4, 5, 6)


def n_haplotypes_of_size(n_snps: int, size: int) -> int:
    """Number of distinct haplotypes of exactly ``size`` SNPs over ``n_snps``."""
    if n_snps < 0:
        raise ValueError("n_snps must be non-negative")
    if size < 0:
        raise ValueError("size must be non-negative")
    return math.comb(n_snps, size)


def n_haplotypes_up_to_size(n_snps: int, max_size: int, *, min_size: int = 2) -> int:
    """Total number of haplotypes with sizes in ``[min_size, max_size]``."""
    if min_size > max_size:
        raise ValueError("min_size must not exceed max_size")
    return sum(n_haplotypes_of_size(n_snps, k) for k in range(min_size, max_size + 1))


def search_space_table(
    snp_counts: Sequence[int] = PAPER_TABLE1_SNP_COUNTS,
    sizes: Sequence[int] = PAPER_TABLE1_SIZES,
) -> dict[int, dict[int, int]]:
    """The paper's Table 1: ``{haplotype size: {n_snps: count}}``."""
    return {
        size: {n: n_haplotypes_of_size(n, size) for n in snp_counts}
        for size in sizes
    }
