"""Shared-memory genotype store for the ``process-shm`` backend.

Second-generation PLINK attributes much of its scaling to keeping **one**
in-memory copy of the genotype matrix that every computation unit reads.
This module does the same for the worker farm: the case/control matrix is
written once into a :mod:`multiprocessing.shared_memory` segment, and every
slave process attaches to that segment and rebuilds a *view* — a
:class:`~repro.genetics.dataset.GenotypeDataset` whose arrays point straight
into the shared pages — instead of receiving a pickled copy of the data.

Layout: rows are re-ordered **affected first, then unaffected** (individuals
with unknown status are dropped — no evaluation ever reads them), each group
preserving its original relative order.  Group selection then happens by
basic slicing, which :meth:`GenotypeDataset.select_individuals` turns into
zero-copy views, so a worker's evaluator holds windows into the shared matrix
for the full dataset *and* for both groups.  The group-wise row order matches
what ``dataset.affected()`` / ``dataset.unaffected()`` produce on the
original dataset, so results are bit-identical to the in-memory path.

The genotype block is followed by the status vector in the same segment::

    [ genotypes int8 (n_individuals x n_snps) | status int8 (n_individuals) ]
"""

from __future__ import annotations

from dataclasses import dataclass, field
from multiprocessing import shared_memory

import numpy as np

from ..genetics.dataset import GenotypeDataset

__all__ = ["SharedDatasetHandle", "SharedGenotypeStore"]


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment.

    On Python < 3.13 attachments also register the segment name with the
    ``multiprocessing`` resource tracker.  The tracker keeps a *set* of
    names, so these re-registrations of the creating store's name are
    harmless no-ops — the entry is removed exactly once, when the store
    unlinks — and must **not** be compensated with an ``unregister`` call
    (that would remove the store's own entry and make the final unlink warn).
    """
    return shared_memory.SharedMemory(name=name)


@dataclass(frozen=True)
class SharedDatasetHandle:
    """Picklable pointer to a :class:`SharedGenotypeStore` segment.

    ``load()`` attaches to the segment and rebuilds a read-only
    :class:`GenotypeDataset` view (no genotype bytes are copied).  The handle
    keeps the attachment alive for its own lifetime, which — held inside a
    worker's evaluator factory — is the lifetime of the worker.
    """

    name: str
    n_individuals: int
    n_snps: int
    snp_names: tuple[str, ...]
    individual_ids: tuple[str, ...]
    _segments: list = field(default_factory=list, repr=False, compare=False)

    def __getstate__(self) -> dict:
        # live attachments are process-local; a pickled handle starts fresh
        state = self.__dict__.copy()
        state["_segments"] = []
        return state

    def load(self) -> GenotypeDataset:
        segment = _attach_segment(self.name)
        self._segments.append(segment)  # keep the mapping alive
        n, m = self.n_individuals, self.n_snps
        genotypes = np.frombuffer(segment.buf, dtype=np.int8, count=n * m).reshape(n, m)
        status = np.frombuffer(segment.buf, dtype=np.int8, count=n, offset=n * m)
        genotypes.flags.writeable = False
        status.flags.writeable = False
        return GenotypeDataset(
            genotypes,
            status,
            snp_names=self.snp_names,
            individual_ids=self.individual_ids,
        )

    def detach(self) -> None:
        """Drop this handle's attachments (in-process users only).

        Every dataset view obtained from :meth:`load` must be garbage first;
        worker processes never need this — they exit without tearing the
        mapping down.  Attachments whose buffers are still exported are left
        alone rather than invalidating live arrays.
        """
        remaining = []
        for segment in self._segments:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - live views still exported
                remaining.append(segment)
        self._segments[:] = remaining


class SharedGenotypeStore:
    """Owner of one shared-memory copy of a case/control genotype matrix.

    The creating process writes the (affected-first) matrix into a fresh
    segment and hands out :class:`SharedDatasetHandle` objects; workers
    attach through the handle.  The store must outlive every attachment and
    is responsible for unlinking the segment (``release()``, also available
    as a context manager).
    """

    def __init__(self, dataset: GenotypeDataset) -> None:
        order = np.concatenate(
            [np.flatnonzero(dataset.affected_mask), np.flatnonzero(dataset.unaffected_mask)]
        )
        if order.size == 0:
            raise ValueError("the dataset has no individuals with known status")
        genotypes = np.ascontiguousarray(dataset.genotypes[order], dtype=np.int8)
        status = np.ascontiguousarray(dataset.status[order], dtype=np.int8)
        n, m = genotypes.shape
        self._segment = shared_memory.SharedMemory(create=True, size=n * m + n)
        # explicit bounds: some platforms page-round the segment size upward
        buffer = np.frombuffer(self._segment.buf, dtype=np.int8)
        buffer[: n * m] = genotypes.ravel()
        buffer[n * m: n * m + n] = status
        del buffer  # drop the exported view so close() can release the mmap
        self._released = False
        self._handle = SharedDatasetHandle(
            name=self._segment.name,
            n_individuals=n,
            n_snps=m,
            snp_names=tuple(dataset.snp_names),
            individual_ids=tuple(dataset.individual_ids[i] for i in order),
        )

    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Name of the underlying shared-memory segment."""
        return self._segment.name

    @property
    def n_bytes(self) -> int:
        """Size of the shared segment in bytes."""
        return self._segment.size

    @property
    def handle(self) -> SharedDatasetHandle:
        """A picklable handle workers can :meth:`~SharedDatasetHandle.load`."""
        return self._handle

    def dataset(self) -> GenotypeDataset:
        """The store's own zero-copy view (master-side convenience)."""
        return self._handle.load()

    def release(self) -> None:
        """Close and unlink the segment; idempotent."""
        if self._released:
            return
        self._released = True
        self._segment.close()
        try:
            self._segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked elsewhere
            pass

    def __enter__(self) -> "SharedGenotypeStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown path
        try:
            self.release()
        except Exception:
            pass
