"""Tests of the GA configuration object."""

import pytest

from repro.core.config import GAConfig


class TestDefaultsMatchPaper:
    def test_paper_parameters(self):
        config = GAConfig()
        assert config.crossover_rate == pytest.approx(0.9)
        assert config.population_size == 150
        assert config.termination_stagnation == 100
        assert config.max_haplotype_size == 6
        assert config.random_immigrant_stagnation == 20

    def test_haplotype_sizes(self):
        config = GAConfig(min_haplotype_size=2, max_haplotype_size=6)
        assert config.haplotype_sizes == (2, 3, 4, 5, 6)
        assert config.n_subpopulations == 5

    def test_n_offspring_derived_from_crossover_rate(self):
        config = GAConfig(population_size=150, crossover_rate=0.9)
        assert config.n_offspring == round(0.9 * 150 / 2)
        explicit = GAConfig(offspring_per_generation=10)
        assert explicit.n_offspring == 10


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_haplotype_size": 0},
            {"max_haplotype_size": 1, "min_haplotype_size": 2},
            {"population_size": 3},
            {"crossover_rate": 0.0},
            {"crossover_rate": 1.5},
            {"mutation_rate": 0.0},
            {"min_operator_rate": 0.4, "mutation_rate": 0.5},
            {"min_operator_rate": 0.5, "crossover_rate": 0.9},
            {"point_mutation_trials": 0},
            {"tournament_size": 0},
            {"offspring_per_generation": 0},
            {"termination_stagnation": 0},
            {"max_generations": 0},
            {"max_evaluations": 0},
            {"random_immigrant_stagnation": 0},
            {"allocation": "bogus"},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GAConfig(**kwargs)


class TestSchemeToggles:
    def test_with_scheme_toggles_mechanisms(self):
        config = GAConfig()
        stripped = config.with_scheme(
            adaptive=False, size_mutations=False,
            inter_population_crossover=False, random_immigrants=False,
        )
        assert not stripped.use_adaptive_mutation
        assert not stripped.use_adaptive_crossover
        assert not stripped.use_size_mutations
        assert not stripped.use_inter_population_crossover
        assert not stripped.use_random_immigrants
        # original unchanged (frozen dataclass semantics)
        assert config.use_random_immigrants

    def test_with_scheme_partial(self):
        config = GAConfig().with_scheme(random_immigrants=False)
        assert not config.use_random_immigrants
        assert config.use_adaptive_mutation

    def test_with_seed(self):
        assert GAConfig(seed=1).with_seed(42).seed == 42
