"""Tests of the scan service: ``repro serve`` daemon, client, cache, admission.

Covers the cross-request window-result cache (bytes-budgeted LRU,
bit-identical replays), the cost-aware admission controller (per-client
caps, bounded queue, cost budget), per-tenant metrics, graceful SIGTERM
shutdown of the ``serve``/``worker`` daemons, the ``--connect``/``--status``
CLI paths and — as the acceptance check — a 201-locus scan served through
the daemon (cache cold and warm) fingerprint-identical to the in-process
scan on the ``process-shm`` and ``async`` backends.
"""

import os
import re
import signal
import subprocess
import sys
import threading
from multiprocessing.connection import Client
from pathlib import Path

import pytest

import repro
from repro.core.config import GAConfig
from repro.genetics.io import write_study_tables
from repro.genetics.simulate import (
    DiseaseModel,
    PopulationModel,
    simulate_case_control_study,
)
from repro.runtime.client import ScanClient, ServiceError
from repro.runtime.remote import default_authkey
from repro.runtime.server import (
    AdmissionController,
    AdmissionPolicy,
    AdmissionRejected,
    ScanServer,
    WindowResultCache,
    config_digest,
)
from repro.runtime.service import RunRequest, RunService
from repro.scan import run_scan

WINDOW_SIZE = 6
OVERLAP = 3

SCAN_CONFIG = GAConfig(
    population_size=8,
    min_haplotype_size=2,
    max_haplotype_size=3,
    termination_stagnation=2,
    max_generations=3,
    point_mutation_trials=1,
)


def _scan_key(report):
    return [(w.window.index, w.best_snps, w.best_fitness) for w in report.windows]


def _serve(dataset, **kwargs):
    """A started server on an ephemeral localhost port."""
    server = ScanServer(dataset, **kwargs)
    server.start(("127.0.0.1", 0))
    return server


class TestConfigDigest:
    def test_digest_is_stable_and_parameter_sensitive(self):
        a = GAConfig(population_size=8)
        assert config_digest(a) == config_digest(GAConfig(population_size=8))
        assert config_digest(a) != config_digest(GAConfig(population_size=9))
        assert config_digest(None) == config_digest(GAConfig())
        assert re.fullmatch(r"[0-9a-f]{16}", config_digest(a))


class TestWindowResultCache:
    def _payload(self, tag):
        return {"v": str(tag) * 10}  # 16-byte JSON body, stable size

    def test_hit_miss_and_lru_eviction(self):
        import json

        size = len(json.dumps(self._payload(0)))
        cache = WindowResultCache(max_bytes=2 * size)
        cache.put(("k", 1), self._payload(1))
        cache.put(("k", 2), self._payload(2))
        assert cache.n_entries == 2
        # a hit refreshes recency, so inserting a third evicts key 2
        assert cache.get(("k", 1)) == self._payload(1)
        cache.put(("k", 3), self._payload(3))
        assert cache.get(("k", 2)) is None
        assert cache.get(("k", 1)) == self._payload(1)
        assert cache.get(("k", 3)) == self._payload(3)
        snap = cache.snapshot()
        assert snap["n_evictions"] == 1
        assert snap["n_hits"] == 3
        assert snap["n_misses"] == 1
        assert snap["bytes"] == 2 * size <= snap["max_bytes"]

    def test_duplicate_put_is_a_no_op(self):
        cache = WindowResultCache(max_bytes=1 << 20)
        cache.put(("k",), self._payload(1))
        before = cache.bytes_used
        cache.put(("k",), self._payload(2))  # concurrent client lost the race
        assert cache.n_insertions == 1
        assert cache.bytes_used == before
        assert cache.get(("k",)) == self._payload(1)

    def test_oversized_payload_is_not_inserted(self):
        cache = WindowResultCache(max_bytes=4)
        cache.put(("k",), self._payload(1))
        assert cache.n_entries == 0
        assert cache.get(("k",)) is None

    def test_zero_budget_disables_the_cache(self):
        cache = WindowResultCache(max_bytes=0)
        cache.put(("k",), self._payload(1))
        assert cache.n_entries == 0
        assert cache.get(("k",)) is None

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            WindowResultCache(max_bytes=-1)


class TestAdmissionPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_active"):
            AdmissionPolicy(max_active=0)
        with pytest.raises(ValueError, match="max_inflight_per_client"):
            AdmissionPolicy(max_inflight_per_client=0)
        with pytest.raises(ValueError, match="max_queued"):
            AdmissionPolicy(max_queued=-1)
        with pytest.raises(ValueError, match="over_budget"):
            AdmissionPolicy(over_budget="drop")

    def test_to_json_carries_every_knob(self):
        policy = AdmissionPolicy(max_active=2, max_queued=5,
                                 max_inflight_per_client=1,
                                 max_outstanding_cost_seconds=3.5,
                                 over_budget="reject")
        assert policy.to_json() == {
            "max_active": 2,
            "max_queued": 5,
            "max_inflight_per_client": 1,
            "max_outstanding_cost_seconds": 3.5,
            "over_budget": "reject",
        }


class TestAdmissionController:
    def test_per_client_inflight_cap(self):
        controller = AdmissionController(
            AdmissionPolicy(max_active=4, max_inflight_per_client=1)
        )
        ticket = controller.admit("alice", 1.0)
        with pytest.raises(AdmissionRejected, match="in flight"):
            controller.admit("alice", 1.0)
        other = controller.admit("bob", 1.0)  # the cap is per client
        controller.release(ticket)
        controller.release(other)
        controller.release(controller.admit("alice", 1.0))
        assert controller.n_admitted == 3
        assert controller.n_rejected == 1

    def test_full_queue_rejects(self):
        controller = AdmissionController(
            AdmissionPolicy(max_active=1, max_queued=0)
        )
        ticket = controller.admit("alice", 1.0)
        with pytest.raises(AdmissionRejected, match="queue full"):
            controller.admit("bob", 1.0)
        controller.release(ticket)
        controller.release(controller.admit("bob", 1.0))
        assert controller.snapshot()["rejections"] == {"admission queue full": 1}

    def test_cost_budget_reject_versus_queue(self):
        rejecting = AdmissionController(
            AdmissionPolicy(max_active=4, max_outstanding_cost_seconds=1.0,
                            over_budget="reject")
        )
        ticket = rejecting.admit("alice", 0.8)
        with pytest.raises(AdmissionRejected, match="budget"):
            rejecting.admit("bob", 0.5)
        rejecting.release(ticket)
        # an empty service always admits, however expensive the request
        rejecting.release(rejecting.admit("bob", 99.0))

        queueing = AdmissionController(
            AdmissionPolicy(max_active=4, max_outstanding_cost_seconds=1.0,
                            over_budget="queue")
        )
        first = queueing.admit("alice", 0.8)
        second = queueing.admit("bob", 0.5)  # over budget, but queue-policy
        queueing.release(first)
        queueing.release(second)
        assert queueing.n_rejected == 0

    def test_queued_request_waits_for_a_slot(self):
        controller = AdmissionController(
            AdmissionPolicy(max_active=1, max_queued=4)
        )
        first = controller.admit("alice", 1.0)
        admitted = []

        def queued():
            ticket = controller.admit("bob", 1.0)
            admitted.append(ticket)
            controller.release(ticket)

        thread = threading.Thread(target=queued)
        thread.start()
        thread.join(timeout=0.2)
        assert thread.is_alive()  # still queued behind alice
        assert controller.snapshot()["n_queued"] == 1
        controller.release(first)
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert admitted and admitted[0].wait_seconds > 0.0


class TestScanService:
    """Socket round trips against a serial-backend daemon on the small panel."""

    def test_cold_and_warm_scans_match_the_in_process_scan(self, small_dataset):
        reference = run_scan(small_dataset, window_size=WINDOW_SIZE,
                             overlap=OVERLAP, config=SCAN_CONFIG, seed=11)
        with _serve(small_dataset) as server:
            with ScanClient(server.address, client_id="tenant-a") as client:
                info = client.info
                assert info["statistic"] == "t1"
                assert info["n_snps"] == small_dataset.n_snps
                assert info["panel_fingerprint"] == small_dataset.fingerprint()

                cold = client.scan(window_size=WINDOW_SIZE, overlap=OVERLAP,
                                   config=SCAN_CONFIG, seed=11)
                assert _scan_key(cold) == _scan_key(reference)
                assert cold.stats.counters() == reference.stats.counters()
                assert cold.n_cached_windows == 0

                warm = client.scan(window_size=WINDOW_SIZE, overlap=OVERLAP,
                                   config=SCAN_CONFIG, seed=11)
                assert _scan_key(warm) == _scan_key(reference)
                assert warm.n_cached_windows == reference.n_windows
                assert warm.stats.n_evaluations == 0
                assert warm.stats.n_result_cache_hits == reference.n_windows
                assert "replayed from the service result cache" in warm.format()

                # a different seed is a different cache key: recomputed, and
                # still bit-identical to the in-process scan of that seed
                other = client.scan(window_size=WINDOW_SIZE, overlap=OVERLAP,
                                    config=SCAN_CONFIG, seed=12)
                assert other.n_cached_windows == 0
            assert server.result_cache.n_hits == reference.n_windows
        assert _scan_key(other) == _scan_key(
            run_scan(small_dataset, window_size=WINDOW_SIZE, overlap=OVERLAP,
                     config=SCAN_CONFIG, seed=12)
        )

    def test_progress_callback_streams_windows_in_order(self, small_dataset):
        seen = []
        with _serve(small_dataset) as server:
            with ScanClient(server.address) as client:
                report = client.scan(window_size=WINDOW_SIZE, overlap=OVERLAP,
                                     config=SCAN_CONFIG, seed=11,
                                     progress=seen.append)
        assert [r.window.index for r in seen] == [
            r.window.index for r in report.windows
        ]
        assert [r.window.index for r in seen] == sorted(
            r.window.index for r in seen
        )

    def test_tenant_metrics_partition_by_client_id(self, small_dataset):
        with _serve(small_dataset) as server:
            with ScanClient(server.address, client_id="alice") as alice:
                cold = alice.scan(window_size=WINDOW_SIZE, overlap=OVERLAP,
                                  config=SCAN_CONFIG, seed=11)
            with ScanClient(server.address, client_id="bob") as bob:
                warm = bob.scan(window_size=WINDOW_SIZE, overlap=OVERLAP,
                                config=SCAN_CONFIG, seed=11)
                status = bob.status()
        n = cold.n_windows
        assert warm.n_cached_windows == n
        tenants = status["tenants"]
        assert tenants["alice"]["n_scans"] == 1
        assert tenants["alice"]["n_windows"] == n
        assert tenants["alice"]["n_result_cache_hits"] == 0
        assert tenants["alice"]["stats"]["n_evaluations"] > 0
        assert tenants["bob"]["n_result_cache_hits"] == n
        assert tenants["bob"]["stats"]["n_evaluations"] == 0
        assert status["result_cache"]["n_hits"] == n
        assert status["admission"]["n_admitted"] == 2
        assert "replayed from the cross-request cache" in status["summary"]

    def test_statistic_mismatch_is_an_error_not_a_second_farm(
        self, small_dataset
    ):
        with _serve(small_dataset) as server:
            with ScanClient(server.address) as client:
                with pytest.raises(ServiceError, match="one daemon per recipe"):
                    client.scan(window_size=WINDOW_SIZE, overlap=OVERLAP,
                                config=SCAN_CONFIG, seed=11, statistic="lrt")
                # the connection survives the refusal
                report = client.scan(window_size=WINDOW_SIZE, overlap=OVERLAP,
                                     config=SCAN_CONFIG, seed=11)
        assert report.n_windows > 0

    def test_run_envelope_matches_the_in_process_run(self, small_dataset):
        request = RunRequest(config=SCAN_CONFIG, seed=5)
        reference = RunService(small_dataset).run(request)
        with _serve(small_dataset) as server:
            with ScanClient(server.address, client_id="runner") as client:
                served = client.run(request)
                status = client.status()
        assert served.result.summary_rows() == reference.result.summary_rows()
        assert served.result.n_evaluations == reference.result.n_evaluations
        assert status["tenants"]["runner"]["n_runs"] == 1

    def test_rejections_travel_over_the_socket(self, small_dataset):
        policy = AdmissionPolicy(max_active=1, max_queued=0,
                                 max_inflight_per_client=1)
        with _serve(small_dataset, admission=policy) as server:
            # occupy the only slot so socket requests face a full service
            hog = server.admission.admit("alice", 1.0)
            with ScanClient(server.address, client_id="alice") as alice:
                with pytest.raises(AdmissionRejected, match="in flight"):
                    alice.scan(window_size=WINDOW_SIZE, overlap=OVERLAP,
                               config=SCAN_CONFIG, seed=11)
            with ScanClient(server.address, client_id="bob") as bob:
                with pytest.raises(AdmissionRejected, match="queue full"):
                    bob.scan(window_size=WINDOW_SIZE, overlap=OVERLAP,
                             config=SCAN_CONFIG, seed=11)
                server.admission.release(hog)
                report = bob.scan(window_size=WINDOW_SIZE, overlap=OVERLAP,
                                  config=SCAN_CONFIG, seed=11)
                status = bob.status()
        assert report.n_windows > 0
        assert status["tenants"]["alice"]["n_rejected"] == 1
        assert status["tenants"]["bob"]["n_rejected"] == 1

    def test_shutdown_command_stops_the_listener(self, small_dataset):
        with _serve(small_dataset) as server:
            address = server.address
            with ScanClient(address) as client:
                client.scan(window_size=WINDOW_SIZE, overlap=OVERLAP,
                            config=SCAN_CONFIG, seed=11)
                client.shutdown_server()
            server.wait(install_signal_handlers=False)  # returns: stop is set
            server.close()
            with pytest.raises((OSError, EOFError, ServiceError)):
                ScanClient(address)

    def test_malformed_hello_is_refused(self, small_dataset):
        with _serve(small_dataset) as server:
            conn = Client(tuple(server.address), authkey=default_authkey())
            try:
                conn.send("hello?")
                kind, message = conn.recv()
            finally:
                conn.close()
        assert kind == "error"
        assert "ClientHello" in message


def _cli_environment():
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p
    )
    return env


class TestDaemonSignals:
    """SIGTERM on the serve/worker daemons drains and exits zero."""

    def _spawn(self, argv):
        return subprocess.Popen(
            [sys.executable, "-m", "repro", *argv],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=_cli_environment(),
        )

    def test_serve_sigterm_drains_and_exits_zero(self, small_dataset, tmp_path):
        study = tmp_path / "study"
        write_study_tables(small_dataset, study)
        proc = self._spawn(
            ["serve", str(study), "--bind", "127.0.0.1:0", "--backend", "serial"]
        )
        try:
            banner = proc.stdout.readline()
            match = re.search(r"scan service on (\d+\.\d+\.\d+\.\d+:\d+)", banner)
            assert match, f"no address in banner: {banner!r}"
            with ScanClient(match.group(1), client_id="sigterm-test") as client:
                report = client.scan(window_size=WINDOW_SIZE, overlap=OVERLAP,
                                     config=SCAN_CONFIG, seed=11)
            assert report.n_windows > 0
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0
        assert "scan service shut down cleanly" in out

    def test_worker_sigterm_exits_zero(self):
        proc = self._spawn(["worker", "--bind", "127.0.0.1:0"])
        try:
            banner = proc.stdout.readline()
            assert "worker host listening" in banner
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0


@pytest.fixture(scope="module")
def chromosome_study():
    """The acceptance panel: 201 loci, same recipe as the scan tests."""
    model = PopulationModel(n_snps=201, block_size=6, within_block_correlation=0.4)
    disease = DiseaseModel(
        causal_snps=(20, 100, 180),
        risk_alleles=(2, 2, 2),
        baseline_penetrance=0.1,
        relative_risk=6.0,
        risk_haplotype_frequency=0.3,
    )
    return simulate_case_control_study(
        population_model=model,
        disease_model=disease,
        n_affected=20,
        n_unaffected=20,
        seed=31,
    )


class TestServedChromosomeScan:
    """Acceptance: a 201-locus scan served through the daemon — cache cold
    and cache warm — is fingerprint-identical to the in-process scan."""

    WINDOW_SIZE = 4
    OVERLAP = 2

    @pytest.fixture(scope="class")
    def acceptance_config(self):
        return GAConfig(
            population_size=6,
            min_haplotype_size=2,
            max_haplotype_size=2,
            termination_stagnation=1,
            max_generations=2,
            point_mutation_trials=1,
        )

    @pytest.mark.parametrize("backend", ["process-shm", "async"])
    def test_served_scan_is_bit_identical_cold_and_warm(
        self, chromosome_study, acceptance_config, backend
    ):
        dataset = chromosome_study.dataset
        assert dataset.n_snps >= 200
        reference = run_scan(
            dataset, window_size=self.WINDOW_SIZE, overlap=self.OVERLAP,
            config=acceptance_config, seed=17, backend=backend, n_workers=2,
        )
        assert reference.n_windows >= 100
        with _serve(dataset, backend=backend, n_workers=2) as server:
            with ScanClient(server.address, client_id=f"acc-{backend}") as client:
                cold = client.scan(
                    window_size=self.WINDOW_SIZE, overlap=self.OVERLAP,
                    config=acceptance_config, seed=17,
                )
                warm = client.scan(
                    window_size=self.WINDOW_SIZE, overlap=self.OVERLAP,
                    config=acceptance_config, seed=17,
                )
        assert _scan_key(cold) == _scan_key(reference)
        assert cold.stats.counters() == reference.stats.counters()
        assert cold.n_cached_windows == 0
        assert _scan_key(warm) == _scan_key(reference)
        assert warm.n_cached_windows == reference.n_windows
        assert warm.stats.n_evaluations == 0


class TestServeCli:
    def test_scan_connect_then_status(self, small_dataset, capsys):
        from repro.cli import main

        with _serve(small_dataset) as server:
            argv = [
                "scan", "--connect", server.host, "--client-id", "cli-tenant",
                "--window-size", str(WINDOW_SIZE),
                "--window-overlap", str(OVERLAP),
                "--population-size", "8", "--max-size", "3",
                "--stagnation", "2", "--max-generations", "3",
                "--seed", "11", "--top", "2",
            ]
            assert main(argv) == 0
            cold_out = capsys.readouterr().out
            assert "windows" in cold_out
            assert main(argv) == 0  # identical request: replayed
            warm_out = capsys.readouterr().out
            assert "replayed from the service result cache" in warm_out
            assert main(["serve", "--bind", server.host, "--status"]) == 0
            status_out = capsys.readouterr().out
        assert "scan service on serial" in status_out
        assert "tenant cli-tenant" in status_out
        assert "result cache" in status_out

    def test_run_connect(self, small_dataset, capsys):
        from repro.cli import main

        with _serve(small_dataset) as server:
            exit_code = main([
                "run", "--connect", server.host,
                "--population-size", "12", "--max-size", "3",
                "--stagnation", "2", "--max-generations", "4", "--seed", "3",
            ])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert f"served by {server.host}" in out

    def test_connect_refuses_local_execution_flags(self, capsys):
        from repro.cli import main

        # validated before any connection is attempted: no daemon needed
        assert main(["scan", "some-study", "--connect", "127.0.0.1:1",
                     "--window-size", "4"]) == 2
        assert "cannot be combined" in capsys.readouterr().err
        assert main(["run", "some-study", "--connect", "127.0.0.1:1"]) == 2
        assert "drop the study argument" in capsys.readouterr().err
