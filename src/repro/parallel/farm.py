"""Chunked worker farm: affinity queues, work stealing, streamed completions.

The seed master/slave evaluator reproduced the paper's protocol literally —
one individual per message through a :class:`multiprocessing.Pool` — which has
two structural costs the paper's C/PVM implementation did not pay:

* every individual is a separate task message (scheduling + IPC overhead per
  haplotype instead of per chunk);
* a ``Pool`` hands tasks to *whichever* worker is free, so a haplotype that is
  re-requested in a later generation usually lands on a different slave than
  the one whose caches already hold its phase expansions and EM result.

This module keeps per-slave ownership (the master routes each distinct
haplotype to the slave that owns it — a deterministic function of the sorted
SNP tuple — so slave-side caches survive across generations) but the dispatch
engine itself is asynchronous:

* work is submitted as **tickets** (:meth:`ChunkedWorkerFarm.submit`) whose
  chunks are queued master-side in per-slave *affinity queues*;
* completions stream back over per-slave result pipes (no writer lock shared
  between slaves, so a dying slave cannot wedge the survivors) and are folded
  into their ticket as they arrive (:meth:`~ChunkedWorkerFarm.collect` /
  :meth:`~ChunkedWorkerFarm.as_completed`) instead of being barrier-joined;
* in **steal mode** each slave holds only a bounded number of in-flight
  chunks; when a slave drains its own affinity queue the master refills it
  from the *longest* other queue (work stealing on behalf of the idle slave —
  the master is the only party with global queue knowledge, exactly as in the
  paper's master/slave organisation), so one slow slave or one expensive
  chunk no longer stalls the whole generation;
* with ``steal_mode="shm"`` the per-slave queues move into a shared-memory
  deque region (:mod:`repro.parallel.shm_deques`): the master *seeds* rings
  of encoded chunks and idle slaves refill themselves — popping their own
  ring in affinity order, stealing from the tail of the longest other ring —
  without any master round trip per chunk; the master only harvests
  completions over the per-slave result pipes.  Results, counters and the
  recovery contract are identical to master-mediated dispatch.

The synchronous entry point :meth:`~ChunkedWorkerFarm.evaluate` is
``collect(submit(batch))`` and, with ``steal=False`` (the default), dispatches
every chunk to its affinity owner up front — the exact behaviour of the
synchronous farm.  Inside the slave a chunk runs through the batch fast path
(a worker-local :class:`~repro.parallel.serial.SerialEvaluator` with its own
LRU); per-chunk counters and timings travel back with the results and are
merged into the farm's :class:`~repro.parallel.base.EvaluationStats`, so the
counter parity with the serial path holds under stealing too (fitness values
are a pure function of the haplotype, not of the slave that computes them).
"""

from __future__ import annotations

import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as _connection_wait
from queue import Empty
from typing import Callable, Iterable, Iterator, Sequence

from .base import (
    FitnessCallable,
    SnpSet,
    default_mp_context,
    validate_chunk_size,
    validate_worker_count,
)
from .pvm import EvaluationCostModel
from .shm_deques import SharedChunkDeques, SharedDequeHandle, encoded_chunk_ints

__all__ = [
    "ChunkStats",
    "ChunkedWorkerFarm",
    "FarmDeadError",
    "FarmRecoveryPolicy",
    "affinity_worker",
    "cost_balanced_chunks",
]


class FarmDeadError(RuntimeError):
    """The farm lost its slave processes and cannot finish outstanding work.

    Raised (and remembered — every later ``submit``/``collect`` re-raises it)
    when a worker dies and no :class:`FarmRecoveryPolicy` is installed, or
    when recovery is enabled but no worker survives.  :attr:`lost_tickets`
    lists the tickets whose batches were in flight when the farm died.
    """

    def __init__(self, message: str, lost_tickets: Sequence[int] = ()) -> None:
        super().__init__(message)
        self.lost_tickets = tuple(lost_tickets)


@dataclass(frozen=True)
class FarmRecoveryPolicy:
    """Self-healing policy of a :class:`ChunkedWorkerFarm`.

    Fitness is a pure function of the haplotype and every chunk is fully
    described master-side, so work lost to a dead or hung slave can be
    replayed bit-identically on a survivor.  With a policy installed the farm
    does exactly that instead of raising :class:`FarmDeadError`:

    * a dead slave's in-flight and queued chunks are requeued onto survivors
      (in-flight replays are bounded by ``max_chunk_retries``; a chunk lost
      more often surfaces as a per-ticket error through the existing
      error-isolation path, never a farm-wide crash);
    * with ``respawn=True`` the slave is restarted in place (at most
      ``max_worker_restarts`` restarts over the farm's lifetime), restoring
      full capacity;
    * with a ``chunk_timeout`` each dispatched chunk carries a soft deadline
      of ``chunk_timeout + timeout_cost_factor * modelled_cost(chunk)``
      seconds (scaled by the farm's cost model, so a legitimately expensive
      large-haplotype chunk is not mistaken for a hang); a slave whose chunk
      is overdue is treated as dead — terminated, its work replayed.  The
      deadline clock starts at dispatch, so prefer steal mode (bounded
      in-flight chunks) over the all-upfront synchronous dispatch when using
      timeouts.
    """

    respawn: bool = False
    max_worker_restarts: int = 2
    max_chunk_retries: int = 2
    chunk_timeout: float | None = None
    timeout_cost_factor: float = 8.0

    def __post_init__(self) -> None:
        if (
            not isinstance(self.max_worker_restarts, int)
            or isinstance(self.max_worker_restarts, bool)
            or self.max_worker_restarts < 0
        ):
            raise ValueError(
                f"max_worker_restarts must be a non-negative integer, "
                f"got {self.max_worker_restarts!r}"
            )
        if (
            not isinstance(self.max_chunk_retries, int)
            or isinstance(self.max_chunk_retries, bool)
            or self.max_chunk_retries < 1
        ):
            raise ValueError(
                f"max_chunk_retries must be a positive integer, "
                f"got {self.max_chunk_retries!r}"
            )
        if self.chunk_timeout is not None and not self.chunk_timeout > 0:
            raise ValueError(
                f"chunk_timeout must be positive or None, got {self.chunk_timeout!r}"
            )
        if self.timeout_cost_factor < 0:
            raise ValueError(
                f"timeout_cost_factor must be non-negative, "
                f"got {self.timeout_cost_factor!r}"
            )


def cost_balanced_chunks(
    indices: Sequence[int], costs: Sequence[float], target_cost: float
) -> list[list[int]]:
    """Pack an ordered index run into contiguous chunks of ~equal modelled cost.

    Greedy: indices accumulate into the current chunk until its summed cost
    reaches ``target_cost``, so a size-7 haplotype (exponentially more
    expensive under the paper's Figure-4 cost model) fills a chunk almost by
    itself while size-3 candidates travel dozens to a message — every chunk
    then represents a comparable slice of *work*, which is what the stealing
    engine balances.
    """
    if target_cost <= 0:
        return [list(indices)] if len(indices) else []
    chunks: list[list[int]] = []
    current: list[int] = []
    accumulated = 0.0
    for index, cost in zip(indices, costs):
        current.append(index)
        accumulated += cost
        if accumulated >= target_cost:
            chunks.append(current)
            current, accumulated = [], 0.0
    if current:
        chunks.append(current)
    return chunks

#: A picklable zero-argument callable building the worker's fitness function.
#: Called exactly once per slave process ("the slaves access only once to the
#: data"); the result is wrapped in the worker-local batch evaluator.
EvaluatorFactory = Callable[[], FitnessCallable]


@dataclass(frozen=True)
class ChunkStats:
    """Per-chunk accounting a slave reports back with its results."""

    n_requests: int
    n_evaluations: int
    n_cache_hits: int
    seconds: float
    n_stacked_em: int = 0
    n_stacked_problems: int = 0


def affinity_worker(key: tuple[int, ...], n_workers: int) -> int:
    """Deterministic owner slave of a haplotype (stable across generations).

    Hashing the sorted SNP tuple — integers hash reproducibly, unaffected by
    ``PYTHONHASHSEED`` — pins every haplotype to one slave, so that slave's
    expansion/result caches keep working when the haplotype returns in a later
    generation.
    """
    return hash(key) % n_workers


def _build_local_evaluator(
    worker_id: int, factory: EvaluatorFactory, worker_cache_size: int | None, outbox
):
    """Build a slave's batch evaluator, reporting start-up failures in-band.

    Returns ``None`` after sending the startup-error message (the master
    raises it out of the collect loop).
    """
    from .serial import SerialEvaluator

    try:
        fitness = factory()
        return SerialEvaluator(fitness, cache_size=worker_cache_size)
    except Exception:
        try:
            outbox.send((None, worker_id, None, None, traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
        return None


def _evaluate_chunk(local, task_id: int, worker_id: int, chunk) -> tuple:
    """Evaluate one chunk on a slave's local evaluator; build the reply message.

    Shared by every slave loop (inbox-fed, shared-memory deque, remote
    socket) so the protocol — values + per-chunk stats, or the traceback of
    an in-band error — is identical on every transport.
    """
    try:
        before = local.stats.copy()
        start = time.perf_counter()
        values = local.evaluate_batch(chunk)
        elapsed = time.perf_counter() - start
        delta = local.stats.since(before)
        stats = ChunkStats(
            n_requests=delta.n_requests,
            n_evaluations=delta.n_evaluations,
            n_cache_hits=delta.n_cache_hits + delta.n_dedup_hits,
            seconds=elapsed,
            n_stacked_em=delta.n_stacked_em,
            n_stacked_problems=delta.n_stacked_problems,
        )
        return (task_id, worker_id, values, stats, None)
    except Exception:
        return (task_id, worker_id, None, None, traceback.format_exc())


def _farm_worker_main(
    worker_id: int,
    factory: EvaluatorFactory,
    worker_cache_size: int | None,
    inbox,
    outbox,
) -> None:
    """Slave loop: build the evaluator once, then evaluate chunks until told to stop.

    ``outbox`` is this slave's *private* result pipe (a ``Connection``, not a
    shared queue): a slave killed mid-send can only tear its own channel, it
    can never wedge the other slaves behind a shared writer lock.  A send
    failing because the master closed the pipe (shutdown) ends the loop.
    """
    local = _build_local_evaluator(worker_id, factory, worker_cache_size, outbox)
    if local is None:  # pragma: no cover - exercised via the startup-error test
        return
    while True:
        message = inbox.get()
        if message is None:
            break
        task_id, chunk = message
        reply = _evaluate_chunk(local, task_id, worker_id, chunk)
        try:
            outbox.send(reply)
        except (BrokenPipeError, OSError):  # pragma: no cover - master gone
            return


#: shm-deque slaves poll their inbox at this cadence while every ring is
#: empty (the only time they touch the inbox at all: chunks come from the
#: rings, the inbox carries just the stop sentinel)
_SHM_IDLE_POLL_SECONDS = 0.01


def _farm_worker_shm_main(
    worker_id: int,
    factory: EvaluatorFactory,
    worker_cache_size: int | None,
    inbox,
    outbox,
    deque_handle: SharedDequeHandle,
    steal: bool,
) -> None:
    """Self-serving slave loop over the shared-memory deques.

    The slave takes its next chunk straight from the shared rings — its own
    ring first (affinity/FIFO order), the tail of the longest other ring when
    idle and ``steal`` is on — so between chunks there is no master round
    trip at all.  The claimed cell is set by ``take`` and cleared only
    *after* the result was sent: a crash at any point in between leaves the
    master an exact record of what to replay.
    """
    local = _build_local_evaluator(worker_id, factory, worker_cache_size, outbox)
    if local is None:  # pragma: no cover - exercised via the startup-error test
        return
    deques = deque_handle.attach()
    try:
        while True:
            taken = deques.take(worker_id, steal=steal)
            if taken is None:
                try:
                    message = inbox.get(timeout=_SHM_IDLE_POLL_SECONDS)
                except Empty:
                    continue
                if message is None:
                    break
                continue  # anything else is a wake nudge: re-check the rings
            task_id, chunk = taken
            reply = _evaluate_chunk(local, task_id, worker_id, chunk)
            try:
                outbox.send(reply)
            except (BrokenPipeError, OSError):  # pragma: no cover - master gone
                return
            deques.clear_claimed(worker_id)
    finally:
        deques.detach()


class _Ticket:
    """Master-side state of one submitted batch (results fill in as chunks land)."""

    __slots__ = (
        "ticket_id", "results", "remaining", "n_requests", "n_evaluations",
        "n_cache_hits", "seconds", "n_stacked_em", "n_stacked_problems", "error",
    )

    def __init__(self, ticket_id: int, batch_size: int) -> None:
        self.ticket_id = ticket_id
        self.results: list[float] = [0.0] * batch_size
        self.remaining: set[int] = set()  # outstanding task ids (queued or in flight)
        self.n_requests = 0
        self.n_evaluations = 0
        self.n_cache_hits = 0
        self.seconds = 0.0
        self.n_stacked_em = 0
        self.n_stacked_problems = 0
        self.error: str | None = None

    @property
    def done(self) -> bool:
        return self.error is not None or not self.remaining

    def stats(self) -> ChunkStats:
        return ChunkStats(
            self.n_requests,
            self.n_evaluations,
            self.n_cache_hits,
            self.seconds,
            self.n_stacked_em,
            self.n_stacked_problems,
        )


@dataclass
class _Dispatch:
    """Master-side record of one chunk currently inside a slave's inbox."""

    worker: int
    chunk: list
    deadline: float | None  # monotonic soft deadline (None: no chunk_timeout)


class ChunkedWorkerFarm:
    """A farm of slave processes fed through master-side affinity queues.

    Parameters
    ----------
    factory:
        Picklable zero-argument callable; each slave calls it once to build
        its fitness function (ship a pickled evaluator, or attach to a
        shared-memory genotype store).
    n_workers:
        Number of slave processes.
    chunk_size:
        Maximum number of haplotypes per message.  ``None`` sends each
        slave's whole share of a batch as a single chunk when ``steal`` is
        off (one message per slave per generation — the synchronous-farm
        optimum for homogeneous slaves); in steal mode ``None`` sizes chunks
        from the ``cost_model`` and the batch's composition, cutting each
        slave's share into stealable pieces of ~equal modelled cost (so one
        expensive large-haplotype chunk no longer hides a whole queue of
        cheap work behind it).  An explicit ``chunk_size`` keeps the fixed
        count-based slicing.
    cost_model:
        Evaluation-cost model used by the cost-driven auto chunking (default:
        the paper's Figure-4 calibration; the scheduler passes its own
        calibrated model through the backend layer).
    worker_cache_size:
        Bound of each slave's local fitness LRU (``0`` disables slave-side
        result reuse, e.g. for timing studies).
    start_method:
        ``multiprocessing`` start method (default: ``fork`` where available).
    steal:
        Enable work stealing: each slave holds at most ``max_inflight``
        chunks; an idle slave is refilled from the longest other affinity
        queue.  Fitness values are identical either way (they depend only on
        the haplotype), only which slave's caches serve a re-request changes.
    steal_mode:
        ``"master"`` (default) keeps the chunk queues master-side: idle
        slaves are refilled — and steal — through the master's dispatch
        engine, one round trip per chunk.  ``"shm"`` moves the queues into a
        shared-memory deque region (:mod:`repro.parallel.shm_deques`): the
        master seeds rings of encoded chunks and slaves self-serve, popping
        their own ring and (with ``steal=True``) stealing from the tail of
        the longest other ring, with no master round trip between chunks.
        Results and counters are identical in both modes; ``"shm"`` rejects
        a recovery ``chunk_timeout`` (a chunk may legitimately sit unclaimed
        in a ring, so a dispatch-time deadline would misfire).
    max_inflight:
        Master steal mode only: in-flight chunk bound per slave (default 2 —
        one computing, one buffered, the rest stealable).  With
        ``steal_mode="shm"`` the rings *are* the slave-side buffer and every
        chunk in them is stealable, so no bound is needed.
    deque_slots, deque_slot_ints:
        ``steal_mode="shm"`` only: the shared arena's slot count and
        per-slot payload capacity (int64 words).  Chunks too big for a slot
        are split; when every slot is in use the master stages the overflow
        and pushes as results free slots.
    recovery:
        Optional :class:`FarmRecoveryPolicy`.  Without one (the default) a
        dead slave raises :class:`FarmDeadError`; with one the farm heals
        itself — lost chunks are replayed bit-identically on survivors, dead
        slaves are optionally respawned, and hung slaves are reaped via the
        policy's ``chunk_timeout``.

    The farm is a context manager; :meth:`close` and :meth:`terminate` are
    idempotent (double ``__exit__`` included) and safe after worker crashes —
    shutdown closes every result pipe and detaches every inbox's feeder
    thread so it can never hang on a half-flushed pipe.
    """

    _RESULT_POLL_SECONDS = 0.5
    #: steal mode: auto chunking targets this many stealable chunks per slave
    _STEAL_CHUNKS_PER_WORKER = 4
    _STEAL_MODES = ("master", "shm")

    def __init__(
        self,
        factory: EvaluatorFactory,
        n_workers: int,
        *,
        chunk_size: int | None = None,
        worker_cache_size: int | None = 4096,
        start_method: str | None = None,
        steal: bool = False,
        steal_mode: str = "master",
        max_inflight: int = 2,
        cost_model: EvaluationCostModel | None = None,
        recovery: FarmRecoveryPolicy | None = None,
        deque_slots: int | None = None,
        deque_slot_ints: int | None = None,
    ) -> None:
        if n_workers is None:
            raise ValueError("n_workers must be a positive integer, got None")
        validate_worker_count(n_workers)
        validate_chunk_size(chunk_size)
        if not isinstance(max_inflight, int) or isinstance(max_inflight, bool) or max_inflight < 1:
            raise ValueError(f"max_inflight must be a positive integer, got {max_inflight!r}")
        if recovery is not None and not isinstance(recovery, FarmRecoveryPolicy):
            raise TypeError(f"recovery must be a FarmRecoveryPolicy or None, got {recovery!r}")
        if steal_mode not in self._STEAL_MODES:
            raise ValueError(
                f"steal_mode must be one of {self._STEAL_MODES}, got {steal_mode!r}"
            )
        if steal_mode == "shm" and recovery is not None and recovery.chunk_timeout is not None:
            raise ValueError(
                "chunk_timeout is incompatible with steal_mode='shm': a chunk "
                "may sit unclaimed in a shared ring for arbitrarily long, so a "
                "dispatch-time deadline would reap healthy slaves"
            )
        context = default_mp_context(start_method)
        self._context = context
        self._factory = factory
        self._worker_cache_size = worker_cache_size
        self._recovery = recovery
        self._n_workers = n_workers
        self._chunk_size = chunk_size
        self._cost_model = cost_model if cost_model is not None else EvaluationCostModel()
        self._steal = bool(steal)
        self._steal_mode = steal_mode
        self._max_inflight = max_inflight
        self._inboxes = []
        self._result_conns: list = []
        self._processes = []
        self._closed = False
        # engine state (all master-side; guarded by _lock so the ticket API is
        # safe to drive from the scheduler's job threads).  The blocking
        # result-pipe wait happens *outside* the lock — one thread drains at
        # a time (_draining) while other waiters sleep on the condition, so a
        # long batch never serialises unrelated submits/collects.
        self._lock = threading.RLock()
        self._progress = threading.Condition(self._lock)
        self._draining = False
        self._next_task_id = 0  # monotone across the farm's lifetime: stale
        # results of a failed ticket can never collide with a later ticket's
        # task ids (unknown ids are drained and discarded)
        self._next_ticket_id = 0
        self._tickets: dict[int, _Ticket] = {}
        #: task id -> (ticket id, positions of the chunk within the batch)
        self._task_info: dict[int, tuple[int, list[int]]] = {}
        #: per-slave affinity queues of not-yet-dispatched (task_id, chunk)
        self._queues: list[deque] = [deque() for _ in range(n_workers)]
        #: chunks currently inside each slave's inbox / being evaluated
        self._inflight: list[int] = [0] * n_workers
        # recovery state: which slaves are believed alive, what each one is
        # working on (for replay), how often each task's chunk was already
        # replayed, and the farm-lifetime recovery counters
        self._alive: list[bool] = [True] * n_workers
        self._inflight_tasks: dict[int, _Dispatch] = {}
        self._retries: dict[int, int] = {}
        self._restarts_used = 0
        self._n_worker_deaths = 0
        self._n_chunks_replayed = 0
        self._n_worker_respawns = 0
        self._dead_error: FarmDeadError | None = None
        # shm steal mode: the shared deque region plus the master-side slot
        # bookkeeping (task id -> arena slot, freed when its result lands)
        self._deques: SharedChunkDeques | None = None
        self._slot_of_task: dict[int, int] = {}
        if steal_mode == "shm":
            deque_kwargs = {}
            if deque_slots is not None:
                deque_kwargs["n_slots"] = deque_slots
            if deque_slot_ints is not None:
                deque_kwargs["slot_ints"] = deque_slot_ints
            self._deques = SharedChunkDeques(n_workers, context=context, **deque_kwargs)
        try:
            for worker_id in range(n_workers):
                self._inboxes.append(None)
                self._result_conns.append(None)
                self._processes.append(None)
                self._spawn_worker(worker_id)
        except BaseException:
            if self._deques is not None:
                self._deques.close()
            raise

    def _spawn_worker(self, worker_id: int) -> None:
        """(Re)start the slave in slot ``worker_id`` with a fresh inbox/pipe.

        Each slave reports results over its own one-way pipe: there is no
        writer lock shared between slaves, so a slave killed mid-send (the
        way a SIGKILLed or OOM-killed node dies) cannot wedge the survivors.
        The master closes its copy of the send end so a dead slave's channel
        reads as EOF instead of blocking.
        """
        inbox = self._context.Queue()
        recv_conn, send_conn = self._context.Pipe(duplex=False)
        if self._deques is not None:
            target, extra = _farm_worker_shm_main, (self._deques.handle(), self._steal)
        else:
            target, extra = _farm_worker_main, ()
        process = self._context.Process(
            target=target,
            args=(worker_id, self._factory, self._worker_cache_size, inbox, send_conn)
            + extra,
            daemon=True,
        )
        process.start()
        send_conn.close()
        self._close_conn(self._result_conns[worker_id])
        self._inboxes[worker_id] = inbox
        self._result_conns[worker_id] = recv_conn
        self._processes[worker_id] = process
        self._inflight[worker_id] = 0
        self._alive[worker_id] = True

    @staticmethod
    def _close_conn(conn) -> None:
        if conn is None:
            return
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass

    # ------------------------------------------------------------------ #
    @property
    def n_workers(self) -> int:
        return self._n_workers

    @property
    def n_alive_workers(self) -> int:
        """Slaves currently believed alive (death is detected lazily on poll)."""
        with self._lock:
            return sum(self._alive)

    @property
    def recovery(self) -> FarmRecoveryPolicy | None:
        return self._recovery

    def recovery_counters(self) -> dict[str, int]:
        """Monotone counts of recovery events over the farm's lifetime."""
        with self._lock:
            return {
                "n_worker_deaths": self._n_worker_deaths,
                "n_chunks_replayed": self._n_chunks_replayed,
                "n_worker_respawns": self._n_worker_respawns,
            }

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def steal(self) -> bool:
        return self._steal

    @property
    def steal_mode(self) -> str:
        """Where the chunk queues live: ``"master"`` or ``"shm"``."""
        return self._steal_mode

    def _chunk_cost_target(self, batch: Sequence[tuple[int, ...]]) -> float:
        """Per-chunk cost budget for one batch under the farm's cost model.

        The batch's total modelled cost is spread over a few stealable chunks
        per slave, so chunk boundaries land where the *work* divides evenly
        rather than where the candidate count does.
        """
        total = float(
            sum(self._cost_model.cost(len(key)) for key in batch)
        )
        return total / (self._n_workers * self._STEAL_CHUNKS_PER_WORKER)

    def _chunks_for_worker(
        self,
        indices: list[int],
        batch: Sequence[tuple[int, ...]],
        cost_target: float | None,
    ) -> list[list[int]]:
        size = self._chunk_size
        if size is not None:
            return [indices[i: i + size] for i in range(0, len(indices), size)]
        if not self._steal:
            # synchronous-farm optimum: the slave's whole share in one message
            return [indices]
        # a share of one unsplittable chunk cannot be stolen; cut it into
        # pieces of ~equal modelled cost so imbalance has somewhere to go
        costs = [self._cost_model.cost(len(batch[i])) for i in indices]
        return cost_balanced_chunks(indices, costs, cost_target or 0.0)

    def _split_for_slots(
        self, indices: list[int], batch: Sequence[tuple[int, ...]]
    ) -> list[list[int]]:
        """Split a chunk whose encoding would overflow one shm ring slot."""
        limit = self._deques.slot_ints
        parts: list[list[int]] = []
        current: list[int] = []
        used = 2  # header: task_id + n_keys
        for index in indices:
            need = 1 + len(batch[index])
            if current and used + need > limit:
                parts.append(current)
                current, used = [], 2
            current.append(index)
            used += need
        if current:
            parts.append(current)
        return parts

    # ------------------------------------------------------------------ #
    # the dispatch engine
    # ------------------------------------------------------------------ #
    def _on_result_channel_error(self, conn) -> None:
        """Transport hook: a result channel failed mid-recv (default no-op —
        process transports rely on the ``is_alive`` health pass instead)."""

    def _handle_control_message(self, message) -> bool:
        """Transport hook: consume non-result traffic on the result channel.

        Returns True when ``message`` was control traffic (e.g. a remote
        host's heartbeat) and must not be folded in as a chunk result.  The
        local process transport has no control traffic, so the default
        recognises nothing.
        """
        return False

    def _send_message(self, worker: int, message) -> None:
        """Deliver one protocol message to a slave (transport hook)."""
        self._inboxes[worker].put(message)

    def _dispatch(self, worker: int, task_id: int, chunk) -> None:
        deadline = None
        policy = self._recovery
        if policy is not None and policy.chunk_timeout is not None:
            modelled = sum(self._cost_model.cost(len(key)) for key in chunk)
            deadline = (
                time.monotonic()
                + policy.chunk_timeout
                + policy.timeout_cost_factor * modelled
            )
        self._send_message(worker, (task_id, chunk))
        self._inflight[worker] += 1
        self._inflight_tasks[task_id] = _Dispatch(worker, chunk, deadline)

    def _push_shm(self, worker: int, task_id: int, chunk) -> bool:
        """Seed one chunk into a slave's shared ring; False when the arena is
        full (the chunk stays staged master-side until results free slots)."""
        slot = self._deques.push(worker, task_id, chunk)
        if slot is None:
            return False
        self._slot_of_task[task_id] = slot
        self._inflight[worker] += 1
        self._inflight_tasks[task_id] = _Dispatch(worker, chunk, None)
        return True

    def _steal_source(self, thief: int) -> int | None:
        """The slave whose affinity queue the idle ``thief`` should steal from."""
        longest, length = None, 0
        for worker in range(self._n_workers):
            if worker == thief:
                continue
            queued = len(self._queues[worker])
            if queued > length:
                longest, length = worker, queued
        return longest

    def _pump(self) -> None:
        """Dispatch queued chunks within the in-flight bounds (steal when idle)."""
        if self._deques is not None:
            # shm mode: seed everything into the rings — the rings are the
            # slave-side buffer and (with steal on) every entry is stealable,
            # so there is nothing for a master-side in-flight bound to do
            for worker, queue in enumerate(self._queues):
                if not self._alive[worker]:
                    continue  # drained and rerouted when the death was seen
                while queue:
                    task_id, chunk = queue[0]
                    if not self._push_shm(worker, task_id, chunk):
                        return  # arena full; retried as results free slots
                    queue.popleft()
            return
        if not self._steal:
            # synchronous-farm behaviour: everything goes to its owner upfront
            for worker, queue in enumerate(self._queues):
                while queue and self._alive[worker]:
                    task_id, chunk = queue.popleft()
                    self._dispatch(worker, task_id, chunk)
            return
        progress = True
        while progress:
            progress = False
            for worker in range(self._n_workers):
                if not self._alive[worker]:
                    continue
                if self._inflight[worker] >= self._max_inflight:
                    continue
                if self._queues[worker]:
                    task_id, chunk = self._queues[worker].popleft()
                elif (source := self._steal_source(worker)) is not None:
                    # steal from the *tail* of the longest queue: the head is
                    # next in line for its owner, the tail is the work least
                    # likely to benefit from the owner's caches soon
                    task_id, chunk = self._queues[source].pop()
                else:
                    continue
                self._dispatch(worker, task_id, chunk)
                progress = True

    def _fail_ticket(self, ticket: _Ticket, error: str) -> None:
        ticket.error = error
        for queue in self._queues:
            retained = [
                (task_id, chunk)
                for task_id, chunk in queue
                if self._task_info.get(task_id, (None,))[0] != ticket.ticket_id
            ]
            queue.clear()
            queue.extend(retained)
        if self._deques is not None:
            # pull the ticket's not-yet-claimed chunks out of the shared
            # rings; chunks a slave already claimed finish and come back as
            # stale results (their slots are freed on receipt)
            resident = {
                task_id for task_id in ticket.remaining
                if task_id in self._slot_of_task
            }
            for slot, task_id in self._deques.remove_tasks(resident):
                self._deques.free_slot(slot)
                self._slot_of_task.pop(task_id, None)
                dispatch = self._inflight_tasks.pop(task_id, None)
                if dispatch is not None and self._inflight[dispatch.worker] > 0:
                    self._inflight[dispatch.worker] -= 1
        for task_id in list(ticket.remaining):
            self._task_info.pop(task_id, None)
            self._retries.pop(task_id, None)
        ticket.remaining.clear()

    # ------------------------------------------------------------------ #
    # self-healing: death/hang detection, chunk replay, respawn
    # ------------------------------------------------------------------ #
    def _raise_if_dead(self) -> None:
        if self._dead_error is not None:
            raise self._dead_error

    def _fail_farm(self, reason: str) -> None:
        """No capacity left: remember the terminal error and raise it."""
        lost = sorted(
            ticket_id for ticket_id, ticket in self._tickets.items() if not ticket.done
        )
        error = FarmDeadError(
            f"worker farm is dead: {reason}; lost ticket(s) {lost}",
            lost_tickets=lost,
        )
        self._dead_error = error
        raise error

    def _affinity_target(self, key: tuple[int, ...]) -> int:
        """The key's owner slave, rerouted deterministically if the owner died."""
        owner = affinity_worker(key, self._n_workers)
        if self._alive[owner]:
            return owner
        survivors = [w for w in range(self._n_workers) if self._alive[w]]
        return survivors[hash(key) % len(survivors)]

    def _worker_is_alive(self, worker: int) -> bool:
        """Transport hook: is the worker's process/connection still healthy?"""
        return self._processes[worker].is_alive()

    def _worker_lost_reason(self, worker: int) -> str:
        """Transport hook: describe why :meth:`_worker_is_alive` went false."""
        exitcode = self._processes[worker].exitcode
        return f"worker process {worker} died (exit code {exitcode})"

    def _kill_worker(self, worker: int) -> None:
        """Transport hook: forcefully stop a hung worker."""
        process = self._processes[worker]
        process.terminate()
        process.join(timeout=5.0)

    def _check_farm_health(self) -> None:
        """Poll-timeout health pass: reap dead slaves, expire overdue chunks.

        Called with the engine lock held whenever the result wait times out —
        the farm deadline the collect loop is bounded by, so a farm whose
        every slave died raises instead of spinning forever.
        """
        if self._closed or self._dead_error is not None:
            return
        for worker in range(self._n_workers):
            if self._alive[worker] and not self._worker_is_alive(worker):
                self._on_worker_lost(worker, self._worker_lost_reason(worker))
        policy = self._recovery
        if policy is None or policy.chunk_timeout is None:
            return
        now = time.monotonic()
        overdue = sorted({
            dispatch.worker
            for dispatch in self._inflight_tasks.values()
            if dispatch.deadline is not None
            and now > dispatch.deadline
            and self._alive[dispatch.worker]
        })
        for worker in overdue:
            self._kill_worker(worker)
            self._on_worker_lost(
                worker,
                f"worker process {worker} exceeded its chunk deadline and was "
                f"terminated as hung",
            )

    def _reclaim_worker(self, worker: int) -> tuple[list, list]:
        """Pull back everything a dead slave was responsible for.

        Returns ``(lost, orphaned)`` as ``(task_id, chunk)`` lists: *lost*
        chunks were in the dead slave's hands (retry-charged replays);
        *orphaned* chunks were merely parked on it and are rerouted free.
        """
        if self._deques is None:
            lost = [
                (task_id, dispatch.chunk)
                for task_id, dispatch in self._inflight_tasks.items()
                if dispatch.worker == worker
            ]
            for task_id, _chunk in lost:
                del self._inflight_tasks[task_id]
            self._inflight[worker] = 0
            orphaned = list(self._queues[worker])
            self._queues[worker].clear()
            return lost, orphaned
        # shm mode: the dead slave's ring (and any claimed-but-unreported
        # chunk) is the ground truth — `_Dispatch.worker` records which ring a
        # chunk was pushed to, not who claimed it, so a thief may legitimately
        # still be working a chunk "belonging" to the dead slave's ring.
        orphaned = list(self._queues[worker])
        self._queues[worker].clear()
        ring_entries, claimed_task = self._deques.drain_worker(worker)
        self._inflight[worker] = 0
        for slot, task_id in ring_entries:
            self._deques.free_slot(slot)
            self._slot_of_task.pop(task_id, None)
            dispatch = self._inflight_tasks.pop(task_id, None)
            if dispatch is not None:
                orphaned.append((task_id, dispatch.chunk))
        lost = []
        if claimed_task is not None:
            slot = self._slot_of_task.pop(claimed_task, None)
            if slot is not None:
                self._deques.free_slot(slot)
            dispatch = self._inflight_tasks.pop(claimed_task, None)
            if dispatch is not None:
                # died between claiming and reporting: a true in-hand loss
                # (the claimed chunk may have been stolen from another ring)
                if self._inflight[dispatch.worker] > 0:
                    self._inflight[dispatch.worker] -= 1
                lost.append((claimed_task, dispatch.chunk))
        return lost, orphaned

    def _respawn_worker(self, worker: int) -> bool:
        """Transport hook: bring a replacement worker up; True on success."""
        self._retire_queue(self._inboxes[worker])
        self._spawn_worker(worker)  # also swaps in a fresh result pipe
        return True

    def _on_worker_lost(self, worker: int, reason: str) -> None:
        """A slave died (or hung past its deadline): heal or fail the farm."""
        self._alive[worker] = False
        self._n_worker_deaths += 1
        if self._recovery is None:
            # legacy behaviour, now with a terminal, non-spinning error
            self._fail_farm(f"{reason} while evaluating a batch")
        # reclaim everything the dead slave was responsible for
        lost, orphaned = self._reclaim_worker(worker)
        policy = self._recovery
        if policy.respawn and self._restarts_used < policy.max_worker_restarts:
            self._restarts_used += 1
            if self._respawn_worker(worker):
                self._n_worker_respawns += 1
            else:
                self._close_conn(self._result_conns[worker])
                self._result_conns[worker] = None
        else:
            self._close_conn(self._result_conns[worker])
            self._result_conns[worker] = None
        if not any(self._alive):
            self._fail_farm(f"{reason}; no surviving workers")
        # in-flight chunks are bounded-retry replays; never-dispatched queued
        # chunks are simply rerouted (no retry charged)
        for task_id, chunk in lost:
            self._replay_chunk(task_id, chunk)
        for task_id, chunk in orphaned:
            self._queues[self._affinity_target(chunk[0])].append((task_id, chunk))
        self._pump()

    def _replay_chunk(self, task_id: int, chunk: list) -> None:
        """Requeue a lost in-flight chunk under a fresh task id (bit-identical
        by purity; the fresh id makes any late duplicate result stale)."""
        info = self._task_info.pop(task_id, None)
        retries = self._retries.pop(task_id, 0)
        if info is None:
            return  # its ticket already failed; nothing to replay
        ticket_id, positions = info
        ticket = self._tickets[ticket_id]
        ticket.remaining.discard(task_id)
        if retries >= self._recovery.max_chunk_retries:
            self._fail_ticket(
                ticket,
                f"a chunk was lost to worker death/hang {retries + 1} time(s); "
                f"giving up on this ticket "
                f"(max_chunk_retries={self._recovery.max_chunk_retries})",
            )
            return
        new_id = self._next_task_id
        self._next_task_id += 1
        self._task_info[new_id] = (ticket_id, positions)
        self._retries[new_id] = retries + 1
        ticket.remaining.add(new_id)
        self._n_chunks_replayed += 1
        self._queues[self._affinity_target(chunk[0])].append((new_id, chunk))

    @staticmethod
    def _retire_queue(queue) -> None:
        """Detach a queue's feeder thread so shutdown can never block on it."""
        try:
            queue.close()
            queue.cancel_join_thread()
        except (OSError, ValueError):  # pragma: no cover - queue already gone
            pass

    def _drain_one(self) -> bool:
        """Receive and fold in one result message; False when none arrived.

        The blocking wait on the slaves' result pipes runs without the engine
        lock; only the folding of the message into engine state is locked.  A
        poll timeout — and any pipe found torn or at EOF, the signature of a
        slave that died mid-send — runs a health pass over the slaves (death
        + hang detection), which is what turns a broken channel into a
        reaped-and-replayed worker instead of a wedged farm.
        """
        with self._lock:
            conns = [
                conn
                for worker, conn in enumerate(self._result_conns)
                if self._alive[worker] and conn is not None and not conn.closed
            ]
        message = None
        for conn in _connection_wait(conns, timeout=self._RESULT_POLL_SECONDS):
            try:
                message = conn.recv()
                break
            except Exception:
                # EOF, a closed fd or a torn pickle: leave it to the health
                # pass (the owning slave is dead or dying; its chunks get
                # replayed)
                self._on_result_channel_error(conn)
                continue
        if message is None:
            with self._lock:
                self._check_farm_health()
            return False
        if self._handle_control_message(message):
            return True
        received_id, worker_id, values, stats, error = message
        if received_id is None:
            raise RuntimeError(f"a worker failed during start-up:\n{error}")
        with self._lock:
            if self._deques is not None:
                # free the ring slot even for stale results: the slot was
                # reserved for exactly this task id, so any report of it —
                # live or stale — retires the reservation
                slot = self._slot_of_task.pop(received_id, None)
                if slot is not None:
                    self._deques.free_slot(slot)
            # release the slot only for a tracked dispatch: a late result of a
            # chunk already replayed elsewhere must not free anyone's slot
            dispatch = self._inflight_tasks.pop(received_id, None)
            if dispatch is not None and self._inflight[dispatch.worker] > 0:
                self._inflight[dispatch.worker] -= 1
            self._retries.pop(received_id, None)
            info = self._task_info.pop(received_id, None)
            if info is None:
                # stale message (result or error) from a ticket that a worker
                # error already aborted, or a replayed chunk's late duplicate
                self._pump()
                return True
            ticket_id, positions = info
            ticket = self._tickets[ticket_id]
            if error is not None:
                self._fail_ticket(ticket, error)
                self._pump()
                return True
            for position, value in zip(positions, values):
                ticket.results[position] = float(value)
            ticket.n_requests += stats.n_requests
            ticket.n_evaluations += stats.n_evaluations
            ticket.n_cache_hits += stats.n_cache_hits
            ticket.seconds += stats.seconds
            ticket.n_stacked_em += stats.n_stacked_em
            ticket.n_stacked_problems += stats.n_stacked_problems
            ticket.remaining.discard(received_id)
            self._pump()
        return True

    def _wait_for_progress(self) -> None:
        """Drain one message, or wait for the thread that is already draining.

        Exactly one thread blocks on the result pipes at a time; everyone else
        sleeps on the condition and re-checks their ticket when woken.
        """
        with self._lock:
            if self._draining:
                self._progress.wait(timeout=self._RESULT_POLL_SECONDS)
                return
            self._draining = True
        try:
            self._drain_one()
        finally:
            with self._lock:
                self._draining = False
                self._progress.notify_all()

    # ------------------------------------------------------------------ #
    # the ticket API
    # ------------------------------------------------------------------ #
    def submit(self, batch: Sequence[tuple[int, ...]]) -> int:
        """Queue one batch for evaluation; returns a ticket for :meth:`collect`.

        Chunks are appended to their owner slaves' affinity queues and
        dispatched by the engine (bounded + stealing in steal mode, all
        upfront otherwise).  Completions are folded in whenever any
        :meth:`collect` / :meth:`as_completed` call pumps the engine.
        """
        if self._closed:
            raise RuntimeError("the worker farm has been closed")
        # sorted keys: affinity routing must see one canonical form per
        # haplotype or (5, 2) and (2, 5) would land on different slaves
        batch = [tuple(sorted(int(s) for s in snps)) for snps in batch]
        with self._lock:
            self._raise_if_dead()
            ticket = _Ticket(self._next_ticket_id, len(batch))
            self._next_ticket_id += 1
            self._tickets[ticket.ticket_id] = ticket
            by_worker: dict[int, list[int]] = {}
            for index, key in enumerate(batch):
                by_worker.setdefault(self._affinity_target(key), []).append(index)
            cost_target = (
                self._chunk_cost_target(batch)
                if self._chunk_size is None and self._steal
                else None
            )
            for worker, indices in sorted(by_worker.items()):
                chunk_runs = self._chunks_for_worker(indices, batch, cost_target)
                if self._deques is not None:
                    chunk_runs = [
                        part
                        for run in chunk_runs
                        for part in self._split_for_slots(run, batch)
                    ]
                for chunk_indices in chunk_runs:
                    chunk = [batch[i] for i in chunk_indices]
                    task_id = self._next_task_id
                    self._next_task_id += 1
                    self._task_info[task_id] = (ticket.ticket_id, chunk_indices)
                    ticket.remaining.add(task_id)
                    self._queues[worker].append((task_id, chunk))
            self._pump()
            return ticket.ticket_id

    def collect(self, ticket_id: int) -> tuple[list[float], ChunkStats]:
        """Block until the ticket's batch is fully evaluated; return its results.

        Completions of *other* tickets received while waiting are folded into
        their own state (and can be collected later without blocking) —
        concurrent collects of different tickets from different threads make
        progress together.
        """
        while True:
            with self._lock:
                ticket = self._tickets.get(ticket_id)
                if ticket is None:
                    raise KeyError(
                        f"unknown or already-collected ticket {ticket_id!r}"
                    )
                if ticket.done:
                    del self._tickets[ticket_id]
                    break
                self._raise_if_dead()
            self._wait_for_progress()
        if ticket.error is not None:
            raise RuntimeError(
                f"a worker failed while evaluating a chunk:\n{ticket.error}"
            )
        return ticket.results, ticket.stats()

    def as_completed(
        self, ticket_ids: Iterable[int]
    ) -> Iterator[tuple[int, list[float], ChunkStats]]:
        """Yield ``(ticket, values, stats)`` for each ticket as it completes."""
        outstanding = list(ticket_ids)
        while outstanding:
            ready = None
            with self._lock:
                for ticket_id in outstanding:
                    ticket = self._tickets.get(ticket_id)
                    if ticket is None:
                        raise KeyError(
                            f"unknown or already-collected ticket {ticket_id!r}"
                        )
                    if ticket.done:
                        ready = ticket_id
                        break
                if ready is None:
                    self._raise_if_dead()
            if ready is None:
                self._wait_for_progress()
                continue
            values, stats = self.collect(ready)
            outstanding.remove(ready)
            yield ready, values, stats

    def evaluate(
        self, batch: Sequence[tuple[int, ...]]
    ) -> tuple[list[float], ChunkStats]:
        """Scatter one batch across the slaves; block until fully gathered.

        Returns the fitnesses in batch order plus the merged per-chunk stats.
        """
        if self._closed:
            raise RuntimeError("the worker farm has been closed")
        if not batch:
            return [], ChunkStats(0, 0, 0, 0.0)
        return self.collect(self.submit(batch))

    # ------------------------------------------------------------------ #
    def close(self, *, join_timeout: float = 5.0) -> None:
        """Stop the slaves and reap them; idempotent, crash-safe, never hangs."""
        self._shutdown(force=False, join_timeout=join_timeout)

    def terminate(self) -> None:
        """Forcefully kill the slaves; idempotent."""
        self._shutdown(force=True, join_timeout=5.0)

    def _shutdown(self, *, force: bool, join_timeout: float) -> None:
        """Reap every slave (escalating sentinel → terminate → kill), then
        detach every queue and pipe so shutdown survives crashed workers.

        A worker that died mid-chunk leaves its inbox feeder half-flushed and
        its unread messages buffered; a plain ``join`` on those queues (what
        ``Queue.__del__``'s default join_thread does) can hang forever.
        Every inbox is closed with ``cancel_join_thread`` and every result
        pipe simply closed — nothing here blocks without a timeout.
        """
        if self._closed:
            return
        self._closed = True
        self._shutdown_transport(force=force, join_timeout=join_timeout)
        if self._deques is not None:
            self._deques.close()
        with self._lock:
            for affinity_queue in self._queues:
                affinity_queue.clear()
            self._inflight_tasks.clear()
            self._task_info.clear()
            self._retries.clear()
            self._slot_of_task.clear()

    def _shutdown_transport(self, *, force: bool, join_timeout: float) -> None:
        """Transport hook: reap slaves and detach their channels."""
        if force:
            for process in self._processes:
                if process.is_alive():
                    process.terminate()
        else:
            for inbox in self._inboxes:
                try:
                    inbox.put(None)
                except (OSError, ValueError):  # pragma: no cover - queue gone
                    pass
        for process in self._processes:
            process.join(timeout=join_timeout)
            if process.is_alive():
                process.terminate()
                process.join(timeout=join_timeout)
            if process.is_alive():  # pragma: no cover - terminate ignored
                process.kill()
                process.join(timeout=join_timeout)
        for conn in self._result_conns:
            self._close_conn(conn)
        for queue in self._inboxes:
            self._retire_queue(queue)

    def __enter__(self) -> "ChunkedWorkerFarm":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
