"""Shared-memory genotype store for the ``process-shm`` backend.

Second-generation PLINK attributes much of its scaling to keeping **one**
in-memory copy of the genotype matrix that every computation unit reads.
This module does the same for the worker farm: the case/control matrix is
written once into a :mod:`multiprocessing.shared_memory` segment, and every
slave process attaches to that segment and rebuilds a *view* — a
:class:`~repro.genetics.dataset.GenotypeDataset` whose arrays point straight
into the shared pages — instead of receiving a pickled copy of the data.

Layout: rows are re-ordered **affected first, then unaffected** (individuals
with unknown status are dropped — no evaluation ever reads them), each group
preserving its original relative order.  Group selection then happens by
basic slicing, which :meth:`GenotypeDataset.select_individuals` turns into
zero-copy views, so a worker's evaluator holds windows into the shared matrix
for the full dataset *and* for both groups.  The group-wise row order matches
what ``dataset.affected()`` / ``dataset.unaffected()`` produce on the
original dataset, so results are bit-identical to the in-memory path.

The genotype block is followed by the status vector in the same segment::

    [ genotypes int8 (n_individuals x n_snps) | status int8 (n_individuals) ]

With ``packed=True`` the store writes the 2-bit packed panel instead — the
PLINK-style representation (4 genotypes per byte, SNP-major, missing as the
fourth state) — shrinking the segment ~4×::

    [ packed uint8 (n_snps x ceil(n_individuals/4)) | status int8 (n_individuals) ]

Workers then rebuild *packed-native* datasets whose affected/unaffected
groups are bit-offset views of the shared packed bytes, and phase expansions
are counted straight from the packed columns.  A handle can opt out with
``unpack_on_attach=True``, rebuilding a plain byte-matrix dataset on attach
(one private unpacked copy per worker, byte-path kernels).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from multiprocessing import shared_memory

import numpy as np

from ..genetics.dataset import GenotypeDataset, WindowPlan
from ..genetics.packed import PackedPanel, pack_genotypes, packed_width

__all__ = ["SharedDatasetHandle", "SharedGenotypeStore", "ShardedGenotypeStore"]


def _as_contiguous_int8(array: np.ndarray) -> np.ndarray:
    """``array`` itself when it is already contiguous int8, else a copy.

    The store only reads from the result, so an existing view (e.g. the
    read-only ``dataset.genotypes`` of an affected-first dataset) is used
    as-is instead of being duplicated.
    """
    if array.dtype == np.int8 and array.flags.c_contiguous:
        return array
    return np.ascontiguousarray(array, dtype=np.int8)


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment.

    On Python < 3.13 attachments also register the segment name with the
    ``multiprocessing`` resource tracker.  The tracker keeps a *set* of
    names, so these re-registrations of the creating store's name are
    harmless no-ops — the entry is removed exactly once, when the store
    unlinks — and must **not** be compensated with an ``unregister`` call
    (that would remove the store's own entry and make the final unlink warn).
    """
    return shared_memory.SharedMemory(name=name)


@dataclass(frozen=True)
class SharedDatasetHandle:
    """Picklable pointer to a :class:`SharedGenotypeStore` segment.

    ``load()`` attaches to the segment and rebuilds a read-only
    :class:`GenotypeDataset` view (no genotype bytes are copied).  The handle
    keeps the attachment alive for its own lifetime, which — held inside a
    worker's evaluator factory — is the lifetime of the worker.

    ``column_window`` is the sharded-store fast path: when set to
    ``(start, stop)``, ``load()`` returns a view of only those genotype
    *columns* (a basic column slice of the shared matrix — still zero-copy),
    so per-window workers of a genome-scale scan attach to the one full-panel
    segment but see exactly their locus window.
    """

    name: str
    n_individuals: int
    n_snps: int
    snp_names: tuple[str, ...]
    individual_ids: tuple[str, ...]
    column_window: tuple[int, int] | None = None
    packed: bool = False
    unpack_on_attach: bool = False
    _segments: list = field(default_factory=list, repr=False, compare=False)

    def __getstate__(self) -> dict:
        # live attachments are process-local; a pickled handle starts fresh
        state = self.__dict__.copy()
        state["_segments"] = []
        return state

    def __post_init__(self) -> None:
        if self.column_window is not None:
            start, stop = self.column_window
            if not 0 <= start < stop <= self.n_snps:
                raise ValueError(
                    f"column_window [{start}, {stop}) out of range for "
                    f"{self.n_snps} SNPs"
                )

    def load(self) -> GenotypeDataset:
        segment = _attach_segment(self.name)
        self._segments.append(segment)  # keep the mapping alive
        n, m = self.n_individuals, self.n_snps
        if self.packed:
            return self._load_packed(segment)
        genotypes = np.frombuffer(segment.buf, dtype=np.int8, count=n * m).reshape(n, m)
        status = np.frombuffer(segment.buf, dtype=np.int8, count=n, offset=n * m)
        genotypes.flags.writeable = False
        status.flags.writeable = False
        snp_names = self.snp_names
        if self.column_window is not None:
            start, stop = self.column_window
            genotypes = genotypes[:, start:stop]  # basic slice: still a view
            snp_names = snp_names[start:stop]
        return GenotypeDataset(
            genotypes,
            status,
            snp_names=snp_names,
            individual_ids=self.individual_ids,
        )

    def _load_packed(self, segment: shared_memory.SharedMemory) -> GenotypeDataset:
        n, m = self.n_individuals, self.n_snps
        width = packed_width(n)
        data = np.frombuffer(segment.buf, dtype=np.uint8, count=m * width).reshape(m, width)
        status = np.frombuffer(segment.buf, dtype=np.int8, count=n, offset=m * width)
        data.flags.writeable = False
        status.flags.writeable = False
        snp_names = self.snp_names
        if self.column_window is not None:
            start, stop = self.column_window
            data = data[start:stop]  # SNP-major: a column window is a row slice
            snp_names = snp_names[start:stop]
        panel = PackedPanel(data, n)
        if self.unpack_on_attach:
            # private byte copy, byte-path kernels (opt-out escape hatch)
            return GenotypeDataset(
                panel.unpack(),
                status,
                snp_names=snp_names,
                individual_ids=self.individual_ids,
            )
        return GenotypeDataset(
            None,
            status,
            snp_names=snp_names,
            individual_ids=self.individual_ids,
            packed=panel,
        )

    def with_unpack_on_attach(self, flag: bool = True) -> "SharedDatasetHandle":
        """This handle with the attach-time unpack behaviour toggled."""
        return dataclasses.replace(self, unpack_on_attach=bool(flag), _segments=[])

    def window(self, start: int, stop: int) -> "SharedDatasetHandle":
        """A handle onto the same segment restricted to columns ``[start, stop)``.

        Windows compose against the *full* panel, not against this handle's
        own window (a windowed handle cannot be re-windowed).
        """
        if self.column_window is not None:
            raise ValueError("cannot re-window an already windowed handle")
        return SharedDatasetHandle(
            name=self.name,
            n_individuals=self.n_individuals,
            n_snps=self.n_snps,
            snp_names=self.snp_names,
            individual_ids=self.individual_ids,
            column_window=(int(start), int(stop)),
            packed=self.packed,
            unpack_on_attach=self.unpack_on_attach,
        )

    def detach(self) -> None:
        """Drop this handle's attachments (in-process users only).

        Every dataset view obtained from :meth:`load` must be garbage first;
        worker processes never need this — they exit without tearing the
        mapping down.  Attachments whose buffers are still exported are left
        alone rather than invalidating live arrays.
        """
        remaining = []
        for segment in self._segments:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - live views still exported
                remaining.append(segment)
        self._segments[:] = remaining


class SharedGenotypeStore:
    """Owner of one shared-memory copy of a case/control genotype matrix.

    The creating process writes the (affected-first) matrix into a fresh
    segment and hands out :class:`SharedDatasetHandle` objects; workers
    attach through the handle.  The store must outlive every attachment and
    is responsible for unlinking the segment (``release()``, also available
    as a context manager).
    """

    def __init__(
        self,
        dataset: GenotypeDataset,
        *,
        packed: bool = False,
        unpack_on_attach: bool = False,
    ) -> None:
        order = np.concatenate(
            [np.flatnonzero(dataset.affected_mask), np.flatnonzero(dataset.unaffected_mask)]
        )
        if order.size == 0:
            raise ValueError("the dataset has no individuals with known status")
        n = order.size
        m = dataset.n_snps
        identity = n == dataset.n_individuals and np.array_equal(order, np.arange(n))
        status = _as_contiguous_int8(
            dataset.status if identity else dataset.status[order]
        )
        if packed:
            panel = self._affected_first_panel(dataset, order, identity)
            payload = np.ascontiguousarray(panel.data).view(np.uint8).ravel()
        else:
            genotypes = _as_contiguous_int8(
                dataset.genotypes if identity else dataset.genotypes[order]
            )
            payload = genotypes.view(np.uint8).ravel()
        self._segment = shared_memory.SharedMemory(create=True, size=payload.size + n)
        # explicit bounds: some platforms page-round the segment size upward
        buffer = np.frombuffer(self._segment.buf, dtype=np.uint8)
        buffer[: payload.size] = payload
        buffer[payload.size : payload.size + n] = status.view(np.uint8)
        del buffer  # drop the exported view so close() can release the mmap
        self._released = False
        self._handle = SharedDatasetHandle(
            name=self._segment.name,
            n_individuals=n,
            n_snps=m,
            snp_names=tuple(dataset.snp_names),
            individual_ids=tuple(dataset.individual_ids[i] for i in order),
            packed=bool(packed),
            unpack_on_attach=bool(packed and unpack_on_attach),
        )

    @staticmethod
    def _affected_first_panel(
        dataset: GenotypeDataset, order: np.ndarray, identity: bool
    ) -> PackedPanel:
        """The dataset's rows in ``order``, as a canonical packed panel.

        An existing panel already in segment layout (row 0 at bit 0, no spare
        capacity bytes) is reused without copying; otherwise the rows are
        re-packed — chunk-wise from a packed source, directly from bytes
        otherwise.
        """
        source = dataset.packed
        if source is not None:
            canonical = source.row_start == 0 and source.data.shape[1] == packed_width(
                source.n_individuals
            )
            if identity and canonical:
                return source
            return source.reorder_individuals(order)
        rows = dataset.genotypes if identity else dataset.genotypes[order]
        return PackedPanel(pack_genotypes(rows), order.size)

    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Name of the underlying shared-memory segment."""
        return self._segment.name

    @property
    def n_bytes(self) -> int:
        """Size of the shared segment in bytes."""
        return self._segment.size

    @property
    def handle(self) -> SharedDatasetHandle:
        """A picklable handle workers can :meth:`~SharedDatasetHandle.load`."""
        return self._handle

    def dataset(self) -> GenotypeDataset:
        """The store's own zero-copy view (master-side convenience)."""
        return self._handle.load()

    def release(self) -> None:
        """Close and unlink the segment; idempotent."""
        if self._released:
            return
        self._released = True
        self._segment.close()
        try:
            self._segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked elsewhere
            pass

    def __enter__(self) -> "SharedGenotypeStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __del__(self) -> None:  # pragma: no cover - interpreter shutdown path
        try:
            self.release()
        except Exception:
            pass


class ShardedGenotypeStore:
    """One shared-memory panel copy serving many locus-window views.

    The genome-scale scan subsystem slices a chromosome-scale panel into
    overlapping windows (:func:`repro.genetics.dataset.plan_windows`), and
    every window's GA run needs the window's genotype columns.  Copying the
    sub-panel per window would undo the one-copy property PLINK-style systems
    get their scaling from, so this store writes the **full** panel into a
    single :class:`SharedGenotypeStore` segment (affected-first row layout,
    unchanged) and registers per-window :class:`SharedDatasetHandle` objects
    against it: each handle attaches to the same segment and views only its
    column window.  N windows therefore cost one genotype copy total, and a
    worker holding the full-panel handle serves *every* window.
    """

    def __init__(
        self,
        dataset: GenotypeDataset,
        plan: WindowPlan | None = None,
        *,
        packed: bool = False,
        unpack_on_attach: bool = False,
    ) -> None:
        if plan is not None and plan.n_snps != dataset.n_snps:
            raise ValueError(
                f"plan covers {plan.n_snps} SNPs but the dataset has {dataset.n_snps}"
            )
        self._store = SharedGenotypeStore(
            dataset, packed=packed, unpack_on_attach=unpack_on_attach
        )
        self._plan = plan
        self._window_handles: dict[tuple[int, int], SharedDatasetHandle] = {}

    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Name of the underlying shared-memory segment (one for all windows)."""
        return self._store.name

    @property
    def n_bytes(self) -> int:
        return self._store.n_bytes

    @property
    def plan(self) -> WindowPlan | None:
        return self._plan

    @property
    def handle(self) -> SharedDatasetHandle:
        """Full-panel handle (identical to :class:`SharedGenotypeStore`'s)."""
        return self._store.handle

    def window_handle(self, start: int, stop: int) -> SharedDatasetHandle:
        """A picklable handle restricted to the locus window ``[start, stop)``.

        Handles are memoised per window, so repeatedly scheduling the same
        window reuses one registration.
        """
        key = (int(start), int(stop))
        handle = self._window_handles.get(key)
        if handle is None:
            handle = self._store.handle.window(*key)
            self._window_handles[key] = handle
        return handle

    def window_handles(self) -> tuple[SharedDatasetHandle, ...]:
        """One handle per window of the store's plan (requires a plan)."""
        if self._plan is None:
            raise ValueError("the store was created without a WindowPlan")
        return tuple(self.window_handle(w.start, w.stop) for w in self._plan.windows)

    def dataset(self) -> GenotypeDataset:
        """The store's own zero-copy full-panel view."""
        return self._store.dataset()

    def release(self) -> None:
        """Close and unlink the shared segment; idempotent."""
        for handle in self._window_handles.values():
            handle.detach()
        self._store.handle.detach()
        self._store.release()

    def __enter__(self) -> "ShardedGenotypeStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()
