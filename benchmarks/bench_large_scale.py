"""Benchmark: the larger 249-SNP experiment (paper Section 5).

Besides the 51-SNP study the paper reports "other experiments, but not so
complete ... with larger files (249 SNPs)" on which the algorithm remained
usable and robust.  This benchmark runs the GA on the 249-SNP / 176-individual
simulated analogue (70 unknown-status individuals included, as in the paper)
with a reduced budget, checking that

* the run completes and produces one best haplotype per size,
* the explored fraction of the (much larger) search space stays negligible,
* fitness still grows with the haplotype size.
"""

from __future__ import annotations

import math

from repro.core.ga import AdaptiveMultiPopulationGA
from repro.experiments.datasets import large249
from repro.experiments.table2 import paper_scale_config, quick_config
from repro.stats.evaluation import HaplotypeEvaluator


def test_large_scale_249_snps(benchmark, scale):
    study = large249()
    dataset = study.dataset
    assert dataset.n_snps == 249 and dataset.n_individuals == 176
    evaluator = HaplotypeEvaluator(dataset)
    if scale == "paper":
        config = paper_scale_config(max_generations=300)
    else:
        config = quick_config(
            population_size=60, max_haplotype_size=5,
            termination_stagnation=8, max_generations=25,
        )

    def run_once():
        ga = AdaptiveMultiPopulationGA(
            evaluator, n_snps=dataset.n_snps, config=config
        )
        return ga.run()

    result = benchmark.pedantic(run_once, rounds=1, iterations=1)

    assert set(result.best_per_size) == set(config.haplotype_sizes)
    fitnesses = [result.best_per_size[s].fitness_value() for s in sorted(result.best_per_size)]
    assert fitnesses[-1] > fitnesses[0]
    searchable = sum(math.comb(249, k) for k in config.haplotype_sizes)
    assert result.n_evaluations / searchable < 1e-3
    print()
    print(f"249-SNP run: {result.n_evaluations} evaluations, "
          f"{result.n_generations} generations ({result.termination_reason})")
    for size in sorted(result.best_per_size):
        individual = result.best_per_size[size]
        print(f"  size {size}: {individual.snps} fitness {individual.fitness_value():.2f}")
