"""Round-trip tests of the dataset I/O formats."""

import numpy as np
import pytest

from repro.genetics.frequencies import snp_frequency_table
from repro.genetics.io import (
    read_frequency_table,
    read_genotype_csv,
    read_ld_table,
    read_ped,
    read_study_tables,
    write_frequency_table,
    write_genotype_csv,
    write_ld_table,
    write_ped,
    write_study_tables,
)
from repro.genetics.ld import pairwise_ld_table
from repro.genetics.simulate import lille_like_study


@pytest.fixture(scope="module")
def dataset():
    return lille_like_study(seed=9, n_affected=12, n_unaffected=12, n_snps=16,
                            missing_rate=0.05).dataset


class TestGenotypeCSV:
    def test_roundtrip(self, dataset, tmp_path):
        path = tmp_path / "genotypes.csv"
        write_genotype_csv(dataset, path)
        loaded = read_genotype_csv(path)
        assert loaded == dataset

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("foo,bar\n")
        with pytest.raises(ValueError):
            read_genotype_csv(path)

    def test_malformed_row_rejected(self, dataset, tmp_path):
        path = tmp_path / "genotypes.csv"
        write_genotype_csv(dataset, path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("extra,affected\n")
        with pytest.raises(ValueError, match="expected"):
            read_genotype_csv(path)

    def test_unknown_status_label_rejected(self, tmp_path):
        path = tmp_path / "bad_status.csv"
        path.write_text("individual_id,status,snp0\nind0,sick,1\n")
        with pytest.raises(ValueError, match="unknown status"):
            read_genotype_csv(path)


class TestPed:
    def test_roundtrip_preserves_genotypes_and_status(self, dataset, tmp_path):
        path = tmp_path / "study.ped"
        write_ped(dataset, path)
        loaded = read_ped(path, snp_names=dataset.snp_names)
        assert np.array_equal(loaded.genotypes, dataset.genotypes)
        assert np.array_equal(loaded.status, dataset.status)
        assert loaded.individual_ids == dataset.individual_ids

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.ped"
        path.write_text("")
        with pytest.raises(ValueError):
            read_ped(path)

    def test_malformed_row_rejected(self, tmp_path):
        path = tmp_path / "bad.ped"
        path.write_text("FAM1 ind0 0 0 0 2 1\n")  # odd number of allele columns
        with pytest.raises(ValueError):
            read_ped(path)


class TestFrequencyTable:
    def test_roundtrip(self, dataset, tmp_path):
        table = snp_frequency_table(dataset)
        path = tmp_path / "frequencies.csv"
        write_frequency_table(table, path)
        loaded = read_frequency_table(path)
        assert loaded.snp_names == table.snp_names
        np.testing.assert_allclose(loaded.freq_allele2, table.freq_allele2, atol=1e-8)

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n")
        with pytest.raises(ValueError):
            read_frequency_table(path)


class TestLdTable:
    def test_roundtrip(self, dataset, tmp_path):
        table = pairwise_ld_table(dataset)
        path = tmp_path / "ld.csv"
        write_ld_table(table, path)
        loaded = read_ld_table(path)
        assert loaded.snp_names == table.snp_names
        assert loaded.measure == table.measure
        np.testing.assert_allclose(loaded.values, table.values, atol=1e-8)


class TestStudyTables:
    def test_three_table_roundtrip(self, dataset, tmp_path):
        paths = write_study_tables(dataset, tmp_path / "study")
        assert set(paths) == {"genotypes", "frequencies", "ld"}
        loaded, freq, ld = read_study_tables(tmp_path / "study")
        assert loaded == dataset
        assert freq.snp_names == dataset.snp_names
        assert ld.n_snps == dataset.n_snps


class TestVcf:
    HEADER = "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT"

    def _write(self, tmp_path, body, name="panel.vcf"):
        path = tmp_path / name
        path.write_text("##fileformat=VCFv4.2\n" + body, encoding="utf-8")
        return path

    def test_gt_fields_pack_identically_to_pack_genotypes(self, tmp_path):
        from repro.genetics.alleles import GENOTYPE_MISSING
        from repro.genetics.io import read_vcf
        from repro.genetics.packed import pack_genotypes

        body = (
            f"{self.HEADER}\tS1\tS2\tS3\tS4\tS5\n"
            "1\t100\trs1\tA\tG\t.\tPASS\t.\tGT:DP\t0/0:10\t0/1:9\t1/1:8\t./.:0\t0|1:3\n"
            "1\t200\t.\tC\tT\t.\tPASS\t.\tGT\t1/1\t0/0\t.\t1\t0/2\n"
        )
        dataset = read_vcf(self._write(tmp_path, body))
        assert dataset.n_individuals == 5
        assert dataset.snp_names == ("rs1", "1:200")  # ID, else chrom:pos
        assert dataset.packed is not None  # packed-native load
        # phased and unphased calls agree; any '.' allele is the missing
        # code; a non-zero allele index counts as the alternate; a haploid
        # call reads as homozygous
        expected = np.array(
            [[0, 1, 2, GENOTYPE_MISSING, 1], [2, 0, GENOTYPE_MISSING, 2, 1]],
            dtype=np.int8,
        ).T
        assert np.array_equal(dataset.packed.data, pack_genotypes(expected))

    def test_gzip_and_phenotype_sidecar(self, tmp_path):
        import gzip

        from repro.genetics.alleles import (
            STATUS_AFFECTED,
            STATUS_UNAFFECTED,
            STATUS_UNKNOWN,
        )
        from repro.genetics.io import read_vcf

        body = (
            f"{self.HEADER}\tS1\tS2\tS3\n"
            "1\t1\trs1\tA\tG\t.\t.\t.\tGT\t0/0\t0/1\t1/1\n"
        )
        plain = self._write(tmp_path, body)
        gz = tmp_path / "panel.vcf.gz"
        with gzip.open(gz, "wt") as fh:
            fh.write(plain.read_text(encoding="utf-8"))
        pheno = tmp_path / "pheno.txt"
        pheno.write_text("S1 2\nS2 1\n", encoding="utf-8")
        dataset = read_vcf(gz, pheno=pheno)
        assert dataset.fingerprint() == read_vcf(plain, pheno=pheno).fingerprint()
        assert list(dataset.status) == [
            STATUS_AFFECTED, STATUS_UNAFFECTED, STATUS_UNKNOWN,
        ]
        # without a sidecar every status is unknown (an explicit choice)
        assert list(read_vcf(plain).status) == [STATUS_UNKNOWN] * 3

    def test_fam_style_sidecar(self, tmp_path):
        from repro.genetics.alleles import STATUS_AFFECTED, STATUS_UNAFFECTED
        from repro.genetics.io import read_vcf

        body = (
            f"{self.HEADER}\tS1\tS2\n"
            "1\t1\trs1\tA\tG\t.\t.\t.\tGT\t0/0\t0/1\n"
        )
        fam = tmp_path / "panel.fam"
        fam.write_text("FAM1 S1 0 0 0 2\nFAM1 S2 0 0 0 1\n", encoding="utf-8")
        dataset = read_vcf(self._write(tmp_path, body), pheno=fam)
        assert list(dataset.status) == [STATUS_AFFECTED, STATUS_UNAFFECTED]

    def test_vcf_evaluates_like_equivalent_byte_dataset(self, dataset, tmp_path):
        """A written-out panel read back via VCF scores identically."""
        from repro.genetics.alleles import GENOTYPE_MISSING
        from repro.genetics.io import read_vcf
        from repro.stats.evaluation import HaplotypeEvaluator

        rows = []
        for j in range(dataset.n_snps):
            calls = []
            for i in range(dataset.n_individuals):
                g = int(dataset.genotypes[i, j])
                calls.append(
                    "./." if g == GENOTYPE_MISSING
                    else ["0/0", "0/1", "1/1"][g]
                )
            rows.append(f"1\t{j + 1}\t{dataset.snp_names[j]}\t"
                        f"A\tG\t.\t.\t.\tGT\t" + "\t".join(calls))
        header = self.HEADER + "\t" + "\t".join(dataset.individual_ids)
        path = self._write(tmp_path, header + "\n" + "\n".join(rows) + "\n")
        pheno = tmp_path / "status.txt"
        pheno.write_text(
            "".join(
                f"{iid} {2 if s == 1 else 1}\n"
                for iid, s in zip(dataset.individual_ids, dataset.status)
            ),
            encoding="utf-8",
        )
        loaded = read_vcf(path, pheno=pheno)
        assert loaded.fingerprint() == dataset.fingerprint()
        snps = (1, 5, 9)
        assert HaplotypeEvaluator(loaded).evaluate(snps) == pytest.approx(
            HaplotypeEvaluator(dataset).evaluate(snps)
        )

    def test_malformed_inputs_rejected(self, tmp_path):
        from repro.genetics.io import read_vcf

        no_header = tmp_path / "nohdr.vcf"
        no_header.write_text("1\t1\trs1\tA\tG\t.\t.\t.\tGT\t0/0\n",
                             encoding="utf-8")
        with pytest.raises(ValueError, match="header"):
            read_vcf(no_header)
        body = (
            f"{self.HEADER}\tS1\n"
            "1\t1\trs1\tA\tG\t.\t.\t.\tDP\t10\n"
        )
        with pytest.raises(ValueError, match="GT"):
            read_vcf(self._write(tmp_path, body, name="nogt.vcf"))
        body = (
            f"{self.HEADER}\tS1\n"
            "1\t1\trs1\tA\tG\t.\t.\t.\tGT\t0/x\n"
        )
        with pytest.raises(ValueError, match="malformed GT"):
            read_vcf(self._write(tmp_path, body, name="badgt.vcf"))
        body = f"{self.HEADER}\tS1\n"
        with pytest.raises(ValueError, match="no variant"):
            read_vcf(self._write(tmp_path, body, name="empty.vcf"))
