"""Tests of the service-tier resilience layer.

Covers the network chaos harness (:class:`ConnectionChaos` /
:class:`ChaosConnection`), the client's deadline/retry/circuit-breaker
machinery, admission cancellation of abandoned queued requests, daemon crash
recovery through the scan journal (in-process restart and a SIGKILLed
``repro serve`` subprocess on the 201-locus acceptance panel), and
worker-host heartbeats (silent-host reaping, buffered-beat liveness,
reconnect backoff and re-admission).

The invariant under test everywhere: a recovered scan is
fingerprint-identical to the fault-free in-process scan — faults cost
wall-clock, never results.
"""

import dataclasses
import re
import signal
import subprocess
import sys
import threading
import time
from multiprocessing import Pipe
from multiprocessing.connection import Client, Listener

import pytest

import repro  # noqa: F401 - anchors the src path for the CLI subprocess
from repro.core.config import GAConfig
from repro.genetics.io import write_study_tables
from repro.genetics.simulate import (
    DiseaseModel,
    PopulationModel,
    simulate_case_control_study,
)
from repro.parallel.farm import FarmRecoveryPolicy
from repro.runtime.client import (
    CircuitBreaker,
    CircuitOpenError,
    ConnectionLostError,
    DeadlineExceeded,
    RetryPolicy,
    ScanClient,
    ServiceError,
)
from repro.runtime.remote import (
    LocalWorkerHost,
    RemoteSlavePool,
    default_authkey,
)
from repro.runtime.server import (
    AdmissionCancelled,
    AdmissionController,
    AdmissionPolicy,
    ScanServer,
)
from repro.runtime.spec import ClientHello, ScanEnvelope
from repro.scan import run_scan
from repro.scan.report import ScanReport
from repro.testing.faults import ChaosConnection, ConnectionChaos

WINDOW_SIZE = 6
OVERLAP = 3
FAST_POLL = 0.05

SCAN_CONFIG = GAConfig(
    population_size=8,
    min_haplotype_size=2,
    max_haplotype_size=3,
    termination_stagnation=2,
    max_generations=3,
    point_mutation_trials=1,
)


def _serve(dataset, **kwargs):
    """A started server on an ephemeral localhost port."""
    server = ScanServer(dataset, **kwargs)
    server.start(("127.0.0.1", 0))
    return server


def _wait_until(predicate, timeout: float = 10.0, interval: float = 0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"condition not reached within {timeout:.1f}s")


def _chaos_first(chaos: ConnectionChaos):
    """A ``wrap_connection`` hook that chaoses only the *first* connection —
    the reconnect a retry establishes is healthy."""
    state = {"used": False}

    def wrap(conn):
        if state["used"]:
            return conn
        state["used"] = True
        return ChaosConnection(conn, chaos)

    return wrap


# --------------------------------------------------------------------------- #
# the chaos harness itself, on plain pipes
# --------------------------------------------------------------------------- #
class TestConnectionChaos:
    def test_exactly_one_trigger_required(self):
        with pytest.raises(ValueError, match="exactly one"):
            ConnectionChaos()
        with pytest.raises(ValueError, match="exactly one"):
            ConnectionChaos(sever_on_send=1, sever_on_recv=1)
        with pytest.raises(ValueError, match="positive integer"):
            ConnectionChaos(sever_on_recv=0)
        with pytest.raises(ValueError, match="delay_seconds"):
            ConnectionChaos(delay_on_recv=1, delay_seconds=-1.0)

    def test_sever_on_send(self):
        near, far = Pipe(duplex=True)
        with ChaosConnection(near, ConnectionChaos(sever_on_send=2)) as conn:
            conn.send("first")
            assert far.recv() == "first"
            with pytest.raises(BrokenPipeError, match="severed on send #2"):
                conn.send("second")
            assert conn.closed
            with pytest.raises(EOFError):
                far.recv()  # the peer sees a torn connection
        far.close()

    def test_sever_on_recv(self):
        near, far = Pipe(duplex=True)
        far.send("first")
        far.send("second")
        with ChaosConnection(near, ConnectionChaos(sever_on_recv=2)) as conn:
            assert conn.recv() == "first"
            assert conn.n_recvs == 1
            with pytest.raises(EOFError, match="severed on recv #2"):
                conn.recv()
            assert conn.closed
        far.close()

    def test_delay_on_recv_holds_then_delivers(self):
        near, far = Pipe(duplex=True)
        far.send("late")
        chaos = ConnectionChaos(delay_on_recv=1, delay_seconds=0.3)
        with ChaosConnection(near, chaos) as conn:
            start = time.monotonic()
            assert not conn.poll(0.05)  # scripted to be late
            assert conn.poll(5.0)  # ... but it does arrive
            assert time.monotonic() - start >= 0.25
            assert conn.recv() == "late"
            far.send("on-time")  # only the Nth message is delayed
            assert conn.poll(5.0)
            assert conn.recv() == "on-time"
        far.close()

    def test_black_hole_swallows_everything(self):
        near, far = Pipe(duplex=True)
        far.send("swallowed")
        conn = ChaosConnection(near, ConnectionChaos(black_hole_on_recv=1))
        assert not conn.poll(0.1)  # readable bytes exist, but the route is dark
        box = {}

        def blocked_recv():
            try:
                conn.recv()
            except EOFError as exc:
                box["error"] = exc

        thread = threading.Thread(target=blocked_recv, daemon=True)
        thread.start()
        thread.join(timeout=0.2)
        assert thread.is_alive()  # recv blocks: nothing will ever arrive
        conn.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert isinstance(box["error"], EOFError)
        far.close()


# --------------------------------------------------------------------------- #
# retry policy and circuit breaker units
# --------------------------------------------------------------------------- #
class TestRetryPolicy:
    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(
            backoff_seconds=0.1, max_backoff_seconds=0.4, jitter=0.0
        )
        assert policy.backoff(1) == pytest.approx(0.1)
        assert policy.backoff(2) == pytest.approx(0.2)
        assert policy.backoff(3) == pytest.approx(0.4)
        assert policy.backoff(4) == pytest.approx(0.4)  # capped

    def test_jitter_shrinks_within_bounds(self):
        import random

        policy = RetryPolicy(backoff_seconds=1.0, jitter=0.5)
        rng = random.Random(7)
        for retry in (1, 2, 3):
            base = min(1.0 * 2 ** (retry - 1), policy.max_backoff_seconds)
            delay = policy.backoff(retry, rng)
            assert base * 0.5 <= delay <= base

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError, match=">= 0"):
            RetryPolicy(backoff_seconds=-1.0)


class TestCircuitBreaker:
    def test_open_halfopen_close_cycle(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=2, reset_seconds=10.0, clock=lambda: clock[0]
        )
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()  # failing fast
        clock[0] = 10.0
        assert breaker.state == "half-open"
        assert breaker.allow()  # exactly one probe
        assert not breaker.allow()
        breaker.record_failure()  # the probe failed: re-open a fresh window
        assert breaker.state == "open"
        clock[0] = 15.0
        assert not breaker.allow()
        clock[0] = 20.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow() and breaker.allow()  # no probe limit when closed

    def test_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError, match="reset_seconds"):
            CircuitBreaker(reset_seconds=-1.0)


# --------------------------------------------------------------------------- #
# client resilience against a live daemon
# --------------------------------------------------------------------------- #
class TestClientResilience:
    def test_deadline_on_a_wedged_daemon(self, small_dataset):
        with _serve(small_dataset) as server:
            # the hello reply is recv #1; the status reply is black-holed
            client = ScanClient(
                server.address,
                wrap_connection=_chaos_first(
                    ConnectionChaos(black_hole_on_recv=2)
                ),
                retry=None,
            )
            try:
                start = time.monotonic()
                with pytest.raises(DeadlineExceeded):
                    client.status(timeout=0.5)
                assert time.monotonic() - start < 5.0
                # the wedged socket was dropped; the next request reconnects
                status = client.status(timeout=30.0)
                assert client.n_reconnects == 1
                assert "health" in status
            finally:
                client.close()

    def test_transport_loss_is_retried_and_replayed(self, small_dataset):
        reference = run_scan(small_dataset, window_size=WINDOW_SIZE,
                             overlap=OVERLAP, config=SCAN_CONFIG, seed=11)
        with _serve(small_dataset) as server:
            with ScanClient(
                server.address,
                client_id="retrier",
                # hello=1, two windows stream, then the link tears
                wrap_connection=_chaos_first(ConnectionChaos(sever_on_recv=4)),
                retry=RetryPolicy(max_attempts=3, backoff_seconds=0.01),
                retry_seed=7,
            ) as client:
                report = client.scan(window_size=WINDOW_SIZE, overlap=OVERLAP,
                                     config=SCAN_CONFIG, seed=11, timeout=120.0)
                assert client.metrics()["n_retries"] == 1
        assert report.fingerprint() == reference.fingerprint()
        assert report.n_client_retries == 1
        # the re-submitted scan replayed the first attempt's windows from the
        # daemon's result cache instead of recomputing them
        assert report.n_cached_windows >= 1

    def test_server_answers_are_not_retried(self, small_dataset):
        with _serve(small_dataset) as server:
            with ScanClient(server.address,
                            retry=RetryPolicy(max_attempts=3)) as client:
                with pytest.raises(ServiceError, match="one daemon per recipe"):
                    client.scan(window_size=WINDOW_SIZE, overlap=OVERLAP,
                                config=SCAN_CONFIG, seed=11, statistic="lrt")
                assert client.n_retries == 0  # an answer, not a failure

    def test_retry_exhaustion_raises_the_transport_error(self, small_dataset):
        with _serve(small_dataset) as server:
            state = {"n": 0}

            def always_chaos(conn):
                state["n"] += 1
                return ChaosConnection(conn, ConnectionChaos(sever_on_recv=2))

            client = ScanClient(
                server.address,
                wrap_connection=always_chaos,
                retry=RetryPolicy(max_attempts=2, backoff_seconds=0.01),
            )
            try:
                with pytest.raises(ConnectionLostError):
                    client.status()
                assert client.n_retries == 1  # policy honoured, then raised
            finally:
                client.close()

    def test_breaker_fails_fast_after_repeated_connect_failures(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_seconds=60.0)
        dead = ("127.0.0.1", 1)
        for _ in range(2):
            with pytest.raises(ConnectionLostError):
                ScanClient(dead, breaker=breaker, connect_timeout=2.0,
                           retry=None)
        assert breaker.state == "open"
        start = time.monotonic()
        with pytest.raises(CircuitOpenError):
            ScanClient(dead, breaker=breaker, connect_timeout=2.0, retry=None)
        assert time.monotonic() - start < 1.0  # no connect attempt was paid


# --------------------------------------------------------------------------- #
# admission: abandoned queued requests are cancelled, not run
# --------------------------------------------------------------------------- #
class TestAdmissionCancellation:
    def test_cancelled_admission_rolls_back_and_wakes_the_queue(self):
        controller = AdmissionController(
            AdmissionPolicy(max_active=1, max_queued=4)
        )
        first = controller.admit("alice", 1.0)
        cancelled = threading.Event()
        outcome = {}

        def doomed():
            try:
                controller.admit("bob", 1.0, cancelled=cancelled.is_set,
                                 poll_seconds=0.01)
            except AdmissionCancelled as exc:
                outcome["bob"] = exc

        def patient():
            ticket = controller.admit("carol", 1.0)  # no callback: blocking
            outcome["carol"] = ticket
            controller.release(ticket)

        bob = threading.Thread(target=doomed)
        bob.start()
        _wait_until(lambda: controller.snapshot()["n_queued"] == 1)
        carol = threading.Thread(target=patient)
        carol.start()
        _wait_until(lambda: controller.snapshot()["n_queued"] == 2)

        cancelled.set()
        bob.join(timeout=10.0)
        assert not bob.is_alive()
        assert isinstance(outcome["bob"], AdmissionCancelled)
        snap = controller.snapshot()
        assert snap["n_queued"] == 1  # bob's queue slot was rolled back
        assert snap["n_cancelled"] == 1

        # the freed slot wakes the still-attached carol, not the ghost
        controller.release(first)
        carol.join(timeout=10.0)
        assert not carol.is_alive()
        assert outcome["carol"].wait_seconds > 0.0
        # bob's per-client in-flight accounting was rolled back too
        controller.release(controller.admit("bob", 1.0))
        final = controller.snapshot()
        assert final["n_active"] == 0 and final["n_queued"] == 0
        assert final["outstanding_cost_seconds"] == pytest.approx(0.0)

    def test_disconnected_client_is_cancelled_not_run(self, small_dataset):
        policy = AdmissionPolicy(max_active=1, max_queued=4)
        with _serve(small_dataset, admission=policy) as server:
            hog = server.admission.admit("hog", 1.0)
            ghost = Client(tuple(server.address), authkey=default_authkey())
            try:
                ghost.send(ClientHello(client_id="ghost"))
                kind, _payload = ghost.recv()
                assert kind == "ok"
                ghost.send(ScanEnvelope(window_size=WINDOW_SIZE,
                                        overlap=OVERLAP, config=SCAN_CONFIG,
                                        seed=11))
                _wait_until(
                    lambda: server.admission.snapshot()["n_queued"] == 1
                )
            finally:
                ghost.close()  # hang up while queued
            _wait_until(
                lambda: server.admission.snapshot()["n_cancelled"] == 1
            )
            server.admission.release(hog)
            # the freed slot serves a live client immediately
            with ScanClient(server.address, client_id="live") as live:
                report = live.scan(window_size=WINDOW_SIZE, overlap=OVERLAP,
                                   config=SCAN_CONFIG, seed=11)
                status = live.status()
        assert report.n_windows > 0
        # the ghost's scan never ran (no scan recorded for it), and the
        # cancellation is surfaced on the health card
        assert "ghost" not in {
            name for name, row in status["tenants"].items()
            if row["n_scans"] > 0
        }
        assert status["health"]["n_cancelled_admissions"] == 1


# --------------------------------------------------------------------------- #
# daemon crash recovery through the scan journal
# --------------------------------------------------------------------------- #
class TestServerJournalRecovery:
    def test_restarted_server_replays_journaled_windows(
        self, small_dataset, tmp_path
    ):
        journal_dir = tmp_path / "journal"
        reference = run_scan(small_dataset, window_size=WINDOW_SIZE,
                             overlap=OVERLAP, config=SCAN_CONFIG, seed=11)
        with _serve(small_dataset, journal_dir=str(journal_dir)) as first:
            with pytest.raises(ConnectionLostError):
                with ScanClient(
                    first.address,
                    retry=None,
                    wrap_connection=_chaos_first(
                        ConnectionChaos(sever_on_recv=4)
                    ),
                ) as client:
                    client.scan(window_size=WINDOW_SIZE, overlap=OVERLAP,
                                config=SCAN_CONFIG, seed=11)
        # the interrupted scan left its journal behind
        assert len(list(journal_dir.glob("scan-*.jsonl"))) == 1

        # a fresh server (cold cache) on the same journal dir replays the
        # journaled windows and recomputes only the remainder
        with _serve(small_dataset, journal_dir=str(journal_dir)) as second:
            with ScanClient(second.address, client_id="resumer") as client:
                report = client.scan(window_size=WINDOW_SIZE, overlap=OVERLAP,
                                     config=SCAN_CONFIG, seed=11)
                health = client.health()
        assert report.fingerprint() == reference.fingerprint()
        assert health["journal"]["n_recovered_windows"] >= 1
        assert health["journal"]["n_recovered_scans"] == 1
        assert report.n_cached_windows >= health["journal"][
            "n_recovered_windows"
        ]
        # a completed scan retires its journal file
        assert not list(journal_dir.glob("scan-*.jsonl"))

    def test_health_card_shape(self, small_dataset, tmp_path):
        with _serve(small_dataset,
                    journal_dir=str(tmp_path / "journal")) as server:
            with ScanClient(server.address) as client:
                health = client.health()
        assert health["status"] == "ok"
        assert health["backend"] == "serial"
        assert health["n_active_requests"] == 0
        assert health["n_queued_requests"] == 0
        assert health["farm"]["n_workers"] == 1
        assert health["journal"]["n_inflight_scans"] == 0


def _cli_environment():
    import os
    from pathlib import Path

    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p
    )
    return env


ACCEPTANCE_CONFIG = GAConfig(
    population_size=6,
    min_haplotype_size=2,
    max_haplotype_size=2,
    termination_stagnation=1,
    max_generations=2,
    point_mutation_trials=1,
)


@pytest.fixture(scope="module")
def chromosome_study():
    """The acceptance panel: 201 loci, same recipe as the scan tests."""
    model = PopulationModel(n_snps=201, block_size=6,
                            within_block_correlation=0.4)
    disease = DiseaseModel(
        causal_snps=(20, 100, 180),
        risk_alleles=(2, 2, 2),
        baseline_penetrance=0.1,
        relative_risk=6.0,
        risk_haplotype_frequency=0.3,
    )
    return simulate_case_control_study(
        population_model=model,
        disease_model=disease,
        n_affected=20,
        n_unaffected=20,
        seed=31,
    )


class TestDaemonCrashRecovery:
    """Acceptance: SIGKILL ``repro serve`` mid-201-locus scan, restart it on
    the same journal, and the served report is fingerprint-identical to the
    fault-free in-process scan."""

    WINDOW_SIZE = 4
    OVERLAP = 2
    KILL_AFTER_WINDOWS = 30

    def _spawn_serve(self, study, journal_dir):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", str(study),
             "--bind", "127.0.0.1:0", "--backend", "serial",
             "--journal-dir", str(journal_dir)],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=_cli_environment(),
        )
        banner = proc.stdout.readline()
        match = re.search(r"scan service on (\d+\.\d+\.\d+\.\d+:\d+)", banner)
        assert match, f"no address in banner: {banner!r}"
        return proc, match.group(1)

    def test_sigkilled_daemon_resumes_fingerprint_identical(
        self, chromosome_study, tmp_path
    ):
        dataset = chromosome_study.dataset
        study = tmp_path / "study"
        write_study_tables(dataset, study)
        journal_dir = tmp_path / "journal"
        reference = run_scan(dataset, window_size=self.WINDOW_SIZE,
                             overlap=self.OVERLAP, config=ACCEPTANCE_CONFIG,
                             seed=17)
        assert reference.n_windows >= 100

        proc, address = self._spawn_serve(study, journal_dir)
        seen = []
        try:
            def kill_daemon_mid_scan(result):
                seen.append(result)
                if len(seen) == self.KILL_AFTER_WINDOWS:
                    proc.kill()  # SIGKILL: no drain, no journal close

            with pytest.raises(ConnectionLostError):
                with ScanClient(address, client_id="doomed",
                                retry=None) as client:
                    client.scan(window_size=self.WINDOW_SIZE,
                                overlap=self.OVERLAP,
                                config=ACCEPTANCE_CONFIG, seed=17,
                                progress=kill_daemon_mid_scan,
                                timeout=600.0)
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.communicate()
        assert len(seen) >= self.KILL_AFTER_WINDOWS
        assert list(journal_dir.glob("scan-*.jsonl"))

        proc, address = self._spawn_serve(study, journal_dir)
        try:
            with ScanClient(address, client_id="resumed") as client:
                report = client.scan(window_size=self.WINDOW_SIZE,
                                     overlap=self.OVERLAP,
                                     config=ACCEPTANCE_CONFIG, seed=17,
                                     timeout=600.0)
                health = client.health()
            assert report.fingerprint() == reference.fingerprint()
            # every window the dead daemon journaled was replayed, not rerun
            assert health["journal"]["n_recovered_windows"] >= (
                self.KILL_AFTER_WINDOWS
            )
            assert health["journal"]["n_recovered_scans"] == 1
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
            assert proc.returncode == 0
            assert "scan service shut down cleanly" in out
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()


# --------------------------------------------------------------------------- #
# worker-host heartbeats: silent hosts are dead hosts
# --------------------------------------------------------------------------- #
def _linear_fitness(snps):
    return float(sum((i + 1) * (s + 1) for i, s in enumerate(sorted(snps))))


class _LinearFactory:
    def __call__(self):
        return _linear_fitness


def _batch(n):
    return [(i, i + 1) for i in range(n)]


def _expected(batch):
    return [_linear_fitness(snps) for snps in batch]


class _SilentHost:
    """Accepts connections (HMAC and all), then never sends a byte back —
    the black-holed route a reply-only protocol cannot distinguish from a
    slave evaluating a heavy chunk."""

    def __init__(self):
        self._listener = Listener(("127.0.0.1", 0), authkey=default_authkey())
        self._conns = []
        self._thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._thread.start()

    @property
    def host(self) -> str:
        address = self._listener.address
        return f"{address[0]}:{address[1]}"

    def _accept_loop(self):
        while True:
            try:
                self._conns.append(self._listener.accept())
            except (OSError, EOFError):
                return

    def close(self):
        try:
            self._listener.close()
        except OSError:
            pass
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass


class TestWorkerHostHeartbeats:
    def test_silent_host_is_reaped_like_a_dead_slave(self):
        silent = _SilentHost()
        try:
            with LocalWorkerHost(heartbeat_interval=0.1) as live:
                pool = RemoteSlavePool(
                    _LinearFactory(),
                    [live.host, silent.host],
                    chunk_size=1,
                    worker_cache_size=0,
                    heartbeat_timeout=0.5,
                    recovery=FarmRecoveryPolicy(respawn=False),
                )
                pool._RESULT_POLL_SECONDS = FAST_POLL
                with pool:
                    time.sleep(0.8)  # past the budget; only `live` beats
                    batch = _batch(12)
                    values, _stats = pool.evaluate(batch)
                    counters = pool.recovery_counters()
                    statuses = pool.host_statuses()
                assert values == _expected(batch)
                assert counters["n_worker_deaths"] == 1
                assert counters["n_chunks_replayed"] >= 1
                assert statuses[0]["alive"] and not statuses[1]["alive"]
        finally:
            silent.close()

    def test_buffered_heartbeats_count_as_liveness(self):
        # idle between batches nobody drains the result channel, so beats
        # pile up unread — readable bytes must count as life, or an external
        # health probe would reap every idle worker
        with LocalWorkerHost(heartbeat_interval=0.05) as host:
            pool = RemoteSlavePool(
                _LinearFactory(),
                [host.host],
                chunk_size=1,
                worker_cache_size=0,
                heartbeat_timeout=0.3,
                recovery=FarmRecoveryPolicy(respawn=False),
            )
            pool._RESULT_POLL_SECONDS = FAST_POLL
            with pool:
                time.sleep(0.6)  # well past the heartbeat budget
                statuses = pool.check_hosts()
                assert statuses[0]["alive"]
                batch = _batch(6)
                values, _stats = pool.evaluate(batch)
                assert pool.recovery_counters()["n_worker_deaths"] == 0
            assert values == _expected(batch)

    def test_dead_host_backs_off_and_is_readmitted(self):
        import socket

        # reserve a port the flaky host can come back on
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()

        with LocalWorkerHost() as anchor:
            flaky = LocalWorkerHost(bind=("127.0.0.1", port))
            pool = RemoteSlavePool(
                _LinearFactory(),
                [anchor.host, flaky.host],
                chunk_size=1,
                worker_cache_size=0,
                heartbeat_timeout=None,
                connect_timeout=5.0,
                reconnect_backoff=0.2,
                recovery=FarmRecoveryPolicy(respawn=True,
                                            max_worker_restarts=20),
            )
            pool._RESULT_POLL_SECONDS = FAST_POLL
            try:
                with pool:
                    batch = _batch(10)
                    values, _stats = pool.evaluate(batch)
                    assert values == _expected(batch)

                    # the flaky host dies; reconnects fail and back off
                    flaky.close()
                    pool._result_conns[1].close()
                    pool._broken[1] = True
                    statuses = pool.check_hosts()
                    assert not statuses[1]["alive"]
                    assert statuses[1]["reconnect_backoff_seconds"] > 0.2
                    assert pool.recovery_counters()["n_worker_deaths"] == 1

                    # work continues on the anchor while the slot is down
                    values, _stats = pool.evaluate(batch)
                    assert values == _expected(batch)

                    # the host comes back on the same port: re-admitted on a
                    # health pass once its backoff window elapses
                    flaky = LocalWorkerHost(bind=("127.0.0.1", port))
                    _wait_until(
                        lambda: pool.check_hosts()[1]["alive"], timeout=30.0,
                        interval=0.1,
                    )
                    assert pool.recovery_counters()["n_worker_respawns"] >= 1
                    values, _stats = pool.evaluate(batch)
                    assert values == _expected(batch)
            finally:
                flaky.close()


# --------------------------------------------------------------------------- #
# report counter and CLI surface
# --------------------------------------------------------------------------- #
class TestRetryCounterOnReport:
    def test_round_trips_json_but_not_the_fingerprint(self, small_dataset):
        report = run_scan(small_dataset, window_size=WINDOW_SIZE,
                          overlap=OVERLAP, config=SCAN_CONFIG, seed=11)
        assert report.n_client_retries == 0
        bumped = dataclasses.replace(report, n_client_retries=3)
        assert ScanReport.from_json(bumped.to_json()).n_client_retries == 3
        # retries cost wall-clock, never results: excluded from the identity
        assert bumped.fingerprint() == report.fingerprint()
        # pre-counter payloads (older daemons) still load
        payload = report.to_json()
        del payload["n_client_retries"]
        assert ScanReport.from_json(payload).n_client_retries == 0


class TestResilienceCli:
    def test_status_shows_health_farm_and_journal(
        self, small_dataset, tmp_path, capsys
    ):
        from repro.cli import main

        journal_dir = tmp_path / "journal"
        with _serve(small_dataset, journal_dir=str(journal_dir)) as server:
            argv = [
                "scan", "--connect", server.host, "--client-id", "cli-res",
                "--window-size", str(WINDOW_SIZE),
                "--window-overlap", str(OVERLAP),
                "--population-size", "8", "--max-size", "3",
                "--stagnation", "2", "--max-generations", "3",
                "--seed", "11", "--top", "2",
                "--timeout", "120", "--retries", "1",
            ]
            assert main(argv) == 0
            capsys.readouterr()
            assert main(["serve", "--bind", server.host, "--status"]) == 0
            out = capsys.readouterr().out
        assert "farm: ?/1 worker(s) alive on serial" in out
        assert f"journal: {journal_dir}" in out
        assert "0 cancelled" in out
