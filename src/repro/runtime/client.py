"""Client side of the scan service: talk to a ``repro serve`` daemon.

:class:`ScanClient` opens one authenticated ``multiprocessing.connection``
socket to a :class:`~repro.runtime.server.ScanServer`, identifies itself with
a :class:`~repro.runtime.spec.ClientHello` (the ``client_id`` scopes the
daemon's per-tenant metrics and in-flight caps), and then issues scans, runs
and status probes over it.  A scan streams back per-window completions as
the warm farm finishes them, so a ``progress`` callback observes windows in
submission order exactly like the in-process runner's.

The client deliberately knows nothing about execution: backend, worker
count, packing and the statistic all belong to the daemon's substrate.  What
comes back is a plain :class:`~repro.scan.report.ScanReport` whose
fingerprint matches the in-process scan of the same (geometry, config, seed)
— cached or computed, the daemon's replies are bit-identical.
"""

from __future__ import annotations

import os
import threading
import time
from multiprocessing.connection import Client

from ..core.config import GAConfig
from ..parallel.base import EvaluationStats
from ..scan.report import ScanReport, WindowResult, window_result_from_json
from .server import AdmissionRejected
from .service import RunRequest, RunResult
from .spec import (
    ClientHello,
    RunEnvelope,
    ScanEnvelope,
    ShutdownCommand,
    StatusProbe,
)
from .remote import default_authkey, parse_host

__all__ = ["ScanClient", "ServiceError"]


class ServiceError(RuntimeError):
    """The daemon answered with an error, or the connection died mid-request."""


def _default_client_id() -> str:
    return f"{os.uname().nodename}-{os.getpid()}"


class ScanClient:
    """One authenticated connection to a running scan service.

    Parameters
    ----------
    address:
        ``"host:port"`` spec or ``(host, port)`` tuple of the daemon.
    authkey:
        HMAC key; defaults to :func:`~repro.runtime.remote.default_authkey`
        (``REPRO_REMOTE_AUTHKEY`` or the dev default) — must match the
        daemon's.
    client_id:
        Tenant identity for metrics and in-flight caps; defaults to
        ``hostname-pid``.

    A client holds one socket and serialises its own requests with a lock, so
    a single instance is safe to share across threads — though each request
    occupies one of the tenant's in-flight slots for its full duration, so
    concurrent tenants usually want one client (one connection) per thread.
    """

    def __init__(
        self,
        address: str | tuple[str, int],
        *,
        authkey: bytes | None = None,
        client_id: str | None = None,
    ) -> None:
        if isinstance(address, str):
            address = parse_host(address)
        self._client_id = client_id or _default_client_id()
        self._lock = threading.Lock()
        self._conn = Client(tuple(address), authkey=authkey or default_authkey())
        try:
            self._conn.send(ClientHello(client_id=self._client_id))
            kind, payload = self._recv()
            if kind != "ok":
                raise ServiceError(f"service refused the connection: {payload}")
        except BaseException:
            self._conn.close()
            raise
        self._info = dict(payload)

    # ------------------------------------------------------------------ #
    @property
    def client_id(self) -> str:
        return self._client_id

    @property
    def info(self) -> dict:
        """The daemon's handshake card: backend, statistic, n_snps, packed,
        panel_fingerprint."""
        return dict(self._info)

    def _recv(self):
        try:
            return self._conn.recv()
        except (EOFError, OSError) as exc:
            raise ServiceError(
                "connection to the scan service was closed"
            ) from exc

    # ------------------------------------------------------------------ #
    def scan(
        self,
        *,
        window_size: int,
        overlap: int = 0,
        config: GAConfig | None = None,
        seed: int = 0,
        statistic: str = "t1",
        n_runs: int = 1,
        progress=None,
    ) -> ScanReport:
        """Run a windowed scan on the daemon's warm substrate.

        Blocks until the scan completes, invoking ``progress(window_result)``
        for each streamed window (the in-process runner's hook signature).
        Raises
        :class:`~repro.runtime.server.AdmissionRejected` when the daemon's
        admission policy refuses the request and :class:`ServiceError` on
        service-side failures.
        """
        envelope = ScanEnvelope(
            window_size=window_size,
            overlap=overlap,
            config=config,
            seed=seed,
            statistic=statistic,
            n_runs=n_runs,
        )
        start = time.perf_counter()
        with self._lock:
            self._conn.send(envelope)
            windows: list[WindowResult] = []
            meta: dict | None = None
            while True:
                message = self._recv()
                kind = message[0]
                if kind == "window":
                    _kind, payload, _cached = message
                    result = window_result_from_json(payload)
                    windows.append(result)
                    if progress is not None:
                        progress(result)
                elif kind == "done":
                    meta = message[1]
                    break
                elif kind == "rejected":
                    raise AdmissionRejected(message[1])
                elif kind == "error":
                    raise ServiceError(message[1])
                else:  # pragma: no cover - protocol violation
                    raise ServiceError(f"unexpected reply {kind!r}")
        stats = EvaluationStats(**meta["stats"])
        return ScanReport(
            windows=windows,
            backend=str(meta["backend"]),
            n_jobs=int(meta["jobs"]),
            stats=stats,
            elapsed_seconds=time.perf_counter() - start,
            n_snps=int(self._info["n_snps"]),
            window_size=window_size,
            overlap=overlap,
            statistic=statistic.lower(),
            seed=seed,
            n_cached_windows=int(meta["n_cached_windows"]),
            admission_wait_seconds=float(meta["admission_wait_seconds"]),
        )

    def run(self, request: RunRequest) -> RunResult:
        """Execute one GA run on the daemon; returns its full RunResult."""
        with self._lock:
            self._conn.send(RunEnvelope(request=request))
            kind, payload = self._recv()
        if kind == "result":
            return payload
        if kind == "rejected":
            raise AdmissionRejected(payload)
        raise ServiceError(payload)

    def status(self) -> dict:
        """The daemon's status dict (cache, admission, tenants, summary)."""
        with self._lock:
            self._conn.send(StatusProbe())
            kind, payload = self._recv()
        if kind != "status":
            raise ServiceError(payload)
        return payload

    def shutdown_server(self, *, drain: bool = True) -> None:
        """Ask the daemon to drain and exit; the connection closes with it."""
        with self._lock:
            self._conn.send(ShutdownCommand(drain=drain))
            try:
                self._conn.recv()
            except (EOFError, OSError):
                pass  # server may close before the ack arrives

    def close(self) -> None:
        try:
            self._conn.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def __enter__(self) -> "ScanClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
