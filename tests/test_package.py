"""Smoke tests of the top-level package surface."""

import importlib

import pytest

import repro


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackages_import(self):
        for module in (
            "repro.genetics",
            "repro.stats",
            "repro.parallel",
            "repro.core",
            "repro.search",
            "repro.experiments",
            "repro.cli",
        ):
            importlib.import_module(module)

    def test_lazy_island_export(self):
        from repro.parallel import IslandModelGA, IslandResult  # noqa: F401

        with pytest.raises(AttributeError):
            getattr(importlib.import_module("repro.parallel"), "NotAThing")

    def test_quickstart_docstring_flow(self, small_dataset):
        """The README/quickstart flow works end to end on a small dataset."""
        from repro import AdaptiveMultiPopulationGA, GAConfig, HaplotypeEvaluator

        evaluator = HaplotypeEvaluator(small_dataset)
        ga = AdaptiveMultiPopulationGA(
            evaluator,
            n_snps=small_dataset.n_snps,
            config=GAConfig(
                population_size=20, max_haplotype_size=3,
                termination_stagnation=3, max_generations=5,
            ),
        )
        result = ga.run()
        assert sorted(result.best_per_size) == [2, 3]
