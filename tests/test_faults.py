"""Tests of the self-healing execution core under injected faults.

Every failure mode the recovery engine handles — hard slave death, hung
slaves, poison chunks, whole-farm loss — is produced on demand with the
:mod:`repro.testing.faults` chaos harness and checked for the two properties
the design guarantees: the farm keeps going whenever a survivor exists, and
whatever it returns is bit-identical to a fault-free run.
"""

import time

import pytest

from repro.core.config import GAConfig
from repro.parallel.farm import ChunkedWorkerFarm, FarmDeadError, FarmRecoveryPolicy
from repro.runtime.service import RunRequest, RunScheduler, backend_summary_line
from repro.testing.faults import ChaosError, ChaosFactory, ChaosPolicy, chaos_wrapper

#: Fast death detection for tests: the poll timeout bounds how quickly the
#: master notices a dead/hung slave, so shrink it from the production 0.5 s.
FAST_POLL = 0.05


def _linear_fitness(snps):
    return float(sum((i + 1) * (s + 1) for i, s in enumerate(sorted(snps))))


class _LinearFactory:
    """Picklable evaluator factory for farm-level chaos tests."""

    def __call__(self):
        return _linear_fitness


def _batch(n):
    return [(i, i + 1) for i in range(n)]


def _make_farm(tmp_path=None, *, policy=None, recovery=None, n_workers=3, **kwargs):
    factory = _LinearFactory()
    if policy is not None:
        factory = ChaosFactory(factory, policy)
    kwargs.setdefault("chunk_size", 1)
    kwargs.setdefault("steal", True)
    kwargs.setdefault("max_inflight", 1)
    kwargs.setdefault("worker_cache_size", 0)
    farm = ChunkedWorkerFarm(factory, n_workers, recovery=recovery, **kwargs)
    farm._RESULT_POLL_SECONDS = FAST_POLL
    return farm


class TestChaosPolicy:
    def test_requires_exactly_one_trigger(self):
        with pytest.raises(ValueError, match="exactly one"):
            ChaosPolicy()
        with pytest.raises(ValueError, match="exactly one"):
            ChaosPolicy(kill_after=1, hang_after=1)

    @pytest.mark.parametrize("value", [0, -1, 1.5, True])
    def test_rejects_non_positive_trigger_counts(self, value):
        with pytest.raises(ValueError, match="positive integer"):
            ChaosPolicy(kill_after=value)

    def test_kill_on_key_normalised(self):
        policy = ChaosPolicy(kill_on_key=(5, 2))
        assert policy.kill_on_key == (2, 5)

    def test_token_claimed_exactly_once(self, tmp_path):
        policy = ChaosPolicy(kill_after=1, token_path=str(tmp_path / "token"))
        assert policy.claim_token() is True
        assert policy.claim_token() is False

    def test_no_token_path_always_armed(self):
        assert ChaosPolicy(kill_after=1).claim_token() is True

    def test_raise_after_travels_error_path(self):
        policy = ChaosPolicy(raise_after=1)
        fitness = ChaosFactory(_LinearFactory(), policy)()
        with pytest.raises(ChaosError):
            fitness((0, 1))


class TestFarmRecoveryPolicy:
    def test_defaults(self):
        policy = FarmRecoveryPolicy()
        assert policy.respawn is False
        assert policy.max_worker_restarts == 2
        assert policy.max_chunk_retries == 2
        assert policy.chunk_timeout is None

    def test_validation(self):
        with pytest.raises(ValueError):
            FarmRecoveryPolicy(max_worker_restarts=-1)
        with pytest.raises(ValueError):
            FarmRecoveryPolicy(max_chunk_retries=0)
        with pytest.raises(ValueError):
            FarmRecoveryPolicy(chunk_timeout=0.0)
        with pytest.raises(ValueError):
            FarmRecoveryPolicy(timeout_cost_factor=-1.0)

    def test_farm_rejects_non_policy(self):
        with pytest.raises(TypeError, match="FarmRecoveryPolicy"):
            ChunkedWorkerFarm(_LinearFactory(), 2, recovery="heal")


class TestFarmSelfHealing:
    def test_survives_one_slave_death_bit_identical(self, tmp_path):
        batch = _batch(24)
        with _make_farm() as reference_farm:
            expected, _ = reference_farm.evaluate(batch)
        policy = ChaosPolicy(kill_after=2, token_path=str(tmp_path / "token"))
        with _make_farm(policy=policy, recovery=FarmRecoveryPolicy()) as farm:
            values, _ = farm.evaluate(batch)
            counters = farm.recovery_counters()
            assert farm.n_alive_workers == 2
        assert values == expected
        assert counters["n_worker_deaths"] == 1
        assert counters["n_chunks_replayed"] >= 1
        assert counters["n_worker_respawns"] == 0

    def test_respawn_restores_capacity(self, tmp_path):
        policy = ChaosPolicy(kill_after=2, token_path=str(tmp_path / "token"))
        recovery = FarmRecoveryPolicy(respawn=True, max_worker_restarts=2)
        with _make_farm(policy=policy, recovery=recovery) as farm:
            values, _ = farm.evaluate(_batch(24))
            assert farm.recovery_counters()["n_worker_respawns"] == 1
            assert farm.n_alive_workers == 3
            # the respawned slave sees the claimed token and stays tame
            again, _ = farm.evaluate(_batch(24))
        assert values == again == [float(3 * i + 5) for i in range(24)]

    def test_poison_chunk_exhausts_retries_but_farm_survives(self, tmp_path):
        # a chunk that kills every slave that touches it: each replay costs a
        # worker, and after max_chunk_retries the *ticket* fails, not the farm
        policy = ChaosPolicy(kill_on_key=(7, 8))
        recovery = FarmRecoveryPolicy(
            respawn=True, max_worker_restarts=8, max_chunk_retries=1
        )
        with _make_farm(policy=policy, recovery=recovery) as farm:
            poison = farm.submit([(7, 8)])
            with pytest.raises(RuntimeError, match="lost to worker death"):
                farm.collect(poison)
            counters = farm.recovery_counters()
            assert counters["n_worker_deaths"] == 2  # original + one replay
            assert counters["n_chunks_replayed"] == 1
            assert farm.n_alive_workers >= 1
            values, _ = farm.evaluate([(1, 2), (2, 3)])
        assert values == [8.0, 11.0]

    def test_hung_slave_reaped_via_chunk_deadline(self, tmp_path):
        batch = _batch(12)
        with _make_farm() as reference_farm:
            expected, _ = reference_farm.evaluate(batch)
        policy = ChaosPolicy(hang_after=2, token_path=str(tmp_path / "token"))
        recovery = FarmRecoveryPolicy(
            respawn=True, chunk_timeout=0.5, timeout_cost_factor=0.0
        )
        start = time.perf_counter()
        with _make_farm(policy=policy, recovery=recovery) as farm:
            values, _ = farm.evaluate(batch)
            counters = farm.recovery_counters()
        assert values == expected
        assert counters["n_worker_deaths"] == 1
        assert counters["n_chunks_replayed"] >= 1
        # the hang is 3600 s; finishing fast proves the deadline reaped it
        assert time.perf_counter() - start < 30.0

    def test_in_band_errors_do_not_trigger_recovery(self, tmp_path):
        # ChaosError travels the per-ticket error path (re-raised master-side
        # as a RuntimeError carrying the remote traceback): the slave stays
        # alive and no recovery event is recorded
        policy = ChaosPolicy(raise_after=1, token_path=str(tmp_path / "token"))
        with _make_farm(policy=policy, recovery=FarmRecoveryPolicy()) as farm:
            # a stolen 24-chunk batch puts work on every slave, so whichever
            # slave won the token fires; only that one ticket fails
            with pytest.raises(RuntimeError, match="ChaosError"):
                farm.evaluate(_batch(24))
            assert farm.recovery_counters() == {
                "n_worker_deaths": 0,
                "n_chunks_replayed": 0,
                "n_worker_respawns": 0,
            }
            assert farm.n_alive_workers == 3
            values, _ = farm.evaluate(_batch(24))
            assert values == [float(3 * i + 5) for i in range(24)]


class TestFarmDeath:
    def test_death_without_policy_raises_farm_dead(self, tmp_path):
        policy = ChaosPolicy(kill_after=1, token_path=str(tmp_path / "token"))
        with _make_farm(policy=policy) as farm:
            ticket = farm.submit(_batch(8))
            with pytest.raises(FarmDeadError, match="died") as excinfo:
                farm.collect(ticket)
            assert ticket in excinfo.value.lost_tickets
            # the farm is terminally dead: later calls re-raise, not hang
            with pytest.raises(FarmDeadError):
                farm.submit([(0, 1)])
            with pytest.raises(FarmDeadError):
                farm.collect(ticket)

    def test_all_workers_dead_raises_even_with_policy(self):
        # every slave is armed (no token); the poison batch kills them all
        # and the respawn budget is zero, so recovery runs out of survivors
        policy = ChaosPolicy(kill_after=1)
        recovery = FarmRecoveryPolicy(max_chunk_retries=10)
        with _make_farm(n_workers=2, policy=policy, recovery=recovery) as farm:
            ticket = farm.submit(_batch(8))
            with pytest.raises(FarmDeadError, match="surviv") as excinfo:
                farm.collect(ticket)
            assert ticket in excinfo.value.lost_tickets

    def test_close_after_crash_is_prompt_and_idempotent(self, tmp_path):
        policy = ChaosPolicy(kill_after=1, token_path=str(tmp_path / "token"))
        farm = _make_farm(policy=policy)
        ticket = farm.submit(_batch(8))
        with pytest.raises(FarmDeadError):
            farm.collect(ticket)
        start = time.perf_counter()
        farm.close()
        farm.close()
        farm.terminate()
        assert time.perf_counter() - start < 10.0
        assert farm.closed

    def test_terminate_after_crash_is_prompt(self, tmp_path):
        policy = ChaosPolicy(kill_after=1, token_path=str(tmp_path / "token"))
        farm = _make_farm(policy=policy)
        ticket = farm.submit(_batch(8))
        with pytest.raises(FarmDeadError):
            farm.collect(ticket)
        start = time.perf_counter()
        farm.terminate()
        farm.terminate()
        assert time.perf_counter() - start < 10.0


class _SlowLinearFactory:
    """Linear fitness with a pacing sleep, so the whole batch cannot drain
    before every slave has booted and evaluated its ``kill_after`` chunks —
    on the self-serving deque substrate a fast fitness lets the first slave
    (plus steals) eat the batch before the token winner ever evaluates."""

    def __call__(self):
        def fitness(snps):
            time.sleep(0.02)
            return _linear_fitness(snps)

        return fitness


class TestShmDequeRecovery:
    """PR-6 recovery semantics on the shared-memory steal-deque substrate."""

    def test_survives_slave_death_mid_steal_bit_identical(self, tmp_path):
        batch = _batch(24)
        policy = ChaosPolicy(kill_after=2, token_path=str(tmp_path / "token"))
        recovery = FarmRecoveryPolicy(respawn=True)
        farm = ChunkedWorkerFarm(
            ChaosFactory(_SlowLinearFactory(), policy), 3,
            chunk_size=1, steal=True, worker_cache_size=0,
            steal_mode="shm", recovery=recovery,
        )
        farm._RESULT_POLL_SECONDS = FAST_POLL
        with farm:
            values, _ = farm.evaluate(batch)
            counters = farm.recovery_counters()
            assert farm.n_alive_workers == 3
        assert values == [float(3 * i + 5) for i in range(24)]
        assert counters["n_worker_deaths"] == 1
        assert counters["n_chunks_replayed"] >= 1
        assert counters["n_worker_respawns"] == 1

    def test_survivor_absorbs_death_without_respawn(self, tmp_path):
        batch = _batch(24)
        policy = ChaosPolicy(kill_after=2, token_path=str(tmp_path / "token"))
        farm = ChunkedWorkerFarm(
            ChaosFactory(_SlowLinearFactory(), policy), 3,
            chunk_size=1, steal=True, worker_cache_size=0,
            steal_mode="shm", recovery=FarmRecoveryPolicy(),
        )
        farm._RESULT_POLL_SECONDS = FAST_POLL
        with farm:
            values, _ = farm.evaluate(batch)
            counters = farm.recovery_counters()
            assert farm.n_alive_workers == 2
        assert values == [float(3 * i + 5) for i in range(24)]
        assert counters["n_worker_deaths"] == 1
        assert counters["n_chunks_replayed"] >= 1
        assert counters["n_worker_respawns"] == 0

    def test_farm_dead_with_chunks_still_resident_in_deques(self):
        # every slave is armed and dies on its first chunk; with no recovery
        # policy the first detected death fails the farm while most of the
        # batch is still sitting in the shared arena
        policy = ChaosPolicy(kill_after=1)
        farm = _make_farm(policy=policy, steal_mode="shm")
        try:
            ticket = farm.submit(_batch(16))
            with pytest.raises(FarmDeadError) as excinfo:
                farm.collect(ticket)
            assert ticket in excinfo.value.lost_tickets
            # the arena still holds undelivered chunks at death time
            assert farm._deques.n_free_slots < farm._deques.n_slots
        finally:
            start = time.perf_counter()
            farm.terminate()
            farm.terminate()
            assert time.perf_counter() - start < 10.0


@pytest.fixture(scope="module")
def quick_config():
    return GAConfig(
        population_size=12,
        max_haplotype_size=3,
        termination_stagnation=2,
        max_generations=4,
    )


class TestSchedulerRecovery:
    def _run(self, dataset, config, *, worker_wrapper=None, recovery=None):
        scheduler = RunScheduler(
            dataset,
            backend="async",
            n_workers=2,
            recovery=recovery,
            worker_wrapper=worker_wrapper,
        )
        scheduler._evaluator._farm._RESULT_POLL_SECONDS = FAST_POLL
        try:
            result = scheduler.run(RunRequest(config=config, seed=7))
            return result, scheduler.stats
        finally:
            scheduler.close()

    def test_run_survives_slave_death_with_stats(
        self, small_dataset, quick_config, tmp_path
    ):
        reference, reference_stats = self._run(small_dataset, quick_config)
        policy = ChaosPolicy(kill_after=3, token_path=str(tmp_path / "token"))
        result, stats = self._run(
            small_dataset,
            quick_config,
            worker_wrapper=chaos_wrapper(policy),
            recovery=FarmRecoveryPolicy(respawn=True),
        )
        assert stats.n_worker_deaths >= 1
        assert stats.n_chunks_replayed >= 1
        assert stats.n_worker_respawns >= 1
        # recovery is invisible to the result and to the parity contract
        best = {s: (i.snps, i.fitness_value()) for s, i in result.best_per_size().items()}
        expected = {
            s: (i.snps, i.fitness_value()) for s, i in reference.best_per_size().items()
        }
        assert best == expected
        assert stats.counters() == reference_stats.counters()
        line = backend_summary_line("async", stats)
        assert "survived" in line and "worker death" in line
        assert "survived" not in backend_summary_line("async", reference_stats)

    def test_worker_wrapper_rejected_off_process_backends(self, small_dataset):
        with pytest.raises(TypeError, match="worker_wrapper"):
            RunScheduler(
                small_dataset,
                backend="serial",
                worker_wrapper=chaos_wrapper(ChaosPolicy(kill_after=1)),
            )
        with pytest.raises(TypeError, match="recovery"):
            RunScheduler(
                small_dataset, backend="threads", recovery=FarmRecoveryPolicy()
            )
