"""Deterministic simulation of the paper's PVM master/slave cluster.

The paper runs its GA on a PVM (Parallel Virtual Machine) cluster that we do
not have; worse, real wall-clock speedups depend on whatever machine the
reproduction happens to run on.  To make the *parallel implementation* part of
the paper reproducible we model the cluster explicitly:

* each evaluation task has a compute cost (seconds) given by a
  :class:`EvaluationCostModel`, which can be calibrated from real measured
  evaluation times (Figure 4) so the simulated cluster matches the paper's
  exponential cost-vs-size behaviour;
* the master hands tasks to idle slaves one at a time (the paper's protocol)
  and every hand-off pays a configurable message latency both ways;
* the generation barrier makes the batch's makespan equal to the time the
  last slave finishes.

The simulation is an event-free greedy list scheduler (tasks are assigned in
submission order to the earliest-available slave), which is exactly the
behaviour of a synchronous PVM farm with a single outstanding task per slave.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "EvaluationCostModel",
    "SlaveTimeline",
    "SimulatedSchedule",
    "SimulatedPVM",
]


@dataclass(frozen=True)
class EvaluationCostModel:
    """Exponential model of the evaluation cost as a function of haplotype size.

    ``cost(size) = base_seconds * growth_factor ** (size - 1)``

    The defaults are calibrated on the paper's Figure 4 (about 6 ms for a
    size-3 haplotype growing to about 201 ms at size 7 on their hardware,
    i.e. a growth factor of roughly 2.4 per additional SNP).
    """

    base_seconds: float = 1.0e-3
    growth_factor: float = 2.4

    def __post_init__(self) -> None:
        if self.base_seconds <= 0:
            raise ValueError("base_seconds must be positive")
        if self.growth_factor < 1.0:
            raise ValueError("growth_factor must be >= 1")

    def cost(self, haplotype_size: int) -> float:
        """Predicted evaluation time (seconds) of a haplotype of the given size."""
        if haplotype_size <= 0:
            raise ValueError("haplotype_size must be positive")
        return self.base_seconds * self.growth_factor ** (haplotype_size - 1)

    def costs(self, haplotype_sizes: Sequence[int] | np.ndarray) -> np.ndarray:
        sizes = np.asarray(haplotype_sizes, dtype=np.int64)
        if np.any(sizes <= 0):
            raise ValueError("haplotype sizes must be positive")
        return self.base_seconds * np.power(self.growth_factor, sizes - 1, dtype=np.float64)

    def to_json(self) -> dict:
        """A JSON-serialisable snapshot (see :meth:`from_json`)."""
        return {
            "base_seconds": float(self.base_seconds),
            "growth_factor": float(self.growth_factor),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "EvaluationCostModel":
        """Rebuild a model persisted by :meth:`to_json`.

        Lets a calibration measured once (e.g. by the scheduler's probe) be
        reused across invocations and shipped to remote dispatchers instead
        of re-probing every run: ``scan --cost-model model.json``.
        """
        try:
            return cls(
                base_seconds=float(payload["base_seconds"]),
                growth_factor=float(payload["growth_factor"]),
            )
        except KeyError as exc:
            raise ValueError(
                f"cost-model JSON must contain base_seconds and growth_factor, "
                f"missing {exc.args[0]!r}"
            ) from None

    @classmethod
    def fit(cls, sizes: Sequence[int], seconds: Sequence[float]) -> "EvaluationCostModel":
        """Calibrate the model on measured (size, seconds) pairs by log-linear fit."""
        sizes_arr = np.asarray(sizes, dtype=np.float64)
        seconds_arr = np.asarray(seconds, dtype=np.float64)
        if sizes_arr.shape != seconds_arr.shape or sizes_arr.size < 2:
            raise ValueError("need at least two (size, seconds) pairs of equal length")
        if np.any(seconds_arr <= 0):
            raise ValueError("measured times must be positive")
        slope, intercept = np.polyfit(sizes_arr - 1, np.log(seconds_arr), 1)
        return cls(base_seconds=float(np.exp(intercept)), growth_factor=float(np.exp(slope)))


@dataclass(frozen=True)
class SlaveTimeline:
    """Per-slave accounting of a simulated batch."""

    slave_id: int
    n_tasks: int
    busy_seconds: float
    finish_time: float


@dataclass(frozen=True)
class SimulatedSchedule:
    """Outcome of scheduling one batch on the simulated cluster.

    Attributes
    ----------
    makespan_seconds:
        Time at which the last slave finishes (the synchronous barrier time).
    serial_seconds:
        Total compute time of the batch (what a single processor would take,
        excluding messaging).
    timelines:
        Per-slave busy time and task counts.
    """

    makespan_seconds: float
    serial_seconds: float
    timelines: tuple[SlaveTimeline, ...]

    @property
    def n_slaves(self) -> int:
        return len(self.timelines)

    @property
    def speedup(self) -> float:
        """Serial time divided by the parallel makespan."""
        return 0.0 if self.makespan_seconds <= 0 else self.serial_seconds / self.makespan_seconds

    @property
    def efficiency(self) -> float:
        """Speedup divided by the number of slaves."""
        return 0.0 if self.n_slaves == 0 else self.speedup / self.n_slaves

    @property
    def load_imbalance(self) -> float:
        """Max slave busy time divided by mean busy time (1.0 = perfectly balanced)."""
        busy = np.asarray([t.busy_seconds for t in self.timelines])
        mean = busy.mean() if busy.size else 0.0
        return 0.0 if mean <= 0 else float(busy.max() / mean)


class SimulatedPVM:
    """Deterministic master/slave cluster model.

    Parameters
    ----------
    n_slaves:
        Number of slave processors.
    cost_model:
        Evaluation cost model (see :class:`EvaluationCostModel`).
    message_latency_seconds:
        One-way latency of a master-to-slave (or slave-to-master) message.
        Each task pays two latencies (send the individual, return the
        fitness), which is what bounds the useful number of slaves for cheap
        evaluations.
    """

    def __init__(
        self,
        n_slaves: int,
        *,
        cost_model: EvaluationCostModel | None = None,
        message_latency_seconds: float = 1.0e-4,
    ) -> None:
        if n_slaves <= 0:
            raise ValueError("n_slaves must be positive")
        if message_latency_seconds < 0:
            raise ValueError("message_latency_seconds must be non-negative")
        self.n_slaves = int(n_slaves)
        self.cost_model = cost_model or EvaluationCostModel()
        self.message_latency_seconds = float(message_latency_seconds)

    # ------------------------------------------------------------------ #
    def schedule_costs(self, task_costs: Sequence[float] | np.ndarray) -> SimulatedSchedule:
        """Schedule tasks with explicit compute costs on the simulated cluster."""
        costs = np.asarray(task_costs, dtype=np.float64)
        if costs.ndim != 1:
            raise ValueError("task_costs must be 1-D")
        if np.any(costs < 0):
            raise ValueError("task costs must be non-negative")
        per_task_overhead = 2.0 * self.message_latency_seconds

        # greedy list scheduling: next task goes to the earliest-available slave
        heap: list[tuple[float, int]] = [(0.0, s) for s in range(self.n_slaves)]
        heapq.heapify(heap)
        busy = np.zeros(self.n_slaves, dtype=np.float64)
        n_tasks = np.zeros(self.n_slaves, dtype=np.int64)
        finish = np.zeros(self.n_slaves, dtype=np.float64)
        for cost in costs:
            available_at, slave = heapq.heappop(heap)
            task_time = cost + per_task_overhead
            done = available_at + task_time
            busy[slave] += task_time
            n_tasks[slave] += 1
            finish[slave] = done
            heapq.heappush(heap, (done, slave))

        timelines = tuple(
            SlaveTimeline(
                slave_id=s,
                n_tasks=int(n_tasks[s]),
                busy_seconds=float(busy[s]),
                finish_time=float(finish[s]),
            )
            for s in range(self.n_slaves)
        )
        makespan = float(finish.max()) if costs.size else 0.0
        serial = float(costs.sum() + per_task_overhead * 0)  # serial run pays no messages
        return SimulatedSchedule(
            makespan_seconds=makespan,
            serial_seconds=serial,
            timelines=timelines,
        )

    def schedule_batch(self, haplotype_sizes: Sequence[int] | np.ndarray) -> SimulatedSchedule:
        """Schedule a batch of evaluations described only by their haplotype sizes."""
        costs = self.cost_model.costs(haplotype_sizes)
        return self.schedule_costs(costs)

    # ------------------------------------------------------------------ #
    def speedup_curve(
        self,
        haplotype_sizes: Sequence[int] | np.ndarray,
        slave_counts: Sequence[int],
    ) -> dict[int, float]:
        """Speedup of the same batch for several cluster sizes.

        Convenience helper for the speedup study: returns
        ``{n_slaves: speedup}`` using this instance's cost model and latency.
        """
        out: dict[int, float] = {}
        for n in slave_counts:
            cluster = SimulatedPVM(
                n,
                cost_model=self.cost_model,
                message_latency_seconds=self.message_latency_seconds,
            )
            out[int(n)] = cluster.schedule_batch(haplotype_sizes).speedup
        return out
