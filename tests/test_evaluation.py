"""Tests of the full haplotype evaluation pipeline (paper Figure 3)."""

import numpy as np
import pytest

from repro.genetics.dataset import GenotypeDataset
from repro.stats.evaluation import HaplotypeEvaluator

from conftest import SMALL_CAUSAL


class TestConstruction:
    def test_rejects_unknown_statistic(self, small_dataset):
        with pytest.raises(ValueError):
            HaplotypeEvaluator(small_dataset, statistic="t9")

    def test_rejects_single_group_dataset(self, small_dataset):
        affected_only = small_dataset.affected()
        with pytest.raises(ValueError):
            HaplotypeEvaluator(affected_only)


class TestValidation:
    def test_rejects_empty_haplotype(self, small_evaluator):
        with pytest.raises(ValueError):
            small_evaluator.evaluate(())

    def test_rejects_duplicates(self, small_evaluator):
        with pytest.raises(ValueError):
            small_evaluator.evaluate((1, 1, 2))

    def test_rejects_out_of_range(self, small_evaluator):
        with pytest.raises(ValueError):
            small_evaluator.evaluate((0, 99))


class TestEvaluation:
    def test_deterministic(self, small_evaluator):
        assert small_evaluator.evaluate((0, 3, 7)) == small_evaluator.evaluate((0, 3, 7))

    def test_order_invariant(self, small_evaluator):
        assert small_evaluator.evaluate((7, 0, 3)) == small_evaluator.evaluate((0, 3, 7))

    def test_callable_interface(self, small_evaluator):
        assert small_evaluator((0, 1)) == small_evaluator.evaluate((0, 1))

    def test_planted_haplotype_beats_random(self, small_evaluator):
        causal = small_evaluator.evaluate(SMALL_CAUSAL)
        random_hap = small_evaluator.evaluate((0, 6, 12))
        assert causal > random_hap

    def test_detailed_record_consistency(self, small_evaluator):
        record = small_evaluator.evaluate_detailed(SMALL_CAUSAL)
        assert record.snps == tuple(sorted(SMALL_CAUSAL))
        assert record.size == len(SMALL_CAUSAL)
        assert record.fitness == pytest.approx(record.clump.statistic("t1"))
        assert record.table.counts.shape == (2, 2 ** len(SMALL_CAUSAL))
        assert record.elapsed_seconds >= 0.0
        # contingency rows carry one expected count per chromosome of each group
        dataset = small_evaluator.dataset
        assert record.table.row_totals[0] == pytest.approx(2 * dataset.n_affected)
        assert record.table.row_totals[1] == pytest.approx(2 * dataset.n_unaffected)

    def test_statistic_selection_changes_fitness(self, small_dataset):
        t1_eval = HaplotypeEvaluator(small_dataset, statistic="t1")
        t4_eval = HaplotypeEvaluator(small_dataset, statistic="t4")
        record = t1_eval.evaluate_detailed(SMALL_CAUSAL)
        assert t4_eval.evaluate(SMALL_CAUSAL) == pytest.approx(record.clump.statistic("t4"))

    def test_counter_increments(self, small_dataset):
        evaluator = HaplotypeEvaluator(small_dataset)
        assert evaluator.n_evaluations == 0
        evaluator.evaluate((0, 1))
        evaluator.evaluate((2, 3))
        assert evaluator.n_evaluations == 2
        evaluator.reset_counter()
        assert evaluator.n_evaluations == 0

    def test_fitness_grows_with_haplotype_size(self, small_evaluator):
        """The paper's key observation: the fitness scale grows with the size."""
        rng = np.random.default_rng(0)
        means = []
        for size in (2, 4):
            values = []
            for _ in range(12):
                snps = tuple(sorted(rng.choice(14, size=size, replace=False).tolist()))
                values.append(small_evaluator.evaluate(snps))
            means.append(np.mean(values))
        assert means[1] > means[0]

    def test_build_table_matches_detailed(self, small_evaluator):
        table = small_evaluator.build_table((0, 1, 2))
        record = small_evaluator.evaluate_detailed((0, 1, 2))
        np.testing.assert_allclose(table.counts, record.table.counts)

    def test_default_lrt_matches_cold_pooled_fit(self, small_dataset):
        """The default (no warm start) LRT must equal three cold EM fits.

        Regression guard: a warm-started pooled EM can stall in a different
        optimum and shift the statistic, so warm starts are opt-in and the
        default path must reproduce the seed pipeline's values.
        """
        from repro.stats.ehdiall import run_ehdiall

        snps = (0, 3, 7)
        evaluator = HaplotypeEvaluator(small_dataset, statistic="lrt")
        affected = run_ehdiall(small_dataset.affected(), snps)
        unaffected = run_ehdiall(small_dataset.unaffected(), snps)
        pooled = run_ehdiall(small_dataset.with_known_status(), snps)
        expected = max(
            2.0 * (affected.h1_log_likelihood + unaffected.h1_log_likelihood
                   - pooled.h1_log_likelihood),
            0.0,
        )
        assert evaluator.evaluate(snps) == pytest.approx(expected, abs=1e-6)


class TestSignificance:
    def test_planted_haplotype_is_significant(self, small_evaluator):
        p = small_evaluator.significance(SMALL_CAUSAL, n_simulations=200, seed=4)
        assert p["t1"] < 0.05


class TestPickling:
    def test_evaluator_survives_pickling(self, small_evaluator):
        import pickle

        clone = pickle.loads(pickle.dumps(small_evaluator))
        assert clone.evaluate(SMALL_CAUSAL) == pytest.approx(
            small_evaluator.evaluate(SMALL_CAUSAL)
        )
