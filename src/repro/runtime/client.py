"""Client side of the scan service: talk to a ``repro serve`` daemon.

:class:`ScanClient` opens one authenticated ``multiprocessing.connection``
socket to a :class:`~repro.runtime.server.ScanServer`, identifies itself with
a :class:`~repro.runtime.spec.ClientHello` (the ``client_id`` scopes the
daemon's per-tenant metrics and in-flight caps), and then issues scans, runs
and status probes over it.  A scan streams back per-window completions as
the warm farm finishes them, so a ``progress`` callback observes windows in
submission order exactly like the in-process runner's.

The client deliberately knows nothing about execution: backend, worker
count, packing and the statistic all belong to the daemon's substrate.  What
comes back is a plain :class:`~repro.scan.report.ScanReport` whose
fingerprint matches the in-process scan of the same (geometry, config, seed)
— cached or computed, the daemon's replies are bit-identical.

Resilience: every request takes a per-request ``timeout`` deadline (a wedged
daemon raises :class:`DeadlineExceeded` instead of hanging the caller
forever), transport failures are retried under a :class:`RetryPolicy`
(capped exponential backoff with jitter; a re-submitted scan is idempotent —
the daemon's result cache and journal key on the scan's identity, so retries
*replay* completed windows instead of recomputing them), and an optional
:class:`CircuitBreaker` fails fast after repeated connect failures instead
of stacking timeouts.  Retries consumed by a scan are surfaced as
``ScanReport.n_client_retries``.
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import dataclass

from ..core.config import GAConfig
from ..parallel.base import EvaluationStats
from ..scan.report import ScanReport, WindowResult, window_result_from_json
from .server import AdmissionRejected
from .service import RunRequest, RunResult
from .spec import (
    ClientHello,
    HealthProbe,
    RunEnvelope,
    ScanEnvelope,
    ShutdownCommand,
    StatusProbe,
)
from .remote import connect_with_timeout, default_authkey, parse_host

__all__ = [
    "ScanClient",
    "ServiceError",
    "ConnectionLostError",
    "DeadlineExceeded",
    "CircuitOpenError",
    "RetryPolicy",
    "CircuitBreaker",
]


class ServiceError(RuntimeError):
    """The daemon answered with an error, or the connection died mid-request."""


class ConnectionLostError(ServiceError):
    """The transport died mid-request (retryable: the request never completed
    or is idempotent to re-submit; server-sent errors are *not* this)."""


class DeadlineExceeded(ServiceError):
    """The per-request deadline elapsed before the daemon's reply arrived.

    The connection is dropped (a late reply would desynchronise the
    protocol) and re-established on the next request.  Deliberately not
    retried: the deadline is the caller's total time budget.
    """


class CircuitOpenError(ServiceError):
    """The circuit breaker is open: recent connects failed; failing fast."""


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with jitter for transport-level retries.

    ``max_attempts`` counts the first try: ``3`` means one attempt plus two
    retries.  The delay before retry *k* (1-based) is
    ``min(backoff_seconds * 2**(k-1), max_backoff_seconds)``, shrunk by up
    to ``jitter`` (a fraction in ``[0, 1]``) uniformly at random so a fleet
    of clients losing the same daemon does not reconnect in lockstep.

    Only transport failures (:class:`ConnectionLostError`, connect errors)
    are retried.  Server-sent errors and admission rejections are answers,
    not failures — retrying them is the caller's policy decision, not the
    transport's.
    """

    max_attempts: int = 3
    backoff_seconds: float = 0.1
    max_backoff_seconds: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if (
            not isinstance(self.max_attempts, int)
            or isinstance(self.max_attempts, bool)
            or self.max_attempts < 1
        ):
            raise ValueError(
                f"max_attempts must be a positive integer, got {self.max_attempts!r}"
            )
        if self.backoff_seconds < 0 or self.max_backoff_seconds < 0:
            raise ValueError("backoff_seconds and max_backoff_seconds must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter!r}")

    def backoff(self, retry: int, rng: random.Random | None = None) -> float:
        """Delay before 1-based retry number ``retry``."""
        if retry < 1:
            return 0.0
        base = min(
            self.backoff_seconds * (2.0 ** (retry - 1)), self.max_backoff_seconds
        )
        if self.jitter <= 0.0 or rng is None:
            return base
        return base * (1.0 - self.jitter * rng.random())


class CircuitBreaker:
    """Fail fast after repeated connect failures (thread-safe).

    ``failure_threshold`` consecutive failures open the circuit: further
    attempts raise :class:`CircuitOpenError` immediately instead of paying a
    connect timeout each.  After ``reset_seconds`` the circuit goes
    *half-open* — exactly one probe attempt is allowed through; its success
    closes the circuit, its failure re-opens it for another full window.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_seconds: float = 30.0,
        *,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold!r}"
            )
        if reset_seconds < 0:
            raise ValueError(f"reset_seconds must be >= 0, got {reset_seconds!r}")
        self.failure_threshold = int(failure_threshold)
        self.reset_seconds = float(reset_seconds)
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: float | None = None
        self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            if self._opened_at is None:
                return "closed"
            if self._clock() - self._opened_at >= self.reset_seconds:
                return "half-open"
            return "open"

    def allow(self) -> bool:
        """May an attempt proceed right now?  (Claims the half-open probe.)"""
        with self._lock:
            if self._opened_at is None:
                return True
            if self._clock() - self._opened_at < self.reset_seconds:
                return False
            if self._probing:
                return False  # another thread holds the half-open probe
            self._probing = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._opened_at = None
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            self._probing = False
            if self._opened_at is not None or self._failures >= self.failure_threshold:
                # re-open (or open) for a fresh reset window
                self._opened_at = self._clock()


def _default_client_id() -> str:
    return f"{os.uname().nodename}-{os.getpid()}"


class ScanClient:
    """One authenticated connection to a running scan service.

    Parameters
    ----------
    address:
        ``"host:port"`` spec or ``(host, port)`` tuple of the daemon.
    authkey:
        HMAC key; defaults to :func:`~repro.runtime.remote.default_authkey`
        (``REPRO_REMOTE_AUTHKEY`` or the dev default) — must match the
        daemon's.
    client_id:
        Tenant identity for metrics and in-flight caps; defaults to
        ``hostname-pid``.
    timeout:
        Default per-request deadline in seconds (``None`` blocks forever,
        the pre-resilience behaviour); every request method takes a
        per-call ``timeout`` override.
    connect_timeout:
        Deadline on establishing (or re-establishing) the connection,
        including the HMAC handshake and hello exchange.
    retry:
        :class:`RetryPolicy` for transport failures; ``None`` disables
        retries (one attempt).  Scans are idempotent to re-submit: the
        daemon's result cache replays completed windows bit-identically.
    breaker:
        Optional :class:`CircuitBreaker` consulted before each connect.
    wrap_connection:
        Testing/chaos hook: a callable applied to every newly established
        connection (e.g. ``lambda conn:
        ChaosConnection(conn, ConnectionChaos(...))``).

    A client holds one socket and serialises its own requests with a lock, so
    a single instance is safe to share across threads — though each request
    occupies one of the tenant's in-flight slots for its full duration, so
    concurrent tenants usually want one client (one connection) per thread.

    Construction connects eagerly (one attempt — a wrong address should fail
    loudly, not retry); a connection lost later is re-established lazily by
    the next request, under the retry policy.
    """

    #: granularity of the deadline poll (a wedged conn is re-checked this often)
    _POLL_SECONDS = 0.2

    def __init__(
        self,
        address: str | tuple[str, int],
        *,
        authkey: bytes | None = None,
        client_id: str | None = None,
        timeout: float | None = None,
        connect_timeout: float | None = 30.0,
        retry: RetryPolicy | None = RetryPolicy(),
        breaker: CircuitBreaker | None = None,
        wrap_connection=None,
        retry_seed: int | None = None,
    ) -> None:
        if isinstance(address, str):
            address = parse_host(address)
        self._address = tuple(address)
        self._authkey = authkey or default_authkey()
        self._client_id = client_id or _default_client_id()
        self._timeout = timeout
        self._connect_timeout = connect_timeout
        self._retry = retry
        self._breaker = breaker
        self._wrap_connection = wrap_connection
        self._rng = random.Random(retry_seed)
        self._lock = threading.Lock()
        self._conn = None
        self._info: dict = {}
        self.n_retries = 0
        self.n_reconnects = 0
        self._connect()

    # ------------------------------------------------------------------ #
    @property
    def client_id(self) -> str:
        return self._client_id

    @property
    def info(self) -> dict:
        """The daemon's handshake card: backend, statistic, n_snps, packed,
        panel_fingerprint."""
        return dict(self._info)

    def metrics(self) -> dict:
        """Client-side resilience counters (lifetime of this client)."""
        return {
            "n_retries": self.n_retries,
            "n_reconnects": self.n_reconnects,
            "breaker_state": self._breaker.state if self._breaker else None,
        }

    # ------------------------------------------------------------------ #
    # connection management
    # ------------------------------------------------------------------ #
    def _connect(self) -> None:
        """Establish the socket and exchange the hello (one attempt)."""
        if self._breaker is not None and not self._breaker.allow():
            raise CircuitOpenError(
                f"circuit breaker is open for {self._address[0]}:"
                f"{self._address[1]} after repeated connect failures"
            )
        try:
            conn = connect_with_timeout(
                self._address, authkey=self._authkey, timeout=self._connect_timeout
            )
            if self._wrap_connection is not None:
                conn = self._wrap_connection(conn)
            try:
                conn.send(ClientHello(client_id=self._client_id))
                deadline = (
                    None
                    if self._connect_timeout is None
                    else time.monotonic() + self._connect_timeout
                )
                kind, payload = self._recv_on(conn, deadline)
                if kind != "ok":
                    raise ServiceError(f"service refused the connection: {payload}")
            except BaseException:
                conn.close()
                raise
        except (ConnectionLostError, DeadlineExceeded, OSError, EOFError) as exc:
            if self._breaker is not None:
                self._breaker.record_failure()
            if isinstance(exc, (ConnectionLostError, DeadlineExceeded)):
                raise
            raise ConnectionLostError(
                f"could not connect to the scan service at "
                f"{self._address[0]}:{self._address[1]}: {exc}"
            ) from exc
        except BaseException:
            if self._breaker is not None:
                self._breaker.record_failure()
            raise
        if self._breaker is not None:
            self._breaker.record_success()
        self._conn = conn
        self._info = dict(payload)

    def _ensure_connection(self):
        if self._conn is None:
            self._connect()
            self.n_reconnects += 1
        return self._conn

    def _drop_connection(self) -> None:
        conn, self._conn = self._conn, None
        if conn is not None:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass

    # ------------------------------------------------------------------ #
    # deadline-aware transport primitives
    # ------------------------------------------------------------------ #
    def _deadline(self, timeout: float | None) -> float | None:
        """The absolute deadline of a request starting now."""
        if timeout is None:
            timeout = self._timeout
        return None if timeout is None else time.monotonic() + float(timeout)

    def _recv_on(self, conn, deadline: float | None):
        """Receive one message, bounded by ``deadline`` (None blocks)."""
        if deadline is not None:
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise DeadlineExceeded(
                        "the scan service did not reply within the deadline"
                    )
                try:
                    if conn.poll(min(remaining, self._POLL_SECONDS)):
                        break
                except (OSError, ValueError) as exc:
                    raise ConnectionLostError(
                        "connection to the scan service was closed"
                    ) from exc
        try:
            return conn.recv()
        except (EOFError, OSError) as exc:
            raise ConnectionLostError(
                "connection to the scan service was closed"
            ) from exc

    @staticmethod
    def _send_on(conn, message) -> None:
        try:
            conn.send(message)
        except (BrokenPipeError, ConnectionError, OSError, ValueError) as exc:
            raise ConnectionLostError(
                "connection to the scan service was closed"
            ) from exc

    # ------------------------------------------------------------------ #
    # the retrying request engine
    # ------------------------------------------------------------------ #
    def _request(self, perform, *, timeout: float | None):
        """Run ``perform(conn, deadline)`` with reconnect-and-retry.

        Transport deaths (:class:`ConnectionLostError`) drop the socket and
        retry under the policy; a blown deadline drops the socket and raises
        without retrying (the deadline is the caller's total budget); every
        other exception — server errors, rejections, an open breaker —
        propagates untouched.  Returns ``(result, n_retries_used)``.
        """
        attempts = self._retry.max_attempts if self._retry is not None else 1
        deadline = self._deadline(timeout)
        last: Exception | None = None
        with self._lock:
            for attempt in range(attempts):
                if attempt:
                    delay = self._retry.backoff(attempt, self._rng)
                    if deadline is not None:
                        delay = min(delay, max(0.0, deadline - time.monotonic()))
                    if delay > 0:
                        time.sleep(delay)
                    self.n_retries += 1
                try:
                    conn = self._ensure_connection()
                    return perform(conn, deadline), attempt
                except DeadlineExceeded:
                    self._drop_connection()
                    raise
                except ConnectionLostError as exc:
                    self._drop_connection()
                    last = exc
                    if deadline is not None and time.monotonic() >= deadline:
                        raise DeadlineExceeded(
                            "the request deadline elapsed while retrying"
                        ) from exc
        assert last is not None
        raise last

    # ------------------------------------------------------------------ #
    def scan(
        self,
        *,
        window_size: int,
        overlap: int = 0,
        config: GAConfig | None = None,
        seed: int = 0,
        statistic: str = "t1",
        n_runs: int = 1,
        progress=None,
        timeout: float | None = None,
    ) -> ScanReport:
        """Run a windowed scan on the daemon's warm substrate.

        Blocks until the scan completes, invoking ``progress(window_result)``
        for each streamed window (the in-process runner's hook signature).
        ``timeout`` bounds the whole request (waiting for *each* reply
        against one absolute deadline); a retried scan re-submits from the
        start, so ``progress`` may observe early windows again — the daemon
        replays them from its result cache/journal bit-identically.  Raises
        :class:`~repro.runtime.server.AdmissionRejected` when the daemon's
        admission policy refuses the request and :class:`ServiceError` on
        service-side failures.
        """
        envelope = ScanEnvelope(
            window_size=window_size,
            overlap=overlap,
            config=config,
            seed=seed,
            statistic=statistic,
            n_runs=n_runs,
        )
        start = time.perf_counter()

        def perform(conn, deadline):
            self._send_on(conn, envelope)
            windows: list[WindowResult] = []
            while True:
                message = self._recv_on(conn, deadline)
                kind = message[0]
                if kind == "window":
                    _kind, payload, _cached = message
                    result = window_result_from_json(payload)
                    windows.append(result)
                    if progress is not None:
                        progress(result)
                elif kind == "done":
                    return windows, message[1]
                elif kind == "rejected":
                    raise AdmissionRejected(message[1])
                elif kind == "error":
                    raise ServiceError(message[1])
                else:  # pragma: no cover - protocol violation
                    raise ServiceError(f"unexpected reply {kind!r}")

        (windows, meta), retries = self._request(perform, timeout=timeout)
        stats = EvaluationStats(**meta["stats"])
        return ScanReport(
            windows=tuple(windows),
            backend=str(meta["backend"]),
            n_jobs=int(meta["jobs"]),
            stats=stats,
            elapsed_seconds=time.perf_counter() - start,
            n_snps=int(self._info["n_snps"]),
            window_size=window_size,
            overlap=overlap,
            statistic=statistic.lower(),
            seed=seed,
            n_cached_windows=int(meta["n_cached_windows"]),
            admission_wait_seconds=float(meta["admission_wait_seconds"]),
            n_client_retries=int(retries),
        )

    def run(self, request: RunRequest, *, timeout: float | None = None) -> RunResult:
        """Execute one GA run on the daemon; returns its full RunResult."""

        def perform(conn, deadline):
            self._send_on(conn, RunEnvelope(request=request))
            return self._recv_on(conn, deadline)

        (kind, payload), _retries = self._request(perform, timeout=timeout)
        if kind == "result":
            return payload
        if kind == "rejected":
            raise AdmissionRejected(payload)
        raise ServiceError(payload)

    def status(self, *, timeout: float | None = None) -> dict:
        """The daemon's status dict (cache, admission, tenants, summary)."""

        def perform(conn, deadline):
            self._send_on(conn, StatusProbe())
            return self._recv_on(conn, deadline)

        (kind, payload), _retries = self._request(perform, timeout=timeout)
        if kind != "status":
            raise ServiceError(payload)
        return payload

    def health(self, *, timeout: float | None = None) -> dict:
        """The daemon's liveness card: farm/host health, queue depth, journal."""

        def perform(conn, deadline):
            self._send_on(conn, HealthProbe())
            return self._recv_on(conn, deadline)

        (kind, payload), _retries = self._request(perform, timeout=timeout)
        if kind != "health":
            raise ServiceError(payload)
        return payload

    def shutdown_server(
        self, *, drain: bool = True, timeout: float | None = None
    ) -> None:
        """Ask the daemon to drain and exit; the connection closes with it.

        A single attempt (shutdown is not idempotent to blind-retry); the
        deadline still applies, so a daemon wedged mid-drain cannot hang the
        caller.
        """
        deadline = self._deadline(timeout)
        with self._lock:
            conn = self._ensure_connection()
            try:
                self._send_on(conn, ShutdownCommand(drain=drain))
                self._recv_on(conn, deadline)
            except ConnectionLostError:
                pass  # server may close before the ack arrives
            except DeadlineExceeded:
                self._drop_connection()
                raise

    def close(self) -> None:
        self._drop_connection()

    def __enter__(self) -> "ScanClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
