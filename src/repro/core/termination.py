"""Termination criteria of the GA run.

The paper stops "when the best individual has not evolved during a fixed
number of generations" (Section 4.6); because the evaluation budget matters
more than the generation count for this problem, optional caps on the total
number of generations and on the total number of evaluations are also
supported, as is an optional target fitness (useful in tests where the
optimum is planted and known).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TerminationCriteria", "TerminationState"]


@dataclass(frozen=True)
class TerminationState:
    """The run-progress facts the criteria are checked against."""

    generation: int
    stagnation: int
    n_evaluations: int
    best_fitness: float | None


@dataclass(frozen=True)
class TerminationCriteria:
    """When to stop the GA.

    Attributes
    ----------
    stagnation_generations:
        Stop when the global best has not improved for this many generations.
    max_generations:
        Hard cap on the number of generations.
    max_evaluations:
        Optional hard cap on the number of fitness evaluations.
    target_fitness:
        Optional fitness at (or above) which the run stops immediately.
    """

    stagnation_generations: int = 100
    max_generations: int = 2000
    max_evaluations: int | None = None
    target_fitness: float | None = None

    def __post_init__(self) -> None:
        if self.stagnation_generations < 1:
            raise ValueError("stagnation_generations must be positive")
        if self.max_generations < 1:
            raise ValueError("max_generations must be positive")
        if self.max_evaluations is not None and self.max_evaluations < 1:
            raise ValueError("max_evaluations must be positive")

    def reason_to_stop(self, state: TerminationState) -> str | None:
        """The reason to stop now, or ``None`` to continue."""
        if (
            self.target_fitness is not None
            and state.best_fitness is not None
            and state.best_fitness >= self.target_fitness
        ):
            return "target_fitness"
        if state.stagnation >= self.stagnation_generations:
            return "stagnation"
        if state.generation >= self.max_generations:
            return "max_generations"
        if self.max_evaluations is not None and state.n_evaluations >= self.max_evaluations:
            return "max_evaluations"
        return None

    def should_stop(self, state: TerminationState) -> bool:
        return self.reason_to_stop(state) is not None
