"""Classic single-population GA baseline.

Section 5.2 of the paper compares the full algorithm against stripped-down
variants; the most stripped-down end of that spectrum is an ordinary GA that
searches one haplotype size at a time with a single population, fixed operator
rates, no size-changing mutations, no inter-population crossover and no random
immigrants.  This module implements that baseline directly (rather than by
configuring the multi-population engine) so that the comparison also covers
the multi-population machinery itself.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.individual import HaplotypeIndividual, random_individual
from ..core.operators.crossover import IntraPopulationCrossover
from ..core.operators.mutation import PointMutation
from ..core.selection import tournament_selection
from ..genetics.constraints import HaplotypeConstraints
from ..parallel.base import BatchEvaluator, FitnessCallable
from ..runtime.backends import DEFAULT_BACKEND, create_evaluator

__all__ = ["SimpleGAResult", "SimpleGA"]


@dataclass(frozen=True)
class SimpleGAResult:
    """Outcome of a single-size, single-population GA run."""

    best_snps: tuple[int, ...]
    best_fitness: float
    n_evaluations: int
    n_generations: int
    evaluations_to_best: int


class SimpleGA:
    """A conventional generational GA on one haplotype size.

    Parameters
    ----------
    fitness:
        Fitness callable; routed through the execution-backend registry, so
        the baseline shares the same generation-level dedup and LRU caching
        stack as the adaptive GA.  Mutually exclusive with ``evaluator``.
    n_snps:
        SNP panel size.
    size:
        The (fixed) haplotype size to search.
    population_size:
        Number of individuals.
    crossover_rate, mutation_rate:
        Fixed operator probabilities.
    tournament_size:
        Selection pressure.
    elitism:
        Number of best individuals copied unchanged to the next generation.
    constraints:
        Optional haplotype-validity constraints.
    evaluator:
        An already-built :class:`~repro.parallel.base.BatchEvaluator` to use
        as is (the caller keeps ownership).
    backend, backend_options:
        Execution-backend name and extra
        :func:`repro.runtime.backends.create_evaluator` arguments used to
        build the evaluator from ``fitness`` (default: ``serial``).
    """

    def __init__(
        self,
        fitness: FitnessCallable | None = None,
        *,
        n_snps: int,
        size: int,
        population_size: int = 50,
        crossover_rate: float = 0.9,
        mutation_rate: float = 0.2,
        tournament_size: int = 2,
        elitism: int = 1,
        constraints: HaplotypeConstraints | None = None,
        evaluator: BatchEvaluator | None = None,
        backend: str | None = None,
        backend_options: dict | None = None,
    ) -> None:
        if size < 1:
            raise ValueError("size must be positive")
        if population_size < 2:
            raise ValueError("population_size must be at least 2")
        if not 0.0 <= crossover_rate <= 1.0 or not 0.0 <= mutation_rate <= 1.0:
            raise ValueError("rates must be in [0, 1]")
        if elitism < 0 or elitism >= population_size:
            raise ValueError("elitism must be in [0, population_size)")
        if fitness is None and evaluator is None:
            raise ValueError("either a fitness callable or a batch evaluator is required")
        if evaluator is not None and backend is not None:
            raise ValueError("backend and an explicit evaluator are mutually exclusive")
        self._owns_evaluator = evaluator is None
        if evaluator is None:
            evaluator = create_evaluator(
                backend or DEFAULT_BACKEND, fitness, **(backend_options or {})
            )
        self.evaluator: BatchEvaluator = evaluator
        self.n_snps = int(n_snps)
        self.size = int(size)
        self.population_size = int(population_size)
        self.crossover_rate = float(crossover_rate)
        self.mutation_rate = float(mutation_rate)
        self.tournament_size = int(tournament_size)
        self.elitism = int(elitism)
        self.constraints = constraints or HaplotypeConstraints.unconstrained(n_snps)
        self._crossover = IntraPopulationCrossover()
        self._mutation = PointMutation(n_trials=1)
        self._n_evaluations = 0

    # ------------------------------------------------------------------ #
    @property
    def n_evaluations(self) -> int:
        """Number of fitness requests so far (the paper's cost metric)."""
        return self._n_evaluations

    def _evaluate_all(self, batch: list[tuple[int, ...]]) -> list[HaplotypeIndividual]:
        """Evaluate one generation's candidates through the batch evaluator.

        Duplicate and previously seen haplotypes are answered by the
        evaluator's dedup/cache fast path; every request still counts toward
        :attr:`n_evaluations`.
        """
        self._n_evaluations += len(batch)
        fitnesses = self.evaluator.evaluate_batch(batch)
        return [
            HaplotypeIndividual(snps, float(value))
            for snps, value in zip(batch, fitnesses)
        ]

    def close(self) -> None:
        """Release the evaluator if this GA built it (idempotent)."""
        if self._owns_evaluator:
            self.evaluator.close()

    def __enter__(self) -> "SimpleGA":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def run(
        self,
        *,
        n_generations: int = 50,
        stagnation: int | None = None,
        seed: int = 0,
    ) -> SimpleGAResult:
        """Run the GA for at most ``n_generations`` generations.

        ``stagnation`` optionally stops the run early when the best individual
        has not improved for that many generations.
        """
        if n_generations < 1:
            raise ValueError("n_generations must be positive")
        rng = np.random.default_rng(seed)
        self._n_evaluations = 0

        initial: list[tuple[int, ...]] = []
        seen: set[tuple[int, ...]] = set()
        while len(initial) < self.population_size:
            candidate = random_individual(self.size, self.constraints, rng)
            if candidate.snps in seen and len(seen) < self.population_size * 10:
                continue
            seen.add(candidate.snps)
            initial.append(candidate.snps)
        population = self._evaluate_all(initial)

        best = max(population, key=lambda ind: ind.fitness_value())
        evaluations_to_best = self._n_evaluations
        stale = 0
        generation = 0
        for generation in range(1, n_generations + 1):
            population.sort(key=lambda ind: ind.fitness_value(), reverse=True)
            elite = population[: self.elitism]
            # parents come from the (sorted, frozen) current population, so the
            # whole generation's offspring can be planned first and evaluated
            # as one batch through the backend
            offspring: list[tuple[int, ...]] = []
            while len(elite) + len(offspring) < self.population_size:
                parent_a = tournament_selection(population, rng,
                                                tournament_size=self.tournament_size)
                parent_b = tournament_selection(population, rng,
                                                tournament_size=self.tournament_size)
                child_snps = parent_a.snps
                if rng.random() < self.crossover_rate:
                    children = self._crossover.recombine(parent_a, parent_b,
                                                         self.constraints, rng)
                    if children:
                        child_snps = children[int(rng.integers(len(children)))]
                if rng.random() < self.mutation_rate:
                    variants = self._mutation.propose(
                        HaplotypeIndividual(child_snps), self.constraints, rng
                    )
                    if variants:
                        child_snps = variants[0]
                offspring.append(child_snps)
            population = elite + self._evaluate_all(offspring)
            generation_best = max(population, key=lambda ind: ind.fitness_value())
            if generation_best.fitness_value() > best.fitness_value() + 1e-12:
                best = generation_best
                evaluations_to_best = self._n_evaluations
                stale = 0
            else:
                stale += 1
                if stagnation is not None and stale >= stagnation:
                    break
        return SimpleGAResult(
            best_snps=best.snps,
            best_fitness=best.fitness_value(),
            n_evaluations=self._n_evaluations,
            n_generations=generation,
            evaluations_to_best=evaluations_to_best,
        )
