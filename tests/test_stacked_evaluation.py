"""The generation-batched evaluation path: ``evaluate_many`` and its consumers.

``HaplotypeEvaluator.evaluate_many`` must be observably identical to the
sequential ``evaluate`` loop — same fitness values (bit-identical, courtesy of
the stacked kernel's exact parity), same cache population, same
``n_evaluations``/``n_em_runs`` accounting — across every statistic and
warm-start mode.  On top of that sit the routing layers: the serial evaluator
(and therefore every farm slave's chunk fast path) must send distinct batches
through it and surface the stacked-EM counters in
:class:`~repro.parallel.base.EvaluationStats`, and the cost-model-driven farm
chunking must never change values or counter parity.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel.base import EvaluationStats, evaluate_batch_with
from repro.parallel.farm import cost_balanced_chunks
from repro.parallel.master_slave import MasterSlaveEvaluator
from repro.parallel.pvm import EvaluationCostModel
from repro.parallel.serial import SerialEvaluator
from repro.parallel.threads import ThreadPoolEvaluator
from repro.runtime.service import backend_summary_line
from repro.stats.ehdiall import ehdiall_batch, ehdiall_from_expansion
from repro.stats.em import expand_phases
from repro.stats.evaluation import HaplotypeEvaluator


def _random_batch(n_snps: int, count: int, seed: int, sizes=(2, 7)) -> list[list[int]]:
    rng = np.random.default_rng(seed)
    return [
        sorted(
            rng.choice(n_snps, size=int(rng.integers(sizes[0], sizes[1])), replace=False).tolist()
        )
        for _ in range(count)
    ]


@pytest.fixture(scope="module")
def batch(small_dataset):
    return _random_batch(small_dataset.n_snps, 40, seed=7)


class TestEvaluateMany:
    @pytest.mark.parametrize(
        "statistic,warm_start",
        [
            ("t1", False),
            ("t4", False),
            ("lrt", False),
            ("lrt", True),
            ("t1", "full"),
            ("lrt", "full"),
        ],
    )
    def test_matches_sequential_loop(self, small_dataset, batch, statistic, warm_start):
        sequential = HaplotypeEvaluator(
            small_dataset, statistic=statistic, warm_start=warm_start
        )
        batched = HaplotypeEvaluator(
            small_dataset, statistic=statistic, warm_start=warm_start
        )
        expected = [sequential.evaluate(snps) for snps in batch]
        actual = batched.evaluate_many(batch)
        assert actual == expected  # bit-identical, not approx
        assert batched.n_evaluations == sequential.n_evaluations
        assert batched.n_em_runs == sequential.n_em_runs
        assert batched.n_stacked_em >= 1
        assert batched.n_stacked_problems >= len(set(map(tuple, batch)))

    def test_duplicates_collapse_like_the_result_cache(self, small_dataset):
        base = _random_batch(small_dataset.n_snps, 10, seed=11)
        batch = base + base[:4]
        sequential = HaplotypeEvaluator(small_dataset)
        batched = HaplotypeEvaluator(small_dataset)
        expected = [sequential.evaluate(snps) for snps in batch]
        assert batched.evaluate_many(batch) == expected
        assert batched.n_evaluations == len(batch)
        assert batched.n_em_runs == sequential.n_em_runs

    def test_caches_disabled_refits_every_request(self, small_dataset):
        base = _random_batch(small_dataset.n_snps, 6, seed=12)
        batch = base + base[:3]
        sequential = HaplotypeEvaluator(small_dataset, cache_size=0)
        batched = HaplotypeEvaluator(small_dataset, cache_size=0)
        expected = [sequential.evaluate(snps) for snps in batch]
        assert batched.evaluate_many(batch) == expected
        # with reuse off, the sequential loop refits duplicates — so must we
        assert batched.n_em_runs == sequential.n_em_runs

    def test_batch_of_one_matches_scalar(self, small_dataset):
        evaluator = HaplotypeEvaluator(small_dataset)
        [value] = evaluator.evaluate_many([[1, 4, 6]])
        assert value == HaplotypeEvaluator(small_dataset).evaluate([1, 4, 6])
        # even one candidate has two group problems worth stacking
        assert evaluator.n_stacked_em == 1
        assert evaluator.n_stacked_problems == 2

    def test_populates_the_same_caches(self, small_dataset, batch):
        batched = HaplotypeEvaluator(small_dataset)
        batched.evaluate_many(batch)
        runs_after_batch = batched.n_em_runs
        # every candidate is now answered from the result cache
        for snps in batch:
            batched.evaluate(snps)
        assert batched.n_em_runs == runs_after_batch

    def test_empty_batch(self, small_dataset):
        assert HaplotypeEvaluator(small_dataset).evaluate_many([]) == []

    def test_validation_still_applies(self, small_dataset):
        evaluator = HaplotypeEvaluator(small_dataset)
        with pytest.raises(ValueError):
            evaluator.evaluate_many([[0, 1], [3, 3]])
        with pytest.raises(ValueError):
            evaluator.evaluate_many([[0, small_dataset.n_snps]])

    def test_interleaves_with_sequential_use(self, small_dataset, batch):
        # a mixed call pattern must stay consistent with the pure loop
        reference = HaplotypeEvaluator(small_dataset)
        mixed = HaplotypeEvaluator(small_dataset)
        expected = [reference.evaluate(snps) for snps in batch]
        half = len(batch) // 2
        first = [mixed.evaluate(snps) for snps in batch[:5]]
        middle = mixed.evaluate_many(batch[:half])
        rest = mixed.evaluate_many(batch[half:])
        assert first == expected[:5]
        assert middle + rest == expected


class TestEhdiallBatch:
    def test_matches_scalar_results(self, small_dataset):
        affected = small_dataset.affected()
        expansions = [
            expand_phases(affected.genotypes_at(np.asarray(snps)))
            for snps in _random_batch(small_dataset.n_snps, 8, seed=21)
        ]
        batched = ehdiall_batch(expansions)
        for expansion, result in zip(expansions, batched):
            scalar = ehdiall_from_expansion(expansion)
            assert result.h1_log_likelihood == scalar.h1_log_likelihood
            assert result.h0_log_likelihood == scalar.h0_log_likelihood
            assert result.lrt_statistic == scalar.lrt_statistic
            assert result.em.n_iterations == scalar.em.n_iterations
            np.testing.assert_array_equal(
                result.em.frequencies, scalar.em.frequencies
            )

    def test_empty_class_expansion_routed_scalar(self, small_dataset):
        # a hand-built expansion with an empty genotype class breaks the
        # contiguous segmented reduction (_can_reduceat is False), so it must
        # take the scalar kernel's bincount fallback instead of joining the
        # stack — where its empty segment would corrupt the reduction
        from repro.stats.em import PhaseExpansion

        affected = small_dataset.affected()
        base = expand_phases(affected.genotypes_at(np.asarray([0, 1])))
        with_empty_class = PhaseExpansion(
            n_loci=base.n_loci,
            class_counts=np.append(base.class_counts, 2),
            pair_a=base.pair_a,
            pair_b=base.pair_b,
            pair_class=base.pair_class,
            pair_multiplicity=base.pair_multiplicity,
            class_genotypes=np.vstack(
                [base.class_genotypes, np.array([[1, 1]], dtype=base.class_genotypes.dtype)]
            ),
        )
        assert not with_empty_class._can_reduceat
        normal = expand_phases(affected.genotypes_at(np.asarray([2, 3])))
        batched = ehdiall_batch([with_empty_class, normal, normal])
        scalar = ehdiall_from_expansion(with_empty_class)
        assert batched[0].h1_log_likelihood == scalar.h1_log_likelihood
        assert batched[0].em.n_iterations == scalar.em.n_iterations
        assert batched[1].h1_log_likelihood == batched[2].h1_log_likelihood

    def test_initial_frequencies_length_checked(self, small_dataset):
        affected = small_dataset.affected()
        expansions = [
            expand_phases(affected.genotypes_at(np.asarray(snps)))
            for snps in _random_batch(small_dataset.n_snps, 3, seed=22)
        ]
        with pytest.raises(ValueError):
            ehdiall_batch(expansions, initial_frequencies=[None])


class TestBatchedRouting:
    def test_serial_evaluator_routes_and_counts(self, small_dataset, batch):
        evaluator = HaplotypeEvaluator(small_dataset)
        serial = SerialEvaluator(evaluator)
        reference = [HaplotypeEvaluator(small_dataset).evaluate(snps) for snps in batch]
        assert serial.evaluate_batch(batch) == reference
        assert serial.stats.n_stacked_em == evaluator.n_stacked_em > 0
        assert serial.stats.n_stacked_problems == evaluator.n_stacked_problems
        assert serial.stats.mean_stacked_batch_size > 1.0

    def test_single_distinct_batch_skips_stacking(self, small_dataset):
        serial = SerialEvaluator(HaplotypeEvaluator(small_dataset))
        values = serial.evaluate_batch([[2, 5, 9]] * 6)
        assert len(set(values)) == 1
        assert serial.stats.n_stacked_em == 0
        assert serial.stats.n_dedup_hits == 5

    def test_plain_callable_unaffected(self):
        calls = []

        def fitness(snps):
            calls.append(tuple(snps))
            return float(sum(snps))

        values, stacked_calls, stacked_problems = evaluate_batch_with(
            fitness, [(0, 1), (2, 3)]
        )
        assert values == [1.0, 5.0]
        assert stacked_calls == stacked_problems == 0
        assert len(calls) == 2

    def test_threads_backend_parity_and_counters(self, small_dataset, batch):
        reference = SerialEvaluator(HaplotypeEvaluator(small_dataset)).evaluate_batch(batch)
        pool = ThreadPoolEvaluator(
            evaluator_factory=lambda: HaplotypeEvaluator(small_dataset),
            n_workers=2,
        )
        try:
            assert pool.evaluate_batch(batch) == reference
            assert pool.stats.n_stacked_em >= 1
            assert pool.stats.n_stacked_problems >= 2
        finally:
            pool.close()

    def test_farm_backend_parity_and_counters(self, small_dataset, batch):
        serial = SerialEvaluator(HaplotypeEvaluator(small_dataset))
        reference = serial.evaluate_batch(batch)
        with MasterSlaveEvaluator(
            HaplotypeEvaluator(small_dataset), n_workers=2, dispatch="chunked"
        ) as farm:
            assert farm.evaluate_batch(batch) == reference
            assert farm.stats.counters() == serial.stats.counters()
            assert farm.stats.n_stacked_em >= 1

    def test_cost_chunked_steal_farm_parity(self, small_dataset, batch):
        serial = SerialEvaluator(HaplotypeEvaluator(small_dataset))
        reference = serial.evaluate_batch(batch)
        with MasterSlaveEvaluator(
            HaplotypeEvaluator(small_dataset),
            n_workers=2,
            dispatch="chunked",
            steal=True,
            cost_model=EvaluationCostModel(),
        ) as farm:
            assert farm.evaluate_batch(batch) == reference
            assert farm.stats.counters() == serial.stats.counters()


class TestCostBalancedChunks:
    def test_equalises_modelled_cost(self):
        model = EvaluationCostModel()
        sizes = [3, 3, 3, 3, 7, 3, 3, 3, 3, 7, 3, 3]
        costs = [model.cost(s) for s in sizes]
        target = sum(costs) / 4
        chunks = cost_balanced_chunks(list(range(len(sizes))), costs, target)
        assert sorted(i for chunk in chunks for i in chunk) == list(range(len(sizes)))
        # every chunk but the last carries at least the target's worth of work
        for chunk in chunks[:-1]:
            assert sum(costs[i] for i in chunk) >= target
        # an expensive size-7 haplotype must not drag a long cheap tail with it
        for chunk in chunks:
            chunk_costs = [costs[i] for i in chunk]
            if max(chunk_costs) == model.cost(7):
                assert len(chunk) <= 6

    def test_degenerate_inputs(self):
        assert cost_balanced_chunks([], [], 1.0) == []
        assert cost_balanced_chunks([1, 2], [0.1, 0.1], 0.0) == [[1, 2]]
        assert cost_balanced_chunks([5], [9.0], 1.0) == [[5]]

    def test_explicit_chunk_size_unchanged(self, small_dataset, batch):
        # a fixed chunk_size must keep the count-based slicing exactly
        with MasterSlaveEvaluator(
            HaplotypeEvaluator(small_dataset),
            n_workers=2,
            dispatch="chunked",
            chunk_size=3,
        ) as farm:
            reference = SerialEvaluator(HaplotypeEvaluator(small_dataset)).evaluate_batch(batch)
            assert farm.evaluate_batch(batch) == reference


class TestStackedStats:
    def test_merge_since_copy_cover_stacked_counters(self):
        stats = EvaluationStats()
        stats.record_batch(4, 0.1, n_stacked_em=2, n_stacked_problems=10)
        snapshot = stats.copy()
        stats.record_batch(2, 0.1, n_stacked_em=1, n_stacked_problems=3)
        delta = stats.since(snapshot)
        assert delta.n_stacked_em == 1 and delta.n_stacked_problems == 3
        merged = EvaluationStats()
        merged.merge(stats)
        assert merged.n_stacked_em == 3 and merged.n_stacked_problems == 13
        assert merged.mean_stacked_batch_size == pytest.approx(13 / 3)
        assert EvaluationStats().mean_stacked_batch_size == 0.0
        # the cross-backend parity contract stays stacking-agnostic
        assert "n_stacked_em" not in stats.counters()

    def test_summary_line_shows_batch_occupancy(self):
        stats = EvaluationStats()
        stats.record_batch(10, 0.1, n_requests=12, n_stacked_em=2, n_stacked_problems=24)
        line = backend_summary_line("serial", stats)
        assert "2 stacked EM calls" in line
        assert "mean batch 12.0 problems" in line
        bare = backend_summary_line("serial", EvaluationStats())
        assert "stacked" not in bare
