"""repro — reproduction of "A Parallel Adaptive GA for Linkage Disequilibrium in Genomics".

The package reimplements, in pure Python/NumPy, the complete system described
by Vermeulen-Jourdan, Dhaenens and Talbi (IPDPS 2004): the case/control
genomics substrate, the EH-DIALL + CLUMP evaluation pipeline, the parallel
master/slave evaluation farm, and — on top of them — the paper's adaptive
multi-population genetic algorithm, together with the baselines, landscape
analysis and experiment harnesses needed to regenerate every table and figure
of the paper's evaluation section.

Quickstart
----------
>>> from repro import lille_like_study, HaplotypeEvaluator, AdaptiveMultiPopulationGA, GAConfig
>>> study = lille_like_study(seed=1)
>>> evaluator = HaplotypeEvaluator(study.dataset)
>>> ga = AdaptiveMultiPopulationGA(
...     evaluator, n_snps=study.dataset.n_snps,
...     config=GAConfig(population_size=40, max_haplotype_size=4,
...                     termination_stagnation=5, max_generations=10),
... )
>>> result = ga.run()
>>> sorted(result.best_per_size)  # one best haplotype per size
[2, 3, 4]
"""

from .core import AdaptiveMultiPopulationGA, GAConfig, GAResult, HaplotypeIndividual
from .genetics import (
    DiseaseModel,
    GenotypeDataset,
    HaplotypeConstraints,
    PopulationModel,
    SimulatedStudy,
    build_constraints,
    large_study_249,
    lille_like_study,
    simulate_case_control_study,
)
from .parallel import (
    EvaluationCostModel,
    MasterSlaveEvaluator,
    SerialEvaluator,
    SimulatedPVM,
    ThreadPoolEvaluator,
)
from .runtime import EvaluatorSpec, backend_names, create_evaluator
from .runtime.service import RunRequest, RunResult, RunScheduler, RunService
from .scan import ScanReport, plan_scan, run_scan
from .stats import (
    CachedEvaluator,
    ClumpResult,
    ContingencyTable,
    EvaluationRecord,
    HaplotypeEvaluator,
    clump_statistics,
    estimate_haplotype_frequencies,
    run_ehdiall,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "AdaptiveMultiPopulationGA",
    "GAConfig",
    "GAResult",
    "HaplotypeIndividual",
    # genetics
    "GenotypeDataset",
    "HaplotypeConstraints",
    "build_constraints",
    "PopulationModel",
    "DiseaseModel",
    "SimulatedStudy",
    "simulate_case_control_study",
    "lille_like_study",
    "large_study_249",
    # stats
    "HaplotypeEvaluator",
    "CachedEvaluator",
    "EvaluationRecord",
    "ContingencyTable",
    "ClumpResult",
    "clump_statistics",
    "run_ehdiall",
    "estimate_haplotype_frequencies",
    # parallel
    "SerialEvaluator",
    "ThreadPoolEvaluator",
    "MasterSlaveEvaluator",
    "SimulatedPVM",
    "EvaluationCostModel",
    # runtime
    "EvaluatorSpec",
    "backend_names",
    "create_evaluator",
    "RunRequest",
    "RunResult",
    "RunScheduler",
    "RunService",
    # scan
    "plan_scan",
    "run_scan",
    "ScanReport",
]
